"""Shared fixtures for the checkpoint/resume test suite."""

from __future__ import annotations

import pytest

from repro.fleet import make_arrivals, run_fleet
from repro.workloads import chain_workflow, single_stage_workflow

#: tiny synthetic catalog so resume tests run in well under a second
CATALOG = {
    "wide": lambda seed: single_stage_workflow(6, 120.0),
    "deep": lambda seed: chain_workflow(4, 60.0),
}
WORKLOADS = tuple(CATALOG)


def run_small_fleet(*, seed: int = 5, rate: float = 8.0, n: int = 3, **kwargs):
    """One small-but-nontrivial fleet run (several ticks, 2+ tenants)."""
    return run_fleet(
        arrivals=make_arrivals("poisson", rate=rate, n=n, workloads=WORKLOADS),
        workload_catalog=dict(CATALOG),
        charging_unit=900.0,
        seed=seed,
        **kwargs,
    )


@pytest.fixture
def small_fleet():
    return run_small_fleet
