"""Round-trips for the individual pieces a checkpoint is made of.

Whole-engine resume (test_checkpoint.py) proves the composition; these
tests pin the components, so a pickling regression points at the
culprit instead of at "the fleet diverged".
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.cloud.faults import ChaosInjector, ChaosSpec
from repro.core.ogd import OnlineGradientDescentModel
from repro.engine.events import EventKind, EventQueue
from repro.experiments import CampaignStore
from repro.experiments.campaign import CellRecord
from repro.metrics.stats import MovingMedian


def drain(queue) -> list[tuple[float, int, str]]:
    out = []
    while queue:
        event = queue.pop()
        out.append((event.time, event.seq, str(event.payload)))
    return out


class TestEventQueuePickle:
    def build(self) -> EventQueue:
        q = EventQueue()
        a = q.push(10.0, EventKind.EXEC_DONE, "t00/w0/s0/x")
        q.push(10.0, EventKind.INSTANCE_TERMINATE, "i-1")
        q.push(5.0, EventKind.STAGE_IN_DONE, "t01/w0/s0/y")
        q.push(20.0, EventKind.CONTROLLER_TICK)
        q.push(7.0, EventKind.EXEC_DONE, "i-2")
        q.cancel(a)  # lazy-cancelled event stays heap-resident
        q.cancel_for_payload("i-2")  # exercises the payload index
        return q

    def test_pop_order_survives_pickle(self):
        reference = self.build()
        restored = pickle.loads(pickle.dumps(self.build()))
        assert len(restored) == len(reference)
        assert drain(restored) == drain(reference)

    def test_cancelled_events_stay_cancelled(self):
        restored = pickle.loads(pickle.dumps(self.build()))
        payloads = [p for _, _, p in drain(restored)]
        assert "t00/w0/s0/x" not in payloads
        assert "i-2" not in payloads

    def test_sequence_counter_resumes(self):
        # new pushes after restore must continue the global seq stream,
        # not restart it — seqs are the bit-reproducibility tiebreaker
        original = self.build()
        restored = pickle.loads(pickle.dumps(original))
        e_orig = original.push(30.0, EventKind.EXEC_DONE, "later")
        e_rest = restored.push(30.0, EventKind.EXEC_DONE, "later")
        assert e_rest.seq == e_orig.seq
        assert e_rest.seq > max(s for _, s, _ in drain(self.build()))


class TestOgdStateDict:
    def trained(self) -> OnlineGradientDescentModel:
        model = OnlineGradientDescentModel()
        model.update([(1e6, 10.0), (2e6, 18.0)])
        model.update([(3e6, 30.0)])
        return model

    def test_round_trip_is_exact(self):
        model = self.trained()
        clone = OnlineGradientDescentModel()
        clone.load_state_dict(model.state_dict())
        assert clone.state_dict() == model.state_dict()
        assert clone.predict(2.5e6) == model.predict(2.5e6)

    def test_generation_counter_round_trips(self):
        # generation keys the prediction memos; a restored model must
        # not rewind it or memoized results would go stale undetected
        model = self.trained()
        clone = OnlineGradientDescentModel()
        clone.load_state_dict(model.state_dict())
        assert clone.generation == model.generation == 2

    def test_missing_key_rejected(self):
        state = self.trained().state_dict()
        del state["scale"]
        with pytest.raises(ValueError, match="missing"):
            OnlineGradientDescentModel().load_state_dict(state)

    def test_invalid_values_rejected(self):
        model = OnlineGradientDescentModel()
        bad = model.state_dict() | {"updates": -1}
        with pytest.raises(ValueError):
            model.load_state_dict(bad)


class TestMovingMedianStateDict:
    def test_round_trip(self):
        mm = MovingMedian(window=3)
        for v in (1.0, 5.0, 2.0, 9.0):
            mm.push(v)
        clone = MovingMedian()
        clone.load_state_dict(mm.state_dict())
        assert clone.value() == mm.value()
        assert clone.state_dict() == mm.state_dict()
        # the restored deque must keep its maxlen: one more push evicts
        clone.push(4.0)
        mm.push(4.0)
        assert clone.value() == mm.value()


class TestChaosInjectorPickle:
    def spec(self) -> ChaosSpec:
        return ChaosSpec(
            revocation_rate=1.0,
            straggler_probability=0.4,
            provision_failure=0.3,
        )

    def test_rng_stream_resumes_exactly(self):
        spec = self.spec()
        reference = ChaosInjector(spec, np.random.default_rng(42))
        subject = ChaosInjector(spec, np.random.default_rng(42))
        for _ in range(7):  # advance both streams identically
            reference.straggler_factor()
            subject.straggler_factor()
            reference.revocation_delay()
            subject.revocation_delay()
        restored = pickle.loads(pickle.dumps(subject))
        # the restored injector continues where the stream left off
        for _ in range(20):
            assert restored.straggler_factor() == reference.straggler_factor()
            assert restored.revocation_delay() == reference.revocation_delay()


class TestCampaignStorePickle:
    def record(self, seed: int) -> CellRecord:
        return CellRecord(
            workflow="tpch1-S",
            policy="wire",
            charging_unit=60.0,
            seed=seed,
            makespan=100.0,
            total_units=4,
            total_cost=4.0,
            utilization=0.5,
            peak_instances=2,
            restarts=0,
            completed=True,
        )

    def test_dirty_counter_round_trips(self, tmp_path):
        store = CampaignStore(tmp_path / "campaign.json")
        store.put(self.record(0))
        store.put(self.record(1))
        restored = pickle.loads(pickle.dumps(store))
        assert restored.dirty == store.dirty == 2
        assert len(restored) == 2
        # flush on the restored store persists and resets the counter
        restored.flush()
        assert restored.dirty == 0
        reloaded = CampaignStore(tmp_path / "campaign.json")
        assert [r.seed for r in reloaded.records()] == [0, 1]
