"""Property: interrupting at ANY checkpoint tick never changes the run.

Hypothesis draws the cut point and the seed; for every draw, a fleet
run checkpointed mid-flight and resumed must produce a summary
byte-identical to the same run left alone. One canonical straight-run
summary per seed is cached — the property re-runs only the interrupted
side.
"""

from __future__ import annotations

from functools import lru_cache

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.fleet import make_arrivals, resume_fleet, run_fleet
from repro.workloads import chain_workflow, single_stage_workflow

CATALOG = {
    "wide": lambda seed: single_stage_workflow(6, 120.0),
    "deep": lambda seed: chain_workflow(4, 60.0),
}


def small_fleet(seed: int, **kwargs):
    return run_fleet(
        arrivals=make_arrivals(
            "poisson", rate=8.0, n=3, workloads=tuple(CATALOG)
        ),
        workload_catalog=dict(CATALOG),
        charging_unit=900.0,
        seed=seed,
        **kwargs,
    )


@lru_cache(maxsize=None)
def straight_summary(seed: int) -> str:
    return small_fleet(seed).to_summary_json()


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(seed=st.integers(min_value=0, max_value=3), every=st.integers(1, 12))
def test_checkpoint_anywhere_is_invisible(tmp_path_factory, seed, every):
    path = tmp_path_factory.mktemp("ckpt") / f"fleet-{seed}-{every}.ckpt"
    interrupted = small_fleet(
        seed,
        checkpoint_every=every,
        checkpoint_path=path,
        stop_after_checkpoint=True,
    )
    if interrupted is None:
        # the run was cut at tick `every` — finish it from the file
        result = resume_fleet(path)
    else:
        # the run ended before tick `every`; nothing was interrupted
        result = interrupted
    assert result.to_summary_json() == straight_summary(seed)
