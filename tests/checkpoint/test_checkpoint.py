"""Checkpoint file format + full-engine resume (repro.checkpoint).

The contract under test: a run interrupted at a controller-tick
boundary and resumed from its checkpoint finishes *byte-identically* to
a run that was never interrupted — same summary JSON, same telemetry
bytes — for plain, chaotic, sharded, and validated runs alike.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.checkpoint import (
    CHECKPOINT_MAGIC,
    CHECKPOINT_VERSION,
    CheckpointError,
    load_checkpoint,
    read_checkpoint_info,
    save_checkpoint,
)
from repro.cloud.faults import ChaosSpec
from repro.autoscalers import StaticAutoscaler
from repro.engine import Simulation
from repro.fleet import resume_fleet

def interrupted_checkpoint(small_fleet, tmp_path, *, every: int = 2, **kwargs):
    """Run the small fleet until its first checkpoint; return the path."""
    path = tmp_path / "fleet.ckpt"
    result = small_fleet(
        checkpoint_every=every,
        checkpoint_path=path,
        stop_after_checkpoint=True,
        **kwargs,
    )
    assert result is None, "run finished before reaching a checkpoint tick"
    assert path.exists()
    return path


class TestCheckpointFile:
    def test_info_header(self, small_fleet, tmp_path):
        path = interrupted_checkpoint(small_fleet, tmp_path)
        info = read_checkpoint_info(path)
        assert info.version == CHECKPOINT_VERSION
        assert info.kind == "fleet"
        assert info.ticks > 0 and info.now > 0.0
        assert info.events_processed > 0
        assert info.payload_bytes > 0
        assert len(info.sha256) == 64

    def test_magic_leads_the_file(self, small_fleet, tmp_path):
        path = interrupted_checkpoint(small_fleet, tmp_path)
        assert path.read_bytes().startswith(CHECKPOINT_MAGIC)

    def test_rejects_wrong_magic(self, tmp_path):
        path = tmp_path / "bad.ckpt"
        path.write_bytes(b"NOTACKPT" + b"\x00" * 64)
        with pytest.raises(CheckpointError, match="magic"):
            read_checkpoint_info(path)

    def test_rejects_truncated_payload(self, small_fleet, tmp_path):
        path = interrupted_checkpoint(small_fleet, tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 16])
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_rejects_corrupted_payload(self, small_fleet, tmp_path):
        path = interrupted_checkpoint(small_fleet, tmp_path)
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(CheckpointError, match="checksum"):
            load_checkpoint(path)

    def test_rejects_future_version(self, small_fleet, tmp_path):
        path = interrupted_checkpoint(small_fleet, tmp_path)
        sim = load_checkpoint(path)
        import repro.checkpoint as cp

        old = cp.CHECKPOINT_VERSION
        try:
            cp.CHECKPOINT_VERSION = old + 1
            save_checkpoint(sim, path)
        finally:
            cp.CHECKPOINT_VERSION = old
        with pytest.raises(CheckpointError, match="version"):
            load_checkpoint(path)

    def test_missing_file_is_a_checkpoint_error(self, tmp_path):
        with pytest.raises(CheckpointError, match="not found"):
            load_checkpoint(tmp_path / "nope.ckpt")


class TestFleetResume:
    def assert_resume_matches(self, small_fleet, tmp_path, **kwargs):
        straight = small_fleet(**kwargs)
        path = interrupted_checkpoint(small_fleet, tmp_path, **kwargs)
        resumed = resume_fleet(path)
        assert resumed is not None
        assert resumed.to_summary_json() == straight.to_summary_json()

    def test_plain(self, small_fleet, tmp_path):
        self.assert_resume_matches(small_fleet, tmp_path)

    def test_under_chaos(self, small_fleet, tmp_path):
        # faulty RNG streams are part of the checkpoint; the resumed run
        # must replay the exact same revocations and stragglers
        self.assert_resume_matches(
            small_fleet,
            tmp_path,
            chaos=ChaosSpec(revocation_rate=0.5, straggler_probability=0.2),
        )

    def test_with_invariant_checker(self, small_fleet, tmp_path):
        self.assert_resume_matches(small_fleet, tmp_path, validate=True)

    def test_sharded(self, small_fleet, tmp_path):
        straight = small_fleet()
        path = interrupted_checkpoint(small_fleet, tmp_path, shards=2)
        resumed = resume_fleet(path)
        assert resumed.to_summary_json() == straight.to_summary_json()

    def test_trace_bytes_identical(self, small_fleet, tmp_path):
        straight = tmp_path / "straight.jsonl"
        resumed = tmp_path / "resumed.jsonl"
        small_fleet(trace_path=straight)
        path = interrupted_checkpoint(small_fleet, tmp_path, trace_path=resumed)
        # the interrupted run's sink was closed mid-file; the checkpoint
        # carries a cursor and the resumed sink truncates back to it
        resume_fleet(path)
        assert resumed.read_bytes() == straight.read_bytes()

    def test_resume_can_keep_checkpointing(self, small_fleet, tmp_path):
        # a longer run, so a second checkpoint tick exists after resume
        path = interrupted_checkpoint(small_fleet, tmp_path, every=2, n=6)
        again = tmp_path / "again.ckpt"
        result = resume_fleet(
            path,
            checkpoint_every=1,
            checkpoint_path=again,
            stop_after_checkpoint=True,
        )
        assert result is None and again.exists()
        final = resume_fleet(again)
        assert final.to_summary_json() == small_fleet(n=6).to_summary_json()

    def test_resume_rejects_non_fleet_checkpoint(
        self, tmp_path, two_stage, small_site
    ):
        sim = Simulation(two_stage, small_site, StaticAutoscaler(2), 60.0)
        path = tmp_path / "single.ckpt"
        save_checkpoint(sim, path)
        with pytest.raises(CheckpointError, match="not a fleet run"):
            resume_fleet(path)


class TestSingleRunResume:
    @staticmethod
    def comparable(result) -> dict:
        """Result fields that are deterministic by contract.

        ``controller_cpu_seconds`` is host wall-clock (excluded from
        summaries by design) and ``monitor`` compares by identity.
        """
        fields = dataclasses.asdict(result)
        fields.pop("controller_cpu_seconds", None)
        fields.pop("monitor", None)
        return fields

    def test_resume_matches_straight_through(
        self, tmp_path, two_stage, small_site
    ):
        straight = Simulation(
            two_stage, small_site, StaticAutoscaler(3), 60.0
        ).run()
        sim = Simulation(two_stage, small_site, StaticAutoscaler(3), 60.0)
        path = tmp_path / "single.ckpt"
        interrupted = sim.run(
            checkpoint_every=1,
            checkpoint_path=path,
            stop_after_checkpoint=True,
        )
        assert interrupted is None and path.exists()
        info = read_checkpoint_info(path)
        assert info.kind == "single"
        resumed = load_checkpoint(path).run()
        assert self.comparable(resumed) == self.comparable(straight)
