"""Tests for the baseline pool-sizing policies (§IV-C settings)."""

from __future__ import annotations

import pytest

from repro.autoscalers import (
    OracleAutoscaler,
    PureReactiveAutoscaler,
    ReactiveConservingAutoscaler,
    StaticAutoscaler,
    WireAutoscaler,
    full_site,
)
from repro.engine import Simulation
from repro.workloads import linear_stage_workflow, single_stage_workflow


class TestStatic:
    def test_full_site_uses_whole_site(self, site):
        scaler = full_site(site)
        assert scaler.name == "full-site"
        assert scaler.initial_pool_size(site) == 12

    def test_capped_by_site(self, small_site):
        assert StaticAutoscaler(100).initial_pool_size(small_site) == 4

    def test_never_changes_pool(self, small_site, two_stage):
        result = Simulation(two_stage, small_site, StaticAutoscaler(3), 60.0).run()
        counts = {c for _, c in result.pool_timeline if c > 0}
        assert counts == {3}

    def test_validation(self):
        with pytest.raises(ValueError):
            StaticAutoscaler(0)


class TestPureReactive:
    def test_tracks_load_up(self, small_site):
        wf = single_stage_workflow(8, runtime=200.0)
        result = Simulation(wf, small_site, PureReactiveAutoscaler(), 600.0).run()
        # 8 tasks / 2 slots = 4 instances.
        assert result.peak_instances == 4

    def test_releases_immediately_when_load_drops(self, small_site):
        wf = linear_stage_workflow([(8, 100.0), (1, 200.0)])
        result = Simulation(wf, small_site, PureReactiveAutoscaler(), 3600.0).run()
        assert result.completed
        # After the wide stage, the pool returns to 1 even though the
        # charging unit (1h) has barely started: that is its waste.
        assert result.pool_timeline[-1][1] <= 2
        assert result.wasted_seconds > 0

    def test_completes_diamond(self, small_site, diamond):
        result = Simulation(diamond, small_site, PureReactiveAutoscaler(), 60.0).run()
        assert result.completed


class TestReactiveConserving:
    def test_conserves_paid_time(self, small_site):
        """Unlike pure-reactive it holds instances until their boundary."""
        wf = linear_stage_workflow([(8, 100.0), (1, 200.0)])
        pure = Simulation(
            wf, small_site, PureReactiveAutoscaler(), 3600.0, seed=1
        ).run()
        conserving = Simulation(
            wf, small_site, ReactiveConservingAutoscaler(), 3600.0, seed=1
        ).run()
        assert conserving.completed
        # Conserving never does worse on makespan here (it keeps capacity)
        assert conserving.makespan <= pure.makespan + 1e-6

    def test_no_release_before_boundary_window(self, small_site):
        # u=1h, lag=10s: r_j <= lag almost never holds right after start,
        # so the pool should hold its size for a long time.
        wf = linear_stage_workflow([(8, 50.0), (1, 100.0)])
        result = Simulation(
            wf, small_site, ReactiveConservingAutoscaler(), 3600.0
        ).run()
        sizes = [c for t, c in result.pool_timeline if t < 300.0]
        assert max(sizes) == max(c for _, c in result.pool_timeline)


class TestWireVsBaselines:
    @pytest.mark.parametrize("u", [60.0, 600.0])
    def test_wire_cheapest_on_bursty_workflow(self, small_site, u):
        wf = linear_stage_workflow([(1, 60.0), (12, 150.0), (1, 60.0)])
        results = {}
        for factory in (
            lambda: full_site(small_site),
            PureReactiveAutoscaler,
            ReactiveConservingAutoscaler,
            WireAutoscaler,
        ):
            r = Simulation(wf, small_site, factory(), u, seed=3).run()
            results[r.autoscaler_name] = r
        wire_units = results["wire"].total_units
        assert wire_units <= results["full-site"].total_units
        assert wire_units <= results["reactive-conserving"].total_units + 1

    def test_full_site_fastest(self, small_site):
        wf = linear_stage_workflow([(1, 60.0), (12, 150.0), (1, 60.0)])
        results = {}
        for factory in (lambda: full_site(small_site), WireAutoscaler):
            r = Simulation(wf, small_site, factory(), 60.0, seed=3).run()
            results[r.autoscaler_name] = r
        assert results["full-site"].makespan <= results["wire"].makespan


class TestOracle:
    def test_oracle_runs_and_is_wire_like(self, small_site):
        wf = single_stage_workflow(8, runtime=300.0)
        result = Simulation(wf, small_site, OracleAutoscaler(), 60.0).run()
        assert result.completed
        assert result.autoscaler_name == "oracle"

    def test_oracle_no_worse_than_wire_on_makespan(self, small_site):
        # Perfect prediction should not hurt on a clean deterministic load.
        wf = linear_stage_workflow([(8, 120.0), (8, 120.0)])
        wire = Simulation(wf, small_site, WireAutoscaler(), 60.0, seed=5).run()
        oracle = Simulation(wf, small_site, OracleAutoscaler(), 60.0, seed=5).run()
        assert oracle.makespan <= wire.makespan * 1.25
