"""Tests for the deadline-driven extension policy."""

from __future__ import annotations

import pytest

from repro.autoscalers import DeadlineAutoscaler, full_site
from repro.engine import Simulation
from repro.workloads import linear_stage_workflow, single_stage_workflow


def run(wf, site, deadline, u=60.0, seed=0):
    return Simulation(
        wf, site, DeadlineAutoscaler(deadline), u, seed=seed
    ).run()


class TestDeadlineBehaviour:
    def test_loose_deadline_is_cheap(self, small_site):
        # 16 x 70s tasks (not unit-aligned, so the full site forfeits
        # paid remainder time on every instance).
        wf = single_stage_workflow(16, runtime=70.0)
        loose = run(wf, small_site, deadline=3600.0)
        static = Simulation(wf, small_site, full_site(small_site), 60.0).run()
        assert loose.completed
        assert loose.makespan <= 3600.0
        assert loose.total_units < static.total_units

    def test_tight_deadline_buys_speed(self, small_site):
        wf = single_stage_workflow(16, runtime=60.0)
        tight = run(wf, small_site, deadline=300.0)
        loose = run(wf, small_site, deadline=3600.0)
        assert tight.completed
        assert tight.makespan < loose.makespan
        assert tight.total_units >= loose.total_units

    def test_blown_deadline_goes_full_throttle(self, small_site):
        wf = single_stage_workflow(16, runtime=120.0)
        result = run(wf, small_site, deadline=1.0)
        assert result.completed
        # Escalated to the full site as soon as the controller ran.
        assert result.peak_instances == small_site.max_instances

    def test_meets_feasible_deadlines(self, small_site):
        # Multi-stage workflow; deadline with comfortable slack over the
        # full-site makespan must be met.
        wf = linear_stage_workflow([(8, 60.0), (8, 60.0)])
        static = Simulation(wf, small_site, full_site(small_site), 60.0).run()
        deadline = static.makespan * 3 + 10 * small_site.lag
        result = run(wf, small_site, deadline=deadline)
        assert result.completed
        assert result.makespan <= deadline

    def test_critical_path_escalates(self, small_site):
        # A long serial chain: no pool size can beat the chain, so the
        # policy escalates once C approaches B but still completes.
        wf = linear_stage_workflow([(1, 100.0)] * 4)
        result = run(wf, small_site, deadline=500.0)
        assert result.completed

    def test_single_run_guard(self, small_site, diamond, two_stage):
        controller = DeadlineAutoscaler(1000.0)
        Simulation(diamond, small_site, controller, 60.0).run()
        with pytest.raises(RuntimeError, match="single run"):
            Simulation(two_stage, small_site, controller, 60.0).run()

    def test_validation(self):
        with pytest.raises(Exception):
            DeadlineAutoscaler(0.0)
        with pytest.raises(Exception):
            DeadlineAutoscaler(100.0, critical_path_margin=0.0)

    def test_cost_monotone_in_deadline(self, small_site):
        """The extension's selling point: slack converts to savings."""
        wf = single_stage_workflow(24, runtime=90.0)
        units = [
            run(wf, small_site, deadline=d).total_units
            for d in (400.0, 1200.0, 7200.0)
        ]
        assert units[0] >= units[1] >= units[2]
