"""Engine-level tests for cloud-fault injection (ChaosSpec wiring).

Most scenarios install a *scripted* injector so each fault fires at an
exact, hand-computable time; the real :class:`ChaosInjector` is
exercised by the determinism tests at the bottom and by the property
suite (test_cloud_fault_properties.py).
"""

from __future__ import annotations

import pytest

from repro.cloud.faults import NO_CHAOS, ChaosSpec, RetryPolicy
from repro.engine import ScalingDecision, Simulation
from repro.engine.control import Autoscaler
from repro.workloads import chain_workflow, single_stage_workflow


class ScriptedInjector:
    """ChaosInjector stand-in whose draws are fixed lists, not random.

    Each draw pops the next scripted value; an exhausted list yields the
    benign outcome (no straggler, no revocation, "ok", no blackout).
    """

    def __init__(self, spec, *, stragglers=(), revocations=(), outcomes=(),
                 blackouts=()):
        self.spec = spec
        self._stragglers = list(stragglers)
        self._revocations = list(revocations)
        self._outcomes = list(outcomes)
        self._blackouts = list(blackouts)

    def straggler_factor(self):
        return self._stragglers.pop(0) if self._stragglers else 1.0

    def revocation_delay(self):
        return self._revocations.pop(0) if self._revocations else None

    def provision_outcome(self, now):
        return self._outcomes.pop(0) if self._outcomes else "ok"

    def blackout(self):
        return self._blackouts.pop(0) if self._blackouts else False


#: any enabled spec: the simulator only wires chaos when spec.enabled
ENABLED = ChaosSpec(revocation_rate=1e-9)


def script(sim: Simulation, **draws) -> Simulation:
    """Replace the simulation's injector with a scripted one."""
    assert sim._chaos_injector is not None, "pass an enabled ChaosSpec"
    sim._chaos_injector = ScriptedInjector(sim.chaos, **draws)
    return sim


class GrowOnce(Autoscaler):
    """Launches ``extra`` instances at the first tick, then rests."""

    name = "grow-once"

    def __init__(self, extra: int) -> None:
        self.extra = extra
        self.fired = False

    def initial_pool_size(self, site) -> int:
        return 1

    def plan(self, obs) -> ScalingDecision:
        if self.fired:
            return ScalingDecision()
        self.fired = True
        return ScalingDecision(launch=self.extra)


class Recorder(Autoscaler):
    """Static pool of 1 that records every observation it is handed."""

    name = "recorder"

    def __init__(self) -> None:
        self.seen: list[tuple[float, float, bool]] = []

    def initial_pool_size(self, site) -> int:
        return 1

    def plan(self, obs) -> ScalingDecision:
        self.seen.append((obs.now, obs.window_start, obs.monitor_blackout))
        return ScalingDecision()


class TestRevocation:
    def test_revocation_kills_requeues_and_completes(
        self, small_site, fixed_pool
    ):
        # 4 x 100s tasks fill both 2-slot instances at t=0; the first
        # instance is revoked at t=50, mid-flight.
        wf = single_stage_workflow(4, runtime=100.0)
        sim = script(
            Simulation(wf, small_site, fixed_pool(2), 60.0, chaos=ENABLED),
            revocations=[50.0],
        )
        result = sim.run()
        assert result.completed
        assert result.cloud_faults["revocations"] == 1
        assert result.cloud_faults["revocation_task_kills"] == 2
        assert result.restarts == 2
        # The two killed tasks rerun on the surviving instance once its
        # own tasks finish at t=100.
        assert result.makespan == pytest.approx(200.0)

    def test_billing_stops_at_revocation_boundary(self, small_site, fixed_pool):
        wf = single_stage_workflow(4, runtime=100.0)
        sim = script(
            Simulation(wf, small_site, fixed_pool(2), 60.0, chaos=ENABLED),
            revocations=[50.0],
        )
        result = sim.run()
        revoked = [i for i in sim.pool if i.revoked]
        assert len(revoked) == 1
        assert revoked[0].terminated_at == pytest.approx(50.0)
        assert revoked[0].uptime(result.makespan) == pytest.approx(50.0)
        # ceil(50/60)=1 unit for the revoked instance, ceil(200/60)=4 for
        # the survivor: a non-capped boundary would bill 4+4.
        assert result.total_units == 5

    def test_stale_completion_never_fires(self, small_site, fixed_pool):
        # Regression: the revoked instance's occupants have EXEC/STAGE
        # completion events queued for t=100; revocation at t=50 must
        # cancel them, or the kill would be followed by a ghost
        # completion of a task that no longer occupies any slot.
        wf = single_stage_workflow(4, runtime=100.0)
        sim = script(
            Simulation(wf, small_site, fixed_pool(2), 60.0, chaos=ENABLED),
            revocations=[50.0],
        )
        result = sim.run()
        for task in wf.tasks.values():
            attempts = sim.monitor.attempts(task.task_id)
            completed = [a for a in attempts if a.is_completed]
            assert len(completed) == 1, task.task_id
            # a completed attempt can never also be the killed one
            assert all(not a.is_completed or not a.is_killed for a in attempts)
        assert result.makespan == pytest.approx(200.0)

    def test_planned_release_retracts_revocation(self, small_site, fixed_pool):
        # The instance would be revoked at t=1000, but the run (20s of
        # work) releases everything long before: the revocation must be
        # retracted, not fire on a terminated instance.
        wf = single_stage_workflow(2, runtime=20.0)
        sim = script(
            Simulation(wf, small_site, fixed_pool(1), 60.0, chaos=ENABLED),
            revocations=[1000.0],
        )
        result = sim.run()
        assert result.completed
        assert "revocations" not in result.cloud_faults
        assert not any(i.revoked for i in sim.pool)


class TestProvisioning:
    def test_failure_retries_with_backoff(self, small_site):
        wf = single_stage_workflow(8, runtime=300.0)
        spec = ChaosSpec(
            provision_failure=1e-9,
            retry=RetryPolicy(max_retries=2, backoff=30.0),
        )
        sim = script(
            Simulation(wf, small_site, GrowOnce(1), 60.0, chaos=spec),
            outcomes=["fail"],
        )
        result = sim.run()
        assert result.completed
        assert result.cloud_faults == {
            "provision_failures": 1,
            "provision_retries": 1,
        }
        # tick at t=10 orders the launch; the failure surfaces after the
        # 10s lag at t=20; backoff 30 re-orders at t=50; ready at t=60.
        replacement = [i for i in sim.pool if i.started_at == pytest.approx(60.0)]
        assert len(replacement) == 1
        assert result.peak_instances == 2

    def test_retry_budget_exhausts_to_abandoned(self, small_site):
        wf = single_stage_workflow(8, runtime=300.0)
        spec = ChaosSpec(
            provision_failure=1e-9,
            retry=RetryPolicy(max_retries=2, backoff=30.0),
        )
        sim = script(
            Simulation(wf, small_site, GrowOnce(1), 60.0, chaos=spec),
            outcomes=["fail", "fail", "fail"],
        )
        result = sim.run()
        assert result.completed  # degraded, not dead: pool of 1 finishes
        assert result.cloud_faults == {
            "provision_failures": 3,
            "provision_retries": 2,
            "provision_abandoned": 1,
        }
        assert result.peak_instances == 1

    def test_timeout_delays_readiness_by_factor(self, small_site):
        wf = single_stage_workflow(8, runtime=300.0)
        spec = ChaosSpec(provision_timeout=1e-9, provision_timeout_factor=3.0)
        sim = script(
            Simulation(wf, small_site, GrowOnce(1), 60.0, chaos=spec),
            outcomes=["timeout"],
        )
        result = sim.run()
        assert result.cloud_faults == {"provision_timeouts": 1}
        # ordered at t=10 with 10s lag: nominal ready t=20, delayed to
        # 10 + 10*3 = 40.
        late = [i for i in sim.pool if i.started_at == pytest.approx(40.0)]
        assert len(late) == 1


class TestStragglers:
    def test_straggler_stretches_execution(self, small_site, fixed_pool):
        wf = single_stage_workflow(1, runtime=10.0)
        sim = script(
            Simulation(wf, small_site, fixed_pool(1), 60.0, chaos=ENABLED),
            stragglers=[2.0],
        )
        result = sim.run()
        assert result.cloud_faults == {"stragglers": 1}
        assert result.makespan == pytest.approx(20.0)
        assert [i.slowdown for i in sim.pool] == [2.0]


class TestBlackouts:
    def test_blackout_flag_and_delayed_window(self, small_site):
        wf = chain_workflow(8, runtime=20.0)
        recorder = Recorder()
        sim = script(
            Simulation(wf, small_site, recorder, 60.0, chaos=ENABLED),
            blackouts=[False, True, True, False],
        )
        result = sim.run()
        assert result.cloud_faults["blackouts"] == 2
        # ticks land every 10s; the two starved windows are handed to the
        # first clear tick in one piece: window_start reaches back to the
        # last observed tick (t=10), not the previous tick (t=30).
        assert recorder.seen[0] == (10.0, 0.0, False)
        assert recorder.seen[1] == (20.0, 10.0, True)
        assert recorder.seen[2] == (30.0, 20.0, True)
        assert recorder.seen[3] == (40.0, 10.0, False)
        # once drained, windows return to normal width
        assert recorder.seen[4] == (50.0, 40.0, False)

    def test_blackout_dropped_records_never_reach_back(self, small_site):
        wf = chain_workflow(8, runtime=20.0)
        spec = ChaosSpec(blackout_probability=1e-9, blackout_drops=True)
        recorder = Recorder()
        sim = script(
            Simulation(wf, small_site, recorder, 60.0, chaos=spec),
            blackouts=[False, True, True, False],
        )
        sim.run()
        # dropped mode: the starved windows are lost for good, the first
        # clear tick sees only its own interval.
        assert recorder.seen[3] == (40.0, 30.0, False)


class TestDisabledPath:
    def test_no_chaos_bit_identical(self, two_stage, small_site, fixed_pool):
        from repro.engine import ExponentialTransferModel

        def run(chaos):
            return Simulation(
                two_stage,
                small_site,
                fixed_pool(2),
                60.0,
                transfer_model=ExponentialTransferModel(bandwidth=1e7),
                seed=7,
                chaos=chaos,
            ).run()

        base, none, disabled = run(None), run(NO_CHAOS), run(ChaosSpec())
        for other in (none, disabled):
            assert other.makespan == base.makespan
            assert other.total_cost == base.total_cost
            assert other.total_units == base.total_units
            assert other.restarts == base.restarts
            assert other.cloud_faults == {}


class TestDeterminism:
    SPEC = ChaosSpec(
        revocation_rate=4.0,
        provision_failure=0.3,
        provision_timeout=0.2,
        straggler_probability=0.3,
        blackout_probability=0.3,
    )

    def _run(self, seed, small_site):
        from repro.autoscalers import PureReactiveAutoscaler
        from repro.engine import ExponentialTransferModel

        return Simulation(
            single_stage_workflow(12, runtime=50.0),
            small_site,
            PureReactiveAutoscaler(),
            60.0,
            transfer_model=ExponentialTransferModel(bandwidth=1e7),
            seed=seed,
            chaos=self.SPEC,
        ).run()

    def test_same_seed_same_chaos(self, small_site):
        a, b = self._run(5, small_site), self._run(5, small_site)
        assert a.makespan == b.makespan
        assert a.total_units == b.total_units
        assert a.cloud_faults == b.cloud_faults
        assert a.restarts == b.restarts

    def test_chaos_rng_does_not_perturb_other_streams(self, small_site):
        # The chaos sub-stream is derived by label, not drawn from a
        # shared sequence — so two different enabled specs leave the
        # transfer/runtime draws alone and only fault draws differ.
        a = self._run(5, small_site)
        assert a.cloud_faults  # the aggressive spec actually injected
