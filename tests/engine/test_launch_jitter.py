"""Tests for stochastic launch times (lag as a *maximum* delay)."""

from __future__ import annotations

import pytest

from repro.autoscalers import WireAutoscaler
from repro.engine import Simulation
from repro.workloads import single_stage_workflow


class TestLaunchJitter:
    def test_jitter_never_exceeds_lag(self, small_site):
        wf = single_stage_workflow(16, runtime=200.0)
        sim = Simulation(
            wf, small_site, WireAutoscaler(), 60.0, launch_jitter=1.0, seed=3
        )
        result = sim.run()
        assert result.completed
        for instance in sim.pool:
            if instance.started_at is None or instance.requested_at == 0.0:
                continue
            delay = instance.started_at - instance.requested_at
            assert 0.0 <= delay <= small_site.lag + 1e-9

    def test_jitter_speeds_up_or_matches(self, small_site):
        """Earlier arrivals can only help a growth-bound run."""
        wf = single_stage_workflow(16, runtime=200.0)

        def run(jitter):
            return Simulation(
                wf, small_site, WireAutoscaler(), 60.0,
                launch_jitter=jitter, seed=3,
            ).run()

        worst_case = run(0.0)
        jittered = run(0.9)
        assert jittered.makespan <= worst_case.makespan + 1e-6

    def test_zero_jitter_is_exact_lag(self, small_site):
        wf = single_stage_workflow(8, runtime=200.0)
        sim = Simulation(
            wf, small_site, WireAutoscaler(), 60.0, launch_jitter=0.0, seed=1
        )
        sim.run()
        launched = [
            i for i in sim.pool if i.requested_at > 0 and i.started_at is not None
        ]
        assert launched
        for instance in launched:
            assert instance.started_at - instance.requested_at == pytest.approx(
                small_site.lag
            )

    def test_validation(self, small_site, diamond, fixed_pool):
        with pytest.raises(ValueError, match="launch_jitter"):
            Simulation(
                diamond, small_site, fixed_pool(1), 60.0, launch_jitter=1.5
            )

    def test_deterministic(self, small_site):
        wf = single_stage_workflow(12, runtime=150.0)

        def run():
            return Simulation(
                wf, small_site, WireAutoscaler(), 60.0,
                launch_jitter=0.5, seed=7,
            ).run()

        assert run().makespan == run().makespan
