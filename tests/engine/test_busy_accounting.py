"""Busy-slot accounting audit (satellite of the invariant-checker PR).

``Instance.busy_slot_seconds`` is accumulated by timed ``assign`` /
``release`` pairs on the engine hot path and is the basis for telemetry
idle fractions and fleet cost attribution. These tests pin it against
:func:`repro.validate.occupancy_integral` — the hand-computed occupancy
integral rebuilt from the monitor's attempt record — on every engine
path that vacates slots: normal completion, task-fault kills, and
cloud-fault revocations (the path that historically dropped intervals by
releasing slots without a timestamp).
"""

from __future__ import annotations

import pytest

from repro.autoscalers import PureReactiveAutoscaler, WireAutoscaler
from repro.cloud import exogeni_site
from repro.cloud.faults import parse_chaos_spec
from repro.cloud.instance import Instance, InstanceState
from repro.cloud.site import InstanceType
from repro.engine.faults import RandomFaults
from repro.engine.simulator import Simulation
from repro.experiments.harness import default_transfer_model
from repro.fleet.arrivals import PoissonArrivals
from repro.fleet.autoscalers import fleet_autoscaler
from repro.fleet.engine import FleetSimulation
from repro.fleet.policies import allocation_policy
from repro.validate import occupancy_integral
from repro.workloads import chain_workflow, single_stage_workflow, table1_specs


def _run(workload: str, policy_factory, *, seed: int = 0, **kwargs):
    """Run one single-workflow simulation, returning (sim, result)."""
    workflow = table1_specs()[workload].generate(seed)
    sim = Simulation(
        workflow,
        exogeni_site(),
        policy_factory(),
        60.0,
        transfer_model=default_transfer_model(),
        seed=seed,
        **kwargs,
    )
    return sim, sim.run()


def _assert_busy_matches_integral(sim, makespan: float) -> None:
    """Every instance's accumulator equals its attempt-record integral."""
    for instance in sim.pool:
        expected = occupancy_integral(sim.monitor, instance.instance_id, makespan)
        assert instance.busy_slot_seconds == pytest.approx(
            expected, abs=1e-6
        ), (
            f"instance {instance.instance_id} accrued "
            f"{instance.busy_slot_seconds} busy slot-seconds but the "
            f"attempt record integrates to {expected}"
        )


class TestSingleEngine:
    def test_clean_run(self):
        sim, result = _run("tpch6-S", WireAutoscaler)
        assert result.completed
        _assert_busy_matches_integral(sim, result.makespan)
        # the run actually occupied slots
        assert sum(i.busy_slot_seconds for i in sim.pool) > 0.0

    def test_task_fault_kill_path(self):
        sim, result = _run(
            "genome-S",
            WireAutoscaler,
            seed=3,
            fault_model=RandomFaults(probability=0.1, max_attempt=5),
        )
        assert result.completed
        killed = [a for a in sim.monitor.all_attempts() if a.is_killed]
        assert killed, "fault model injected no kills; test exercises nothing"
        _assert_busy_matches_integral(sim, result.makespan)

    def test_revocation_path(self):
        sim, result = _run(
            "tpch6-S",
            PureReactiveAutoscaler,
            seed=1,
            chaos=parse_chaos_spec("revocations=8,stragglers=0.2"),
        )
        assert result.completed
        revoked = [i for i in sim.pool if i.revoked]
        assert revoked, "chaos injected no revocations; pick another seed"
        _assert_busy_matches_integral(sim, result.makespan)

    def test_restart_occupancy_counts_both_attempts(self):
        sim, result = _run(
            "tpch6-S",
            PureReactiveAutoscaler,
            seed=1,
            chaos=parse_chaos_spec("revocations=8,stragglers=0.2"),
        )
        assert result.restarts > 0
        # a restarted task's killed attempt and its completing attempt
        # both contribute occupancy — the totals must still reconcile
        total = sum(i.busy_slot_seconds for i in sim.pool)
        integral = sum(
            a.occupancy_elapsed(result.makespan)
            for a in sim.monitor.all_attempts()
        )
        assert total == pytest.approx(integral, abs=1e-6)


class TestFleetEngine:
    def _run_fleet(self, *, seed: int = 1, chaos=None):
        catalog = {
            "wide": lambda seed: single_stage_workflow(6, 120.0),
            "deep": lambda seed: chain_workflow(4, 60.0),
        }
        submissions = PoissonArrivals(12.0, 3, ("wide", "deep")).generate(seed)
        sim = FleetSimulation(
            submissions,
            catalog,
            exogeni_site(),
            fleet_autoscaler("global-wire"),
            allocation_policy("fair-share"),
            900.0,
            seed=seed,
            chaos=chaos,
        )
        return sim, sim.run()

    def test_tenant_busy_shares_sum_to_instance_accumulator(self):
        sim, result = self._run_fleet()
        assert result.completed
        per_instance: dict[str, float] = {}
        for (iid, _), busy in sim._tenant_busy.items():
            per_instance[iid] = per_instance.get(iid, 0.0) + busy
        for instance in sim.pool:
            assert per_instance.get(
                instance.instance_id, 0.0
            ) == pytest.approx(instance.busy_slot_seconds, abs=1e-6)

    def test_tenant_busy_shares_under_revocation(self):
        sim, result = self._run_fleet(
            seed=2, chaos=parse_chaos_spec("revocations=8,stragglers=0.2")
        )
        assert any(i.revoked for i in sim.pool), (
            "chaos injected no revocations; pick another seed"
        )
        per_instance: dict[str, float] = {}
        for (iid, _), busy in sim._tenant_busy.items():
            per_instance[iid] = per_instance.get(iid, 0.0) + busy
        for instance in sim.pool:
            assert per_instance.get(
                instance.instance_id, 0.0
            ) == pytest.approx(instance.busy_slot_seconds, abs=1e-6)

    def test_tenant_busy_matches_monitor_integral(self):
        sim, result = self._run_fleet()
        for tenant in sim.tenants:
            integral = sum(
                a.occupancy_elapsed(result.makespan)
                for a in tenant.monitor.all_attempts()
            )
            share = sum(
                busy
                for (_, idx), busy in sim._tenant_busy.items()
                if idx == tenant.index
            )
            assert share == pytest.approx(integral, abs=1e-6)


class TestInstanceAccounting:
    """Unit-level: the timed assign/release contract on a bare Instance."""

    def _instance(self) -> Instance:
        itype = InstanceType(name="t", slots=2)
        inst = Instance("i-0", itype, requested_at=0.0)
        inst.mark_running(0.0)
        return inst

    def test_timed_pair_accrues_interval(self):
        inst = self._instance()
        inst.assign("a", 10.0)
        inst.release("a", 25.0)
        assert inst.busy_slot_seconds == pytest.approx(15.0)
        assert inst._assign_times == {}

    def test_untimed_assign_accrues_nothing(self):
        # untimed pairs are the documented standalone-test escape hatch:
        # no timestamp, no accrual — and no stale entry left behind
        inst = self._instance()
        inst.assign("a")
        inst.release("a", 25.0)
        assert inst.busy_slot_seconds == 0.0
        assert inst._assign_times == {}

    def test_occupants_and_assign_times_stay_in_lockstep(self):
        inst = self._instance()
        inst.assign("a", 1.0)
        inst.assign("b", 2.0)
        assert set(inst.occupants) == set(inst._assign_times)
        inst.release("a", 3.0)
        assert set(inst.occupants) == set(inst._assign_times) == {"b"}

    def test_concurrent_occupants_sum(self):
        inst = self._instance()
        inst.assign("a", 0.0)
        inst.assign("b", 5.0)
        inst.release("a", 10.0)
        inst.release("b", 10.0)
        assert inst.busy_slot_seconds == pytest.approx(10.0 + 5.0)
        assert inst.state is InstanceState.RUNNING
