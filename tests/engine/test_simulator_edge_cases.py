"""Edge-case tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.dag import Task, Workflow, WorkflowBuilder
from repro.engine import ScalingDecision, Simulation
from repro.engine.control import Autoscaler
from repro.autoscalers import WireAutoscaler
from repro.workloads import single_stage_workflow


class TestDegenerateWorkflows:
    def test_single_task(self, small_site, fixed_pool):
        wf = Workflow("one", [Task("only", "x", runtime=5.0)])
        result = Simulation(wf, small_site, fixed_pool(1), 60.0).run()
        assert result.completed
        assert result.makespan == pytest.approx(5.0)
        assert result.total_units == 1

    def test_zero_runtime_task(self, small_site, fixed_pool):
        wf = Workflow("zero", [Task("noop", "x", runtime=0.0)])
        result = Simulation(wf, small_site, fixed_pool(1), 60.0).run()
        assert result.completed
        assert result.makespan == 0.0
        assert result.total_units == 1  # starting an instance costs a unit

    def test_chain_of_zero_runtime_tasks(self, small_site, fixed_pool):
        builder = WorkflowBuilder("zeros")
        previous: list[str] = []
        for i in range(10):
            tid = builder.add_task(
                Task(f"z{i}", f"z{i}", runtime=0.0), parents=previous
            )
            previous = [tid]
        result = Simulation(builder.build(), small_site, fixed_pool(1), 60.0).run()
        assert result.completed
        assert result.makespan == 0.0

    def test_single_task_under_wire(self, small_site):
        wf = Workflow("one", [Task("only", "x", runtime=500.0)])
        result = Simulation(wf, small_site, WireAutoscaler(), 60.0).run()
        assert result.completed
        assert result.peak_instances == 1


class TestBillingEdges:
    def test_charging_unit_longer_than_run(self, small_site, fixed_pool):
        wf = single_stage_workflow(4, runtime=10.0)
        result = Simulation(wf, small_site, fixed_pool(2), 86_400.0).run()
        assert result.total_units == 2  # one giant unit per instance

    def test_makespan_exactly_at_boundary(self, small_site, fixed_pool):
        wf = single_stage_workflow(2, runtime=60.0)
        result = Simulation(wf, small_site, fixed_pool(1), 60.0).run()
        # Two tasks in parallel on a 2-slot instance: exactly one unit.
        assert result.makespan == pytest.approx(60.0)
        assert result.total_units == 1


class TestControllerEdges:
    def test_pending_instance_at_run_end_costs_nothing(self, small_site):
        class LateLauncher(Autoscaler):
            name = "late"

            def plan(self, obs):
                # Order an instance that can never arrive before the end.
                if obs.now < 15.0:
                    return ScalingDecision(launch=1)
                return ScalingDecision()

        wf = single_stage_workflow(2, runtime=12.0)
        result = Simulation(wf, small_site, LateLauncher(), 60.0).run()
        assert result.completed
        # The pending instance never started: only the initial one billed.
        assert result.total_units == 1

    def test_duplicate_termination_orders_ignored(self, small_site):
        from repro.engine import TerminationOrder

        class DoubleKiller(Autoscaler):
            name = "double"

            def initial_pool_size(self, site):
                return 2

            def plan(self, obs):
                victims = obs.steerable_instances()
                if len(victims) < 2:
                    return ScalingDecision()
                target = victims[-1].instance_id
                return ScalingDecision(
                    terminations=(
                        TerminationOrder(target, obs.now + 1.0),
                        TerminationOrder(target, obs.now + 2.0),
                    )
                )

        wf = single_stage_workflow(6, runtime=40.0)
        result = Simulation(wf, small_site, DoubleKiller(), 600.0).run()
        assert result.completed

    def test_termination_time_in_past_clamped(self, small_site):
        from repro.engine import TerminationOrder

        class PastKiller(Autoscaler):
            name = "past"

            def initial_pool_size(self, site):
                return 2

            def __init__(self):
                self.fired = False

            def plan(self, obs):
                if self.fired:
                    return ScalingDecision()
                self.fired = True
                victim = obs.steerable_instances()[-1].instance_id
                return ScalingDecision(
                    terminations=(TerminationOrder(victim, obs.now - 50.0),)
                )

        wf = single_stage_workflow(6, runtime=40.0)
        result = Simulation(wf, small_site, PastKiller(), 600.0).run()
        assert result.completed

    def test_launch_beyond_capacity_truncated(self, small_site):
        class Greedy(Autoscaler):
            name = "greedy"

            def plan(self, obs):
                return ScalingDecision(launch=100)

        wf = single_stage_workflow(20, runtime=60.0)
        result = Simulation(wf, small_site, Greedy(), 600.0).run()
        assert result.completed
        assert result.peak_instances <= small_site.max_instances


class TestValidation:
    def test_bad_charging_unit(self, diamond, small_site, fixed_pool):
        with pytest.raises(Exception):
            Simulation(diamond, small_site, fixed_pool(1), 0.0)

    def test_bad_period(self, diamond, small_site, fixed_pool):
        with pytest.raises(Exception):
            Simulation(
                diamond, small_site, fixed_pool(1), 60.0, controller_period=0.0
            )
