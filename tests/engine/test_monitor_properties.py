"""Property-based tests: monitoring records are internally consistent
for any engine run over random DAGs, policies, noise, and faults."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autoscalers import PureReactiveAutoscaler, WireAutoscaler
from repro.cloud import CloudSite, InstanceType
from repro.engine import (
    ExponentialTransferModel,
    PerturbedRuntimeModel,
    RandomFaults,
    Simulation,
)
from repro.workloads import random_layered_workflow


@given(
    seed=st.integers(min_value=0, max_value=400),
    policy=st.sampled_from([PureReactiveAutoscaler, WireAutoscaler]),
    fault_p=st.sampled_from([0.0, 0.3]),
)
@settings(max_examples=25, deadline=None)
def test_monitoring_consistency(seed, policy, fault_p):
    wf = random_layered_workflow(seed, n_layers=3, max_width=4, max_runtime=50.0)
    site = CloudSite(
        name="mon", itype=InstanceType("m", slots=2), max_instances=3, lag=20.0
    )
    result = Simulation(
        wf,
        site,
        policy(),
        120.0,
        transfer_model=ExponentialTransferModel(bandwidth=1e8),
        runtime_model=PerturbedRuntimeModel(cv=0.2),
        fault_model=RandomFaults(probability=fault_p, max_attempt=3),
        seed=seed,
    ).run()
    assert result.completed
    monitor = result.monitor

    for tid in wf.tasks:
        attempts = monitor.attempts(tid)
        assert attempts, f"{tid} never dispatched"

        # Attempt numbering is dense and ordered.
        assert [a.attempt for a in attempts] == list(range(1, len(attempts) + 1))

        # Exactly the final attempt completes; earlier ones were killed.
        assert attempts[-1].is_completed
        for earlier in attempts[:-1]:
            assert earlier.is_killed and not earlier.is_completed

        # Phase timestamps are monotone within every attempt.
        for a in attempts:
            timeline = [a.dispatch_time]
            for value in (a.exec_start, a.exec_end, a.complete_time, a.killed_at):
                if value is not None:
                    timeline.append(value)
            assert timeline == sorted(timeline)

        # Derived durations are non-negative.
        final = attempts[-1]
        assert final.stage_in_time >= 0.0
        assert final.execution_time >= 0.0
        assert final.stage_out_time >= 0.0

        # Attempts don't overlap in time.
        for a, b in zip(attempts, attempts[1:]):
            a_end = a.killed_at if a.killed_at is not None else a.complete_time
            assert a_end is not None and a_end <= b.dispatch_time + 1e-9

    # Aggregates agree with per-attempt facts.
    assert result.restarts == sum(
        len(monitor.attempts(t)) - 1 for t in wf.tasks
    )
    assert monitor.total_failures() <= result.restarts

    # Transfer-window queries over the whole run see every finished
    # transfer: 2 per completed attempt (stage-in + stage-out).
    completed_attempts = sum(
        1 for a in monitor.all_attempts() if a.is_completed
    )
    in_flight_transfers = monitor.transfer_times_between(-1.0, result.makespan + 1)
    assert len(in_flight_transfers) >= completed_attempts  # >= stage-ins
