"""Property-based tests: engine invariants over random DAGs and policies."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud import CloudSite, InstanceType
from repro.engine import (
    ExponentialTransferModel,
    PerturbedRuntimeModel,
    Simulation,
)
from repro.autoscalers import (
    PureReactiveAutoscaler,
    ReactiveConservingAutoscaler,
    WireAutoscaler,
)
from repro.dag import critical_path_length
from repro.workloads import random_layered_workflow


def small_site(slots: int, max_instances: int) -> CloudSite:
    return CloudSite(
        name="prop",
        itype=InstanceType(name="p", slots=slots),
        max_instances=max_instances,
        lag=15.0,
    )


policy_strategy = st.sampled_from(
    [PureReactiveAutoscaler, ReactiveConservingAutoscaler, WireAutoscaler]
)


@given(
    seed=st.integers(min_value=0, max_value=500),
    slots=st.integers(min_value=1, max_value=4),
    max_instances=st.integers(min_value=1, max_value=6),
    policy=policy_strategy,
    charging_unit=st.sampled_from([30.0, 60.0, 300.0]),
)
@settings(max_examples=30, deadline=None)
def test_every_run_completes_and_obeys_invariants(
    seed, slots, max_instances, policy, charging_unit
):
    wf = random_layered_workflow(seed, n_layers=4, max_width=5, max_runtime=40.0)
    site = small_site(slots, max_instances)
    result = Simulation(
        wf,
        site,
        policy(),
        charging_unit,
        transfer_model=ExponentialTransferModel(bandwidth=1e8),
        runtime_model=PerturbedRuntimeModel(cv=0.1),
        seed=seed,
    ).run()

    # Completion: every task ran to completion exactly once at the end.
    assert result.completed
    for tid in wf.tasks:
        attempts = result.monitor.attempts(tid)
        assert attempts, f"task {tid} never dispatched"
        assert attempts[-1].is_completed
        assert all(a.is_killed for a in attempts[:-1])

    # Physics: makespan can't beat the critical path (transfers only add).
    assert result.makespan >= critical_path_length(wf) * 0.9 / 1.0 - 1e-6

    # Capacity: never more instances than the site allows.
    assert result.peak_instances <= max_instances

    # Billing: cost is positive and utilization is a valid fraction.
    assert result.total_units >= 1
    assert 0.0 <= result.utilization <= 1.0

    # Dependencies: children never start before all parents complete.
    completion = {
        tid: result.monitor.attempts(tid)[-1].complete_time for tid in wf.tasks
    }
    for tid in wf.tasks:
        final = result.monitor.attempts(tid)[-1]
        for parent in wf.parents(tid):
            assert completion[parent] is not None
            assert final.dispatch_time >= completion[parent] - 1e-9


@given(seed=st.integers(min_value=0, max_value=200))
@settings(max_examples=15, deadline=None)
def test_wire_cost_never_exceeds_full_site(seed):
    """WIRE's whole point: it should not cost more than static-peak."""
    from repro.autoscalers import full_site

    wf = random_layered_workflow(seed, n_layers=4, max_width=6, max_runtime=60.0)
    site = small_site(slots=2, max_instances=4)
    results = {}
    for factory in (lambda: full_site(site), WireAutoscaler):
        results[factory().name if callable(factory) else "x"] = Simulation(
            wf, site, factory(), 300.0, seed=seed
        ).run()
    wire = results["wire"]
    static = results["full-site"]
    assert wire.total_units <= static.total_units
