"""Property-based invariants of runs under cloud-fault injection.

Seeded hypothesis sweeps over ChaosSpec parameters assert the
graceful-degradation contract: chaos may slow a run down or make it more
expensive, but it must never lose a task, bill past a revocation
boundary, or wedge the pool once provisioning failures stop.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autoscalers import PureReactiveAutoscaler, WireAutoscaler
from repro.cloud import CloudSite, InstanceType
from repro.cloud.faults import ChaosSpec, RetryPolicy
from repro.engine import ExponentialTransferModel, Simulation
from repro.workloads import random_layered_workflow, single_stage_workflow


def prop_site(max_instances: int) -> CloudSite:
    return CloudSite(
        name="chaos-prop",
        itype=InstanceType(name="p", slots=2),
        max_instances=max_instances,
        lag=10.0,
    )


chaos_strategy = st.builds(
    ChaosSpec,
    revocation_rate=st.floats(min_value=0.0, max_value=6.0),
    provision_failure=st.floats(min_value=0.0, max_value=0.4),
    provision_timeout=st.floats(min_value=0.0, max_value=0.4),
    straggler_probability=st.floats(min_value=0.0, max_value=0.5),
    blackout_probability=st.floats(min_value=0.0, max_value=0.5),
    blackout_drops=st.booleans(),
)


@given(
    seed=st.integers(min_value=0, max_value=300),
    spec=chaos_strategy,
    max_instances=st.integers(min_value=2, max_value=6),
    policy=st.sampled_from([PureReactiveAutoscaler, WireAutoscaler]),
)
@settings(max_examples=25, deadline=None)
def test_no_task_is_ever_lost(seed, spec, max_instances, policy):
    """Every task is completed exactly once, however much chaos hit it."""
    wf = random_layered_workflow(seed, n_layers=3, max_width=4, max_runtime=30.0)
    sim = Simulation(
        wf,
        prop_site(max_instances),
        policy(),
        60.0,
        transfer_model=ExponentialTransferModel(bandwidth=1e8),
        seed=seed,
        max_time=5e4,
        chaos=spec,
    )
    result = sim.run()
    for task_id in wf.tasks:
        attempts = sim.monitor.attempts(task_id)
        completed = [a for a in attempts if a.is_completed]
        # never completed twice; a kill always led to a requeue, so on a
        # completed run every task ran to completion exactly once
        assert len(completed) <= 1, task_id
        if result.completed:
            assert len(completed) == 1, task_id
    if result.completed:
        assert result.restarts == sum(
            1
            for task_id in wf.tasks
            for a in sim.monitor.attempts(task_id)
            if a.is_killed
        )


@given(
    seed=st.integers(min_value=0, max_value=300),
    rate=st.floats(min_value=1.0, max_value=8.0),
    max_instances=st.integers(min_value=2, max_value=6),
)
@settings(max_examples=25, deadline=None)
def test_billing_never_counts_past_revocation(seed, rate, max_instances):
    """A revoked instance's billable uptime is frozen at the boundary."""
    wf = single_stage_workflow(10, runtime=60.0)
    sim = Simulation(
        wf,
        prop_site(max_instances),
        PureReactiveAutoscaler(),
        60.0,
        seed=seed,
        max_time=5e4,
        chaos=ChaosSpec(revocation_rate=rate),
    )
    result = sim.run()
    horizon = max(result.makespan, 1.0)
    for instance in sim.pool:
        if not instance.revoked:
            continue
        assert instance.terminated_at is not None
        boundary = instance.terminated_at
        # uptime is capped at the boundary and never grows afterwards
        assert instance.uptime(horizon) == instance.uptime(boundary)
        assert instance.uptime(horizon + 1e6) == instance.uptime(boundary)


@given(
    seed=st.integers(min_value=0, max_value=300),
    until=st.floats(min_value=50.0, max_value=300.0),
)
@settings(max_examples=20, deadline=None)
def test_pool_recovers_once_provisioning_failures_stop(seed, until):
    """With failures confined to [0, until), steering still converges:
    retries/backoff plus later MAPE launches rebuild capacity and the
    workflow completes."""
    wf = single_stage_workflow(12, runtime=120.0)
    sim = Simulation(
        wf,
        prop_site(4),
        PureReactiveAutoscaler(),
        60.0,
        seed=seed,
        max_time=1e5,
        chaos=ChaosSpec(
            provision_failure=1.0,
            provision_failure_until=until,
            retry=RetryPolicy(max_retries=4, backoff=20.0),
        ),
    )
    result = sim.run()
    assert result.completed
    # capacity was actually rebuilt after the failure window
    assert any(
        i.started_at is not None and i.started_at > until for i in sim.pool
    ) or result.makespan <= until
