"""Tests for the drift-modelling scheduler variants (§III-D)."""

from __future__ import annotations

import pytest

from repro.engine import (
    FifoScheduler,
    LifoScheduler,
    RandomScheduler,
    Simulation,
)
from repro.autoscalers import WireAutoscaler
from repro.workloads import single_stage_workflow


class TestLifo:
    def test_pops_newest_first(self):
        s = LifoScheduler(boost_k=0)
        for i in range(3):
            s.push(f"t{i}", "stage")
        assert [s.pop() for _ in range(3)] == ["t2", "t1", "t0"]

    def test_boost_class_still_wins(self):
        s = LifoScheduler(boost_k=1)
        s.push("boosted", "A")  # A's boost slot
        s.push("x1", "A")
        s.push("x2", "A")
        assert s.pop() == "boosted"
        assert s.pop() == "x2"

    def test_requeue_no_duplicates(self):
        s = LifoScheduler(boost_k=0)
        s.push("a", "A")
        s.push("b", "A")
        assert s.pop() == "b"
        s.push("b", "A", requeue=True)
        popped = [s.pop(), s.pop()]
        assert sorted(p for p in popped if p) == ["a", "b"]
        assert s.pop() is None

    def test_snapshot_stays_fifo(self):
        s = LifoScheduler(boost_k=0)
        for i in range(3):
            s.push(f"t{i}", "stage")
        assert s.snapshot() == ("t0", "t1", "t2")  # the controller's belief


class TestRandom:
    def test_deterministic_per_seed(self):
        def drain(seed):
            s = RandomScheduler(boost_k=0, seed=seed)
            for i in range(10):
                s.push(f"t{i}", "stage")
            return [s.pop() for _ in range(10)]

        assert drain(1) == drain(1)
        assert drain(1) != drain(2)

    def test_pops_every_task_exactly_once(self):
        s = RandomScheduler(boost_k=0, seed=3)
        for i in range(20):
            s.push(f"t{i}", "stage")
        popped = [s.pop() for _ in range(20)]
        assert sorted(popped) == sorted(f"t{i}" for i in range(20))
        assert s.pop() is None

    def test_len_consistent(self):
        s = RandomScheduler(boost_k=0, seed=0)
        s.push("a", "A")
        s.push("b", "A")
        s.pop()
        assert len(s) == 1


class TestDriftTolerance:
    """§III-D's claim: scheduling drift barely affects WIRE."""

    @pytest.mark.parametrize(
        "scheduler_factory",
        [
            lambda: FifoScheduler(),
            lambda: LifoScheduler(),
            lambda: RandomScheduler(seed=5),
        ],
    )
    def test_wire_completes_under_any_scheduler(
        self, scheduler_factory, small_site
    ):
        wf = single_stage_workflow(16, runtime=120.0)
        result = Simulation(
            wf,
            small_site,
            WireAutoscaler(),
            60.0,
            scheduler=scheduler_factory(),
            seed=1,
        ).run()
        assert result.completed

    def test_drift_effect_is_minor_on_cost(self, small_site):
        wf = single_stage_workflow(24, runtime=90.0)
        units = {}
        for name, sched in (
            ("fifo", FifoScheduler()),
            ("lifo", LifoScheduler()),
            ("random", RandomScheduler(seed=9)),
        ):
            units[name] = Simulation(
                wf, small_site, WireAutoscaler(), 60.0, scheduler=sched, seed=2
            ).run().total_units
        spread = max(units.values()) / min(units.values())
        assert spread <= 1.25, units
