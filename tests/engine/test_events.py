"""Tests for the discrete-event queue."""

from __future__ import annotations

import pytest

from repro.engine import EventKind, EventQueue


class TestOrdering:
    def test_pops_by_time(self):
        q = EventQueue()
        q.push(5.0, EventKind.EXEC_DONE, "b")
        q.push(1.0, EventKind.EXEC_DONE, "a")
        assert q.pop().payload == "a"
        assert q.pop().payload == "b"

    def test_ties_broken_by_insertion_order(self):
        q = EventQueue()
        q.push(1.0, EventKind.EXEC_DONE, "first")
        q.push(1.0, EventKind.EXEC_DONE, "second")
        assert q.pop().payload == "first"
        assert q.pop().payload == "second"

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(3.0, EventKind.CONTROLLER_TICK)
        assert q.peek_time() == 3.0

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_negative_time_rejected(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            q.push(-1.0, EventKind.EXEC_DONE, "x")


class TestCancellation:
    def test_cancelled_event_skipped(self):
        q = EventQueue()
        keep = q.push(1.0, EventKind.EXEC_DONE, "keep")
        drop = q.push(0.5, EventKind.EXEC_DONE, "drop")
        q.cancel(drop)
        assert q.pop().payload == "keep"

    def test_len_accounts_for_cancellation(self):
        q = EventQueue()
        e = q.push(1.0, EventKind.EXEC_DONE)
        assert len(q) == 1
        q.cancel(e)
        assert len(q) == 0
        assert not q

    def test_peek_skips_cancelled(self):
        q = EventQueue()
        e = q.push(1.0, EventKind.EXEC_DONE)
        q.push(2.0, EventKind.EXEC_DONE)
        q.cancel(e)
        assert q.peek_time() == 2.0

    def test_bool(self):
        q = EventQueue()
        assert not q
        q.push(1.0, EventKind.EXEC_DONE)
        assert q
