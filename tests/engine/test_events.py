"""Tests for the discrete-event queue."""

from __future__ import annotations

import pytest

from repro.engine import EventKind, EventQueue


class TestOrdering:
    def test_pops_by_time(self):
        q = EventQueue()
        q.push(5.0, EventKind.EXEC_DONE, "b")
        q.push(1.0, EventKind.EXEC_DONE, "a")
        assert q.pop().payload == "a"
        assert q.pop().payload == "b"

    def test_ties_broken_by_insertion_order(self):
        q = EventQueue()
        q.push(1.0, EventKind.EXEC_DONE, "first")
        q.push(1.0, EventKind.EXEC_DONE, "second")
        assert q.pop().payload == "first"
        assert q.pop().payload == "second"

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(3.0, EventKind.CONTROLLER_TICK)
        assert q.peek_time() == 3.0

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_negative_time_rejected(self):
        q = EventQueue()
        with pytest.raises(ValueError):
            q.push(-1.0, EventKind.EXEC_DONE, "x")


class TestCancellation:
    def test_cancelled_event_skipped(self):
        q = EventQueue()
        keep = q.push(1.0, EventKind.EXEC_DONE, "keep")
        drop = q.push(0.5, EventKind.EXEC_DONE, "drop")
        q.cancel(drop)
        assert q.pop().payload == "keep"

    def test_len_accounts_for_cancellation(self):
        q = EventQueue()
        e = q.push(1.0, EventKind.EXEC_DONE)
        assert len(q) == 1
        q.cancel(e)
        assert len(q) == 0
        assert not q

    def test_peek_skips_cancelled(self):
        q = EventQueue()
        e = q.push(1.0, EventKind.EXEC_DONE)
        q.push(2.0, EventKind.EXEC_DONE)
        q.cancel(e)
        assert q.peek_time() == 2.0

    def test_bool(self):
        q = EventQueue()
        assert not q
        q.push(1.0, EventKind.EXEC_DONE)
        assert q


class TestCancellationBookkeeping:
    """Regression: cancel() must be idempotent against popped and
    double-cancelled seqs — the historical implementation grew its
    cancelled set unboundedly and corrupted ``len()`` in those cases."""

    def test_cancel_after_pop_is_a_noop(self):
        q = EventQueue()
        e = q.push(1.0, EventKind.EXEC_DONE, "x")
        q.push(2.0, EventKind.EXEC_DONE, "y")
        assert q.pop() is e
        q.cancel(e)  # already popped: must not affect the live event
        assert len(q) == 1
        assert q.pop().payload == "y"
        assert len(q) == 0

    def test_double_cancel_counts_once(self):
        q = EventQueue()
        e = q.push(1.0, EventKind.EXEC_DONE)
        q.push(2.0, EventKind.EXEC_DONE)
        q.cancel(e)
        q.cancel(e)
        assert len(q) == 1
        assert q.pop().time == 2.0
        assert not q

    def test_cancel_then_pop_then_cancel_again(self):
        q = EventQueue()
        e = q.push(1.0, EventKind.EXEC_DONE)
        live = q.push(2.0, EventKind.EXEC_DONE)
        q.cancel(e)
        assert q.pop() is live
        q.cancel(e)  # seq long gone
        assert len(q) == 0
        with pytest.raises(IndexError):
            q.pop()

    def test_len_never_negative_under_mixed_ops(self):
        q = EventQueue()
        events = [q.push(float(i), EventKind.EXEC_DONE) for i in range(10)]
        for e in events[:5]:
            q.cancel(e)
            q.cancel(e)
        for e in events[:3]:
            q.cancel(e)
        assert len(q) == 5
        popped = [q.pop() for _ in range(5)]
        assert [e.time for e in popped] == [5.0, 6.0, 7.0, 8.0, 9.0]
        for e in popped:
            q.cancel(e)
        assert len(q) == 0
        assert not q


class TestCancelForPayload:
    """The payload index behind O(per-instance) chaos cancellation."""

    def test_cancels_every_event_with_payload(self):
        q = EventQueue()
        q.push(1.0, EventKind.EXEC_DONE, "i-0")
        q.push(2.0, EventKind.STAGE_OUT_DONE, "i-0")
        survivor = q.push(3.0, EventKind.EXEC_DONE, "i-1")
        assert q.cancel_for_payload("i-0") == 2
        assert len(q) == 1
        assert q.pop() is survivor

    def test_kind_filter_only_hits_matching_kind(self):
        q = EventQueue()
        terminate = q.push(5.0, EventKind.INSTANCE_TERMINATE, "i-0")
        q.push(6.0, EventKind.INSTANCE_REVOKED, "i-0")
        assert q.cancel_for_payload("i-0", kind=EventKind.INSTANCE_REVOKED) == 1
        assert len(q) == 1
        assert q.pop() is terminate

    def test_unknown_payload_is_a_noop(self):
        q = EventQueue()
        q.push(1.0, EventKind.EXEC_DONE, "i-0")
        assert q.cancel_for_payload("never-seen") == 0
        assert len(q) == 1

    def test_popped_events_leave_the_index(self):
        q = EventQueue()
        q.push(1.0, EventKind.EXEC_DONE, "i-0")
        q.push(2.0, EventKind.EXEC_DONE, "i-0")
        q.pop()
        assert q.cancel_for_payload("i-0") == 1
        assert len(q) == 0

    def test_cancelled_events_leave_the_index(self):
        q = EventQueue()
        e = q.push(1.0, EventKind.EXEC_DONE, "i-0")
        q.push(2.0, EventKind.EXEC_DONE, "i-0")
        q.cancel(e)
        assert q.cancel_for_payload("i-0") == 1
        assert len(q) == 0

    def test_unhashable_payload_still_queues(self):
        # list payloads can't be indexed, but push/pop must still work
        q = EventQueue()
        q.push(1.0, EventKind.EXEC_DONE, ["not", "hashable"])
        assert q.pop().payload == ["not", "hashable"]

    def test_reused_payload_after_cancel_for_payload(self):
        q = EventQueue()
        q.push(1.0, EventKind.EXEC_DONE, "i-0")
        q.cancel_for_payload("i-0")
        q.push(2.0, EventKind.EXEC_DONE, "i-0")
        assert q.cancel_for_payload("i-0") == 1
        assert len(q) == 0
