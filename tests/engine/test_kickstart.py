"""Tests for kickstart records and HTCondor-style log round-tripping."""

from __future__ import annotations

import json

import pytest

from repro.engine import Simulation
from repro.engine.kickstart import (
    CondorEvent,
    kickstart_json,
    kickstart_records,
    parse_condor_log,
    rebuild_monitor,
    write_condor_log,
)


@pytest.fixture
def finished_run(two_stage, small_site, fixed_pool):
    result = Simulation(two_stage, small_site, fixed_pool(2), 60.0).run()
    return two_stage, result


class TestKickstartRecords:
    def test_one_record_per_attempt(self, finished_run):
        wf, result = finished_run
        records = kickstart_records(result.monitor)
        assert len(records) == len(wf)  # no restarts in this run
        assert all(r["status"] == 0 for r in records)

    def test_record_fields(self, finished_run):
        wf, result = finished_run
        record = kickstart_records(result.monitor)[0]
        for field in (
            "transformation",
            "derivation",
            "resource",
            "dispatch",
            "exec_duration",
            "input_bytes",
            "status",
        ):
            assert field in record

    def test_durations_match_monitor(self, finished_run):
        wf, result = finished_run
        for record in kickstart_records(result.monitor):
            attempt = result.monitor.current_attempt(record["transformation"])
            assert record["exec_duration"] == pytest.approx(
                attempt.execution_time
            )

    def test_json_serializable(self, finished_run):
        _, result = finished_run
        parsed = json.loads(kickstart_json(result.monitor))
        assert isinstance(parsed, list) and parsed

    def test_killed_attempt_status(self):
        from repro.engine import Monitor

        monitor = Monitor()
        monitor.record_dispatch("t", "s", "vm", 0.0, 1.0, 1.0)
        monitor.record_kill("t", 5.0)
        record = kickstart_records(monitor)[0]
        assert record["status"] == -9


class TestCondorLog:
    def test_log_round_trip(self, finished_run):
        _, result = finished_run
        text = write_condor_log(result.monitor)
        events = parse_condor_log(text)
        assert events
        kinds = {e.kind for e in events}
        assert kinds == {"SUBMIT", "EXECUTE", "TERMINATED"}
        # Time-ordered.
        times = [e.time for e in events]
        assert times == sorted(times)

    def test_rebuild_monitor_preserves_exec_times(self, finished_run):
        wf, result = finished_run
        events = parse_condor_log(write_condor_log(result.monitor))
        rebuilt = rebuild_monitor(events, stage_of=dict(wf.stage_of))
        for tid in wf.tasks:
            original = result.monitor.current_attempt(tid)
            again = rebuilt.current_attempt(tid)
            # Stage-out folds into completion in the log (documented), so
            # compare exec start and completion directly.
            assert again.exec_start == pytest.approx(original.exec_start)
            assert again.complete_time == pytest.approx(original.complete_time)

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_condor_log("this is not a log line at all")

    def test_event_validation(self):
        with pytest.raises(ValueError, match="unknown event kind"):
            CondorEvent(0.0, "DANCE", "t", 1, "vm")

    def test_blank_lines_skipped(self):
        assert parse_condor_log("\n\n") == []


class TestLogsOnlyPrediction:
    """§II-C's premise, end to end: WIRE's inputs are derivable from the
    framework's logs alone — a predictor fed a monitor rebuilt purely
    from the Condor-style event log produces usable estimates."""

    def test_predictor_works_on_rebuilt_monitor(self, finished_run):
        from repro.core import PredictionPolicy, TaskPredictor
        from repro.engine import TaskExecState

        wf, result = finished_run
        events = parse_condor_log(write_condor_log(result.monitor))
        rebuilt = rebuild_monitor(events, stage_of=dict(wf.stage_of))

        predictor = TaskPredictor(wf)
        # Several MAPE iterations' worth of gradient steps on the rebuilt
        # records (the log is replayed once; the model trains repeatedly).
        for _ in range(200):
            predictor.observe_interval(rebuilt, -1.0, result.makespan + 1)
        # Pretend one more map task were still pending: its estimate must
        # come from the completed peers in the rebuilt records.
        estimate, policy = predictor.estimate_execution(
            "map-0000", TaskExecState.READY, rebuilt, result.makespan + 1
        )
        assert policy in (
            PredictionPolicy.MATCHED_GROUP,
            PredictionPolicy.OGD,
        )
        # The Condor log carries no input sizes, so the best logs-only
        # estimate is the *stage median* (the OGD intercept), not the
        # size-specific value the full kickstart records would enable.
        import numpy as np

        map_stage = wf.stage_of["map-0000"]
        stage_median = float(
            np.median(
                [
                    wf.task(t).runtime
                    for t in wf.stage(map_stage).task_ids
                ]
            )
        )
        assert estimate == pytest.approx(stage_median, rel=0.15)
