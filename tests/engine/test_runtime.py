"""Tests for runtime realization models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cloud import Instance, InstanceType
from repro.dag import Task
from repro.engine import NominalRuntimeModel, PerturbedRuntimeModel


@pytest.fixture
def rng():
    return np.random.default_rng(1)


def make_instance(speed=1.0):
    inst = Instance(
        instance_id="v",
        itype=InstanceType(name="t", slots=1, speed_factor=speed),
        requested_at=0.0,
    )
    inst.mark_running(0.0)
    return inst


class TestNominal:
    def test_returns_nominal(self, rng):
        task = Task("t", "x", runtime=42.0)
        model = NominalRuntimeModel()
        assert model.execution_time(task, make_instance(), 1, rng) == 42.0

    def test_speed_factor_scales(self, rng):
        task = Task("t", "x", runtime=42.0)
        model = NominalRuntimeModel()
        assert model.execution_time(task, make_instance(2.0), 1, rng) == 21.0


class TestPerturbed:
    def test_mean_preserved(self, rng):
        task = Task("t", "x", runtime=100.0)
        model = PerturbedRuntimeModel(cv=0.3)
        samples = [
            model.execution_time(task, make_instance(), 1, rng)
            for _ in range(5000)
        ]
        assert np.mean(samples) == pytest.approx(100.0, rel=0.05)
        assert np.std(samples) / np.mean(samples) == pytest.approx(0.3, rel=0.15)

    def test_cv_zero_is_nominal(self, rng):
        task = Task("t", "x", runtime=10.0)
        model = PerturbedRuntimeModel(cv=0.0)
        assert model.execution_time(task, make_instance(), 1, rng) == 10.0

    def test_zero_runtime_stays_zero(self, rng):
        task = Task("t", "x", runtime=0.0)
        model = PerturbedRuntimeModel(cv=0.5)
        assert model.execution_time(task, make_instance(), 1, rng) == 0.0

    def test_attempts_resample(self, rng):
        task = Task("t", "x", runtime=10.0)
        model = PerturbedRuntimeModel(cv=0.5)
        a = model.execution_time(task, make_instance(), 1, rng)
        b = model.execution_time(task, make_instance(), 2, rng)
        assert a != b

    def test_validation(self):
        with pytest.raises(Exception):
            PerturbedRuntimeModel(cv=-0.1)
