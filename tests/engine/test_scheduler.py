"""Tests for the FIFO scheduler with the first-k stage boost."""

from __future__ import annotations

import pytest

from repro.engine import FifoScheduler


class TestFifo:
    def test_pop_in_push_order_same_stage_after_boost(self):
        s = FifoScheduler(boost_k=0)
        for i in range(3):
            s.push(f"t{i}", "stage")
        assert [s.pop() for _ in range(3)] == ["t0", "t1", "t2"]

    def test_empty_pop_returns_none(self):
        assert FifoScheduler().pop() is None

    def test_len_and_contains(self):
        s = FifoScheduler()
        s.push("a", "x")
        assert len(s) == 1 and "a" in s
        s.pop()
        assert len(s) == 0 and "a" not in s

    def test_duplicate_push_rejected(self):
        s = FifoScheduler()
        s.push("a", "x")
        with pytest.raises(RuntimeError, match="already queued"):
            s.push("a", "x")


class TestBoost:
    def test_first_k_of_each_stage_jump_queue(self):
        s = FifoScheduler(boost_k=2)
        # Stage A floods the queue first.
        for i in range(5):
            s.push(f"a{i}", "A")
        # Stage B's first two should still jump ahead of a2..a4.
        s.push("b0", "B")
        s.push("b1", "B")
        s.push("b2", "B")
        order = [s.pop() for _ in range(8)]
        # Boosted: a0, a1 (A's first two), b0, b1 — in insertion order.
        assert order[:4] == ["a0", "a1", "b0", "b1"]
        assert order[4:] == ["a2", "a3", "a4", "b2"]

    def test_paper_default_is_five(self):
        assert FifoScheduler().boost_k == 5

    def test_requeue_is_boosted_without_budget(self):
        s = FifoScheduler(boost_k=1)
        s.push("a0", "A")  # consumes A's only boost slot
        s.push("a1", "A")
        s.push("a2", "A", requeue=True)  # killed task: boosted anyway
        assert s.pop() == "a0"
        assert s.pop() == "a2"
        assert s.pop() == "a1"

    def test_boost_budget_not_restored_on_pop(self):
        s = FifoScheduler(boost_k=1)
        s.push("a0", "A")
        s.pop()
        s.push("a1", "A")  # budget used; normal priority
        s.push("b0", "B")  # fresh stage boost
        assert s.pop() == "b0"


class TestSnapshot:
    def test_snapshot_is_pop_order(self):
        s = FifoScheduler(boost_k=1)
        s.push("a0", "A")
        s.push("a1", "A")
        s.push("b0", "B")
        snap = s.snapshot()
        popped = [s.pop() for _ in range(3)]
        assert list(snap) == popped

    def test_snapshot_does_not_mutate(self):
        s = FifoScheduler()
        s.push("a", "A")
        s.snapshot()
        assert len(s) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            FifoScheduler(boost_k=-1)
