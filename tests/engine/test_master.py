"""Tests for the framework master's task lifecycle tracking."""

from __future__ import annotations

import pytest

from repro.engine import FrameworkMaster, TaskExecState


@pytest.fixture
def master(diamond):
    return FrameworkMaster(diamond)


def drive_to_completion(master, task_id):
    master.mark_dispatched(task_id)
    master.mark_executing(task_id)
    master.mark_staging_out(task_id)
    return master.mark_completed(task_id)


class TestInitialState:
    def test_roots_ready_rest_blocked(self, master):
        assert master.state("a") is TaskExecState.READY
        for tid in ("b", "c", "d"):
            assert master.state(tid) is TaskExecState.BLOCKED

    def test_initially_ready(self, master):
        assert master.initially_ready() == ("a",)

    def test_counts(self, master):
        assert master.count(TaskExecState.READY) == 1
        assert master.count(TaskExecState.BLOCKED) == 3


class TestLifecycle:
    def test_full_path(self, master):
        newly = drive_to_completion(master, "a")
        assert newly == ["b", "c"]
        assert master.state("a") is TaskExecState.COMPLETED

    def test_join_waits_for_all_parents(self, master):
        drive_to_completion(master, "a")
        assert drive_to_completion(master, "b") == []
        assert master.state("d") is TaskExecState.BLOCKED
        assert drive_to_completion(master, "c") == ["d"]

    def test_is_done(self, master):
        for tid in ("a", "b", "c", "d"):
            assert not master.is_done()
            drive_to_completion(master, tid)
        assert master.is_done()

    def test_attempts_counted(self, master):
        assert master.attempts("a") == 0
        master.mark_dispatched("a")
        assert master.attempts("a") == 1

    def test_invalid_transition_rejected(self, master):
        with pytest.raises(RuntimeError, match="expected"):
            master.mark_executing("a")  # never dispatched
        with pytest.raises(RuntimeError):
            master.mark_completed("a")

    def test_dispatch_blocked_rejected(self, master):
        with pytest.raises(RuntimeError):
            master.mark_dispatched("d")


class TestKill:
    def test_kill_requeues(self, master):
        master.mark_dispatched("a")
        master.mark_executing("a")
        master.mark_killed("a")
        assert master.state("a") is TaskExecState.READY
        # A second attempt is allowed.
        master.mark_dispatched("a")
        assert master.attempts("a") == 2

    def test_kill_during_staging(self, master):
        master.mark_dispatched("a")
        master.mark_killed("a")
        assert master.state("a") is TaskExecState.READY

    def test_kill_ready_rejected(self, master):
        with pytest.raises(RuntimeError):
            master.mark_killed("a")


class TestQueries:
    def test_in_flight(self, master):
        master.mark_dispatched("a")
        assert master.in_flight_tasks() == ["a"]

    def test_unstarted_in_stage(self, master, diamond):
        stage = diamond.stage_of["a"]
        assert master.unstarted_in_stage(stage) == ["a"]
        master.mark_dispatched("a")
        assert master.unstarted_in_stage(stage) == []

    def test_stage_completed(self, master, diamond):
        stage = diamond.stage_of["a"]
        assert not master.stage_completed(stage)
        drive_to_completion(master, "a")
        assert master.stage_completed(stage)

    def test_occupies_slot_property(self):
        assert TaskExecState.EXECUTING.occupies_slot
        assert TaskExecState.STAGING_IN.occupies_slot
        assert not TaskExecState.READY.occupies_slot
        assert not TaskExecState.COMPLETED.occupies_slot
