"""Bit-identical equivalence against the seed engine.

``golden_engine_results.json`` pins exact measurements (hex-encoded
floats — no tolerance) from the engine *before* the hot-path overhaul
(free-slot index, incremental monitor aggregates, lookahead heap,
predictor caches). Every optimization must preserve the documented
deterministic ordering — same ``(time, kind-priority, seq)`` event
semantics, same FIFO/packing tie-breaks — so any drift in these
fingerprints is a correctness bug, not a tolerance issue.

Regenerate (only for an *intended*, reviewed semantic change):

    PYTHONPATH=src python tools/gen_golden_engine.py
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

GOLDEN = Path(__file__).parent / "golden_engine_results.json"


def load_golden() -> dict:
    return json.loads(GOLDEN.read_text(encoding="utf-8"))


def load_generator():
    import importlib.util

    root = Path(__file__).resolve().parent.parent.parent
    spec = importlib.util.spec_from_file_location(
        "gen_golden_engine", root / "tools" / "gen_golden_engine.py"
    )
    module = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    spec.loader.exec_module(module)
    return module


# A fast subset runs in the default suite; the full 66-scenario sweep is
# what tools/gen_golden_engine.py covers and bench runs exercise.
FAST_SCENARIOS = [
    "genome-S/wire/u60/s0",
    "genome-S/wire/u900/s1",
    "genome-S/pure-reactive/u60/s0",
    "genome-S/reactive-conserving/u60/s0",
    "genome-S/full-site/u900/s0",
    "tpch6-S/wire/u60/s1",
    "tpch6-S/reactive-conserving/u900/s0",
    "pagerank-S/wire/u60/s0",
    "pagerank-S/pure-reactive/u900/s1",
    "tpch1-S/wire/u60/s0",
    "tpch1-S/full-site/u60/s1",
    "genome-S/wire/faults",
    "tpch6-S/wire/jitter",
]


class TestGoldenEquivalence:
    @pytest.fixture(scope="class")
    def generator(self):
        return load_generator()

    @pytest.fixture(scope="class")
    def golden(self):
        return load_golden()

    @pytest.fixture(scope="class")
    def simulations(self, generator):
        return dict(generator.scenarios())

    @pytest.mark.parametrize("name", FAST_SCENARIOS)
    def test_run_matches_seed_fingerprint(
        self, name, golden, simulations, generator
    ):
        assert name in golden, f"golden file is missing scenario {name}"
        result = simulations[name].run()
        assert generator.fingerprint(result) == golden[name]

    def test_golden_covers_full_matrix(self, golden):
        # 4 workloads x 4 policies x 2 units x 2 seeds + faults + jitter
        assert len(golden) == 66
