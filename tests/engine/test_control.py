"""Tests for the engine <-> autoscaler contract types."""

from __future__ import annotations

import pytest

from repro.engine import ScalingDecision, Simulation, TerminationOrder
from repro.engine.control import Autoscaler, Observation


class TestScalingDecision:
    def test_noop(self):
        assert ScalingDecision().is_noop

    def test_launch_only(self):
        d = ScalingDecision(launch=2)
        assert not d.is_noop

    def test_rejects_negative_launch(self):
        with pytest.raises(ValueError):
            ScalingDecision(launch=-1)

    def test_rejects_launch_and_terminate(self):
        with pytest.raises(ValueError, match="both"):
            ScalingDecision(
                launch=1, terminations=(TerminationOrder("vm-1", 0.0),)
            )


class Capture(Autoscaler):
    """Snapshots derived observation values at tick time.

    The Observation holds live references to the master and pool, so its
    derived quantities must be read during ``plan`` — which is also the
    only time a real policy reads them.
    """

    name = "capture"

    def __init__(self):
        self.snapshots: list[dict] = []

    def initial_pool_size(self, site):
        return 2

    def plan(self, obs: Observation):
        self.snapshots.append(
            {
                "now": obs.now,
                "window": obs.now - obs.window_start,
                "charging_unit": obs.charging_unit,
                "lag": obs.lag,
                "pool": obs.effective_pool_size(),
                "runnable": obs.runnable_task_count(),
                "restart_costs": [
                    obs.restart_cost(i) for i in obs.steerable_instances()
                ],
                "queued": obs.queued_task_ids,
            }
        )
        return ScalingDecision()


class TestObservation:
    @pytest.fixture
    def snapshot(self, two_stage, small_site):
        capture = Capture()
        Simulation(two_stage, small_site, capture, 60.0).run()
        assert capture.snapshots
        return capture.snapshots[0]

    def test_window_covers_previous_interval(self, snapshot, small_site):
        assert snapshot["window"] == pytest.approx(small_site.lag)

    def test_charging_unit_and_lag(self, snapshot, small_site):
        assert snapshot["charging_unit"] == 60.0
        assert snapshot["lag"] == small_site.lag

    def test_effective_pool_size(self, snapshot):
        assert snapshot["pool"] == 2

    def test_runnable_task_count_positive_midrun(self, snapshot):
        assert snapshot["runnable"] >= 1

    def test_restart_cost_nonnegative(self, snapshot):
        assert snapshot["restart_costs"]
        assert all(c >= 0.0 for c in snapshot["restart_costs"])

    def test_queue_snapshot_is_tuple(self, snapshot):
        assert isinstance(snapshot["queued"], tuple)
