"""Tests for the placement-aware transfer model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dag import Task, WorkflowBuilder
from repro.engine import LocalityTransferModel, Simulation


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestModel:
    def test_fully_local_is_faster_on_average(self, rng):
        model = LocalityTransferModel(bandwidth=1e7, latency=0.0, local_speedup=10.0)
        task = Task("t", "x", runtime=1.0, input_size=1e8)
        remote = np.mean(
            [model.stage_in_time_placed(task, 0.0, rng) for _ in range(2000)]
        )
        local = np.mean(
            [model.stage_in_time_placed(task, 1.0, rng) for _ in range(2000)]
        )
        assert remote == pytest.approx(10.0, rel=0.15)
        assert local == pytest.approx(1.0, rel=0.15)

    def test_fraction_interpolates(self, rng):
        model = LocalityTransferModel(bandwidth=1e7, latency=0.0, local_speedup=10.0)
        task = Task("t", "x", runtime=1.0, input_size=1e8)
        half = np.mean(
            [model.stage_in_time_placed(task, 0.5, rng) for _ in range(3000)]
        )
        assert half == pytest.approx(5.5, rel=0.15)

    def test_blind_fallback_is_remote(self, rng):
        model = LocalityTransferModel(bandwidth=1e7, latency=0.0)
        task = Task("t", "x", runtime=1.0, input_size=1e8)
        samples = [model.stage_in_time(task, rng) for _ in range(2000)]
        assert np.mean(samples) == pytest.approx(10.0, rel=0.15)

    def test_fraction_validated(self, rng):
        model = LocalityTransferModel(bandwidth=1e7)
        task = Task("t", "x", runtime=1.0, input_size=1.0)
        with pytest.raises(ValueError, match="local_fraction"):
            model.stage_in_time_placed(task, 1.5, rng)


class TestEngineIntegration:
    def _chain(self):
        builder = WorkflowBuilder("chain")
        builder.add_task(
            Task("a", "a", runtime=1.0, input_size=0.0, output_size=1e9)
        )
        builder.add_task(
            Task("b", "b", runtime=1.0, input_size=1e9, output_size=0.0),
            parents=["a"],
        )
        return builder.build()

    def test_single_instance_chain_reads_locally(self, small_site, fixed_pool):
        """b's input was produced on the same instance -> local read."""
        wf = self._chain()
        model = LocalityTransferModel(
            bandwidth=1e7, latency=0.0, local_speedup=100.0
        )
        durations = []
        for seed in range(8):
            result = Simulation(
                wf, small_site, fixed_pool(1), 600.0,
                transfer_model=model, seed=seed,
            ).run()
            attempt = result.monitor.current_attempt("b")
            durations.append(attempt.stage_in_time)
        # Remote mean would be 100s; local mean is 1s. Even the max of 8
        # exponential draws around 1s stays far below the remote regime.
        assert float(np.mean(durations)) < 20.0

    def test_roots_always_remote(self, small_site, fixed_pool):
        """Initial inputs come from shared storage (no producing parent)."""
        builder = WorkflowBuilder("root")
        builder.add_task(Task("only", "x", runtime=1.0, input_size=1e9))
        wf = builder.build()
        model = LocalityTransferModel(
            bandwidth=1e8, latency=0.0, local_speedup=100.0
        )
        samples = []
        for seed in range(12):
            result = Simulation(
                wf, small_site, fixed_pool(1), 600.0,
                transfer_model=model, seed=seed,
            ).run()
            samples.append(result.monitor.current_attempt("only").stage_in_time)
        assert float(np.mean(samples)) == pytest.approx(10.0, rel=0.6)
