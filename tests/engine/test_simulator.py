"""Integration tests for the discrete-event workflow engine."""

from __future__ import annotations

import pytest

from repro.dag import Task, WorkflowBuilder, critical_path_length
from repro.engine import (
    LinearTransferModel,
    ScalingDecision,
    Simulation,
    TerminationOrder,
)
from repro.engine.control import Autoscaler
from repro.workloads import chain_workflow, single_stage_workflow


class TestBasicExecution:
    def test_diamond_completes(self, diamond, small_site, fixed_pool):
        result = Simulation(diamond, small_site, fixed_pool(2), 60.0).run()
        assert result.completed
        # a(10) -> b,c in parallel(10) -> d(10)
        assert result.makespan == pytest.approx(30.0)

    def test_serial_when_one_slot(self, diamond, small_site, fixed_pool):
        site = small_site
        # one instance with 2 slots: b and c still run in parallel
        result = Simulation(diamond, site, fixed_pool(1), 60.0).run()
        assert result.makespan == pytest.approx(30.0)

    def test_chain_makespan_is_total_work(self, small_site, fixed_pool):
        wf = chain_workflow(5, runtime=7.0)
        result = Simulation(wf, small_site, fixed_pool(4), 60.0).run()
        assert result.makespan == pytest.approx(35.0)

    def test_parallel_stage_packs_slots(self, small_site, fixed_pool):
        wf = single_stage_workflow(8, runtime=10.0)
        # 4 instances x 2 slots = 8 slots: everything in one wave.
        result = Simulation(wf, small_site, fixed_pool(4), 60.0).run()
        assert result.makespan == pytest.approx(10.0)

    def test_limited_slots_serialize_waves(self, small_site, fixed_pool):
        wf = single_stage_workflow(8, runtime=10.0)
        result = Simulation(wf, small_site, fixed_pool(2), 60.0).run()
        # 4 slots -> two waves of 4
        assert result.makespan == pytest.approx(20.0)

    def test_makespan_never_beats_critical_path(self, two_stage, small_site, fixed_pool):
        result = Simulation(two_stage, small_site, fixed_pool(4), 60.0).run()
        assert result.makespan >= critical_path_length(two_stage) - 1e-9


class TestTransfersInOccupancy:
    def test_transfer_times_extend_makespan(self, small_site, fixed_pool):
        builder = WorkflowBuilder("t")
        builder.add_task(
            Task("only", "x", runtime=10.0, input_size=1e7, output_size=1e7)
        )
        wf = builder.build()
        model = LinearTransferModel(bandwidth=1e6, latency=0.0)  # 10s each way
        result = Simulation(
            wf, small_site, fixed_pool(1), 60.0, transfer_model=model
        ).run()
        assert result.makespan == pytest.approx(30.0)

    def test_monitor_records_transfer_phases(self, small_site, fixed_pool):
        builder = WorkflowBuilder("t")
        builder.add_task(Task("only", "x", runtime=5.0, input_size=2e6))
        wf = builder.build()
        model = LinearTransferModel(bandwidth=1e6)
        sim = Simulation(wf, small_site, fixed_pool(1), 60.0, transfer_model=model)
        result = sim.run()
        attempt = result.monitor.current_attempt("only")
        assert attempt.stage_in_time == pytest.approx(2.0)
        assert attempt.execution_time == pytest.approx(5.0)
        assert attempt.stage_out_time == pytest.approx(0.0)


class TestBillingIntegration:
    def test_static_pool_units(self, small_site, fixed_pool):
        wf = single_stage_workflow(4, runtime=70.0)
        result = Simulation(wf, small_site, fixed_pool(2), 60.0).run()
        # 2 instances x ceil(70/60)=2 units
        assert result.total_units == 4

    def test_utilization_bounds(self, two_stage, small_site, fixed_pool):
        result = Simulation(two_stage, small_site, fixed_pool(2), 60.0).run()
        assert 0.0 < result.utilization <= 1.0

    def test_peak_instances(self, small_site, fixed_pool):
        wf = single_stage_workflow(4, runtime=5.0)
        result = Simulation(wf, small_site, fixed_pool(3), 60.0).run()
        assert result.peak_instances == 3


class TestDeterminism:
    def test_same_seed_same_result(self, two_stage, small_site, fixed_pool):
        from repro.engine import ExponentialTransferModel

        def run(seed):
            return Simulation(
                two_stage,
                small_site,
                fixed_pool(2),
                60.0,
                transfer_model=ExponentialTransferModel(bandwidth=1e7),
                seed=seed,
            ).run()

        a, b = run(7), run(7)
        assert a.makespan == b.makespan
        assert a.total_units == b.total_units

    def test_different_seed_differs(self, two_stage, small_site, fixed_pool):
        from repro.engine import ExponentialTransferModel

        def run(seed):
            return Simulation(
                two_stage,
                small_site,
                fixed_pool(2),
                60.0,
                transfer_model=ExponentialTransferModel(bandwidth=1e7),
                seed=seed,
            ).run()

        assert run(1).makespan != run(2).makespan


class ScaleUpOnce(Autoscaler):
    """Launches `extra` instances at the first tick, then rests."""

    name = "scale-up-once"

    def __init__(self, extra: int) -> None:
        self.extra = extra
        self.fired = False

    def plan(self, obs):
        if self.fired:
            return ScalingDecision()
        self.fired = True
        return ScalingDecision(launch=self.extra)


class KillOneAt(Autoscaler):
    """Terminates the busiest instance at the first tick."""

    name = "kill-one"

    def plan(self, obs):
        instances = obs.steerable_instances()
        if len(instances) < 2 or obs.pool.pending():
            return ScalingDecision()
        victim = max(instances, key=lambda i: len(i.occupants))
        if not victim.occupants:
            return ScalingDecision()
        return ScalingDecision(
            terminations=(TerminationOrder(victim.instance_id, obs.now),)
        )


class TestElasticity:
    def test_launch_respects_lag(self, small_site):
        wf = single_stage_workflow(8, runtime=30.0)
        sim = Simulation(wf, small_site, ScaleUpOnce(3), 60.0)
        result = sim.run()
        # First tick at lag=10; instances usable at 20.
        ready_times = [
            i.started_at for i in sim.pool if i.started_at and i.started_at > 0
        ]
        assert ready_times and all(t == pytest.approx(20.0) for t in ready_times)
        assert result.peak_instances == 4

    def test_kill_restarts_task(self, small_site):
        wf = single_stage_workflow(6, runtime=100.0)

        class Boot(ScaleUpOnce):
            def initial_pool_size(self, site):
                return 2

        controller = KillOneAt()
        controller.initial_pool_size = lambda site: 2  # type: ignore[assignment]
        result = Simulation(wf, small_site, controller, 600.0).run()
        assert result.completed
        assert result.restarts >= 1
        # Killed tasks reran: every task has a completed final attempt.
        for tid in wf.tasks:
            assert result.monitor.attempts(tid)[-1].is_completed

    def test_draining_instance_gets_no_new_tasks(self, small_site):
        wf = single_stage_workflow(12, runtime=15.0)

        class DrainOne(Autoscaler):
            name = "drain"

            def initial_pool_size(self, site):
                return 2

            def __init__(self):
                self.done = False

            def plan(self, obs):
                if self.done:
                    return ScalingDecision()
                self.done = True
                victim = obs.steerable_instances()[0]
                # Terminate 5 seconds in the future; dispatches in between
                # must avoid the draining instance.
                return ScalingDecision(
                    terminations=(
                        TerminationOrder(victim.instance_id, obs.now + 5.0),
                    )
                )

        sim = Simulation(wf, small_site, DrainOne(), 600.0)
        result = sim.run()
        assert result.completed

    def test_min_instances_floor_enforced(self, small_site):
        wf = single_stage_workflow(4, runtime=30.0)

        class KillEverything(Autoscaler):
            name = "killer"

            def initial_pool_size(self, site):
                return 2

            def plan(self, obs):
                return ScalingDecision(
                    terminations=tuple(
                        TerminationOrder(i.instance_id, obs.now)
                        for i in obs.steerable_instances()
                    )
                )

        result = Simulation(wf, small_site, KillEverything(), 600.0).run()
        assert result.completed  # one instance always survives


class TestSafety:
    def test_max_time_marks_incomplete(self, small_site, fixed_pool):
        wf = single_stage_workflow(4, runtime=1000.0)
        result = Simulation(
            wf, small_site, fixed_pool(1), 60.0, max_time=100.0
        ).run()
        assert not result.completed

    def test_controller_tick_count(self, small_site, fixed_pool):
        wf = single_stage_workflow(2, runtime=25.0)
        result = Simulation(wf, small_site, fixed_pool(1), 60.0).run()
        # lag 10s, makespan 25s -> ticks at 10 and 20.
        assert result.ticks == 2
