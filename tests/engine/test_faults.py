"""Tests for fault injection and WIRE's robustness to it."""

from __future__ import annotations

import numpy as np
import pytest

from repro.autoscalers import WireAutoscaler
from repro.cloud import Instance, InstanceType
from repro.dag import Task
from repro.engine import NoFaults, RandomFaults, Simulation
from repro.workloads import fork_join_workflow, single_stage_workflow


@pytest.fixture
def rng():
    return np.random.default_rng(0)


def make_instance():
    inst = Instance(
        instance_id="v", itype=InstanceType(name="t", slots=1), requested_at=0.0
    )
    inst.mark_running(0.0)
    return inst


class TestFaultModels:
    def test_no_faults(self, rng):
        task = Task("t", "x", runtime=10.0)
        assert NoFaults().failure_offset(task, make_instance(), 1, 10.0, rng) is None

    def test_probability_zero_never_fails(self, rng):
        model = RandomFaults(probability=0.0)
        task = Task("t", "x", runtime=10.0)
        assert all(
            model.failure_offset(task, make_instance(), 1, 10.0, rng) is None
            for _ in range(100)
        )

    def test_probability_one_always_fails_within_execution(self, rng):
        model = RandomFaults(probability=1.0)
        task = Task("t", "x", runtime=10.0)
        offsets = [
            model.failure_offset(task, make_instance(), 1, 10.0, rng)
            for _ in range(50)
        ]
        assert all(o is not None and 0.0 <= o < 10.0 for o in offsets)

    def test_max_attempt_caps_injection(self, rng):
        model = RandomFaults(probability=1.0, max_attempt=2)
        task = Task("t", "x", runtime=10.0)
        assert model.failure_offset(task, make_instance(), 3, 10.0, rng) is None

    def test_zero_duration_never_fails(self, rng):
        model = RandomFaults(probability=1.0)
        task = Task("t", "x", runtime=0.0)
        assert model.failure_offset(task, make_instance(), 1, 0.0, rng) is None

    def test_validation(self):
        with pytest.raises(Exception):
            RandomFaults(probability=1.5)
        with pytest.raises(ValueError):
            RandomFaults(max_attempt=0)


class TestEngineIntegration:
    def test_faulty_run_completes_with_retries(self, small_site, fixed_pool):
        wf = single_stage_workflow(12, runtime=20.0)
        result = Simulation(
            wf,
            small_site,
            fixed_pool(3),
            60.0,
            fault_model=RandomFaults(probability=0.4, max_attempt=3),
            seed=1,
        ).run()
        assert result.completed
        assert result.monitor.total_failures() > 0
        # Failures count as restarts too (wasted work events).
        assert result.restarts >= result.monitor.total_failures()
        for tid in wf.tasks:
            assert result.monitor.attempts(tid)[-1].is_completed

    def test_failures_extend_makespan(self, small_site, fixed_pool):
        wf = single_stage_workflow(8, runtime=30.0)

        def run(model):
            return Simulation(
                wf, small_site, fixed_pool(4), 600.0, fault_model=model, seed=2
            ).run()

        clean = run(NoFaults())
        faulty = run(RandomFaults(probability=0.8, max_attempt=2))
        assert faulty.makespan > clean.makespan
        # Retried work shows up as extra (wasted) slot occupancy.
        assert faulty.monitor.wasted_occupancy() > 0.0

    def test_failed_attempts_marked_distinctly(self, small_site, fixed_pool):
        wf = single_stage_workflow(6, runtime=15.0)
        result = Simulation(
            wf,
            small_site,
            fixed_pool(3),
            60.0,
            fault_model=RandomFaults(probability=0.9, max_attempt=1),
            seed=3,
        ).run()
        failed = [a for a in result.monitor.all_attempts() if a.failed]
        assert failed
        assert all(a.is_killed for a in failed)

    def test_wire_survives_faults(self, small_site):
        """WIRE's predictor must tolerate killed attempts in its stages."""
        wf = fork_join_workflow(width=10, runtime=60.0, levels=2)
        result = Simulation(
            wf,
            small_site,
            WireAutoscaler(),
            60.0,
            fault_model=RandomFaults(probability=0.3, max_attempt=3),
            seed=4,
        ).run()
        assert result.completed
        assert result.monitor.total_failures() > 0

    def test_deterministic_given_seed(self, small_site, fixed_pool):
        wf = single_stage_workflow(10, runtime=10.0)

        def run():
            return Simulation(
                wf,
                small_site,
                fixed_pool(2),
                60.0,
                fault_model=RandomFaults(probability=0.5),
                seed=9,
            ).run()

        a, b = run(), run()
        assert a.makespan == b.makespan
        assert a.monitor.total_failures() == b.monitor.total_failures()
