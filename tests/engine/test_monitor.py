"""Tests for kickstart-style monitoring records."""

from __future__ import annotations

import pytest

from repro.engine import Monitor


@pytest.fixture
def monitor():
    return Monitor()


def complete_attempt(monitor, task_id, stage, t0, stage_in, execute, stage_out,
                     input_size=100.0):
    monitor.record_dispatch(task_id, stage, "vm-1", t0, input_size, 10.0)
    monitor.record_exec_start(task_id, t0 + stage_in)
    monitor.record_exec_end(task_id, t0 + stage_in + execute)
    monitor.record_complete(task_id, t0 + stage_in + execute + stage_out)


class TestAttemptTimings:
    def test_derived_durations(self, monitor):
        complete_attempt(monitor, "t1", "s", 10.0, 2.0, 30.0, 3.0)
        a = monitor.current_attempt("t1")
        assert a.stage_in_time == pytest.approx(2.0)
        assert a.execution_time == pytest.approx(30.0)
        assert a.stage_out_time == pytest.approx(3.0)
        assert a.is_completed and not a.in_flight

    def test_elapsed_execution_mid_run(self, monitor):
        monitor.record_dispatch("t1", "s", "vm-1", 0.0, 1.0, 1.0)
        monitor.record_exec_start("t1", 5.0)
        a = monitor.current_attempt("t1")
        assert a.elapsed_execution(12.0) == pytest.approx(7.0)

    def test_elapsed_zero_while_staging(self, monitor):
        monitor.record_dispatch("t1", "s", "vm-1", 0.0, 1.0, 1.0)
        assert monitor.current_attempt("t1").elapsed_execution(3.0) == 0.0

    def test_occupancy_elapsed(self, monitor):
        monitor.record_dispatch("t1", "s", "vm-1", 10.0, 1.0, 1.0)
        a = monitor.current_attempt("t1")
        assert a.occupancy_elapsed(25.0) == pytest.approx(15.0)

    def test_occupancy_frozen_after_kill(self, monitor):
        monitor.record_dispatch("t1", "s", "vm-1", 0.0, 1.0, 1.0)
        monitor.record_kill("t1", 8.0)
        assert monitor.current_attempt("t1").occupancy_elapsed(99.0) == 8.0

    def test_unknown_task_raises(self, monitor):
        with pytest.raises(KeyError):
            monitor.current_attempt("ghost")


class TestAttemptHistory:
    def test_restart_creates_new_attempt(self, monitor):
        monitor.record_dispatch("t1", "s", "vm-1", 0.0, 1.0, 1.0)
        monitor.record_kill("t1", 5.0)
        monitor.record_dispatch("t1", "s", "vm-2", 10.0, 1.0, 1.0)
        attempts = monitor.attempts("t1")
        assert len(attempts) == 2
        assert attempts[0].is_killed
        assert monitor.current_attempt("t1").attempt == 2
        assert monitor.total_restarts() == 1

    def test_wasted_occupancy(self, monitor):
        monitor.record_dispatch("t1", "s", "vm-1", 0.0, 1.0, 1.0)
        monitor.record_kill("t1", 7.0)
        assert monitor.wasted_occupancy() == pytest.approx(7.0)


class TestStageQueries:
    def test_completed_and_running_split(self, monitor):
        complete_attempt(monitor, "t1", "map", 0.0, 1.0, 10.0, 1.0)
        monitor.record_dispatch("t2", "map", "vm-1", 5.0, 1.0, 1.0)
        assert [a.task_id for a in monitor.completed_in_stage("map")] == ["t1"]
        assert [a.task_id for a in monitor.running_in_stage("map")] == ["t2"]

    def test_stage_has_dispatches(self, monitor):
        assert not monitor.stage_has_dispatches("map")
        monitor.record_dispatch("t1", "map", "vm-1", 0.0, 1.0, 1.0)
        assert monitor.stage_has_dispatches("map")

    def test_killed_not_in_running(self, monitor):
        monitor.record_dispatch("t1", "map", "vm-1", 0.0, 1.0, 1.0)
        monitor.record_kill("t1", 3.0)
        assert monitor.running_in_stage("map") == []
        assert monitor.completed_in_stage("map") == []


class TestTransferWindow:
    def test_window_captures_finished_transfers(self, monitor):
        complete_attempt(monitor, "t1", "s", 0.0, 2.0, 10.0, 3.0)
        # stage-in finished at t=2, stage-out at t=15
        assert monitor.transfer_times_between(0.0, 2.0) == [2.0]
        assert sorted(monitor.transfer_times_between(0.0, 20.0)) == [2.0, 3.0]
        assert monitor.transfer_times_between(2.0, 14.0) == []

    def test_window_is_half_open(self, monitor):
        complete_attempt(monitor, "t1", "s", 0.0, 2.0, 10.0, 3.0)
        # (t0, t1]: the boundary observation at exactly t0 is excluded.
        assert monitor.transfer_times_between(2.0, 3.0) == []
