"""Tests for data transfer models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dag import Task
from repro.engine import (
    ExponentialTransferModel,
    LinearTransferModel,
    NoTransferModel,
)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


@pytest.fixture
def task():
    return Task("t", "x", runtime=1.0, input_size=1e8, output_size=5e7)


class TestNoTransfer:
    def test_zero(self, task, rng):
        model = NoTransferModel()
        assert model.stage_in_time(task, rng) == 0.0
        assert model.stage_out_time(task, rng) == 0.0


class TestLinear:
    def test_deterministic_times(self, task, rng):
        model = LinearTransferModel(bandwidth=1e7, latency=2.0)
        assert model.stage_in_time(task, rng) == pytest.approx(12.0)
        assert model.stage_out_time(task, rng) == pytest.approx(7.0)

    def test_validation(self):
        with pytest.raises(Exception):
            LinearTransferModel(bandwidth=0.0)
        with pytest.raises(Exception):
            LinearTransferModel(bandwidth=1.0, latency=-1.0)


class TestExponential:
    def test_mean_matches_size_over_bandwidth(self, rng):
        task = Task("t", "x", runtime=1.0, input_size=1e8)
        model = ExponentialTransferModel(bandwidth=1e7, latency=0.0)
        samples = [model.stage_in_time(task, rng) for _ in range(4000)]
        assert np.mean(samples) == pytest.approx(10.0, rel=0.1)

    def test_memoryless_variability(self, task, rng):
        model = ExponentialTransferModel(bandwidth=1e7)
        samples = {model.stage_in_time(task, rng) for _ in range(10)}
        assert len(samples) == 10  # continuous draws all differ

    def test_zero_size_zero_latency(self, rng):
        task = Task("t", "x", runtime=1.0)
        model = ExponentialTransferModel(bandwidth=1e7, latency=0.0)
        assert model.stage_in_time(task, rng) == 0.0

    def test_latency_floor_applies_to_empty_transfers(self, rng):
        task = Task("t", "x", runtime=1.0)
        model = ExponentialTransferModel(bandwidth=1e7, latency=3.0)
        samples = [model.stage_out_time(task, rng) for _ in range(2000)]
        assert np.mean(samples) == pytest.approx(3.0, rel=0.15)

    def test_non_negative(self, task, rng):
        model = ExponentialTransferModel(bandwidth=1e7)
        assert all(
            model.stage_in_time(task, rng) >= 0.0 for _ in range(100)
        )
