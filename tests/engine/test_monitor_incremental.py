"""The Monitor's incremental aggregates vs brute-force reference scans.

The Monitor serves its per-tick queries (completed/running attempts per
stage, windowed transfer observations) from structures maintained on each
record event. These tests replay randomized lifecycle streams and assert
the incremental answers are element-for-element identical — same order —
to the historical full-history scans, reimplemented here as references.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.monitor import Monitor, TaskAttempt


def reference_completed(attempt_log: list[TaskAttempt], stage_id: str):
    """Historical scan: the stage's attempts in dispatch order, completed only."""
    return [
        a for a in attempt_log if a.stage_id == stage_id and a.is_completed
    ]


def reference_running(attempt_log: list[TaskAttempt], stage_id: str):
    return [a for a in attempt_log if a.stage_id == stage_id and a.in_flight]


def reference_transfers(
    tasks_in_dispatch_order: list[str],
    monitor: Monitor,
    t0: float,
    t1: float,
) -> list[float]:
    """Historical scan: tasks in first-dispatch order, attempts in order,
    stage-in before stage-out within one attempt."""
    out: list[float] = []
    for task_id in tasks_in_dispatch_order:
        for a in monitor.attempts(task_id):
            if a.exec_start is not None and t0 < a.exec_start <= t1:
                out.append(a.stage_in_time or 0.0)
            if a.complete_time is not None and t0 < a.complete_time <= t1:
                out.append(a.stage_out_time or 0.0)
    return out


def random_lifecycle_stream(seed: int, n_tasks: int = 40, n_stages: int = 4):
    """Drive a Monitor through a randomized but monotonic event stream.

    Returns (monitor, per-stage dispatch-ordered attempt logs, first-
    dispatch task order, final time).
    """
    rng = np.random.default_rng(seed)
    monitor = Monitor()
    stage_logs: dict[str, list[TaskAttempt]] = {}
    task_order: list[str] = []
    now = 0.0
    # in-flight task ids by phase
    staged: list[str] = []
    executing: list[str] = []
    dispatched = 0
    attempts_left = {f"t{i}": 3 for i in range(n_tasks)}
    pending = [f"t{i}" for i in range(n_tasks)]
    while pending or staged or executing:
        now += float(rng.uniform(0.1, 5.0))
        action = rng.integers(0, 3)
        if action == 0 and pending:
            task_id = pending.pop(0)
            stage_id = f"s{dispatched % n_stages}"
            dispatched += 1
            attempt = monitor.record_dispatch(
                task_id, stage_id, f"vm-{dispatched:03d}", now, 1e6, 2e6
            )
            stage_logs.setdefault(stage_id, []).append(attempt)
            if task_id not in task_order:
                task_order.append(task_id)
            staged.append(task_id)
        elif action == 1 and staged:
            task_id = staged.pop(int(rng.integers(0, len(staged))))
            monitor.record_exec_start(task_id, now)
            executing.append(task_id)
        elif action == 2 and executing:
            task_id = executing.pop(int(rng.integers(0, len(executing))))
            if rng.uniform() < 0.25 and attempts_left[task_id] > 1:
                # kill and requeue: a fresh attempt will be dispatched
                attempts_left[task_id] -= 1
                monitor.record_kill(task_id, now, failed=bool(rng.uniform() < 0.5))
                pending.append(task_id)
            else:
                monitor.record_exec_end(task_id, now)
                now += float(rng.uniform(0.1, 2.0))
                monitor.record_complete(task_id, now)
    return monitor, stage_logs, task_order, now


@pytest.mark.parametrize("seed", range(5))
class TestIncrementalAggregates:
    def test_completed_matches_stage_scan(self, seed):
        monitor, stage_logs, _, _ = random_lifecycle_stream(seed)
        for stage_id, log in stage_logs.items():
            assert monitor.completed_in_stage(stage_id) == reference_completed(
                log, stage_id
            )

    def test_running_matches_stage_scan(self, seed):
        monitor, stage_logs, _, _ = random_lifecycle_stream(seed)
        for stage_id, log in stage_logs.items():
            assert monitor.running_in_stage(stage_id) == reference_running(
                log, stage_id
            )

    def test_transfer_windows_match_full_scan(self, seed):
        monitor, _, task_order, end = random_lifecycle_stream(seed)
        rng = np.random.default_rng(seed + 1000)
        windows = [(0.0, end), (-1.0, 0.0), (end, end + 10.0)] + [
            tuple(sorted(rng.uniform(0.0, end, size=2))) for _ in range(10)
        ]
        for t0, t1 in windows:
            assert monitor.transfer_times_between(t0, t1) == reference_transfers(
                task_order, monitor, t0, t1
            )

    def test_restart_counters_match_scan(self, seed):
        monitor, _, _, _ = random_lifecycle_stream(seed)
        killed = [a for a in monitor.all_attempts() if a.is_killed]
        assert monitor.total_restarts() == len(killed)
        assert monitor.total_failures() == sum(1 for a in killed if a.failed)


class TestCompletedVersion:
    def test_version_bumps_only_on_completion(self):
        monitor = Monitor()
        assert monitor.completed_version("s0") == 0
        monitor.record_dispatch("t0", "s0", "vm-1", 0.0, 1.0, 1.0)
        monitor.record_exec_start("t0", 1.0)
        assert monitor.completed_version("s0") == 0
        monitor.record_exec_end("t0", 2.0)
        monitor.record_complete("t0", 3.0)
        assert monitor.completed_version("s0") == 1
        monitor.record_dispatch("t1", "s0", "vm-1", 3.0, 1.0, 1.0)
        monitor.record_exec_start("t1", 4.0)
        monitor.record_kill("t1", 5.0)
        assert monitor.completed_version("s0") == 1  # kills don't bump

    def test_versions_are_per_stage(self):
        monitor = Monitor()
        monitor.record_dispatch("t0", "s0", "vm-1", 0.0, 1.0, 1.0)
        monitor.record_exec_start("t0", 1.0)
        monitor.record_exec_end("t0", 2.0)
        monitor.record_complete("t0", 2.5)
        assert monitor.completed_version("s0") == 1
        assert monitor.completed_version("s1") == 0


class TestOutOfOrderRecording:
    def test_non_monotonic_completions_still_served_correctly(self):
        """Harnesses outside the engine may record with non-monotonic
        clocks; the observation log falls back to sorting."""
        monitor = Monitor()
        for i, (start, end) in enumerate([(5.0, 9.0), (1.0, 3.0), (2.0, 8.0)]):
            task = f"t{i}"
            monitor.record_dispatch(task, "s0", "vm-1", start, 1.0, 1.0)
            monitor.record_exec_start(task, start)
            monitor.record_exec_end(task, end)
            monitor.record_complete(task, end)
        # window (0, 10] sees all six observations (3 stage-in + 3
        # stage-out), ordered by first-dispatch task order
        assert monitor.transfer_times_between(0.0, 10.0) == [0.0] * 6
        assert len(monitor.transfer_times_between(0.0, 4.0)) == 3
