"""Tests for cost/performance run summaries (Fig 5/6 machinery)."""

from __future__ import annotations

import math

import pytest

from repro.engine import Simulation
from repro.metrics import relative_execution_times, summarize_costs
from repro.workloads import single_stage_workflow


@pytest.fixture
def results(small_site, fixed_pool):
    wf = single_stage_workflow(4, runtime=20.0)
    return [
        Simulation(wf, small_site, fixed_pool(2), 60.0, seed=s).run()
        for s in range(3)
    ]


class TestSummarizeCosts:
    def test_aggregates(self, results):
        summary = summarize_costs(results)
        assert summary.runs == 3
        assert summary.mean_units == results[0].total_units  # deterministic
        assert summary.std_units == 0.0
        assert summary.mean_makespan == pytest.approx(results[0].makespan)

    def test_empty(self):
        summary = summarize_costs([])
        assert summary.runs == 0
        assert math.isnan(summary.mean_units)


class TestRelativeTimes:
    def test_normalizes_to_best(self):
        rel = relative_execution_times({"a": 100.0, "b": 150.0, "c": 200.0})
        assert rel == pytest.approx({"a": 1.0, "b": 1.5, "c": 2.0})

    def test_explicit_best(self):
        rel = relative_execution_times({"a": 100.0}, best=50.0)
        assert rel["a"] == 2.0

    def test_empty(self):
        assert relative_execution_times({}) == {}

    def test_rejects_bad_best(self):
        with pytest.raises(ValueError):
            relative_execution_times({"a": 1.0}, best=0.0)
