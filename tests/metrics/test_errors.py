"""Tests for prediction-error metrics (Fig 4 machinery)."""

from __future__ import annotations

import pytest

from repro.metrics import (
    StageClass,
    classify_stage,
    relative_true_errors,
    summarize_errors,
    true_errors,
)


class TestClassification:
    @pytest.mark.parametrize(
        "mean,expected",
        [
            (1.0, StageClass.SHORT),
            (10.0, StageClass.SHORT),
            (10.1, StageClass.MEDIUM),
            (30.0, StageClass.MEDIUM),
            (30.1, StageClass.LONG),
            (500.0, StageClass.LONG),
        ],
    )
    def test_paper_boundaries(self, mean, expected):
        assert classify_stage(mean) is expected

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            classify_stage(-1.0)


class TestErrors:
    def test_true_error_signed(self):
        errors = true_errors([12.0, 8.0], [10.0, 10.0])
        assert list(errors) == [2.0, -2.0]

    def test_relative_true_error(self):
        errors = relative_true_errors([12.0, 5.0], [10.0, 10.0])
        assert list(errors) == pytest.approx([0.2, -0.5])

    def test_relative_rejects_zero_actual(self):
        with pytest.raises(ValueError, match="zero"):
            relative_true_errors([1.0], [0.0])

    def test_length_mismatch(self):
        with pytest.raises(ValueError, match="mismatch"):
            true_errors([1.0], [1.0, 2.0])


class TestSummary:
    def test_fields(self):
        summary = summarize_errors([0.5, -0.5, 2.0, -3.0], threshold=1.0)
        assert summary.count == 4
        assert summary.within_threshold == 0.5
        assert summary.mean_abs_error == pytest.approx(1.5)
        assert summary.median_error == pytest.approx(0.0)
        assert len(summary.cdf_x) == 4
        assert summary.cdf_p[-1] == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_errors([], threshold=1.0)
