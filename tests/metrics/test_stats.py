"""Tests for order statistics."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import MovingMedian, cdf_points, mean, median, percentile_of


class TestMedian:
    def test_odd(self):
        assert median([3.0, 1.0, 2.0]) == 2.0

    def test_even(self):
        assert median([1.0, 2.0, 3.0, 10.0]) == 2.5

    def test_empty_raises(self):
        with pytest.raises(ValueError, match="empty"):
            median([])

    def test_robust_to_outliers_vs_mean(self):
        # §III-C's rationale: the median captures "middle performance"
        # under skew; the mean does not.
        data = [1.0] * 9 + [1000.0]
        assert median(data) == 1.0
        assert mean(data) > 100.0


class TestMovingMedian:
    def test_window_one_is_latest(self):
        mm = MovingMedian(window=1)
        mm.push(5.0)
        mm.push(50.0)
        assert mm.value() == 50.0

    def test_window_smooths(self):
        mm = MovingMedian(window=3)
        for v in (10.0, 12.0, 1000.0):
            mm.push(v)
        assert mm.value() == 12.0

    def test_empty_none(self):
        assert MovingMedian().value() is None

    def test_window_evicts_oldest(self):
        mm = MovingMedian(window=2)
        for v in (1.0, 100.0, 102.0):
            mm.push(v)
        assert mm.value() == 101.0
        assert len(mm) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            MovingMedian(window=0)


class TestCdf:
    def test_points(self):
        xs, ps = cdf_points([3.0, 1.0, 2.0])
        assert list(xs) == [1.0, 2.0, 3.0]
        assert list(ps) == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_empty(self):
        xs, ps = cdf_points([])
        assert len(xs) == 0 and len(ps) == 0


class TestPercentileOf:
    def test_fraction_within(self):
        values = [-0.5, 0.2, 1.5, -3.0]
        assert percentile_of(values, 1.0) == 0.5

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile_of([], 1.0)

    @given(
        st.lists(st.floats(-100, 100), min_size=1, max_size=50),
        st.floats(0, 100),
    )
    @settings(max_examples=100)
    def test_bounds(self, values, threshold):
        assert 0.0 <= percentile_of(values, threshold) <= 1.0
