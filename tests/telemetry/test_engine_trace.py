"""End-to-end: a traced simulation emits a coherent MAPE record stream."""

from __future__ import annotations

import pytest

from repro.autoscalers import WireAutoscaler
from repro.engine import Simulation
from repro.telemetry import (
    InstanceEventRecord,
    MemorySink,
    MetricsRegistry,
    RunMetaRecord,
    RunSummaryRecord,
    Tracer,
    render_trace_summary,
    summarize_trace,
)
from repro.workloads import single_stage_workflow, tpch6


@pytest.fixture
def traced_wire_run(small_site):
    """One WIRE run (10 s MAPE period, ~11 ticks), traced into memory."""
    sink = MemorySink()
    workflow = tpch6("S").generate(0)
    result = Simulation(
        workflow, small_site, WireAutoscaler(), 60.0, seed=0, tracer=Tracer(sink)
    ).run()
    return result, sink


class TestRecordStream:
    def test_meta_first_summary_last(self, traced_wire_run):
        result, sink = traced_wire_run
        records = sink.records
        assert isinstance(records[0], RunMetaRecord)
        assert isinstance(records[-1], RunSummaryRecord)

    def test_meta_identifies_the_run(self, traced_wire_run, small_site):
        _, sink = traced_wire_run
        meta = sink.records[0]
        assert meta.policy == "wire"
        assert meta.charging_unit == 60.0
        assert meta.seed == 0
        assert meta.site == small_site.name
        assert meta.slots_per_instance == small_site.itype.slots
        assert meta.runtime_model == "nominal"
        assert meta.n_tasks > 0 and meta.n_stages > 0

    def test_summary_mirrors_run_result(self, traced_wire_run):
        result, sink = traced_wire_run
        summary = sink.records[-1]
        assert summary.makespan == result.makespan
        assert summary.total_units == result.total_units
        assert summary.completed == result.completed
        assert summary.utilization == result.utilization
        assert summary.restarts == result.restarts
        assert summary.ticks == result.ticks

    def test_one_tick_record_per_mape_iteration(self, traced_wire_run):
        result, sink = traced_wire_run
        ticks = sink.of_kind("control_tick")
        assert len(ticks) == result.ticks
        assert [t.tick for t in ticks] == list(range(result.ticks))

    def test_every_task_closes_with_a_completed_attempt(self, traced_wire_run):
        result, sink = traced_wire_run
        attempts = sink.of_kind("task_attempt")
        completed = [a for a in attempts if a.outcome == "completed"]
        # one completion per task; kills/failures add extra records
        meta = sink.records[0]
        assert len(completed) == meta.n_tasks
        assert len(attempts) == meta.n_tasks + result.restarts

    def test_completed_attempts_carry_timings(self, traced_wire_run):
        _, sink = traced_wire_run
        for a in sink.of_kind("task_attempt"):
            if a.outcome == "completed":
                assert a.runtime is not None and a.runtime > 0
                assert a.queue_wait is not None and a.queue_wait >= 0.0
                assert a.occupancy >= a.runtime


class TestControllerTelemetry:
    def test_wire_ticks_expose_prediction_state(self, traced_wire_run):
        _, sink = traced_wire_run
        ticks = sink.of_kind("control_tick")
        # Before completion every tick has live estimates -> Algorithm 3
        # state is attached (the final ticks can see a drained queue).
        live = [t for t in ticks if t.q_task]
        assert live, "no tick carried predicted-load telemetry"
        for t in live:
            assert t.target_pool is not None and t.target_pool >= 1
            assert t.q_remaining is not None and t.q_remaining > 0.0
            assert t.transfer_estimate is not None
            assert t.stage_predictions, "predictive tick without stage rows"
            for sp in t.stage_predictions:
                assert sp.n_tasks > 0
                assert sp.mean_estimate >= 0.0
                assert sp.model  # a §III-C policy name

    def test_pool_accounting_balances(self, traced_wire_run):
        _, sink = traced_wire_run
        for t in sink.of_kind("control_tick"):
            assert t.pool_after - t.pool_before == t.launched - t.terminated
            branch = (
                "grow" if t.launched else ("shrink" if t.terminated else "hold")
            )
            assert t.branch == branch

    def test_static_policy_ticks_have_no_prediction_state(
        self, small_site, fixed_pool
    ):
        sink = MemorySink()
        wf = single_stage_workflow(6, runtime=25.0)
        Simulation(
            wf, small_site, fixed_pool(2), 60.0, tracer=Tracer(sink)
        ).run()
        ticks = sink.of_kind("control_tick")
        assert ticks
        for t in ticks:
            assert t.target_pool is None
            assert t.q_task is None
            assert t.stage_predictions == ()
            assert t.branch == "hold"


class TestInstanceTelemetry:
    def test_lifecycle_pairs_up(self, traced_wire_run):
        result, sink = traced_wire_run
        events = sink.of_kind("instance_event")
        by_kind: dict[str, list[InstanceEventRecord]] = {}
        for e in events:
            by_kind.setdefault(e.event, []).append(e)
        requested = {e.instance_id for e in by_kind.get("requested", [])}
        assert len(requested) == result.instances_launched
        closed = {
            e.instance_id
            for e in by_kind.get("terminated", []) + by_kind.get("cancelled", [])
        }
        assert closed == requested  # every instance reaches a terminal event

    def test_termination_records_sum_to_run_billing(self, traced_wire_run):
        result, sink = traced_wire_run
        terminated = [
            e for e in sink.of_kind("instance_event") if e.event == "terminated"
        ]
        assert terminated
        assert sum(e.units_charged for e in terminated) == result.total_units
        assert sum(e.wasted_seconds for e in terminated) == pytest.approx(
            result.wasted_seconds
        )
        for e in terminated:
            assert e.paid_seconds >= 0.0
            assert e.busy_slot_seconds >= 0.0
            if e.idle_fraction is not None:
                assert 0.0 <= e.idle_fraction <= 1.0


class TestSummarize:
    def test_summary_numbers_match_engine(self, traced_wire_run):
        result, sink = traced_wire_run
        summary = summarize_trace(sink.records)
        assert summary.meta is not None and summary.meta.policy == "wire"
        assert summary.ticks == result.ticks
        assert summary.total_units == result.total_units
        assert summary.task_outcomes["completed"] == summary.meta.n_tasks
        assert sum(summary.branch_counts.values()) == result.ticks
        assert summary.mean_queue_wait is not None

    def test_stage_error_rows_cover_all_stages(self, traced_wire_run):
        _, sink = traced_wire_run
        summary = summarize_trace(sink.records)
        meta = sink.records[0]
        assert len(summary.stage_errors) == meta.n_stages
        for row in summary.stage_errors:
            assert row.completed > 0
            assert row.actual_mean > 0.0
            if row.ticks_observed:
                # no_task_started can legitimately estimate 0.0
                assert row.predicted_mean >= 0.0
                assert row.mape is not None and row.mape >= 0.0
                assert row.dominant_model != "-"

    def test_idle_fraction_consistent_with_utilization(self, traced_wire_run):
        result, sink = traced_wire_run
        summary = summarize_trace(sink.records)
        assert summary.idle_fraction is not None
        assert summary.idle_fraction == pytest.approx(
            1.0 - result.utilization, abs=1e-9
        )

    def test_render_produces_the_three_report_blocks(self, traced_wire_run):
        _, sink = traced_wire_run
        text = render_trace_summary(summarize_trace(sink.records))
        assert "per-stage prediction error" in text
        assert "cost / waste" in text
        assert "controller ticks" in text
        assert "MAPE" in text


class TestMetricsIntegration:
    def test_registry_collects_engine_counters(self, small_site, fixed_pool):
        registry = MetricsRegistry()
        wf = single_stage_workflow(6, runtime=25.0)
        result = Simulation(
            wf, small_site, fixed_pool(2), 60.0, metrics=registry
        ).run()
        snap = registry.snapshot()
        assert snap["task.completed"] == 6
        assert snap["instance.launched"] == result.instances_launched
        assert snap["task.runtime_seconds"]["count"] == 6.0
        assert snap["controller.plan_seconds"]["count"] == float(result.ticks)

    def test_metrics_do_not_require_tracing(self, small_site, fixed_pool):
        registry = MetricsRegistry()
        wf = single_stage_workflow(4, runtime=10.0)
        sim = Simulation(wf, small_site, fixed_pool(2), 60.0, metrics=registry)
        assert sim._trace is False and sim._metrics_on is True
        sim.run()
        assert registry.snapshot()["task.completed"] == 4
