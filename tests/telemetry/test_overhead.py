"""Guards on the telemetry fast path.

The tentpole's overhead budget — disabled telemetry costs <2% on the
smoke bench — is enforced in CI by ``tools/perfbench.py --check``
against the committed pre-telemetry baseline. These tests guard the
*mechanism* that budget relies on (structural fast-path flags and the
absence of per-event allocation when disabled) plus a lenient wall-clock
bound on *enabled* tracing, which is allowed to do real work.
"""

from __future__ import annotations

import time

from repro.autoscalers import WireAutoscaler
from repro.engine import Simulation
from repro.telemetry import NULL_METRICS, NULL_TRACER, MemorySink, Tracer
from repro.workloads import tpch6


def make_sim(small_site, tracer=None):
    return Simulation(
        tpch6("S").generate(0),
        small_site,
        WireAutoscaler(),
        60.0,
        seed=0,
        tracer=tracer,
    )


class TestFastPathStructure:
    def test_default_simulation_is_fully_disabled(self, small_site):
        sim = make_sim(small_site)
        assert sim.tracer is NULL_TRACER
        assert sim._trace is False
        assert sim.metrics is NULL_METRICS
        assert sim._metrics_on is False

    def test_disabled_run_skips_telemetry_bookkeeping(self, small_site):
        sim = make_sim(small_site)
        result = sim.run()
        # the ready-time map is only populated on the traced path
        assert sim._ready_at == {}
        # ... so untraced attempts never compute queue waits
        assert all(
            a.queue_wait is None for a in result.monitor.all_attempts()
        )

    def test_traced_run_computes_queue_waits(self, small_site):
        sim = make_sim(small_site, tracer=Tracer(MemorySink()))
        result = sim.run()
        completed = [a for a in result.monitor.all_attempts() if a.is_completed]
        assert completed
        assert all(a.queue_wait is not None for a in completed)

    def test_explicit_null_tracer_stays_on_fast_path(self, small_site):
        assert Tracer().enabled is False
        sim = make_sim(small_site, tracer=Tracer())
        assert sim._trace is False


class TestOverhead:
    def test_enabled_tracing_wall_clock_is_bounded(self, small_site):
        """Full in-memory tracing stays within 2x of an untraced run.

        Deliberately lenient (CI machines are noisy); the strict <2%
        *disabled*-path budget lives in ``tools/perfbench.py --check``.
        """

        def median_seconds(tracer_factory, repetitions=5):
            times = []
            for _ in range(repetitions):
                sim = make_sim(small_site, tracer=tracer_factory())
                started = time.perf_counter()
                sim.run()
                times.append(time.perf_counter() - started)
            return sorted(times)[repetitions // 2]

        untraced = median_seconds(lambda: None)
        traced = median_seconds(lambda: Tracer(MemorySink()))
        assert traced <= untraced * 2.0 + 0.01

    def test_traced_and_untraced_runs_are_identical(self, small_site):
        untraced = make_sim(small_site).run()
        traced = make_sim(small_site, tracer=Tracer(MemorySink())).run()
        assert traced.makespan == untraced.makespan
        assert traced.total_units == untraced.total_units
        assert traced.utilization == untraced.utilization
        assert traced.ticks == untraced.ticks
        assert traced.pool_timeline == untraced.pool_timeline
