"""Tests for counter/gauge/histogram metrics and the null registry."""

from __future__ import annotations

import pytest

from repro.telemetry import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)


class TestCounter:
    def test_increments(self):
        c = Counter("n")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_rejects_decrease(self):
        with pytest.raises(ValueError, match="cannot decrease"):
            Counter("n").inc(-1)


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge("pool")
        g.set(3.0)
        g.set(1.0)
        assert g.value == 1.0


class TestHistogram:
    def test_exact_aggregates(self):
        h = Histogram("runtime")
        for v in (0.5, 2.0, 9.5):
            h.observe(v)
        assert h.count == 3
        assert h.total == pytest.approx(12.0)
        assert h.mean == pytest.approx(4.0)
        assert h.min == 0.5
        assert h.max == 9.5

    def test_power_of_two_buckets(self):
        h = Histogram("runtime")
        for v in (0.1, 1.0, 1.5, 3.0, 9.0):
            h.observe(v)
        # [0,1] -> bucket 0; (1,2] -> 1; (2,4] -> 2; (8,16] -> 4
        assert h.buckets() == {0: 2, 1: 1, 2: 1, 4: 1}

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            Histogram("runtime").observe(-0.1)

    def test_quantile_bucket_upper_bounds(self):
        h = Histogram("runtime")
        for v in (0.5, 3.0, 3.5, 100.0):
            h.observe(v)
        assert h.quantile(0.5) == 4.0  # (2,4] bucket holds the median
        assert h.quantile(1.0) == 128.0  # (64,128] holds the max

    def test_quantile_of_empty_is_zero(self):
        assert Histogram("runtime").quantile(0.5) == 0.0

    def test_quantile_validation(self):
        with pytest.raises(ValueError, match="quantile"):
            Histogram("runtime").quantile(1.5)

    def test_mean_of_empty_is_zero(self):
        assert Histogram("runtime").mean == 0.0


class TestRegistry:
    def test_instruments_cached_by_name(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")
        assert reg.enabled is True

    def test_snapshot_is_deterministic_and_typed(self):
        reg = MetricsRegistry()
        reg.counter("tasks").inc(4)
        reg.gauge("pool").set(2.0)
        reg.histogram("runtime").observe(3.0)
        snap = reg.snapshot()
        assert snap["tasks"] == 4
        assert snap["pool"] == 2.0
        assert snap["runtime"] == {
            "count": 1.0,
            "total": 3.0,
            "mean": 3.0,
            "min": 3.0,
            "max": 3.0,
        }
        # deterministic order: counters, gauges, histograms, each sorted
        assert list(snap) == ["tasks", "pool", "runtime"]

    def test_empty_histogram_snapshot_has_finite_bounds(self):
        reg = MetricsRegistry()
        reg.histogram("runtime")
        snap = reg.snapshot()
        assert snap["runtime"]["min"] == 0.0
        assert snap["runtime"]["max"] == 0.0


class TestNullRegistry:
    def test_disabled_flag(self):
        assert NULL_METRICS.enabled is False
        assert NullMetricsRegistry().enabled is False

    def test_instruments_are_shared_no_ops(self):
        reg = NullMetricsRegistry()
        c = reg.counter("a")
        assert c is reg.counter("b")  # one shared instrument per type
        c.inc(100)
        assert c.value == 0
        g = reg.gauge("pool")
        g.set(9.0)
        assert g.value == 0.0
        h = reg.histogram("runtime")
        h.observe(5.0)
        assert h.count == 0

    def test_snapshot_empty(self):
        reg = NullMetricsRegistry()
        reg.counter("a").inc()
        assert reg.snapshot() == {}
