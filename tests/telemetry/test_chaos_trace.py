"""A traced chaotic run emits fault records that summarize coherently."""

from __future__ import annotations

import pytest

from repro.autoscalers import PureReactiveAutoscaler
from repro.cloud.faults import ChaosSpec
from repro.engine import Simulation
from repro.telemetry import (
    CloudFaultRecord,
    MemorySink,
    Tracer,
    render_trace_summary,
    summarize_trace,
)
from repro.workloads import single_stage_workflow

SPEC = ChaosSpec(
    revocation_rate=40.0,
    provision_failure=0.4,
    straggler_probability=0.4,
    blackout_probability=0.3,
)


@pytest.fixture
def traced_chaos_run(small_site):
    sink = MemorySink()
    result = Simulation(
        single_stage_workflow(16, runtime=80.0),
        small_site,
        PureReactiveAutoscaler(),
        60.0,
        seed=6,
        tracer=Tracer(sink),
        chaos=SPEC,
    ).run()
    assert result.cloud_faults.get("revocations"), "seed 6 must inject revocations"
    return result, sink


class TestFaultRecords:
    def test_tracing_does_not_perturb_the_chaotic_run(self, small_site):
        def run(tracer):
            return Simulation(
                single_stage_workflow(16, runtime=80.0),
                small_site,
                PureReactiveAutoscaler(),
                60.0,
                seed=6,
                tracer=tracer,
                chaos=SPEC,
            ).run()

        traced = run(Tracer(MemorySink()))
        bare = run(None)
        assert traced.makespan == bare.makespan
        assert traced.total_units == bare.total_units
        assert traced.cloud_faults == bare.cloud_faults

    def test_stream_carries_one_record_per_injection(self, traced_chaos_run):
        result, sink = traced_chaos_run
        faults = [r for r in sink.records if isinstance(r, CloudFaultRecord)]
        by_kind: dict[str, int] = {}
        for record in faults:
            by_kind[record.fault] = by_kind.get(record.fault, 0) + 1
        # the trace-side names are singular per-record tags
        expectations = {
            "revocation": "revocations",
            "straggler": "stragglers",
            "provision_failure": "provision_failures",
            "provision_retry": "provision_retries",
            "provision_abandoned": "provision_abandoned",
            "provision_timeout": "provision_timeouts",
            "monitor_blackout": "blackouts",
        }
        for trace_name, engine_name in expectations.items():
            assert by_kind.get(trace_name, 0) == result.cloud_faults.get(
                engine_name, 0
            )

    def test_revocation_records_attribute_waste(self, traced_chaos_run):
        result, sink = traced_chaos_run
        revocations = [
            r
            for r in sink.records
            if isinstance(r, CloudFaultRecord) and r.fault == "revocation"
        ]
        assert revocations
        kills = sum(r.tasks_killed for r in revocations)
        assert kills == result.cloud_faults.get("revocation_task_kills", 0)
        for record in revocations:
            assert record.instance_id is not None
            assert record.wasted_seconds is not None
            assert record.lost_occupancy is not None
            assert record.lost_occupancy >= 0.0


class TestSummarize:
    def test_summary_tallies_match_engine_counters(self, traced_chaos_run):
        result, sink = traced_chaos_run
        summary = summarize_trace(sink.records)
        assert summary.cloud_faults.get("revocation", 0) == result.cloud_faults.get(
            "revocations", 0
        )
        assert summary.revocation_task_kills == result.cloud_faults.get(
            "revocation_task_kills", 0
        )
        assert summary.revocation_wasted_seconds >= 0.0
        assert summary.revocation_lost_occupancy >= 0.0

    def test_revoked_instances_kept_in_cost_aggregation(self, traced_chaos_run):
        result, sink = traced_chaos_run
        summary = summarize_trace(sink.records)
        # end-of-life events are terminated OR revoked; both are billed,
        # so the per-instance unit tallies must still cover the run total
        assert summary.total_units == result.total_units

    def test_render_reports_fault_table(self, traced_chaos_run):
        _, sink = traced_chaos_run
        text = render_trace_summary(summarize_trace(sink.records))
        assert "cloud fault" in text
        assert "revocation" in text
        assert "attempts killed by revocation" in text
        assert "billing wasted by revocation" in text

    def test_clean_trace_renders_no_fault_table(self, small_site):
        sink = MemorySink()
        Simulation(
            single_stage_workflow(4, runtime=20.0),
            small_site,
            PureReactiveAutoscaler(),
            60.0,
            seed=0,
            tracer=Tracer(sink),
        ).run()
        text = render_trace_summary(summarize_trace(sink.records))
        assert "cloud fault" not in text
