"""Trace determinism: identical runs produce byte-identical JSONL.

The acceptance bar for the telemetry layer: tracing is pure observation
of a deterministic engine, so the same cell key always yields the same
trace bytes — serially, across repeated runs, and across parallel
campaign workers.
"""

from __future__ import annotations

from repro.autoscalers import PureReactiveAutoscaler, WireAutoscaler
from repro.engine import Simulation
from repro.experiments.campaign import (
    CampaignStore,
    CellKey,
    cell_trace_path,
    run_campaign,
)
from repro.experiments.parallel import run_campaign_parallel
from repro.telemetry import JsonlSink, Tracer, read_jsonl
from repro.workloads import tpch6


def run_traced(path, small_site):
    workflow = tpch6("S").generate(0)
    with Tracer(JsonlSink(path)) as tracer:
        Simulation(
            workflow, small_site, WireAutoscaler(), 60.0, seed=0, tracer=tracer
        ).run()


class TestSingleRun:
    def test_repeated_runs_byte_identical(self, tmp_path, small_site):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        run_traced(a, small_site)
        run_traced(b, small_site)
        assert a.read_bytes() == b.read_bytes()
        assert len(read_jsonl(a)) > 0

    def test_different_seed_different_trace(self, tmp_path, small_site):
        workflow = tpch6("S")
        paths = []
        for seed in (0, 1):
            path = tmp_path / f"s{seed}.jsonl"
            with Tracer(JsonlSink(path)) as tracer:
                Simulation(
                    workflow.generate(seed),
                    small_site,
                    WireAutoscaler(),
                    60.0,
                    seed=seed,
                    tracer=tracer,
                ).run()
            paths.append(path)
        assert paths[0].read_bytes() != paths[1].read_bytes()


class TestCampaignTraces:
    MATRIX = dict(
        charging_units=[60.0],
        seeds=[0, 1],
    )

    def _policies(self):
        return {
            "pure-reactive": PureReactiveAutoscaler,
            "wire": WireAutoscaler,
        }

    def _specs(self):
        return {"tpch6-S": tpch6("S")}

    def keys(self):
        return [
            CellKey("tpch6-S", policy, 60.0, seed)
            for policy in self._policies()
            for seed in (0, 1)
        ]

    def test_parallel_workers_write_identical_cell_traces(self, tmp_path):
        serial_dir = tmp_path / "serial-traces"
        run_campaign(
            CampaignStore(tmp_path / "serial.json"),
            self._specs(),
            self._policies(),
            **self.MATRIX,
            trace_dir=serial_dir,
        )

        parallel_dir = tmp_path / "parallel-traces"
        _, executed, failed = run_campaign_parallel(
            CampaignStore(tmp_path / "parallel.json"),
            self._specs(),
            self._policies(),
            **self.MATRIX,
            jobs=3,
            trace_dir=parallel_dir,
        )
        assert failed == []
        assert executed == 4

        for key in self.keys():
            serial = cell_trace_path(serial_dir, key)
            parallel = cell_trace_path(parallel_dir, key)
            assert serial.exists() and parallel.exists(), key
            assert serial.read_bytes() == parallel.read_bytes(), key

    def test_jobs1_inline_writes_identical_cell_traces(self, tmp_path):
        serial_dir = tmp_path / "serial-traces"
        run_campaign(
            CampaignStore(tmp_path / "serial.json"),
            self._specs(),
            self._policies(),
            **self.MATRIX,
            trace_dir=serial_dir,
        )
        inline_dir = tmp_path / "inline-traces"
        _, executed, failed = run_campaign_parallel(
            CampaignStore(tmp_path / "inline.json"),
            self._specs(),
            self._policies(),
            **self.MATRIX,
            jobs=1,
            trace_dir=inline_dir,
        )
        assert failed == []
        assert executed == 4
        for key in self.keys():
            assert (
                cell_trace_path(serial_dir, key).read_bytes()
                == cell_trace_path(inline_dir, key).read_bytes()
            ), key

    def test_cell_trace_is_a_readable_full_trace(self, tmp_path):
        trace_dir = tmp_path / "traces"
        run_campaign(
            CampaignStore(tmp_path / "c.json"),
            self._specs(),
            {"wire": WireAutoscaler},
            charging_units=[60.0],
            seeds=[0],
            trace_dir=trace_dir,
        )
        key = CellKey("tpch6-S", "wire", 60.0, 0)
        records = read_jsonl(cell_trace_path(trace_dir, key))
        assert records[0].kind == "run_meta"
        assert records[0].policy == "wire"
        assert records[-1].kind == "run_summary"
