"""Tests for trace sinks and the tracer's enabled fast path."""

from __future__ import annotations

import json

import pytest

from repro.telemetry import (
    NULL_TRACER,
    JsonlSink,
    MemorySink,
    NullSink,
    RunSummaryRecord,
    TaskAttemptRecord,
    Tracer,
    read_jsonl,
)


def attempt(i: int) -> TaskAttemptRecord:
    return TaskAttemptRecord(
        now=float(i),
        task_id=f"t{i}",
        stage_id="s",
        attempt=1,
        instance_id="i-0",
        outcome="completed",
        runtime=1.0,
    )


SUMMARY = RunSummaryRecord(
    makespan=10.0,
    completed=True,
    total_units=1,
    total_cost=60.0,
    wasted_seconds=0.0,
    utilization=1.0,
    peak_instances=1,
    instances_launched=1,
    restarts=0,
    ticks=1,
)


class TestMemorySink:
    def test_keeps_emission_order(self):
        sink = MemorySink()
        for i in range(3):
            sink.emit(attempt(i))
        assert [r.task_id for r in sink.records] == ["t0", "t1", "t2"]

    def test_bounded_ring_drops_oldest(self):
        sink = MemorySink(maxlen=2)
        for i in range(5):
            sink.emit(attempt(i))
        assert [r.task_id for r in sink.records] == ["t3", "t4"]

    def test_of_kind_filters(self):
        sink = MemorySink()
        sink.emit(attempt(0))
        sink.emit(SUMMARY)
        assert [r.kind for r in sink.of_kind("run_summary")] == ["run_summary"]
        assert len(sink.of_kind("task_attempt")) == 1

    def test_clear(self):
        sink = MemorySink()
        sink.emit(attempt(0))
        sink.clear()
        assert sink.records == []


class TestJsonlSink:
    def test_round_trip_through_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        records = [attempt(0), attempt(1), SUMMARY]
        with JsonlSink(path) as sink:
            for record in records:
                sink.emit(record)
            assert sink.emitted == 3
        assert read_jsonl(path) == records

    def test_lazy_open_leaves_no_file(self, tmp_path):
        path = tmp_path / "never.jsonl"
        sink = JsonlSink(path)
        sink.close()
        assert not path.exists()

    def test_lines_are_sorted_compact_json(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            sink.emit(attempt(0))
        line = path.read_text(encoding="utf-8").splitlines()[0]
        payload = json.loads(line)
        assert list(payload) == sorted(payload)
        assert ": " not in line and ", " not in line

    def test_reopen_overwrites(self, tmp_path):
        # A retried campaign cell reuses its key-derived path; the second
        # attempt must replace the partial first trace, not append to it.
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            sink.emit(attempt(0))
            sink.emit(attempt(1))
        with JsonlSink(path) as sink:
            sink.emit(attempt(2))
        assert [r.task_id for r in read_jsonl(path)] == ["t2"]

    def test_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "trace.jsonl"
        with JsonlSink(path) as sink:
            sink.emit(attempt(0))
        assert path.exists()

    def test_malformed_line_fails_with_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        good = json.dumps(attempt(0).to_json())
        path.write_text(good + "\n{not json\n", encoding="utf-8")
        with pytest.raises(ValueError, match="bad.jsonl:2"):
            read_jsonl(path)

    def test_unknown_kind_line_fails_with_location(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind":"mystery"}\n', encoding="utf-8")
        with pytest.raises(ValueError, match="bad.jsonl:1"):
            read_jsonl(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        good = json.dumps(attempt(0).to_json())
        path.write_text("\n" + good + "\n\n", encoding="utf-8")
        assert len(read_jsonl(path)) == 1


class TestTracer:
    def test_default_is_disabled(self):
        assert Tracer().enabled is False
        assert Tracer(NullSink()).enabled is False
        assert NULL_TRACER.enabled is False

    def test_real_sink_enables(self):
        assert Tracer(MemorySink()).enabled is True

    def test_disabled_tracer_never_touches_sink(self):
        # The fast-path contract the engine relies on: emit() through a
        # disabled tracer is a no-op even if handed a real record.
        tracer = Tracer()
        tracer.emit(SUMMARY)  # must not raise or retain anything

    def test_enabled_tracer_forwards(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        tracer.emit(SUMMARY)
        assert sink.records == [SUMMARY]

    def test_context_manager_closes_sink(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with Tracer(JsonlSink(path)) as tracer:
            tracer.emit(SUMMARY)
        assert len(read_jsonl(path)) == 1
