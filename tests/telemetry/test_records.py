"""Tests for the typed trace records and their JSON round-trip."""

from __future__ import annotations

import pytest

from repro.telemetry import (
    CloudFaultRecord,
    ControlTickRecord,
    InstanceEventRecord,
    RunMetaRecord,
    RunSummaryRecord,
    StagePrediction,
    TaskAttemptRecord,
    record_from_json,
)

META = RunMetaRecord(
    workflow="genome-S",
    policy="wire",
    charging_unit=900.0,
    seed=3,
    site="exogeni",
    max_instances=12,
    lag=180.0,
    period=10.0,
    n_tasks=40,
    n_stages=5,
    slots_per_instance=4,
    runtime_model="nominal",
)

TICK = ControlTickRecord(
    tick=2,
    now=30.0,
    pool_before=3,
    pool_after=4,
    launched=1,
    terminated=0,
    branch="grow",
    ready_tasks=7,
    in_flight_tasks=12,
    completed_tasks=5,
    target_pool=4,
    q_task=7,
    q_remaining=812.5,
    transfer_estimate=1.25,
    stage_predictions=(
        StagePrediction(
            stage_id="map", model="matched_group", n_tasks=7, mean_estimate=116.0
        ),
    ),
)

INSTANCE = InstanceEventRecord(
    now=600.0,
    instance_id="i-2",
    event="terminated",
    units_charged=2,
    paid_seconds=1800.0,
    busy_slot_seconds=4100.0,
    idle_fraction=0.43,
    wasted_seconds=1200.0,
)

ATTEMPT = TaskAttemptRecord(
    now=145.0,
    task_id="map#3",
    stage_id="map",
    attempt=1,
    instance_id="i-0",
    outcome="completed",
    queue_wait=5.0,
    stage_in=2.0,
    runtime=118.0,
    stage_out=0.0,
    occupancy=120.0,
    input_size=2e7,
)

CLOUD = CloudFaultRecord(
    now=120.0,
    fault="revocation",
    instance_id="i-3",
    tasks_killed=2,
    wasted_seconds=40.0,
    lost_occupancy=80.0,
)

SUMMARY = RunSummaryRecord(
    makespan=812.0,
    completed=True,
    total_units=6,
    total_cost=5400.0,
    wasted_seconds=900.0,
    utilization=0.77,
    peak_instances=4,
    instances_launched=5,
    restarts=1,
    ticks=80,
)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "record", [META, TICK, INSTANCE, ATTEMPT, CLOUD, SUMMARY], ids=lambda r: r.kind
    )
    def test_to_json_and_back_is_identity(self, record):
        payload = record.to_json()
        assert payload["kind"] == record.kind
        rebuilt = record_from_json(payload)
        assert rebuilt == record
        assert type(rebuilt) is type(record)

    def test_stage_predictions_rebuilt_as_typed_tuple(self):
        rebuilt = record_from_json(TICK.to_json())
        assert isinstance(rebuilt.stage_predictions, tuple)
        assert isinstance(rebuilt.stage_predictions[0], StagePrediction)

    def test_kind_tags_are_stable(self):
        # The JSONL schema contract: renames here break old traces.
        assert META.kind == "run_meta"
        assert TICK.kind == "control_tick"
        assert INSTANCE.kind == "instance_event"
        assert ATTEMPT.kind == "task_attempt"
        assert CLOUD.kind == "cloud_fault"
        assert SUMMARY.kind == "run_summary"

    def test_optional_fields_survive_as_none(self):
        tick = ControlTickRecord(
            tick=0,
            now=10.0,
            pool_before=1,
            pool_after=1,
            launched=0,
            terminated=0,
            branch="hold",
            ready_tasks=0,
            in_flight_tasks=2,
            completed_tasks=0,
        )
        rebuilt = record_from_json(tick.to_json())
        assert rebuilt.target_pool is None
        assert rebuilt.q_task is None
        assert rebuilt.stage_predictions == ()


class TestMalformedPayloads:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown trace record kind"):
            record_from_json({"kind": "bogus"})

    def test_missing_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown trace record kind"):
            record_from_json({"makespan": 1.0})

    def test_non_string_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown trace record kind"):
            record_from_json({"kind": 7})

    def test_unknown_field_rejected(self):
        payload = SUMMARY.to_json()
        payload["surprise"] = 1
        with pytest.raises(ValueError, match="unknown fields.*surprise"):
            record_from_json(payload)

    def test_records_are_immutable(self):
        with pytest.raises(AttributeError):
            SUMMARY.makespan = 0.0  # type: ignore[misc]
