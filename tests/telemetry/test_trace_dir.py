"""Merging per-shard trace directories (read_jsonl_dir + CLI).

A sharded or multi-run campaign leaves one JSONL file per shard;
``repro trace summarize <dir>`` must stitch them into one record
stream in timestamp order instead of refusing directories (the
pre-sharding behaviour was an unhandled IsADirectoryError).
"""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.telemetry import read_jsonl, read_jsonl_dir


def traced_fleet(tmp_path, name="whole.jsonl"):
    trace = tmp_path / name
    assert (
        main(
            [
                "fleet",
                "--rate",
                "8",
                "--n",
                "3",
                "--seed",
                "4",
                "--trace",
                str(trace),
            ]
        )
        == 0
    )
    return trace


def split_round_robin(trace, out_dir, ways=3):
    """Deal a trace's lines across ``ways`` files, preserving order."""
    out_dir.mkdir()
    lines = trace.read_text(encoding="utf-8").splitlines()
    for i in range(ways):
        shard_lines = lines[i::ways]
        (out_dir / f"shard-{i}.jsonl").write_text(
            "\n".join(shard_lines) + "\n", encoding="utf-8"
        )


class TestReadJsonlDir:
    def test_merge_recovers_every_record(self, tmp_path, capsys):
        trace = traced_fleet(tmp_path)
        capsys.readouterr()
        split_round_robin(trace, tmp_path / "shards")
        whole = read_jsonl(trace)
        merged = read_jsonl_dir(tmp_path / "shards")
        assert len(merged) == len(whole)
        assert sorted(r.kind for r in merged) == sorted(r.kind for r in whole)

    def test_merge_is_timestamp_ordered(self, tmp_path, capsys):
        trace = traced_fleet(tmp_path)
        capsys.readouterr()
        split_round_robin(trace, tmp_path / "shards")
        merged = read_jsonl_dir(tmp_path / "shards")
        assert merged[0].kind == "run_meta"
        assert merged[-1].kind == "run_summary"
        times = [r.now for r in merged if getattr(r, "now", None) is not None]
        assert times == sorted(times)

    def test_empty_directory_raises(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(FileNotFoundError, match="no .jsonl trace files"):
            read_jsonl_dir(tmp_path / "empty")


class TestCliSummarizeDirectory:
    def test_directory_summary_matches_single_file(self, tmp_path, capsys):
        trace = traced_fleet(tmp_path)
        capsys.readouterr()
        assert main(["trace", "summarize", str(trace)]) == 0
        single = capsys.readouterr().out
        split_round_robin(trace, tmp_path / "shards")
        assert main(["trace", "summarize", str(tmp_path / "shards")]) == 0
        merged = capsys.readouterr().out
        assert "per-tenant metrics" in merged
        assert merged == single

    def test_empty_directory_exits_cleanly(self, tmp_path, capsys):
        (tmp_path / "empty").mkdir()
        with pytest.raises(SystemExit) as excinfo:
            main(["trace", "summarize", str(tmp_path / "empty")])
        assert excinfo.value.code != 0
        assert "no .jsonl trace files" in str(excinfo.value)
