"""Tests for the central workload registry."""

from __future__ import annotations

import pickle

import pytest

from repro.dag.workflow import Workflow
from repro.workloads.base import StagedWorkflowSpec
from repro.zoo import (
    UnknownWorkloadError,
    available_workloads,
    calibrated_spec,
    resolve_workload,
    workload_catalog,
    zoo_instance_names,
)
from repro.zoo.registry import ZOO_PREFIX, GeneratorSpec, LazyZooSpec


class TestAvailableWorkloads:
    def test_contains_builtin_and_zoo_names(self):
        names = available_workloads()
        assert "tpch6-S" in names
        assert "montage-S" in names
        for instance in zoo_instance_names():
            assert ZOO_PREFIX + instance in names

    def test_sorted_within_groups(self):
        names = available_workloads()
        builtin = [n for n in names if not n.startswith(ZOO_PREFIX)]
        zoo = [n for n in names if n.startswith(ZOO_PREFIX)]
        assert builtin == sorted(builtin)
        assert zoo == sorted(zoo)
        # builtin block comes first
        assert names == tuple(builtin + zoo)


class TestResolveWorkload:
    def test_builtin_resolves_to_spec(self):
        spec = resolve_workload("genome-S")
        assert isinstance(spec, StagedWorkflowSpec)
        assert isinstance(spec.generate(0), Workflow)

    def test_montage_resolves_to_generator(self):
        gen = resolve_workload("montage-S")
        assert isinstance(gen, GeneratorSpec)
        wf = gen.generate(1)
        assert isinstance(wf, Workflow)

    def test_zoo_name_resolves_to_calibrated_spec(self):
        name = ZOO_PREFIX + zoo_instance_names()[0]
        spec = resolve_workload(name)
        assert isinstance(spec, StagedWorkflowSpec)
        assert spec.name == name

    def test_zoo_resolution_is_cached(self):
        name = zoo_instance_names()[0]
        assert calibrated_spec(name) is calibrated_spec(name)
        assert resolve_workload(ZOO_PREFIX + name) is calibrated_spec(name)

    def test_unknown_name_lists_available(self):
        with pytest.raises(UnknownWorkloadError) as excinfo:
            resolve_workload("no-such-thing")
        message = str(excinfo.value)
        assert "no-such-thing" in message
        assert "tpch6-S" in message
        assert ZOO_PREFIX + zoo_instance_names()[0] in message

    def test_unknown_error_is_a_value_error(self):
        with pytest.raises(ValueError):
            resolve_workload("zoo/not-vendored")


class TestCatalog:
    def test_every_registry_name_is_in_the_catalog(self):
        catalog = workload_catalog()
        assert set(catalog) == set(available_workloads())

    def test_zoo_entries_are_lazy(self):
        catalog = workload_catalog()
        name = zoo_instance_names()[0]
        entry = catalog[ZOO_PREFIX + name]
        assert isinstance(entry, LazyZooSpec)
        assert entry.name == ZOO_PREFIX + name
        wf = entry.generate(2)
        assert wf.tasks == calibrated_spec(name).generate(2).tasks

    def test_catalog_entries_are_picklable(self):
        catalog = workload_catalog()
        for entry in catalog.values():
            pickle.dumps(entry)
        # spot-check that a pickled clone generates identically
        for name in ("tpch6-S", "montage-S", ZOO_PREFIX + zoo_instance_names()[0]):
            entry = catalog[name]
            clone = pickle.loads(pickle.dumps(entry))
            assert clone.generate(0).tasks == entry.generate(0).tasks

    def test_fleet_catalog_delegates_to_registry(self):
        from repro.fleet.harness import fleet_workload_catalog

        assert set(fleet_workload_catalog()) == set(available_workloads())
