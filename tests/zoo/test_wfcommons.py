"""Tests for the WfCommons JSON importer."""

from __future__ import annotations

import json

import pytest

from repro.dag.workflow import CycleError
from repro.zoo import load_instance, read_wfcommons, zoo_instance_names
from repro.zoo.registry import zoo_instance_path

FLAT_DOC = {
    "name": "tiny",
    "schemaVersion": "1.3",
    "workflow": {
        "tasks": [
            {
                "name": "split_00000",
                "id": "split_00000",
                "category": "split",
                "runtimeInSeconds": 2.5,
                "parents": [],
                "files": [
                    {"name": "a.in", "link": "input", "sizeInBytes": 100.0},
                    {"name": "a.out", "link": "output", "sizeInBytes": 40.0},
                ],
            },
            {
                "name": "work_00000",
                "id": "work_00000",
                "category": "work",
                "runtimeInSeconds": 7.0,
                "parents": ["split_00000"],
                "files": [
                    {"name": "b1.in", "link": "input", "sizeInBytes": 20.0},
                    {"name": "b2.in", "link": "input", "sizeInBytes": 20.0},
                    {"name": "b.out", "link": "output", "sizeInBytes": 10.0},
                ],
            },
        ]
    },
}

SPLIT_DOC = {
    "name": "tiny-split",
    "schemaVersion": "1.4",
    "workflow": {
        "specification": {
            "tasks": [
                {
                    "name": "first",
                    "id": "first",
                    "parents": [],
                    "children": ["second"],
                    "inputFiles": ["f.in"],
                    "outputFiles": ["f.out"],
                },
                {
                    "name": "second",
                    "id": "second",
                    "parents": ["first"],
                    "children": [],
                    "inputFiles": ["f.out"],
                    "outputFiles": [],
                },
            ],
            "files": [
                {"id": "f.in", "sizeInBytes": 64.0},
                {"id": "f.out", "sizeInBytes": 32.0},
            ],
        },
        "execution": {
            "tasks": [
                {"id": "first", "runtimeInSeconds": 3.0},
                {"id": "second", "runtimeInSeconds": 9.0},
            ]
        },
    },
}


def doc(**overrides) -> str:
    merged = json.loads(json.dumps(FLAT_DOC))
    merged.update(overrides)
    return json.dumps(merged)


class TestFlatLayout:
    def test_parses_tasks_edges_and_sizes(self):
        wf = read_wfcommons(json.dumps(FLAT_DOC))
        assert wf.name == "tiny"
        assert set(wf.tasks) == {"split_00000", "work_00000"}
        assert wf.parents("work_00000") == {"split_00000"}
        split = wf.task("split_00000")
        assert split.executable == "split"
        assert split.runtime == 2.5
        assert split.input_size == 100.0
        assert split.output_size == 40.0
        # multiple input files sum
        assert wf.task("work_00000").input_size == 40.0

    def test_legacy_jobs_key_and_runtime_key(self):
        text = json.dumps(
            {
                "name": "legacy",
                "workflow": {
                    "jobs": [
                        {"name": "solo_ID0001", "runtime": 4.0, "parents": []}
                    ]
                },
            }
        )
        wf = read_wfcommons(text)
        task = wf.task("solo_ID0001")
        assert task.runtime == 4.0
        # executable from the de-numbered name when category is absent
        assert task.executable == "solo"

    def test_default_runtime(self):
        text = json.dumps(
            {"workflow": {"tasks": [{"name": "t", "parents": []}]}}
        )
        assert read_wfcommons(text, default_runtime=6.5).task("t").runtime == 6.5


class TestSplitLayout:
    def test_parses_specification_and_execution(self):
        wf = read_wfcommons(json.dumps(SPLIT_DOC))
        first = wf.task("first")
        assert first.runtime == 3.0
        assert first.input_size == 64.0
        assert first.output_size == 32.0
        second = wf.task("second")
        assert second.runtime == 9.0
        assert second.input_size == 32.0
        # children edges deduplicate against parents edges
        assert wf.parents("second") == {"first"}

    def test_missing_execution_falls_back_to_default(self):
        trimmed = json.loads(json.dumps(SPLIT_DOC))
        del trimmed["workflow"]["execution"]
        wf = read_wfcommons(json.dumps(trimmed), default_runtime=1.0)
        assert wf.task("first").runtime == 1.0


class TestValidation:
    def test_rejects_bad_json(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            read_wfcommons("{nope")

    def test_rejects_non_object(self):
        with pytest.raises(ValueError, match="top level is not an object"):
            read_wfcommons("[1, 2]")

    def test_rejects_missing_workflow(self):
        with pytest.raises(ValueError, match="no 'workflow' object"):
            read_wfcommons(json.dumps({"name": "empty"}))

    def test_rejects_no_tasks(self):
        with pytest.raises(ValueError, match="declares no tasks"):
            read_wfcommons(json.dumps({"name": "x", "workflow": {"tasks": []}}))

    def test_rejects_task_without_id(self):
        text = json.dumps({"workflow": {"tasks": [{"runtimeInSeconds": 1.0}]}})
        with pytest.raises(ValueError, match="task without id or name"):
            read_wfcommons(text)

    def test_rejects_duplicate_ids(self):
        text = json.dumps(
            {
                "workflow": {
                    "tasks": [
                        {"name": "twin", "parents": []},
                        {"name": "twin", "parents": []},
                    ]
                }
            }
        )
        with pytest.raises(ValueError, match="duplicate task id 'twin'"):
            read_wfcommons(text)

    def test_dangling_parent_names_task_and_ref(self):
        bad = json.loads(json.dumps(FLAT_DOC))
        bad["workflow"]["tasks"][1]["parents"] = ["ghost"]
        with pytest.raises(
            ValueError,
            match="task 'work_00000' lists parent 'ghost', which is not declared",
        ):
            read_wfcommons(json.dumps(bad))

    def test_dangling_child_names_task_and_ref(self):
        bad = json.loads(json.dumps(FLAT_DOC))
        bad["workflow"]["tasks"][0]["children"] = ["phantom"]
        with pytest.raises(
            ValueError,
            match="task 'split_00000' lists child 'phantom', which is not declared",
        ):
            read_wfcommons(json.dumps(bad))

    def test_cycle_names_the_document(self):
        bad = json.loads(json.dumps(FLAT_DOC))
        bad["workflow"]["tasks"][0]["parents"] = ["work_00000"]
        with pytest.raises(CycleError, match="'tiny' is not acyclic"):
            read_wfcommons(json.dumps(bad))


class TestVendoredInstances:
    def test_all_instances_import(self):
        names = zoo_instance_names()
        assert len(names) >= 3
        for name in names:
            wf = load_instance(name)
            assert len(wf) > 0
            assert len(wf.stages) >= 2

    def test_both_layouts_are_vendored(self):
        layouts = set()
        for name in zoo_instance_names():
            payload = json.loads(
                zoo_instance_path(name).read_text(encoding="utf-8")
            )
            layouts.add(
                "split" if "specification" in payload["workflow"] else "flat"
            )
        assert layouts == {"flat", "split"}

    def test_runtimes_and_sizes_are_positive(self):
        for name in zoo_instance_names():
            wf = load_instance(name)
            for task in wf.tasks.values():
                assert task.runtime > 0
                assert task.input_size > 0
