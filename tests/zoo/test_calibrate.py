"""Tests for trace calibration and spec serialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dag.task import Task
from repro.dag.workflow import Workflow
from repro.workloads.base import EmpiricalSizes, FixedSize
from repro.zoo import (
    calibrate,
    load_instance,
    render_calibration,
    scale_spec,
    spec_from_json,
    spec_to_json,
    zoo_instance_names,
)


def chain_workflow(stage_tasks):
    """Build a stage-barrier chain from [(executable, [(runtime, size)...])]."""
    tasks, edges = [], []
    previous: list[str] = []
    for executable, samples in stage_tasks:
        ids = []
        for index, (runtime, size) in enumerate(samples):
            task_id = f"{executable}_{index}"
            ids.append(task_id)
            tasks.append(
                Task(
                    task_id=task_id,
                    executable=executable,
                    runtime=runtime,
                    input_size=size,
                    output_size=size / 2,
                )
            )
            edges.extend((parent, task_id) for parent in previous)
        previous = ids
    return Workflow("chain", tasks, edges)


class TestMomentMatching:
    @pytest.mark.parametrize("name", zoo_instance_names())
    def test_vendored_instances_fit_exactly(self, name):
        result = calibrate(load_instance(name))
        assert result.max_mean_rel_err < 1e-9
        assert result.max_cv_rel_err < 1e-9

    def test_model_stats_match_sample_moments(self):
        rng = np.random.default_rng(7)
        sizes = rng.lognormal(10, 0.4, size=40)
        runtimes = 5.0 * (0.3 + 0.7 * sizes / sizes.mean()) * rng.lognormal(
            -0.02, 0.2, size=40
        )
        wf = chain_workflow([("stage", list(zip(runtimes, sizes)))])
        fit = calibrate(wf).stages[0]
        assert fit.model_mean == pytest.approx(float(runtimes.mean()))
        assert fit.model_cv == pytest.approx(
            float(runtimes.std() / runtimes.mean())
        )
        assert 0.0 <= fit.size_dependence <= 1.0

    def test_degenerate_single_task_stage(self):
        wf = chain_workflow([("solo", [(4.0, 100.0)])])
        result = calibrate(wf)
        fit = result.stages[0]
        assert fit.noise_cv == 0.0
        assert fit.size_dependence == 0.0
        template = result.spec.templates[0]
        assert isinstance(template.size_model, FixedSize)

    def test_empirical_sizes_kept_verbatim(self):
        wf = chain_workflow([("s", [(1.0, 10.0), (2.0, 20.0), (3.0, 30.0)])])
        model = calibrate(wf).spec.templates[0].size_model
        assert isinstance(model, EmpiricalSizes)
        assert model.sizes == (10.0, 20.0, 30.0)

    def test_generated_workflow_has_source_shape(self):
        wf = load_instance("epigenomics-small")
        generated = calibrate(wf).spec.generate(3)
        assert [(s.executable, s.size) for s in generated.stages] == [
            (s.executable, s.size) for s in wf.stages
        ]


class TestLinkageInference:
    def test_one_to_one(self):
        tasks = [
            Task(f"a_{i}", "a", 1.0, 10.0, 5.0) for i in range(4)
        ] + [Task(f"b_{i}", "b", 2.0, 10.0, 5.0) for i in range(4)]
        edges = [(f"a_{i}", f"b_{i}") for i in range(4)]
        wf = Workflow("pipe", tasks, edges)
        assert calibrate(wf).stages[1].linkage == "one_to_one"

    def test_block(self):
        tasks = [
            Task(f"a_{i}", "a", 1.0, 10.0, 5.0) for i in range(5)
        ] + [Task(f"b_{i}", "b", 2.0, 10.0, 5.0) for i in range(2)]
        edges = [("a_0", "b_0"), ("a_1", "b_0"), ("a_2", "b_0"),
                 ("a_3", "b_1"), ("a_4", "b_1")]
        wf = Workflow("merge", tasks, edges)
        assert calibrate(wf).stages[1].linkage == "block"

    def test_barrier_is_all(self):
        wf = chain_workflow(
            [("a", [(1.0, 10.0)] * 3), ("b", [(2.0, 10.0)] * 2)]
        )
        assert calibrate(wf).stages[1].linkage == "all"

    def test_overlapping_parents_fall_back_to_all(self):
        tasks = [
            Task(f"a_{i}", "a", 1.0, 10.0, 5.0) for i in range(3)
        ] + [Task(f"b_{i}", "b", 2.0, 10.0, 5.0) for i in range(3)]
        edges = [("a_0", "b_0"), ("a_1", "b_0"), ("a_1", "b_1"),
                 ("a_2", "b_1"), ("a_2", "b_2"), ("a_0", "b_2")]
        wf = Workflow("pairs", tasks, edges)
        assert calibrate(wf).stages[1].linkage == "all"


class TestDeterminism:
    @pytest.mark.parametrize("name", zoo_instance_names())
    def test_calibrate_twice_is_byte_identical(self, name):
        first = spec_to_json(calibrate(load_instance(name)).spec)
        second = spec_to_json(calibrate(load_instance(name)).spec)
        assert first == second

    def test_spec_json_round_trip(self):
        spec = calibrate(load_instance("montage-small")).spec
        text = spec_to_json(spec)
        again = spec_from_json(text)
        assert again == spec
        assert spec_to_json(again) == text

    def test_round_tripped_spec_generates_identically(self):
        spec = calibrate(load_instance("blast-small")).spec
        again = spec_from_json(spec_to_json(spec))
        a, b = spec.generate(5), again.generate(5)
        assert a.tasks == b.tasks

    def test_spec_json_rejects_unknown_version(self):
        with pytest.raises(ValueError, match="format version"):
            spec_from_json('{"format_version": 99}')


class TestScaleSpec:
    def test_counts_scale(self):
        spec = calibrate(load_instance("seismology-small")).spec
        doubled = scale_spec(spec, 2.0)
        assert doubled.name == spec.name + "-x2"
        for before, after in zip(spec.templates, doubled.templates):
            assert after.count == max(1, round(before.count * 2.0))
        # scaled specs still generate
        assert len(doubled.generate(0)) == sum(
            t.count for t in doubled.templates
        )

    def test_one_to_one_falls_back_to_block_when_indivisible(self):
        from repro.workloads.base import StagedWorkflowSpec, StageTemplate

        spec = StagedWorkflowSpec(
            name="pipe",
            templates=(
                StageTemplate("a", 4, 1.0, 0.0, FixedSize(10.0)),
                StageTemplate(
                    "b", 2, 1.0, 0.0, FixedSize(10.0), linkage="one_to_one"
                ),
            ),
        )
        scaled = scale_spec(spec, 0.75)  # counts 3 and 2: 3 % 2 != 0
        assert scaled.templates[1].linkage == "block"
        assert len(scaled.generate(0)) == sum(t.count for t in scaled.templates)

    def test_rejects_non_positive_factor(self):
        spec = calibrate(load_instance("blast-small")).spec
        with pytest.raises(ValueError, match="scale factor"):
            scale_spec(spec, 0.0)


def test_render_calibration_mentions_every_stage():
    result = calibrate(load_instance("montage-small"))
    text = render_calibration(result)
    for fit in result.stages:
        assert fit.stage_id in text
