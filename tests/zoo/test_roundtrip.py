"""Round-trip every zoo instance through both exchange formats.

The zoo's imported workflows must be first-class citizens of the DAG
layer: surviving ``repro.dag.serialize`` (native JSON, lossless) and
``repro.dag.dax`` (Pegasus XML) with ids, edges, executables, runtimes,
and sizes intact — same contract the builtin workload generators meet in
``tests/dag/test_roundtrip_workloads.py``.
"""

from __future__ import annotations

import pytest

from repro.dag.dax import read_dax, write_dax
from repro.dag.serialize import workflow_from_json, workflow_to_json
from repro.zoo import load_instance, zoo_instance_names


def assert_same_structure(again, original):
    """Format-independent structural equality: ids, edges, task fields."""
    assert set(again.tasks) == set(original.tasks)
    for task_id, task in original.tasks.items():
        back = again.task(task_id)
        assert back.executable == task.executable
        assert back.runtime == pytest.approx(task.runtime)
        assert back.input_size == pytest.approx(task.input_size)
        assert back.output_size == pytest.approx(task.output_size)
        assert again.parents(task_id) == original.parents(task_id)
        assert again.children(task_id) == original.children(task_id)
    assert again.roots == original.roots


@pytest.mark.parametrize("name", zoo_instance_names())
class TestZooRoundTrip:
    def test_json_round_trip(self, name):
        original = load_instance(name)
        again = workflow_from_json(workflow_to_json(original))
        assert again.name == original.name
        assert_same_structure(again, original)
        for task_id, task in original.tasks.items():
            assert again.task(task_id) == task
        assert {
            stage.stage_id: tuple(stage.task_ids) for stage in again.stages
        } == {
            stage.stage_id: tuple(stage.task_ids) for stage in original.stages
        }

    def test_json_round_trip_is_stable(self, name):
        original = load_instance(name)
        text = workflow_to_json(original)
        assert workflow_to_json(workflow_from_json(text)) == text

    def test_dax_round_trip(self, name):
        original = load_instance(name)
        again = read_dax(write_dax(original))
        assert again.name == original.name
        assert_same_structure(again, original)

    def test_import_is_deterministic(self, name):
        """Two imports of the same file are byte-identically serializable."""
        assert workflow_to_json(load_instance(name)) == workflow_to_json(
            load_instance(name)
        )
