"""Shared fixtures for the fleet test suite."""

from __future__ import annotations

import pytest

from repro.workloads import chain_workflow, single_stage_workflow

#: small synthetic catalog so fleet tests run in milliseconds
SMALL_CATALOG = {
    "wide": lambda seed: single_stage_workflow(6, 120.0),
    "deep": lambda seed: chain_workflow(4, 60.0),
}


@pytest.fixture
def small_catalog():
    return dict(SMALL_CATALOG)
