"""Sharded fleet event queue: routing, merge order, bit-identity.

The load-bearing claim (docs/fleet.md): a fleet partitioned across any
number of per-site event queues pops events in *exactly* the order the
single queue would, because all shards share one sequence counter and
the K-way merge compares the same ``(time, priority, seq)`` key the
single heap sorts by. Routing therefore only affects load balance —
never results.
"""

from __future__ import annotations

import pickle
import zlib

import pytest

from repro.engine.events import EventKind, EventQueue
from repro.fleet import (
    ShardedEventQueue,
    TenantShardRouter,
    make_arrivals,
    run_fleet,
    shard_of,
)

TENANTS = ("t00", "t01", "t02", "t03", "t04")


def router(shards: int) -> TenantShardRouter:
    return TenantShardRouter.for_tenants(shards, TENANTS)


def scripted_events():
    """A deterministic mix of kinds, ties, and payload shapes."""
    out = []
    for i, tenant in enumerate(TENANTS * 4):
        out.append((60.0 * (i % 7), EventKind.EXEC_DONE, f"{tenant}/w0/s1/t{i}"))
        out.append((60.0 * (i % 5), EventKind.STAGE_IN_DONE, f"{tenant}/w0/s0/t{i}"))
    out.append((120.0, EventKind.WORKFLOW_ARRIVAL, 3))
    out.append((120.0, EventKind.INSTANCE_TERMINATE, "i-0"))
    out.append((120.0, EventKind.CONTROLLER_TICK, None))
    out.append((0.0, EventKind.INSTANCE_READY, "i-1"))
    return out


class TestShardOf:
    def test_crc32_based_and_stable(self):
        # crc32, not hash(): Python randomizes str hashes per process,
        # and the shard map must be identical across checkpoint hosts
        assert shard_of("t03", 4) == zlib.crc32(b"t03") % 4
        assert shard_of("t03", 4) == shard_of("t03", 4)

    def test_in_range(self):
        for tenant in TENANTS:
            for shards in (2, 3, 4, 7):
                assert 0 <= shard_of(tenant, shards) < shards


class TestRouter:
    def test_task_kinds_route_by_tenant_prefix(self):
        r = router(4)
        for kind in (
            EventKind.STAGE_IN_DONE,
            EventKind.EXEC_DONE,
            EventKind.STAGE_OUT_DONE,
            EventKind.TASK_FAILED,
        ):
            assert r.route(kind, "t02/w1/s0/t5") == shard_of("t02", 4)

    def test_arrivals_route_by_tenant_index(self):
        r = router(4)
        assert r.route(EventKind.WORKFLOW_ARRIVAL, 2) == shard_of("t02", 4)

    def test_site_events_route_to_shard_zero(self):
        r = router(4)
        assert r.route(EventKind.CONTROLLER_TICK, None) == 0
        assert r.route(EventKind.INSTANCE_TERMINATE, "i-3") == 0
        assert r.route(EventKind.INSTANCE_READY, "i-3") == 0


class TestShardedEventQueue:
    def test_requires_at_least_two_shards(self):
        with pytest.raises(ValueError):
            ShardedEventQueue(1, router(1))

    @pytest.mark.parametrize("shards", [2, 3, 4, 7])
    def test_pop_order_matches_single_queue(self, shards):
        single = EventQueue()
        sharded = ShardedEventQueue(shards, router(shards))
        for time, kind, payload in scripted_events():
            single.push(time, kind, payload)
            sharded.push(time, kind, payload)
        assert len(sharded) == len(single)
        while single:
            a, b = single.pop(), sharded.pop()
            assert (a.time, a.seq, a.kind, a.payload) == (
                b.time,
                b.seq,
                b.kind,
                b.payload,
            )
        assert not sharded

    def test_cancel_matches_single_queue(self):
        single = EventQueue()
        sharded = ShardedEventQueue(3, router(3))
        singles, shardeds = [], []
        for time, kind, payload in scripted_events():
            singles.append(single.push(time, kind, payload))
            shardeds.append(sharded.push(time, kind, payload))
        for i in (0, 7, 13):  # cancel the same events on both sides
            single.cancel(singles[i])
            sharded.cancel(shardeds[i])
        single.cancel_for_payload("t01/w0/s0/t1")
        sharded.cancel_for_payload("t01/w0/s0/t1")
        assert len(sharded) == len(single)
        while single:
            assert single.pop().seq == sharded.pop().seq

    def test_sequence_counter_is_shared(self):
        sharded = ShardedEventQueue(4, router(4))
        seqs = [
            sharded.push(0.0, EventKind.EXEC_DONE, f"{t}/w0/s0/t0").seq
            for t in TENANTS
        ]
        # one global stream, regardless of which shard each landed in
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)

    def test_pickle_preserves_shared_counter(self):
        sharded = ShardedEventQueue(3, router(3))
        for time, kind, payload in scripted_events():
            sharded.push(time, kind, payload)
        restored = pickle.loads(pickle.dumps(sharded))
        assert len(restored) == len(sharded)
        # pickle memoization must keep ONE counter for all shards: two
        # post-restore pushes to different shards get consecutive seqs
        a = restored.push(1.0, EventKind.EXEC_DONE, "t00/w0/s0/a")
        b = restored.push(1.0, EventKind.CONTROLLER_TICK, None)
        assert b.seq == a.seq + 1

    def test_shard_stats_account_for_everything(self):
        sharded = ShardedEventQueue(3, router(3))
        for time, kind, payload in scripted_events():
            sharded.push(time, kind, payload)
        pushed = len(sharded)
        ticks = 0
        while sharded:
            if sharded.pop().kind is EventKind.CONTROLLER_TICK:
                ticks += 1
        stats = sharded.shard_stats()
        assert sum(s["pushed"] for s in stats) == pushed
        assert sum(s["popped"] for s in stats) == pushed
        assert sharded.epochs == ticks == 1


class TestEngineBitIdentity:
    def summary(self, shards: int) -> str:
        result = run_fleet(
            arrivals=make_arrivals("poisson", rate=8.0, n=4),
            charging_unit=900.0,
            seed=3,
            shards=shards,
        )
        return result.to_summary_json()

    @pytest.mark.parametrize("shards", [2, 4])
    def test_summary_bytes_identical(self, shards):
        assert self.summary(shards) == self.summary(1)
