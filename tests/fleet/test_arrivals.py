"""Tests for fleet arrival processes."""

from __future__ import annotations

import pytest

from repro.fleet import (
    BurstyArrivals,
    PoissonArrivals,
    TraceArrivals,
    make_arrivals,
)


class TestPoisson:
    def test_count_and_monotone_times(self):
        subs = PoissonArrivals(6.0, 5, ("tpch6-S",)).generate(seed=1)
        assert len(subs) == 5
        times = [s.submit_time for s in subs]
        assert times == sorted(times)
        assert times[0] == 0.0

    def test_deterministic_per_seed(self):
        a = PoissonArrivals(6.0, 4, ("tpch6-S",)).generate(seed=7)
        b = PoissonArrivals(6.0, 4, ("tpch6-S",)).generate(seed=7)
        assert a == b
        c = PoissonArrivals(6.0, 4, ("tpch6-S",)).generate(seed=8)
        assert a != c

    def test_round_robin_workloads_and_ids(self):
        subs = PoissonArrivals(6.0, 4, ("a", "b")).generate(seed=0)
        assert [s.workload for s in subs] == ["a", "b", "a", "b"]
        assert [s.tenant_id for s in subs] == ["t00", "t01", "t02", "t03"]

    def test_workflow_seeds_differ_per_tenant(self):
        subs = PoissonArrivals(6.0, 3, ("a",)).generate(seed=0)
        seeds = {s.workflow_seed for s in subs}
        assert len(seeds) == 3

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0.0, 3, ("a",))


class TestBursty:
    def test_burst_structure(self):
        subs = BurstyArrivals(2, 2, 600.0, ("a",)).generate(seed=0)
        assert [s.submit_time for s in subs] == [0.0, 0.0, 600.0, 600.0]


class TestTrace:
    def test_explicit_times(self):
        subs = TraceArrivals((0.0, 5.0, 5.0), ("a",)).generate(seed=0)
        assert [s.submit_time for s in subs] == [0.0, 5.0, 5.0]

    def test_rejects_decreasing_times(self):
        with pytest.raises(ValueError):
            TraceArrivals((5.0, 1.0), ("a",))


class TestMakeArrivals:
    def test_poisson(self):
        arr = make_arrivals("poisson", rate=6.0, n=3)
        assert isinstance(arr, PoissonArrivals)

    def test_bursty_ceil_bursts(self):
        arr = make_arrivals("bursty", n=5, burst_size=2)
        assert len(arr.generate(0)) >= 5

    def test_trace_needs_times(self):
        with pytest.raises(ValueError, match="times"):
            make_arrivals("trace")

    def test_unknown_process(self):
        with pytest.raises(ValueError, match="unknown arrival"):
            make_arrivals("lognormal")
