"""Tests for fleet slot-allocation policies."""

from __future__ import annotations

import pytest

from repro.fleet import (
    FairSharePolicy,
    FifoPolicy,
    PriorityPolicy,
    Submission,
    TenantRun,
    allocation_policy,
)
from repro.util.rng import RngStream
from repro.workloads import chain_workflow


def _tenant(index, submit_time=0.0, priority=0, occupied=0):
    rng = RngStream(0, "test").child(f"t{index:02d}")
    tenant = TenantRun(
        index=index,
        submission=Submission(
            tenant_id=f"t{index:02d}",
            workload="chain",
            submit_time=submit_time,
            workflow_seed=index,
            priority=priority,
        ),
        workflow=chain_workflow(2),
        rng_transfer=rng.child("transfer").generator(),
        rng_runtime=rng.child("runtime").generator(),
        rng_faults=rng.child("faults").generator(),
    )
    tenant.occupied_slots = occupied
    return tenant


class TestFifo:
    def test_earliest_submission_wins(self):
        early, late = _tenant(0, submit_time=0.0), _tenant(1, submit_time=9.0)
        assert FifoPolicy().choose([late, early]) is early

    def test_index_breaks_ties(self):
        a, b = _tenant(0, submit_time=5.0), _tenant(1, submit_time=5.0)
        assert FifoPolicy().choose([b, a]) is a


class TestFairShare:
    def test_fewest_occupied_slots_wins(self):
        busy = _tenant(0, occupied=3)
        idle = _tenant(1, submit_time=100.0, occupied=0)
        assert FairSharePolicy().choose([busy, idle]) is idle

    def test_falls_back_to_fifo_on_equal_shares(self):
        a = _tenant(0, submit_time=0.0, occupied=1)
        b = _tenant(1, submit_time=50.0, occupied=1)
        assert FairSharePolicy().choose([b, a]) is a


class TestPriority:
    def test_lowest_priority_value_wins(self):
        urgent = _tenant(0, submit_time=100.0, priority=0)
        casual = _tenant(1, submit_time=0.0, priority=1)
        assert PriorityPolicy().choose([casual, urgent]) is urgent


class TestFactory:
    @pytest.mark.parametrize("name,cls", [
        ("fifo", FifoPolicy),
        ("fair-share", FairSharePolicy),
        ("priority", PriorityPolicy),
    ])
    def test_known_names(self, name, cls):
        assert isinstance(allocation_policy(name), cls)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown allocation policy"):
            allocation_policy("lottery")
