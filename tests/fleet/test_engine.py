"""Tests for the shared-site fleet simulation engine."""

from __future__ import annotations

import pytest

from repro.cloud.faults import parse_chaos_spec
from repro.fleet import PoissonArrivals, TraceArrivals, run_fleet


def _fleet(small_catalog, **kwargs):
    kwargs.setdefault(
        "arrivals", PoissonArrivals(12.0, 3, ("wide", "deep"))
    )
    kwargs.setdefault("workload_catalog", small_catalog)
    kwargs.setdefault("charging_unit", 900.0)
    return run_fleet(**kwargs)


class TestCompletion:
    def test_all_tenants_finish(self, small_catalog):
        result = _fleet(small_catalog, seed=1)
        assert result.completed
        assert result.n_tenants == 3
        assert all(t.completed for t in result.tenants)
        assert all(t.makespan > 0 for t in result.tenants)

    def test_total_tasks_conserved(self, small_catalog):
        result = _fleet(small_catalog, seed=1)
        # wide=6 tasks, deep=4 tasks, round-robin wide/deep/wide
        assert sum(t.tasks for t in result.tenants) == 6 + 4 + 6

    @pytest.mark.parametrize("policy", ["fifo", "fair-share", "priority"])
    @pytest.mark.parametrize(
        "autoscaler", ["global-wire", "global-static", "global-reactive"]
    )
    def test_every_policy_autoscaler_pair(self, small_catalog, policy, autoscaler):
        result = _fleet(
            small_catalog, policy=policy, autoscaler=autoscaler, seed=2
        )
        assert result.completed
        assert result.allocation_policy == policy
        assert result.autoscaler_name == autoscaler


class TestDeterminism:
    def test_same_seed_byte_identical_summary(self, small_catalog):
        a = _fleet(small_catalog, seed=5).to_summary_json()
        b = _fleet(small_catalog, seed=5).to_summary_json()
        assert a == b

    def test_different_seed_differs(self, small_catalog):
        a = _fleet(small_catalog, seed=5).to_summary_json()
        b = _fleet(small_catalog, seed=6).to_summary_json()
        assert a != b

    def test_trace_bytes_identical(self, small_catalog, tmp_path):
        paths = [tmp_path / "a.jsonl", tmp_path / "b.jsonl"]
        for path in paths:
            _fleet(small_catalog, seed=5, trace_path=path)
        assert paths[0].read_bytes() == paths[1].read_bytes()


class TestAttribution:
    def test_attributed_cost_sums_to_total(self, small_catalog):
        result = _fleet(small_catalog, seed=3)
        attributed = sum(t.attributed_cost for t in result.tenants)
        assert attributed + result.unattributed_cost == pytest.approx(
            result.total_cost
        )

    def test_slowdown_at_least_one(self, small_catalog):
        result = _fleet(small_catalog, seed=3)
        for tenant in result.tenants:
            assert tenant.slowdown >= 1.0
            assert tenant.queue_wait_mean >= 0.0


class TestAdmissionControl:
    def test_max_active_serializes_tenants(self, small_catalog):
        burst = TraceArrivals((0.0, 0.0, 0.0), ("wide",))
        free = _fleet(small_catalog, arrivals=burst, seed=4)
        capped = _fleet(small_catalog, arrivals=burst, seed=4, max_active=1)
        assert capped.completed
        # With one tenant admitted at a time the later tenants queue
        # behind whole workflows, so the fleet takes at least as long.
        assert capped.makespan >= free.makespan
        # The admission wait is charged to response time (slowdown), not
        # to per-task queue waits: a held-back tenant has no ready tasks.
        assert capped.mean_slowdown >= free.mean_slowdown
        starts = sorted(
            (t.finished_at - t.makespan, t.finished_at) for t in capped.tenants
        )
        for (_, prev_end), (next_start, _) in zip(starts, starts[1:]):
            assert next_start >= prev_end


class TestChaos:
    def test_chaos_fleet_loses_no_tasks(self, small_catalog):
        chaos = parse_chaos_spec(
            "revocations=0.5,stragglers=0.3,pfail=0.2,blackouts=0.2"
        )
        result = _fleet(small_catalog, seed=9, chaos=chaos)
        assert result.completed
        assert all(t.completed for t in result.tenants)
        assert sum(t.tasks for t in result.tenants) == 6 + 4 + 6

    def test_chaos_fleet_deterministic(self, small_catalog):
        chaos = parse_chaos_spec("revocations=0.5,stragglers=0.3")
        a = _fleet(small_catalog, seed=9, chaos=chaos).to_summary_json()
        b = _fleet(small_catalog, seed=9, chaos=chaos).to_summary_json()
        assert a == b


class TestTelemetry:
    def test_trace_has_fleet_and_tenant_records(self, small_catalog, tmp_path):
        from repro.telemetry import FleetTickRecord, TenantRecord, read_jsonl

        path = tmp_path / "fleet.jsonl"
        _fleet(small_catalog, seed=1, trace_path=path)
        records = read_jsonl(path)
        ticks = [r for r in records if isinstance(r, FleetTickRecord)]
        tenants = [r for r in records if isinstance(r, TenantRecord)]
        assert ticks
        assert len(tenants) == 3
        assert {t.tenant_id for t in tenants} == {"t00", "t01", "t02"}
