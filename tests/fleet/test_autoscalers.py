"""Tests for the fleet-level (global) autoscalers."""

from __future__ import annotations

import pytest

from repro.cloud import exogeni_site
from repro.fleet import (
    TraceArrivals,
    fleet_autoscaler,
    fleet_autoscaler_factories,
    run_fleet,
)
from repro.workloads import single_stage_workflow

#: three simultaneous wide tenants: 72 task-slots of demand at t=0
BIG_CATALOG = {"big": lambda seed: single_stage_workflow(24, 600.0)}
BIG_BURST = TraceArrivals((0.0, 0.0, 0.0), ("big",))


def _run(autoscaler, **kwargs):
    return run_fleet(
        arrivals=BIG_BURST,
        workload_catalog=dict(BIG_CATALOG),
        autoscaler=autoscaler,
        charging_unit=900.0,
        seed=0,
        **kwargs,
    )


class TestGlobalWire:
    def test_grows_beyond_one_instance_under_load(self):
        result = _run("global-wire")
        assert result.completed
        assert result.peak_instances > 1

    def test_cheaper_than_static_full_site(self):
        wire = _run("global-wire")
        static = _run("global-static")
        assert wire.total_units <= static.total_units


class TestGlobalStatic:
    def test_holds_the_full_site(self):
        result = _run("global-static")
        assert result.completed
        assert result.peak_instances == exogeni_site().max_instances


class TestGlobalReactive:
    def test_tracks_runnable_load(self):
        result = _run("global-reactive")
        assert result.completed
        assert result.peak_instances > 1


class TestFactories:
    def test_factory_names(self):
        names = set(fleet_autoscaler_factories())
        assert names == {"global-wire", "global-static", "global-reactive"}

    def test_factory_builds_fresh_instances(self):
        a = fleet_autoscaler("global-wire")
        b = fleet_autoscaler("global-wire")
        assert a is not b

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown fleet autoscaler"):
            fleet_autoscaler("global-oracle")
