"""Exit-code contract of the perf-regression gate (tools/perfbench.py)."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def perfbench():
    spec = importlib.util.spec_from_file_location(
        "perfbench", ROOT / "tools" / "perfbench.py"
    )
    module = importlib.util.module_from_spec(spec)
    assert spec.loader is not None
    spec.loader.exec_module(module)
    return module


@pytest.fixture
def fast_scenario(perfbench, monkeypatch):
    """Shrink the measurement to one small scenario so the gate runs fast."""
    monkeypatch.setattr(
        perfbench, "SCENARIOS", [("tpch1-L/wire/u60", "tpch1-L", "wire", 60.0)]
    )


def _write_baseline(path: Path, events_per_sec: float) -> None:
    path.write_text(
        json.dumps(
            {"engine": {"tpch1-L/wire/u60": {"events_per_sec": events_per_sec}}}
        ),
        encoding="utf-8",
    )


def test_check_passes_against_modest_baseline(
    perfbench, fast_scenario, monkeypatch, tmp_path
):
    baseline = tmp_path / "BENCH_engine.json"
    _write_baseline(baseline, 1.0)  # any real run beats 1 event/sec
    monkeypatch.setattr(perfbench, "BENCH_PATH", baseline)
    assert perfbench.run_check(jobs=1, repetitions=1, threshold=0.30) == 0


def test_check_fails_on_regression(perfbench, fast_scenario, monkeypatch, tmp_path):
    baseline = tmp_path / "BENCH_engine.json"
    _write_baseline(baseline, 1e12)  # unreachable: any run is a >30% drop
    monkeypatch.setattr(perfbench, "BENCH_PATH", baseline)
    assert perfbench.run_check(jobs=1, repetitions=1, threshold=0.30) == 1


def test_check_fails_on_controller_regression(
    perfbench, fast_scenario, monkeypatch, tmp_path
):
    baseline = tmp_path / "BENCH_engine.json"
    baseline.write_text(
        json.dumps(
            {
                "engine": {
                    "tpch1-L/wire/u60": {
                        # events gate passes; the controller gate cannot
                        # (no real tick runs in a nanosecond)
                        "events_per_sec": 1.0,
                        "controller_us_per_tick": 0.001,
                    }
                }
            }
        ),
        encoding="utf-8",
    )
    monkeypatch.setattr(perfbench, "BENCH_PATH", baseline)
    assert (
        perfbench.run_check(jobs=1, repetitions=1, threshold=0.30, ctl_threshold=1.0)
        == 1
    )


def test_check_requires_committed_baseline(perfbench, monkeypatch, tmp_path):
    monkeypatch.setattr(perfbench, "BENCH_PATH", tmp_path / "missing.json")
    assert perfbench.run_check(jobs=1, repetitions=1, threshold=0.30) == 2


def test_committed_bench_file_exists_and_shows_speedup():
    """The repo ships a measured BENCH_engine.json with seed comparisons."""
    payload = json.loads((ROOT / "BENCH_engine.json").read_text(encoding="utf-8"))
    assert payload["engine"], "no engine scenarios recorded"
    for name, row in payload["engine"].items():
        assert row["events_per_sec"] > 0, name
        assert row["wall_s"] > 0, name
    assert payload["speedup_vs_seed"], "no seed comparison recorded"
    assert "campaign" in payload and "jobs" in payload["campaign"]
