"""Tests for the bonus Montage workflow."""

from __future__ import annotations

import pytest

from repro.autoscalers import WireAutoscaler
from repro.dag import critical_path_tasks, ideal_parallelism_profile
from repro.engine import Simulation
from repro.workloads import montage


class TestStructure:
    def test_nine_stages(self):
        wf = montage("S")
        assert len(wf.stages) == 9
        executables = {s.executable for s in wf.stages}
        assert executables == {
            "mProject", "mDiffFit", "mConcatFit", "mBgModel",
            "mBackground", "mImgtbl", "mAdd", "mShrink", "mJPEG",
        }

    def test_scale_counts(self):
        assert len(montage("S")) == 84
        assert len(montage("L")) == 314

    def test_diff_depends_on_two_projections(self):
        wf = montage("S")
        assert len(wf.parents("mDiffFit-0000")) == 2

    def test_background_needs_model_and_projection(self):
        wf = montage("S")
        parents = wf.parents("mBackground-0000")
        assert "mBgModel" in parents
        assert "mProject-0000" in parents

    def test_serial_bottleneck_in_middle(self):
        """mConcatFit/mBgModel collapse parallelism to 1 mid-workflow."""
        wf = montage("S")
        profile = ideal_parallelism_profile(wf)
        widths = list(profile.widths)
        peak_index = widths.index(max(widths))
        assert 1 in widths[peak_index:]
        # The critical path passes through the serial modelling step.
        assert "mBgModel" in critical_path_tasks(wf)

    def test_seeded_variation(self):
        a = montage("S", seed=1)
        b = montage("S", seed=2)
        assert [t.runtime for t in a] != [t.runtime for t in b]
        assert montage("S", seed=1).total_work == a.total_work

    def test_rejects_unknown_scale(self):
        with pytest.raises(ValueError, match="scale"):
            montage("XXL")


class TestExecution:
    def test_runs_under_wire(self, small_site):
        result = Simulation(montage("S"), small_site, WireAutoscaler(), 60.0).run()
        assert result.completed
        # The width pattern forces at least one grow/shrink cycle.
        sizes = {c for _, c in result.pool_timeline}
        assert len(sizes) > 1
