"""Tests for linear (§III-E) and synthetic workflow generators."""

from __future__ import annotations

import pytest

from repro.dag import depth, level_widths, max_width
from repro.workloads import (
    chain_workflow,
    diamond_workflow,
    fork_join_workflow,
    linear_stage_workflow,
    random_layered_workflow,
    single_stage_workflow,
)


class TestLinear:
    def test_single_stage(self):
        wf = single_stage_workflow(10, runtime=5.0)
        assert len(wf) == 10
        assert len(wf.stages) == 1
        assert all(t.runtime == 5.0 for t in wf.tasks.values())

    def test_stage_barrier_structure(self):
        wf = linear_stage_workflow([(3, 1.0), (4, 2.0)])
        second = [t for t in wf.tasks.values() if t.executable == "stage01"]
        for task in second:
            assert len(wf.parents(task.task_id)) == 3

    def test_all_tasks_fire_together(self):
        # §III-E: "all tasks in each stage fire at the same time" — i.e.
        # every task of stage k depends on every task of stage k-1.
        wf = linear_stage_workflow([(2, 1.0), (5, 1.0), (3, 1.0)])
        assert level_widths(wf) == [2, 5, 3]
        assert depth(wf) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            linear_stage_workflow([])
        with pytest.raises(ValueError):
            linear_stage_workflow([(0, 1.0)])
        with pytest.raises(Exception):
            linear_stage_workflow([(1, 0.0)])


class TestSynthetic:
    def test_chain(self):
        wf = chain_workflow(4)
        assert depth(wf) == 4 and max_width(wf) == 1

    def test_fork_join_multilevel(self):
        wf = fork_join_workflow(width=3, levels=2)
        assert len(wf) == 1 + 2 * (3 + 1)
        assert max_width(wf) == 3

    def test_diamond(self):
        wf = diamond_workflow()
        assert len(wf) == 4

    def test_random_layered_deterministic(self):
        a = random_layered_workflow(7)
        b = random_layered_workflow(7)
        assert a.topological_order() == b.topological_order()
        assert [t.runtime for t in a] == [t.runtime for t in b]

    def test_random_layered_connected(self):
        wf = random_layered_workflow(3, n_layers=5, max_width=6)
        # Every non-root task has at least one parent.
        roots = set(wf.roots)
        for tid in wf.tasks:
            if tid not in roots:
                assert wf.parents(tid)

    def test_random_layered_validation(self):
        with pytest.raises(ValueError):
            random_layered_workflow(0, n_layers=0)
        with pytest.raises(ValueError):
            random_layered_workflow(0, edge_probability=1.5)
