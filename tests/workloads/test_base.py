"""Tests for workload generation machinery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads import (
    BlockSizes,
    FixedSize,
    StageTemplate,
    StagedWorkflowSpec,
    UniformSizes,
    ZipfSizes,
    summarize_workflow,
)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestSizeModels:
    def test_fixed(self, rng):
        sizes = FixedSize(100.0).sample(5, rng)
        assert (sizes == 100.0).all()

    def test_block_full_plus_remainder(self, rng):
        model = BlockSizes(total_bytes=1000.0, block_bytes=300.0)
        sizes = model.sample(4, rng)
        assert len(sizes) == 4
        assert (sizes[:-1] == 250.0).all()  # shrunk to fit 4 splits
        assert sizes.sum() == pytest.approx(1000.0)

    def test_block_single_task_gets_everything(self, rng):
        assert BlockSizes(total_bytes=777.0).sample(1, rng)[0] == 777.0

    def test_block_configured_block_respected_when_data_large(self, rng):
        model = BlockSizes(total_bytes=10_000.0, block_bytes=100.0)
        sizes = model.sample(4, rng)
        assert (sizes[:-1] == 100.0).all()
        assert sizes[-1] == pytest.approx(9_700.0)

    def test_uniform_in_range(self, rng):
        sizes = UniformSizes(10.0, 20.0).sample(100, rng)
        assert ((sizes >= 10.0) & (sizes <= 20.0)).all()

    def test_zipf_heavy_tail_capped(self, rng):
        model = ZipfSizes(base_bytes=100.0, alpha=1.5, cap_multiple=8.0)
        sizes = model.sample(2000, rng)
        assert sizes.min() == 100.0
        assert sizes.max() <= 800.0
        assert (sizes == 100.0).mean() > 0.3  # substantial mass at the base

    def test_zipf_validation(self):
        with pytest.raises(ValueError):
            ZipfSizes(base_bytes=1.0, alpha=1.0)


class TestStageTemplate:
    def test_validation(self):
        with pytest.raises(ValueError):
            StageTemplate(executable="", count=1, mean_exec=1.0)
        with pytest.raises(ValueError):
            StageTemplate(executable="x", count=0, mean_exec=1.0)
        with pytest.raises(ValueError):
            StageTemplate(executable="x", count=1, mean_exec=1.0, linkage="bogus")
        with pytest.raises(ValueError):
            StageTemplate(executable="x", count=1, mean_exec=1.0, size_dependence=1.5)


class TestGeneration:
    def make_spec(self, linkage="all"):
        return StagedWorkflowSpec(
            name="t",
            templates=(
                StageTemplate(executable="a", count=4, mean_exec=10.0, cv=0.1),
                StageTemplate(
                    executable="b",
                    count=4,
                    mean_exec=20.0,
                    cv=0.1,
                    linkage=linkage,
                ),
            ),
        )

    def test_deterministic_per_seed(self):
        spec = self.make_spec()
        a = spec.generate(seed=1)
        b = spec.generate(seed=1)
        assert [t.runtime for t in a] == [t.runtime for t in b]

    def test_seeds_vary_runtimes(self):
        spec = self.make_spec()
        a = spec.generate(seed=1)
        b = spec.generate(seed=2)
        assert [t.runtime for t in a] != [t.runtime for t in b]

    def test_all_linkage_is_barrier(self):
        wf = self.make_spec("all").generate(0)
        b_tasks = [t for t in wf.tasks.values() if t.executable == "b"]
        for task in b_tasks:
            assert len(wf.parents(task.task_id)) == 4

    def test_one_to_one_linkage(self):
        wf = self.make_spec("one_to_one").generate(0)
        b_tasks = sorted(
            t.task_id for t in wf.tasks.values() if t.executable == "b"
        )
        for tid in b_tasks:
            assert len(wf.parents(tid)) == 1

    def test_one_to_one_rejects_indivisible(self):
        spec = StagedWorkflowSpec(
            name="t",
            templates=(
                StageTemplate(executable="a", count=3, mean_exec=1.0),
                StageTemplate(
                    executable="b", count=2, mean_exec=1.0, linkage="one_to_one"
                ),
            ),
        )
        with pytest.raises(ValueError, match="divisible"):
            spec.generate(0)

    def test_block_linkage_partitions(self):
        spec = StagedWorkflowSpec(
            name="t",
            templates=(
                StageTemplate(executable="a", count=5, mean_exec=1.0),
                StageTemplate(executable="b", count=2, mean_exec=1.0, linkage="block"),
            ),
        )
        wf = spec.generate(0)
        b_tasks = sorted(t.task_id for t in wf.tasks.values() if t.executable == "b")
        parent_sets = [wf.parents(t) for t in b_tasks]
        assert len(parent_sets[0]) + len(parent_sets[1]) == 5
        assert not (parent_sets[0] & parent_sets[1])

    def test_mean_exec_approximately_preserved(self):
        spec = StagedWorkflowSpec(
            name="t",
            templates=(
                StageTemplate(executable="a", count=500, mean_exec=10.0, cv=0.1),
            ),
        )
        wf = spec.generate(3)
        mean = np.mean([t.runtime for t in wf.tasks.values()])
        assert mean == pytest.approx(10.0, rel=0.05)

    def test_summary(self):
        wf = self.make_spec().generate(0)
        summary = summarize_workflow(wf)
        assert summary.n_stages == 2
        assert summary.total_tasks == 8
        assert summary.min_stage_tasks == summary.max_stage_tasks == 4
