"""Tests that every Table I generator matches the published structure."""

from __future__ import annotations

import numpy as np
import pytest

from repro.workloads import (
    PAPER_PROFILES,
    epigenomics,
    pagerank,
    summarize_workflow,
    table1_specs,
    tpch1,
    tpch6,
)

ALL_NAMES = sorted(PAPER_PROFILES)


@pytest.mark.parametrize("name", ALL_NAMES)
class TestStructuralMatch:
    def test_structure_exact(self, name):
        profile = PAPER_PROFILES[name]
        workflow = table1_specs()[name].generate(seed=0)
        summary = summarize_workflow(workflow)
        assert summary.n_stages == profile.n_stages
        assert summary.total_tasks == profile.total_tasks
        lo, hi = profile.target_stage_tasks_range
        assert summary.min_stage_tasks == lo
        assert summary.max_stage_tasks == hi

    def test_stage_mean_range_close(self, name):
        profile = PAPER_PROFILES[name]
        workflow = table1_specs()[name].generate(seed=0)
        summary = summarize_workflow(workflow)
        lo, hi = profile.stage_mean_exec_range
        # Realized stage means vary around the template targets; allow
        # sampling slack but keep the published order of magnitude.
        assert summary.min_stage_mean_exec == pytest.approx(lo, rel=0.35)
        assert summary.max_stage_mean_exec == pytest.approx(hi, rel=0.35)


class TestAggregateMatch:
    @pytest.mark.parametrize("name", ["genome-S", "genome-L", "pagerank-L"])
    def test_consistent_rows_match_aggregate(self, name):
        """Rows whose published arithmetic is self-consistent must land
        within sampling noise of the published aggregate hours."""
        profile = PAPER_PROFILES[name]
        workflow = table1_specs()[name].generate(seed=0)
        summary = summarize_workflow(workflow)
        assert summary.aggregate_exec_hours == pytest.approx(
            profile.aggregate_exec_hours, rel=0.08
        )

    def test_pagerank_s_near_aggregate(self):
        # The published row is infeasible by ~0.2%; we land within ~10%.
        workflow = pagerank("S").generate(seed=0)
        summary = summarize_workflow(workflow)
        assert summary.aggregate_exec_hours == pytest.approx(0.661, rel=0.15)


class TestScaleArguments:
    @pytest.mark.parametrize("factory", [epigenomics, tpch1, tpch6, pagerank])
    def test_rejects_unknown_scale(self, factory):
        with pytest.raises(ValueError, match="scale"):
            factory("XL")

    def test_scales_differ(self):
        assert len(epigenomics("L").generate(0)) > len(epigenomics("S").generate(0))


class TestCrossRunVariability:
    def test_different_seeds_model_observation_two(self):
        """§II-B: the same stage varies across runs."""
        spec = tpch1("S")
        a = spec.generate(seed=0)
        b = spec.generate(seed=1)
        ra = sorted(t.runtime for t in a.tasks.values())
        rb = sorted(t.runtime for t in b.tasks.values())
        assert ra != rb

    def test_runtime_correlates_with_input_size(self):
        """Input size is the OGD feature (Eq. 1) — the generated loads
        must actually exhibit the correlation the model assumes."""
        wf = tpch1("L").generate(seed=0)
        stage = next(s for s in wf.stages if s.executable == "q1-reduce1")
        sizes = np.array([wf.task(t).input_size for t in stage.task_ids])
        runtimes = np.array([wf.task(t).runtime for t in stage.task_ids])
        correlation = np.corrcoef(sizes, runtimes)[0, 1]
        assert correlation > 0.5
