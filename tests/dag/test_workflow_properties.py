"""Property-based tests on DAG invariants over random layered workflows."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dag import (
    critical_path_length,
    ideal_parallelism_profile,
    level_widths,
    max_width,
)
from repro.workloads import random_layered_workflow


wf_params = st.builds(
    lambda seed, layers, width: random_layered_workflow(
        seed, n_layers=layers, max_width=width
    ),
    seed=st.integers(min_value=0, max_value=10_000),
    layers=st.integers(min_value=1, max_value=6),
    width=st.integers(min_value=1, max_value=6),
)


@given(wf_params)
@settings(max_examples=50, deadline=None)
def test_topological_order_respects_edges(wf):
    position = {tid: i for i, tid in enumerate(wf.topological_order())}
    for tid in wf.tasks:
        for parent in wf.parents(tid):
            assert position[parent] < position[tid]


@given(wf_params)
@settings(max_examples=50, deadline=None)
def test_stages_partition_tasks(wf):
    seen: set[str] = set()
    for stage in wf.stages:
        for tid in stage.task_ids:
            assert tid not in seen
            seen.add(tid)
    assert seen == set(wf.tasks)


@given(wf_params)
@settings(max_examples=50, deadline=None)
def test_stage_members_share_executable(wf):
    for stage in wf.stages:
        executables = {wf.task(t).executable for t in stage.task_ids}
        assert len(executables) == 1


@given(wf_params)
@settings(max_examples=50, deadline=None)
def test_critical_path_bounds(wf):
    cp = critical_path_length(wf)
    longest_task = max(t.runtime for t in wf.tasks.values())
    assert cp >= longest_task - 1e-9
    assert cp <= wf.total_work + 1e-9


@given(wf_params)
@settings(max_examples=50, deadline=None)
def test_parallelism_profile_consistent(wf):
    profile = ideal_parallelism_profile(wf)
    assert profile.peak <= len(wf)
    assert profile.peak <= max_width(wf) or profile.peak <= len(wf)
    # Total area under the profile equals total work.
    area = 0.0
    for (t0, w), (t1, _) in zip(
        zip(profile.times, profile.widths), zip(profile.times[1:], profile.widths[1:])
    ):
        area += w * (t1 - t0)
    assert abs(area - wf.total_work) < 1e-6 * max(1.0, wf.total_work)


@given(wf_params)
@settings(max_examples=50, deadline=None)
def test_level_widths_sum_to_task_count(wf):
    assert sum(level_widths(wf)) == len(wf)
