"""Tests for the workflow builder DSL."""

from __future__ import annotations

import pytest

from repro.dag import Task, WorkflowBuilder


class TestAddTask:
    def test_returns_id(self):
        b = WorkflowBuilder("t")
        assert b.add_task(Task("a", "a", runtime=1.0)) == "a"

    def test_rejects_duplicate(self):
        b = WorkflowBuilder("t")
        b.add_task(Task("a", "a", runtime=1.0))
        with pytest.raises(ValueError, match="duplicate"):
            b.add_task(Task("a", "a", runtime=1.0))

    def test_rejects_unknown_parent(self):
        b = WorkflowBuilder("t")
        with pytest.raises(ValueError, match="unknown parent"):
            b.add_task(Task("a", "a", runtime=1.0), parents=["ghost"])


class TestAddEdge:
    def test_adds_dependency(self):
        b = WorkflowBuilder("t")
        b.add_task(Task("a", "a", runtime=1.0))
        b.add_task(Task("b", "b", runtime=1.0))
        b.add_edge("a", "b")
        wf = b.build()
        assert wf.parents("b") == frozenset({"a"})

    def test_rejects_unknown(self):
        b = WorkflowBuilder("t")
        b.add_task(Task("a", "a", runtime=1.0))
        with pytest.raises(ValueError, match="unknown task"):
            b.add_edge("a", "nope")


class TestAddStage:
    def test_scalar_broadcast(self):
        b = WorkflowBuilder("t")
        ids = b.add_stage("map", count=3, runtime=7.0)
        wf = b.build()
        assert len(ids) == 3
        assert all(wf.task(i).runtime == 7.0 for i in ids)

    def test_per_task_lists(self):
        b = WorkflowBuilder("t")
        ids = b.add_stage(
            "map", count=2, runtime=[1.0, 2.0], input_sizes=[10.0, 20.0]
        )
        wf = b.build()
        assert wf.task(ids[0]).runtime == 1.0
        assert wf.task(ids[1]).input_size == 20.0

    def test_rejects_bad_list_length(self):
        b = WorkflowBuilder("t")
        with pytest.raises(ValueError, match="entries"):
            b.add_stage("map", count=3, runtime=[1.0, 2.0])

    def test_rejects_zero_count(self):
        b = WorkflowBuilder("t")
        with pytest.raises(ValueError, match="count"):
            b.add_stage("map", count=0, runtime=1.0)

    def test_all_to_all_parents(self):
        b = WorkflowBuilder("t")
        roots = b.add_stage("a", count=2, runtime=1.0)
        children = b.add_stage("b", count=2, runtime=1.0, parents=roots)
        wf = b.build()
        for child in children:
            assert wf.parents(child) == frozenset(roots)

    def test_ids_sorted_matches_creation_order(self):
        b = WorkflowBuilder("t")
        ids = b.add_stage("map", count=12, runtime=1.0)
        assert ids == sorted(ids)

    def test_prefix_override(self):
        b = WorkflowBuilder("t")
        ids = b.add_stage("map", count=1, runtime=1.0, prefix="custom")
        assert ids[0].startswith("custom-")

    def test_single_stage_inference(self):
        b = WorkflowBuilder("t")
        b.add_stage("map", count=5, runtime=1.0)
        wf = b.build()
        assert len(wf.stages) == 1
        assert wf.stages[0].size == 5
