"""Tests for DAG structural analysis."""

from __future__ import annotations

import pytest

from repro.dag import (
    Task,
    Workflow,
    WorkflowBuilder,
    critical_path_length,
    critical_path_tasks,
    depth,
    ideal_parallelism_profile,
    level_widths,
    max_width,
)
from repro.workloads import chain_workflow, fork_join_workflow


class TestLevels:
    def test_diamond(self, diamond):
        assert depth(diamond) == 3
        assert level_widths(diamond) == [1, 2, 1]
        assert max_width(diamond) == 2

    def test_chain(self):
        wf = chain_workflow(5)
        assert depth(wf) == 5
        assert max_width(wf) == 1

    def test_fork_join(self):
        wf = fork_join_workflow(width=7)
        assert level_widths(wf) == [1, 7, 1]


class TestCriticalPath:
    def test_diamond_length(self, diamond):
        # a(10) -> b or c(10) -> d(10)
        assert critical_path_length(diamond) == pytest.approx(30.0)

    def test_heavier_branch_wins(self):
        b = WorkflowBuilder("t")
        b.add_task(Task("a", "a", runtime=1.0))
        b.add_task(Task("fast", "f", runtime=1.0), parents=["a"])
        b.add_task(Task("slow", "s", runtime=100.0), parents=["a"])
        b.add_task(Task("z", "z", runtime=1.0), parents=["fast", "slow"])
        wf = b.build()
        assert critical_path_length(wf) == pytest.approx(102.0)
        assert critical_path_tasks(wf) == ["a", "slow", "z"]

    def test_path_is_connected(self, diamond):
        path = critical_path_tasks(diamond)
        for parent, child in zip(path, path[1:]):
            assert parent in diamond.parents(child)

    def test_single_task(self):
        wf = Workflow("t", [Task("only", "x", runtime=3.0)])
        assert critical_path_length(wf) == pytest.approx(3.0)
        assert critical_path_tasks(wf) == ["only"]


class TestParallelismProfile:
    def test_diamond_profile(self, diamond):
        profile = ideal_parallelism_profile(diamond)
        assert profile.peak == 2
        assert profile.width_at(5.0) == 1  # a running
        assert profile.width_at(15.0) == 2  # b and c
        assert profile.width_at(25.0) == 1  # d

    def test_before_start_width_zero(self, diamond):
        profile = ideal_parallelism_profile(diamond)
        assert profile.width_at(-1.0) == 0

    def test_ends_at_zero(self, diamond):
        profile = ideal_parallelism_profile(diamond)
        assert profile.widths[-1] == 0

    def test_peak_bounded_by_task_count(self):
        wf = fork_join_workflow(width=5)
        assert ideal_parallelism_profile(wf).peak == 5
