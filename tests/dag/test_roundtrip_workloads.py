"""Round-trip every bundled workload through both exchange formats.

Each generator family (montage, epigenomics, tpch, pagerank, linear,
synthetic) must survive ``repro.dag.serialize`` (native JSON) and
``repro.dag.dax`` (Pegasus XML) with its structure intact: same task
ids, same edges, same per-task runtimes/executables/sizes. The JSON
format additionally preserves tasks exactly (frozen dataclass equality)
and the stage partition; DAX re-infers stages on read, so there we only
require the structural fields it declares to carry.
"""

from __future__ import annotations

import pytest

from repro.dag.dax import read_dax, write_dax
from repro.dag.serialize import workflow_from_json, workflow_to_json
from repro.workloads import (
    chain_workflow,
    diamond_workflow,
    epigenomics,
    fork_join_workflow,
    linear_stage_workflow,
    montage,
    pagerank,
    random_layered_workflow,
    single_stage_workflow,
    tpch1,
    tpch6,
)

WORKLOADS = {
    "montage": lambda: montage("S", seed=0),
    "epigenomics": lambda: epigenomics("S").generate(0),
    "tpch1": lambda: tpch1("S").generate(0),
    "tpch6": lambda: tpch6("S").generate(0),
    "pagerank": lambda: pagerank("S").generate(0),
    "linear-single": lambda: single_stage_workflow(12, 30.0),
    "linear-staged": lambda: linear_stage_workflow([(4, 10.0), (8, 5.0), (2, 20.0)]),
    "synthetic-chain": lambda: chain_workflow(6),
    "synthetic-diamond": lambda: diamond_workflow(),
    "synthetic-forkjoin": lambda: fork_join_workflow(5),
    "synthetic-random": lambda: random_layered_workflow(seed=3),
}


def assert_same_structure(again, original):
    """Format-independent structural equality: ids, edges, task fields."""
    assert set(again.tasks) == set(original.tasks)
    for task_id, task in original.tasks.items():
        back = again.task(task_id)
        assert back.executable == task.executable
        assert back.runtime == pytest.approx(task.runtime)
        assert back.input_size == pytest.approx(task.input_size)
        assert back.output_size == pytest.approx(task.output_size)
        assert again.parents(task_id) == original.parents(task_id)
        assert again.children(task_id) == original.children(task_id)
    assert again.roots == original.roots


@pytest.mark.parametrize("name", sorted(WORKLOADS))
class TestRoundTrip:
    def test_json_round_trip(self, name):
        original = WORKLOADS[name]()
        again = workflow_from_json(workflow_to_json(original))
        assert_same_structure(again, original)
        # Native JSON is lossless: exact task equality and stages too.
        assert again.name == original.name
        for task_id, task in original.tasks.items():
            assert again.task(task_id) == task
        assert {
            stage.stage_id: tuple(stage.task_ids) for stage in again.stages
        } == {
            stage.stage_id: tuple(stage.task_ids) for stage in original.stages
        }

    def test_dax_round_trip(self, name):
        original = WORKLOADS[name]()
        again = read_dax(write_dax(original))
        assert again.name == original.name
        assert_same_structure(again, original)

    def test_json_round_trip_is_stable(self, name):
        """Serializing the deserialized workflow reproduces the bytes."""
        original = WORKLOADS[name]()
        text = workflow_to_json(original)
        assert workflow_to_json(workflow_from_json(text)) == text
