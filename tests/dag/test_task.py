"""Tests for the static task model."""

from __future__ import annotations

import pytest

from repro.dag import Task
from repro.util.validation import ValidationError


class TestTask:
    def test_valid_task(self):
        t = Task("t1", "prog", runtime=5.0, input_size=100.0, output_size=50.0)
        assert t.task_id == "t1"
        assert t.runtime == 5.0

    def test_defaults(self):
        t = Task("t1", "prog", runtime=1.0)
        assert t.input_size == 0.0
        assert t.output_size == 0.0

    def test_zero_runtime_allowed(self):
        # Zero-cost tasks exist (e.g. no-op barriers).
        Task("t1", "prog", runtime=0.0)

    def test_rejects_empty_id(self):
        with pytest.raises(ValueError, match="task_id"):
            Task("", "prog", runtime=1.0)

    def test_rejects_empty_executable(self):
        with pytest.raises(ValueError, match="executable"):
            Task("t1", "", runtime=1.0)

    @pytest.mark.parametrize("field", ["runtime", "input_size", "output_size"])
    def test_rejects_negative(self, field):
        kwargs = {"runtime": 1.0, "input_size": 0.0, "output_size": 0.0}
        kwargs[field] = -1.0
        with pytest.raises(ValidationError):
            Task("t1", "prog", **kwargs)

    def test_frozen(self):
        t = Task("t1", "prog", runtime=1.0)
        with pytest.raises(AttributeError):
            t.runtime = 2.0
