"""Tests for the stage model."""

from __future__ import annotations

import pytest

from repro.dag import Stage


class TestStage:
    def test_valid(self):
        s = Stage("map#0", "map", ("t1", "t2"))
        assert s.size == 2
        assert s.predecessor_stage_ids == frozenset()

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="no tasks"):
            Stage("map#0", "map", ())

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError, match="duplicate"):
            Stage("map#0", "map", ("t1", "t1"))

    def test_predecessors(self):
        s = Stage("r#0", "r", ("x",), predecessor_stage_ids=frozenset({"m#0"}))
        assert "m#0" in s.predecessor_stage_ids
