"""Tests for Pegasus DAX import/export."""

from __future__ import annotations

import pytest

from repro.dag.dax import read_dax, read_dax_file, write_dax, write_dax_file
from repro.workloads import epigenomics

SAMPLE_DAX = """<?xml version="1.0" encoding="UTF-8"?>
<adag xmlns="http://pegasus.isi.edu/schema/DAX" version="3.6" name="sample">
  <job id="ID0000001" name="fastqSplit" runtime="32.5">
    <uses file="chr21.fastq" link="input" size="2000000"/>
    <uses file="split.0" link="output" size="500000"/>
  </job>
  <job id="ID0000002" name="filterContams">
    <profile namespace="pegasus" key="runtime">1.5</profile>
    <uses file="split.0" link="input" size="500000"/>
  </job>
  <job id="ID0000003" name="filterContams">
    <profile namespace="pegasus" key="runtime">2.0</profile>
  </job>
  <child ref="ID0000002">
    <parent ref="ID0000001"/>
  </child>
  <child ref="ID0000003">
    <parent ref="ID0000001"/>
  </child>
</adag>
"""


class TestRead:
    def test_parses_jobs_and_edges(self):
        wf = read_dax(SAMPLE_DAX)
        assert wf.name == "sample"
        assert len(wf) == 3
        assert wf.parents("ID0000002") == frozenset({"ID0000001"})
        assert wf.roots == ("ID0000001",)

    def test_runtime_sources(self):
        wf = read_dax(SAMPLE_DAX)
        assert wf.task("ID0000001").runtime == 32.5  # attribute
        assert wf.task("ID0000002").runtime == 1.5  # pegasus profile

    def test_default_runtime(self):
        text = SAMPLE_DAX.replace(' runtime="32.5"', "")
        wf = read_dax(text, default_runtime=7.0)
        assert wf.task("ID0000001").runtime == 7.0

    def test_uses_sizes_summed(self):
        wf = read_dax(SAMPLE_DAX)
        task = wf.task("ID0000001")
        assert task.input_size == 2_000_000.0
        assert task.output_size == 500_000.0

    def test_stage_inference_from_dax(self):
        wf = read_dax(SAMPLE_DAX)
        # The two filterContams jobs share executable + predecessors.
        assert wf.stage_of["ID0000002"] == wf.stage_of["ID0000003"]

    def test_rejects_non_dax(self):
        with pytest.raises(ValueError, match="not a DAX"):
            read_dax("<workflow/>")

    def test_rejects_missing_refs(self):
        bad = SAMPLE_DAX.replace('<child ref="ID0000002">', "<child>")
        with pytest.raises(ValueError, match="without ref"):
            read_dax(bad)

    def test_parent_without_ref_names_the_child(self):
        bad = SAMPLE_DAX.replace('<parent ref="ID0000001"/>', "<parent/>", 1)
        with pytest.raises(
            ValueError, match="under <child ref='ID0000002'> without ref"
        ):
            read_dax(bad)

    def test_dangling_child_ref_names_the_job(self):
        bad = SAMPLE_DAX.replace(
            '<child ref="ID0000002">', '<child ref="ID9999999">'
        )
        with pytest.raises(
            ValueError,
            match="<child ref='ID9999999'> references a job that is not declared",
        ):
            read_dax(bad)

    def test_dangling_parent_ref_names_parent_and_child(self):
        bad = SAMPLE_DAX.replace(
            '<parent ref="ID0000001"/>', '<parent ref="ID8888888"/>', 1
        )
        with pytest.raises(
            ValueError,
            match="<parent ref='ID8888888'> under <child ref='ID0000002'>",
        ):
            read_dax(bad)

    def test_cycle_names_the_document(self):
        from repro.dag.workflow import CycleError

        cyclic = SAMPLE_DAX.replace(
            "</adag>",
            '<child ref="ID0000001"><parent ref="ID0000002"/></child></adag>',
        )
        with pytest.raises(CycleError, match="'sample' is not acyclic"):
            read_dax(cyclic)


class TestRoundTrip:
    def test_simple_round_trip(self, two_stage):
        wf = read_dax(write_dax(two_stage))
        assert wf.name == two_stage.name
        assert set(wf.tasks) == set(two_stage.tasks)
        for tid, task in two_stage.tasks.items():
            again = wf.task(tid)
            assert again.runtime == task.runtime
            assert again.executable == task.executable
            assert again.input_size == task.input_size
            assert wf.parents(tid) == two_stage.parents(tid)

    def test_table1_workflow_round_trip(self):
        original = epigenomics("S").generate(seed=0)
        wf = read_dax(write_dax(original))
        assert len(wf) == len(original)
        assert len(wf.stages) == len(original.stages)
        assert wf.total_work == pytest.approx(original.total_work)

    def test_file_round_trip(self, tmp_path, diamond):
        path = tmp_path / "wf.dax"
        write_dax_file(diamond, path)
        wf = read_dax_file(path)
        assert set(wf.tasks) == set(diamond.tasks)

    def test_round_tripped_workflow_runs(self, two_stage, small_site, fixed_pool):
        from repro.engine import Simulation

        wf = read_dax(write_dax(two_stage))
        result = Simulation(wf, small_site, fixed_pool(2), 60.0).run()
        assert result.completed
