"""Tests for native JSON workflow serialization."""

from __future__ import annotations

import pytest

from repro.dag.serialize import (
    load_workflow,
    save_workflow,
    workflow_from_json,
    workflow_to_json,
)
from repro.workloads import pagerank


class TestRoundTrip:
    def test_exact_field_round_trip(self, two_stage):
        again = workflow_from_json(workflow_to_json(two_stage))
        assert again.name == two_stage.name
        for tid, task in two_stage.tasks.items():
            t2 = again.task(tid)
            assert t2 == task  # frozen dataclass equality: every field
        for tid in two_stage.tasks:
            assert again.parents(tid) == two_stage.parents(tid)

    def test_stages_preserved(self):
        wf = pagerank("S").generate(0)
        again = workflow_from_json(workflow_to_json(wf))
        assert len(again.stages) == len(wf.stages)
        assert again.total_work == pytest.approx(wf.total_work)

    def test_file_round_trip(self, tmp_path, diamond):
        path = tmp_path / "wf.json"
        save_workflow(diamond, path)
        assert load_workflow(path).topological_order() == diamond.topological_order()

    def test_version_check(self):
        with pytest.raises(ValueError, match="format version"):
            workflow_from_json('{"format_version": 42}')

    def test_defaults_for_missing_sizes(self):
        text = (
            '{"format_version": 1, "name": "t", '
            '"tasks": [{"id": "a", "executable": "x", "runtime": 1.0}], '
            '"edges": []}'
        )
        wf = workflow_from_json(text)
        assert wf.task("a").input_size == 0.0
