"""Tests for the workflow DAG model: validation, order, stage inference."""

from __future__ import annotations

import pytest

from repro.dag import CycleError, Task, Workflow


def make(tasks, edges=()):
    return Workflow("t", tasks, edges)


def simple_tasks(*ids, runtime=1.0):
    return [Task(i, i, runtime=runtime) for i in ids]


class TestConstruction:
    def test_requires_name(self):
        with pytest.raises(ValueError, match="name"):
            Workflow("", simple_tasks("a"))

    def test_requires_tasks(self):
        with pytest.raises(ValueError, match="at least one task"):
            Workflow("t", [])

    def test_rejects_duplicate_ids(self):
        with pytest.raises(ValueError, match="duplicate"):
            make(simple_tasks("a") + simple_tasks("a"))

    def test_rejects_unknown_edge_endpoints(self):
        with pytest.raises(ValueError, match="not a task"):
            make(simple_tasks("a"), [("a", "ghost")])
        with pytest.raises(ValueError, match="not a task"):
            make(simple_tasks("a"), [("ghost", "a")])

    def test_rejects_self_edge(self):
        with pytest.raises(ValueError, match="self-edge"):
            make(simple_tasks("a"), [("a", "a")])

    def test_rejects_cycle(self):
        with pytest.raises(CycleError):
            make(simple_tasks("a", "b"), [("a", "b"), ("b", "a")])

    def test_duplicate_edges_coalesce(self):
        wf = make(simple_tasks("a", "b"), [("a", "b"), ("a", "b")])
        assert wf.parents("b") == frozenset({"a"})


class TestStructure:
    def test_roots_and_leaves(self, diamond):
        assert diamond.roots == ("a",)
        assert diamond.leaves == ("d",)

    def test_parents_children(self, diamond):
        assert diamond.parents("d") == frozenset({"b", "c"})
        assert diamond.children("a") == frozenset({"b", "c"})

    def test_topological_order_valid(self, diamond):
        order = diamond.topological_order()
        position = {tid: i for i, tid in enumerate(order)}
        for tid in order:
            for parent in diamond.parents(tid):
                assert position[parent] < position[tid]

    def test_topological_order_deterministic(self, diamond):
        assert diamond.topological_order() == ("a", "b", "c", "d")

    def test_iteration_topological(self, diamond):
        assert [t.task_id for t in diamond] == list(diamond.topological_order())

    def test_len_contains(self, diamond):
        assert len(diamond) == 4
        assert "a" in diamond
        assert "zzz" not in diamond

    def test_total_work(self, diamond):
        assert diamond.total_work == pytest.approx(40.0)


class TestStageInference:
    def test_same_executable_same_parents_grouped(self, two_stage):
        by_id = {s.stage_id: s for s in two_stage.stages}
        assert len(two_stage.stages) == 3
        map_stage = next(s for s in two_stage.stages if s.executable == "map")
        assert map_stage.size == 6

    def test_stage_of_covers_all_tasks(self, two_stage):
        assert set(two_stage.stage_of) == set(two_stage.tasks)

    def test_same_executable_different_parents_split(self):
        # Two "work" groups with different predecessor stages must be
        # distinct stages.
        tasks = simple_tasks("r1", "r2") + [
            Task("w1", "work", runtime=1.0),
            Task("w2", "work", runtime=1.0),
        ]
        wf = Workflow("t", tasks, [("r1", "w1"), ("r2", "w2")])
        stages = {s.stage_id for s in wf.stages}
        assert wf.stage_of["w1"] != wf.stage_of["w2"]
        assert len(stages) == 4

    def test_one_to_one_chains_share_stage(self):
        # A per-chunk pipeline: b_i depends only on a_i, but all b share
        # the a-stage as predecessor, so they form one stage.
        tasks = [Task(f"a{i}", "a", runtime=1.0) for i in range(3)]
        tasks += [Task(f"b{i}", "b", runtime=1.0) for i in range(3)]
        wf = Workflow("t", tasks, [(f"a{i}", f"b{i}") for i in range(3)])
        b_stages = {wf.stage_of[f"b{i}"] for i in range(3)}
        assert len(b_stages) == 1

    def test_predecessor_stage_ids(self, two_stage):
        map_stage = next(s for s in two_stage.stages if s.executable == "map")
        assert map_stage.predecessor_stage_ids == frozenset(
            {two_stage.stage_of["split"]}
        )

    def test_stage_lookup(self, two_stage):
        sid = two_stage.stage_of["merge"]
        assert two_stage.stage(sid).executable == "merge"
        with pytest.raises(KeyError):
            two_stage.stage("nope")
