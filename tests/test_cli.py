"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "tpch6-S"])
        assert args.policy == "wire"
        assert args.charging_unit == 60.0


class TestCommands:
    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "genome-S" in out and "tpch6-L" in out

    def test_run(self, capsys):
        assert main(["run", "tpch6-S", "--policy", "pure-reactive"]) == 0
        out = capsys.readouterr().out
        assert "pure-reactive" in out
        assert "units" in out

    def test_run_with_pool_chart(self, capsys):
        assert main(["run", "tpch6-S", "--pool-chart"]) == 0
        assert "time ->" in capsys.readouterr().out

    def test_run_svg_export(self, capsys, tmp_path):
        base = tmp_path / "run"
        assert main(["run", "tpch6-S", "--svg", str(base)]) == 0
        assert (tmp_path / "run.pool.svg").exists()
        assert (tmp_path / "run.gantt.svg").exists()

    def test_unknown_workload_exits(self):
        with pytest.raises(SystemExit, match="unknown workload"):
            main(["run", "nope"])

    def test_unknown_policy_exits(self):
        with pytest.raises(SystemExit, match="unknown policy"):
            main(["run", "tpch6-S", "--policy", "nope"])

    def test_compare(self, capsys):
        assert main(["compare", "tpch6-S"]) == 0
        out = capsys.readouterr().out
        for policy in ("full-site", "pure-reactive", "reactive-conserving", "wire"):
            assert policy in out

    def test_compare_with_oracle(self, capsys):
        assert main(["compare", "tpch6-S", "--oracle"]) == 0
        assert "oracle" in capsys.readouterr().out

    def test_analyze(self, capsys):
        assert main(["analyze", "genome-S"]) == 0
        out = capsys.readouterr().out
        assert "critical path" in out
        assert "parallelism by DAG level" in out

    def test_run_with_deadline(self, capsys):
        assert main(["run", "tpch6-S", "--deadline", "1200"]) == 0
        assert "deadline" in capsys.readouterr().out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "405/405" in capsys.readouterr().out

    def test_fig2_small(self, capsys):
        assert main(["fig2", "--n-tasks", "10"]) == 0
        assert "cost/optimal" in capsys.readouterr().out

    def test_fig5_subset(self, capsys):
        assert (
            main(["fig5", "--workloads", "tpch6-S", "--repetitions", "1"]) == 0
        )
        out = capsys.readouterr().out
        assert "Figure 5" in out and "Figure 6" in out

    def test_dax_round_trip(self, capsys, tmp_path):
        path = tmp_path / "wf.dax"
        assert main(["dax", "export", "tpch6-S", "--out", str(path)]) == 0
        assert path.exists()
        assert main(["dax", "run", str(path), "--policy", "wire"]) == 0
        assert "wire" in capsys.readouterr().out

    def test_run_explain(self, capsys):
        assert main(["run", "tpch1-S", "--explain"]) == 0
        out = capsys.readouterr().out
        assert "MAPE iterations" in out
        assert "target" in out

    def test_explain_requires_wire(self, capsys):
        assert main(["run", "tpch6-S", "--policy", "full-site", "--explain"]) == 0
        assert "--explain requires" in capsys.readouterr().out

    def test_fig3_small(self, capsys):
        assert main(["fig3", "--n-tasks", "10"]) == 0
        assert "time/optimal" in capsys.readouterr().out

    def test_fig4_subset(self, capsys):
        assert main(
            ["fig4", "--workloads", "tpch6-S", "--orders", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "within threshold" in out

    def test_overhead_command(self, capsys):
        assert main(["overhead"]) == 0
        assert "controller time" in capsys.readouterr().out


class TestChaosCommands:
    def test_run_with_chaos_reports_faults(self, capsys):
        assert main(
            [
                "run",
                "tpch6-S",
                "--policy",
                "pure-reactive",
                "--chaos",
                "revocations=40,stragglers=0.4,blackouts=0.3",
                "--seed",
                "6",
            ]
        ) == 0
        assert "cloud faults injected" in capsys.readouterr().out

    def test_run_with_disabled_chaos_spec_is_silent(self, capsys):
        assert main(["run", "tpch6-S", "--chaos", ""]) == 0
        assert "cloud faults" not in capsys.readouterr().out

    def test_bad_chaos_spec_exits(self):
        with pytest.raises(SystemExit, match="bad --chaos value"):
            main(["run", "tpch6-S", "--chaos", "bogus=1"])

    def test_chaos_trace_summarizes_fault_table(self, capsys, tmp_path):
        trace = tmp_path / "chaos.jsonl"
        assert main(
            [
                "run",
                "tpch6-S",
                "--policy",
                "pure-reactive",
                "--chaos",
                "revocations=40,blackouts=0.3",
                "--seed",
                "6",
                "--trace",
                str(trace),
            ]
        ) == 0
        capsys.readouterr()
        assert main(["trace", "summarize", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "cloud fault" in out

    def test_robustness_subcommand(self, capsys, tmp_path):
        out_file = tmp_path / "rows.json"
        assert main(
            [
                "robustness",
                "--workloads",
                "tpch6-S",
                "--noise",
                "0.0",
                "--faults",
                "0.0",
                "--chaos",
                "revocations=30",
                "--out",
                str(out_file),
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "robustness under degradation" in out
        assert "none" in out and "rev30" in out
        assert out_file.exists()

    def test_campaign_with_chaos(self, capsys, tmp_path):
        store = tmp_path / "store.json"
        assert main(
            [
                "campaign",
                "--store",
                str(store),
                "--workloads",
                "tpch6-S",
                "--policies",
                "pure-reactive",
                "--charging-units",
                "60",
                "--chaos",
                "revocations=30",
            ]
        ) == 0
        assert store.exists()


class TestArgumentValidation:
    """Negative seeds and non-positive counts are argparse errors."""

    @pytest.mark.parametrize("argv", [
        ["run", "tpch6-S", "--seed", "-1"],
        ["campaign", "--jobs", "0"],
        ["campaign", "--jobs", "-2"],
        ["campaign", "--save-every", "0"],
        ["campaign", "--repetitions", "0"],
        ["robustness", "--seed", "-5"],
        ["compare", "tpch6-S", "--seed", "-1"],
        ["table1", "--seed", "-1"],
        ["fleet", "--seed", "-1"],
        ["fleet", "--jobs", "0"],
        ["fleet", "--n", "0"],
    ])
    def test_rejected_by_parser(self, argv, capsys):
        with pytest.raises(SystemExit) as exc:
            main(argv)
        assert exc.value.code == 2  # argparse usage error
        err = capsys.readouterr().err
        assert "must be >=" in err

    def test_seed_zero_accepted(self):
        args = build_parser().parse_args(["run", "tpch6-S", "--seed", "0"])
        assert args.seed == 0


class TestTraceSummarizeErrors:
    """`trace summarize` exits cleanly on empty/truncated/missing traces."""

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("", encoding="utf-8")
        with pytest.raises(SystemExit, match="contains no records"):
            main(["trace", "summarize", str(path)])

    def test_truncated_trace(self, tmp_path):
        path = tmp_path / "trunc.jsonl"
        path.write_text('{"kind": "run_meta", "now": 0.0', encoding="utf-8")
        with pytest.raises(SystemExit, match="truncated or corrupt"):
            main(["trace", "summarize", str(path)])

    def test_missing_trace(self, tmp_path):
        with pytest.raises(SystemExit, match="not found"):
            main(["trace", "summarize", str(tmp_path / "nope.jsonl")])

    def test_garbage_line_reports_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json at all\n", encoding="utf-8")
        with pytest.raises(SystemExit, match="bad.jsonl:1"):
            main(["trace", "summarize", str(path)])


class TestFleetCommand:
    def test_fleet_run(self, capsys):
        assert main([
            "fleet", "--arrival", "poisson", "--rate", "6", "--n", "2",
            "--workloads", "tpch6-S", "--seed", "3",
        ]) == 0
        out = capsys.readouterr().out
        assert "t00" in out and "t01" in out
        assert "fleet totals" in out

    def test_fleet_summary_json_deterministic(self, capsys, tmp_path):
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        for path in (a, b):
            assert main([
                "fleet", "--n", "2", "--workloads", "tpch6-S",
                "--seed", "3", "--summary-json", str(path),
            ]) == 0
        assert a.read_bytes() == b.read_bytes()

    def test_fleet_trace_then_summarize(self, capsys, tmp_path):
        trace = tmp_path / "fleet.jsonl"
        assert main([
            "fleet", "--n", "2", "--workloads", "tpch6-S",
            "--seed", "3", "--trace", str(trace),
        ]) == 0
        capsys.readouterr()
        assert main(["trace", "summarize", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "per-tenant metrics" in out

    def test_fleet_sweep(self, capsys):
        assert main([
            "fleet", "--rates", "6", "12", "--n", "2",
            "--workloads", "tpch6-S", "--jobs", "1",
        ]) == 0
        assert "fleet sweep" in capsys.readouterr().out

    def test_fleet_bad_arrival_args(self):
        with pytest.raises(SystemExit, match="times"):
            main(["fleet", "--arrival", "trace", "--n", "2"])


class TestValidateCommand:
    def test_run_with_validation_enabled(self, capsys):
        # the raise-mode checker rides along without changing the output
        assert main(["run", "tpch6-S", "--validate"]) == 0
        assert "units" in capsys.readouterr().out

    def test_fleet_with_validation_enabled(self, capsys):
        assert main([
            "fleet", "--n", "2", "--workloads", "tpch6-S",
            "--seed", "3", "--validate",
        ]) == 0
        assert "fleet totals" in capsys.readouterr().out

    def test_validate_quick_sweep(self, capsys, tmp_path):
        out = tmp_path / "summary.json"
        assert main([
            "validate", "--quick", "--seeds", "1", "--kind", "single",
            "--out", str(out),
        ]) == 0
        assert "zero violations" in capsys.readouterr().out
        assert out.exists()

    def test_validate_defaults(self):
        args = build_parser().parse_args(["validate"])
        assert args.seeds == 2
        assert args.kind == "all"
        assert not args.quick and not args.shallow


class TestZooCommands:
    def test_zoo_list(self, capsys):
        assert main(["zoo", "list"]) == 0
        out = capsys.readouterr().out
        assert "zoo/montage-small" in out
        assert "builtin workloads:" in out and "tpch6-S" in out

    def test_zoo_describe(self, capsys):
        assert main(["zoo", "describe", "montage-small"]) == 0
        out = capsys.readouterr().out
        assert "per-stage trace statistics" in out
        assert "mProject" in out

    def test_zoo_describe_unknown_exits(self):
        with pytest.raises(SystemExit, match="unknown workload"):
            main(["zoo", "describe", "not-an-instance"])

    def test_zoo_import_file(self, capsys, tmp_path):
        from repro.zoo.registry import zoo_instance_path

        dax_out = tmp_path / "out.dax"
        assert main([
            "zoo", "import", str(zoo_instance_path("blast-small")),
            "--dax", str(dax_out),
        ]) == 0
        out = capsys.readouterr().out
        assert "imported 'blast-small'" in out
        assert dax_out.exists()

    def test_zoo_import_rejects_broken_file(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text('{"workflow": {"tasks": []}}', encoding="utf-8")
        with pytest.raises(SystemExit, match="declares no tasks"):
            main(["zoo", "import", str(bad)])

    def test_zoo_calibrate_report(self, capsys):
        assert main(["zoo", "calibrate", "montage-small", "--report"]) == 0
        out = capsys.readouterr().out
        assert "calibration of montage-small" in out
        assert "max relative error" in out

    def test_zoo_calibrate_out_and_scale(self, capsys, tmp_path):
        from repro.zoo import spec_from_json

        spec_path = tmp_path / "spec.json"
        assert main([
            "zoo", "calibrate", "seismology-small",
            "--scale", "2", "--out", str(spec_path),
        ]) == 0
        spec = spec_from_json(spec_path.read_text(encoding="utf-8"))
        assert spec.name.endswith("-x2")

    def test_run_zoo_workload(self, capsys):
        assert main(["run", "zoo/seismology-small", "--validate"]) == 0
        assert "zoo/seismology-small" in capsys.readouterr().out

    def test_unknown_workload_lists_zoo_names(self):
        with pytest.raises(SystemExit, match="zoo/montage-small"):
            main(["run", "definitely-not-real"])

    def test_fleet_rejects_unknown_workload_cleanly(self):
        with pytest.raises(SystemExit, match="choose one of"):
            main(["fleet", "--n", "2", "--workloads", "zoo/nope"])

    def test_fleet_runs_zoo_workload(self, capsys):
        assert main([
            "fleet", "--n", "2", "--workloads", "zoo/seismology-small",
            "--validate",
        ]) == 0
        assert "zoo/seismology-small" in capsys.readouterr().out

    def test_campaign_with_zoo_workload_and_validate(self, capsys, tmp_path):
        store = tmp_path / "campaign.json"
        assert main([
            "campaign", "--store", str(store),
            "--workloads", "zoo/seismology-small",
            "--policies", "wire", "--charging-units", "60", "--validate",
        ]) == 0
        assert "2 cells" not in capsys.readouterr().out  # 1 cell matrix
        assert store.exists()
