"""Tests for ASCII and SVG run visualizations."""

from __future__ import annotations

import xml.etree.ElementTree as ET

import pytest

from repro.engine import Simulation
from repro.reporting import gantt_ascii, gantt_svg, pool_ascii, pool_svg, save_svg


@pytest.fixture(scope="module")
def result():
    from repro.autoscalers import WireAutoscaler
    from repro.cloud import CloudSite, InstanceType
    from repro.workloads import linear_stage_workflow

    site = CloudSite(
        name="viz", itype=InstanceType("v", slots=2), max_instances=4, lag=10.0
    )
    wf = linear_stage_workflow([(8, 60.0), (1, 30.0)])
    return Simulation(wf, site, WireAutoscaler(), 60.0).run()


class TestAscii:
    def test_pool_chart_dimensions(self, result):
        text = pool_ascii(result, width=40)
        lines = text.splitlines()
        peak = max(c for _, c in result.pool_timeline)
        assert len(lines) == peak + 2  # levels + axis + label
        assert all("#" in line for line in lines[:peak])

    def test_gantt_has_lane_per_instance(self, result):
        text = gantt_ascii(result, width=40)
        instances = {a.instance_id for a in result.monitor.all_attempts()}
        for instance_id in instances:
            assert instance_id in text

    def test_gantt_marks_busy_time(self, result):
        assert "#" in gantt_ascii(result)

    def test_empty_timeline_handled(self, result):
        from dataclasses import replace

        empty = replace(result, pool_timeline=[])
        assert "no pool changes" in pool_ascii(empty)


class TestSvg:
    def test_pool_svg_is_valid_xml(self, result):
        root = ET.fromstring(pool_svg(result))
        assert root.tag.endswith("svg")

    def test_gantt_svg_is_valid_xml_with_bars(self, result):
        root = ET.fromstring(gantt_svg(result))
        rects = root.findall(".//{http://www.w3.org/2000/svg}rect")
        assert len(rects) > len(result.monitor.attempts("stage00-0000"))

    def test_gantt_svg_phases_colored(self, result):
        svg = gantt_svg(result)
        assert "#219ebc" in svg  # execute phase color

    def test_save_svg(self, result, tmp_path):
        path = tmp_path / "pool.svg"
        save_svg(pool_svg(result), path)
        assert path.read_text().startswith("<svg")
