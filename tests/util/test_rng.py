"""Tests for the deterministic RNG plumbing."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.util.rng import RngStream, derive_seed, spawn_rng


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(42, "x") == derive_seed(42, "x")

    def test_label_sensitivity(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")

    def test_seed_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_nearby_seeds_unrelated(self):
        # SHA-based derivation: consecutive parents give unrelated children.
        children = {derive_seed(s, "label") for s in range(100)}
        assert len(children) == 100

    @given(st.integers(min_value=0, max_value=2**62), st.text(max_size=50))
    def test_range(self, seed, label):
        value = derive_seed(seed, label)
        assert 0 <= value < 2**63


class TestSpawnRng:
    def test_same_inputs_same_stream(self):
        a = spawn_rng(7, "w").random(5)
        b = spawn_rng(7, "w").random(5)
        assert (a == b).all()

    def test_different_labels_differ(self):
        a = spawn_rng(7, "w").random(5)
        b = spawn_rng(7, "v").random(5)
        assert (a != b).any()


class TestRngStream:
    def test_child_streams_independent(self):
        root = RngStream(seed=3)
        a = root.child("a").generator().random()
        b = root.child("b").generator().random()
        assert a != b

    def test_child_deterministic(self):
        assert (
            RngStream(seed=3).child("x").generator().random()
            == RngStream(seed=3).child("x").generator().random()
        )

    def test_generator_cached(self):
        stream = RngStream(seed=1)
        assert stream.generator() is stream.generator()

    def test_fork_restarts_sequence(self):
        stream = RngStream(seed=5)
        first = stream.fork().random(3)
        second = stream.fork().random(3)
        assert (first == second).all()

    def test_nested_children(self):
        root = RngStream(seed=9)
        inner_a = root.child("a").child("deep").generator().random()
        inner_b = root.child("b").child("deep").generator().random()
        assert inner_a != inner_b
