"""Tests for text formatting helpers."""

from __future__ import annotations

import pytest

from repro.util.formatting import format_duration, render_table


class TestFormatDuration:
    @pytest.mark.parametrize(
        "seconds,expected",
        [
            (0.0, "0.0s"),
            (42.0, "42.0s"),
            (119.9, "119.9s"),
            (180.0, "3m00s"),
            (3900.0, "65m00s"),
            (7260.0, "2h01m"),
            (-30.0, "-30.0s"),
        ],
    )
    def test_examples(self, seconds, expected):
        assert format_duration(seconds) == expected

    def test_rounding_does_not_overflow_minutes(self):
        # 2h59m59.9s must not render as "2h60m".
        assert format_duration(2 * 3600 + 59 * 60 + 59.9) == "3h00m"


class TestRenderTable:
    def test_alignment_and_floats(self):
        text = render_table(["name", "value"], [["a", 1.23456], ["bbbb", 2]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "1.235" in text  # three-decimal float formatting
        assert "2" in lines[3]

    def test_title(self):
        text = render_table(["h"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError, match="2 cells"):
            render_table(["a"], [[1, 2]])

    def test_empty_rows_ok(self):
        text = render_table(["a", "b"], [])
        assert len(text.splitlines()) == 2  # header + rule

    def test_wide_cells_expand_columns(self):
        text = render_table(["h"], [["wide-content-here"]])
        header, rule, row = text.splitlines()
        assert len(rule) >= len("wide-content-here")
