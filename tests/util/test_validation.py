"""Tests for argument validation helpers."""

from __future__ import annotations

import math

import pytest

from repro.util.validation import (
    ValidationError,
    check_finite,
    check_in_range,
    check_non_negative,
    check_positive,
    check_type,
)


class TestCheckType:
    def test_accepts_matching(self):
        check_type("x", 3, int)
        check_type("x", "s", str)

    def test_rejects_mismatch(self):
        with pytest.raises(ValidationError, match="x must be"):
            check_type("x", "3", int)

    def test_rejects_bool_for_numeric(self):
        with pytest.raises(ValidationError, match="bool"):
            check_type("flag", True, int)
        with pytest.raises(ValidationError, match="bool"):
            check_type("flag", False, (int, float))


class TestCheckFinite:
    def test_accepts_numbers(self):
        check_finite("x", 0.0)
        check_finite("x", -1)

    @pytest.mark.parametrize("bad", [math.inf, -math.inf, math.nan])
    def test_rejects_non_finite(self, bad):
        with pytest.raises(ValidationError):
            check_finite("x", bad)

    def test_rejects_non_numeric(self):
        with pytest.raises(ValidationError):
            check_finite("x", "1.0")


class TestCheckPositive:
    def test_accepts_positive(self):
        check_positive("x", 0.001)

    @pytest.mark.parametrize("bad", [0, 0.0, -1.5])
    def test_rejects_non_positive(self, bad):
        with pytest.raises(ValidationError, match="> 0"):
            check_positive("x", bad)


class TestCheckNonNegative:
    def test_accepts_zero(self):
        check_non_negative("x", 0.0)

    def test_rejects_negative(self):
        with pytest.raises(ValidationError, match=">= 0"):
            check_non_negative("x", -0.1)


class TestCheckInRange:
    def test_inclusive_bounds(self):
        check_in_range("x", 0.0, 0.0, 1.0)
        check_in_range("x", 1.0, 0.0, 1.0)

    def test_exclusive_bounds(self):
        with pytest.raises(ValidationError):
            check_in_range("x", 0.0, 0.0, 1.0, inclusive=False)
        check_in_range("x", 0.5, 0.0, 1.0, inclusive=False)

    def test_out_of_range(self):
        with pytest.raises(ValidationError, match=r"\[0.0, 1.0\]"):
            check_in_range("x", 1.5, 0.0, 1.0)
