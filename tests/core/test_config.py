"""Tests for WIRE configuration validation."""

from __future__ import annotations

import pytest

from repro.core import WireConfig


class TestDefaults:
    def test_paper_values(self):
        config = WireConfig()
        assert config.restart_threshold_fraction == 0.2
        assert config.learning_rate == 0.1
        assert config.boost_k == 5
        assert config.use_median is True
        assert config.transfer_window == 1
        assert config.lookahead is True
        assert config.ogd_epochs_per_update == 1


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"restart_threshold_fraction": -0.1},
            {"restart_threshold_fraction": 1.5},
            {"learning_rate": 0.0},
            {"ogd_epochs_per_update": 0},
            {"input_size_rtol": 2.0},
            {"transfer_window": 0},
            {"boost_k": -1},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(Exception):
            WireConfig(**kwargs)

    def test_frozen(self):
        config = WireConfig()
        with pytest.raises(Exception):
            config.learning_rate = 0.5
