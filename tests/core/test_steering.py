"""Tests for Algorithms 2 and 3 (the resource-steering policy)."""

from __future__ import annotations

import pytest

from repro.core import SteerableInstance, SteeringPolicy, resize_pool


class TestResizePoolAlgorithm3:
    def test_empty_load(self):
        assert resize_pool([], 60.0, 4) == 0

    def test_single_short_task_still_one_instance(self):
        # p == 0 -> line 28 guarantees one instance while work remains.
        assert resize_pool([5.0], 60.0, 4) == 1

    def test_task_longer_than_unit_per_slot(self):
        # Tasks >= u: each group of l tasks fills an instance's first unit,
        # so p = N / l — maximal parallelism (§III-A's goal).
        assert resize_pool([100.0] * 8, 60.0, 4) == 2
        assert resize_pool([100.0] * 12, 60.0, 4) == 3

    def test_short_tasks_pack_many_per_instance(self):
        # 30s tasks on 1 slot, u=60: two tasks per instance-unit.
        assert resize_pool([30.0] * 10, 60.0, 1) == 5

    def test_paper_growth_arithmetic(self):
        # §III-E: N tasks at estimate tau with 1 slot -> p ~= N*tau/U while
        # tau << U (many tasks per unit).
        n, u = 100, 60.0
        for tau in (6.0, 12.0, 30.0):
            expected = int(n // (u // tau + (0 if u % tau == 0 else 1)))
            p = resize_pool([tau] * n, u, 1)
            assert abs(p - expected) <= 1

    def test_tail_threshold_adds_instance(self):
        # Leftover task above 0.2u forces one more instance...
        assert resize_pool([100.0] * 4 + [13.0], 60.0, 4) == 2
        # ...but a trivial leftover does not.
        assert resize_pool([100.0] * 4 + [5.0], 60.0, 4) == 1

    def test_zero_remaining_tasks_pack_free(self):
        # Tasks about to complete consume no capacity.
        assert resize_pool([0.0] * 100 + [100.0] * 4, 60.0, 4) == 1

    def test_custom_threshold(self):
        # With threshold 0.5, a 13s leftover (<30s) no longer triggers.
        assert (
            resize_pool([100.0] * 4 + [13.0], 60.0, 4, tail_threshold_fraction=0.5)
            == 1
        )

    def test_partial_fill_below_unit(self):
        # Total work far below one charging unit -> single instance.
        assert resize_pool([5.0] * 4, 900.0, 4) == 1

    def test_validation(self):
        with pytest.raises(Exception):
            resize_pool([1.0], 0.0, 4)
        with pytest.raises(ValueError):
            resize_pool([1.0], 60.0, 0)
        with pytest.raises(Exception):
            resize_pool([1.0], 60.0, 4, tail_threshold_fraction=2.0)


def make_instances(specs):
    return [
        SteerableInstance(instance_id=f"vm-{i}", time_to_next_charge=r, restart_cost=c)
        for i, (r, c) in enumerate(specs)
    ]


def decide(policy, upcoming, instances, *, pending=0, u=60.0, lag=180.0,
           lo=1, hi=12, slots=4, now=1000.0):
    return policy.decide(
        now=now,
        upcoming_remaining=upcoming,
        instances=instances,
        pending_count=pending,
        charging_unit=u,
        lag=lag,
        slots_per_instance=slots,
        min_instances=lo,
        max_instances=hi,
    )


class TestSteeringAlgorithm2:
    def test_grow_when_target_exceeds_pool(self):
        policy = SteeringPolicy()
        instances = make_instances([(30.0, 0.0)])
        d = decide(policy, [100.0] * 12, instances)
        assert d.launch == 2  # target 3, have 1

    def test_pending_counts_toward_pool(self):
        policy = SteeringPolicy()
        instances = make_instances([(30.0, 0.0)])
        d = decide(policy, [100.0] * 12, instances, pending=2)
        assert d.is_noop

    def test_shrink_releases_at_charge_boundary(self):
        policy = SteeringPolicy()
        instances = make_instances([(30.0, 0.0), (50.0, 0.0), (40.0, 0.0)])
        d = decide(policy, [10.0], instances)
        assert d.launch == 0
        assert len(d.terminations) == 2
        by_id = {o.instance_id: o.at for o in d.terminations}
        # Released exactly at now + r_j.
        assert by_id["vm-0"] == pytest.approx(1030.0)

    def test_shrink_skips_expensive_restarts(self):
        policy = SteeringPolicy()
        # restart cost above 0.2*60=12 protects the instance.
        instances = make_instances([(30.0, 20.0), (30.0, 5.0)])
        d = decide(policy, [10.0], instances)
        assert len(d.terminations) == 1
        assert d.terminations[0].instance_id == "vm-1"

    def test_shrink_skips_distant_boundaries(self):
        policy = SteeringPolicy()
        # r_j > lag: the unit does not expire before the next interval.
        instances = make_instances([(500.0, 0.0), (30.0, 0.0)])
        d = decide(policy, [10.0], instances, lag=180.0)
        assert len(d.terminations) == 1
        assert d.terminations[0].instance_id == "vm-1"

    def test_release_order_minimizes_restart_cost(self):
        policy = SteeringPolicy()
        instances = make_instances([(30.0, 10.0), (30.0, 0.0), (30.0, 5.0)])
        d = decide(policy, [10.0], instances, lo=1)
        # Shrinking 3 -> 1 releases the two cheapest.
        released = [o.instance_id for o in d.terminations]
        assert released == ["vm-1", "vm-2"]

    def test_min_instances_floor(self):
        policy = SteeringPolicy()
        instances = make_instances([(30.0, 0.0), (30.0, 0.0)])
        d = decide(policy, [], instances, lo=2)
        assert d.is_noop

    def test_max_instances_cap(self):
        policy = SteeringPolicy()
        instances = make_instances([(30.0, 0.0)])
        d = decide(policy, [1000.0] * 400, instances, hi=12, slots=4)
        assert d.launch == 11

    def test_empty_load_retains_minimal_pool(self):
        policy = SteeringPolicy()
        instances = make_instances([(30.0, 0.0), (30.0, 0.0), (30.0, 0.0)])
        d = decide(policy, [], instances, lo=1)
        assert len(d.terminations) == 2

    def test_threshold_configurable(self):
        strict = SteeringPolicy(restart_threshold_fraction=0.0)
        instances = make_instances([(30.0, 1.0)])
        d = decide(strict, [1.0], instances + make_instances([(30.0, 0.0)]))
        # With threshold 0, any sunk cost protects an instance.
        released = {o.instance_id for o in d.terminations}
        assert released == {"vm-0"}  # the zero-cost one (ids renumbered)
