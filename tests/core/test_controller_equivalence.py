"""Differential suites for the controller fast paths.

The optimized controller keeps three caches that must be *invisible* in
the outputs: the lookahead simulator's persistent completion topology,
the vectorized Algorithm 3 crossing walk, and the Policy-4/5 evaluation
memos keyed on ``(completed-version, model generation)``. Each suite
here pits a fast path against its exact reference under hypothesis:

1. incremental ≡ from-scratch projection over evolving tick sequences,
   covering the rebuild path (no delta metadata), the adoption path
   (``unfinished_parents``/``completed_count``), the legacy delta path
   (``newly_completed``), and stale run-state replay;
2. ``resize_pool`` ≡ ``resize_pool_reference`` bit-for-bit, with loads
   biased toward the nasty cases (uniform cohorts, values at exact
   charging-unit multiples, zero tails);
3. memoized prediction ≡ fresh prediction across model updates — the
   content-addressed :class:`SharedEvalCache` and the per-stage sized
   memo must discard state the instant a generation counter moves.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    LookaheadSimulator,
    PredictionPolicy,
    RunState,
    TaskEstimate,
    TaskPredictor,
    resize_pool,
)
from repro.core.lookahead import VirtualInstance
from repro.core.ogd import OnlineGradientDescentModel
from repro.core.predictor import SharedEvalCache
from repro.core.steering import resize_pool_reference
from repro.dag import WorkflowBuilder
from repro.engine import Monitor, TaskExecState
from repro.workloads import random_layered_workflow

# ---------------------------------------------------------------------------
# 1. incremental ≡ from-scratch projection
# ---------------------------------------------------------------------------


def _build_tick(draw, workflow, order, n_done, prev_done, now, mode):
    """One consistent (run_state, instances, queued, horizon) snapshot.

    ``mode`` selects which delta-accelerator fields the run state carries:
    ``"none"`` forces the from-scratch rebuild, ``"adopt"`` exercises the
    topology-adoption path, ``"delta"`` the legacy newly-completed patch.
    """
    horizon = draw(st.floats(min_value=1.0, max_value=300.0))
    n_instances = draw(st.integers(min_value=1, max_value=3))
    slots = draw(st.integers(min_value=1, max_value=2))

    instances = [
        VirtualInstance(f"vm-{i}", slots=slots, available_at=now)
        for i in range(n_instances)
    ]
    occupants: dict[str, list[str]] = {vi.instance_id: [] for vi in instances}
    completed = set(order[:n_done])
    running: list[str] = []
    capacity = n_instances * slots
    queued: list[str] = []
    for tid in order[n_done:]:
        parents_done = all(p in completed for p in workflow.parents(tid))
        if parents_done and len(running) < capacity:
            running.append(tid)
        elif parents_done:
            queued.append(tid)
    for index, tid in enumerate(running):
        occupants[instances[index % n_instances].instance_id].append(tid)
    instances = [
        VirtualInstance(
            vi.instance_id,
            slots=vi.slots,
            available_at=vi.available_at,
            occupants=tuple(occupants[vi.instance_id]),
        )
        for vi in instances
    ]

    estimates: dict[str, TaskEstimate] = {}
    for tid in order:
        task = workflow.task(tid)
        if tid in completed:
            phase = TaskExecState.COMPLETED
            remaining = 0.0
        elif tid in running:
            phase = TaskExecState.EXECUTING
            remaining = task.runtime * draw(
                st.floats(min_value=0.05, max_value=1.0)
            )
        elif tid in queued:
            phase = TaskExecState.READY
            remaining = task.runtime
        else:
            phase = TaskExecState.BLOCKED
            remaining = task.runtime
        instance_id = None
        for vi in instances:
            if tid in vi.occupants:
                instance_id = vi.instance_id
        estimates[tid] = TaskEstimate(
            task_id=tid,
            stage_id=workflow.stage_of[tid],
            phase=phase,
            exec_estimate=task.runtime,
            policy=PredictionPolicy.MATCHED_GROUP,
            remaining_occupancy=remaining,
            sunk_occupancy=10.0 if tid in running else 0.0,
            instance_id=instance_id,
        )

    kwargs: dict = {}
    if mode in ("adopt", "delta"):
        kwargs["newly_completed"] = tuple(order[prev_done:n_done])
        kwargs["completed_count"] = n_done
        kwargs["in_flight"] = tuple(t for t in order if t in set(running))
    if mode == "adopt":
        kwargs["unfinished_parents"] = {
            tid: sum(1 for p in workflow.parents(tid) if p not in completed)
            for tid in order[n_done:]
        }
    state = RunState(
        now=now,
        transfer_estimate=draw(st.floats(min_value=0.0, max_value=10.0)),
        estimates=estimates,
        **kwargs,
    )
    return state, instances, tuple(queued), horizon


@st.composite
def tick_sequences(draw):
    """A workflow plus a monotone sequence of MAPE-tick snapshots."""
    seed = draw(st.integers(min_value=0, max_value=200))
    workflow = random_layered_workflow(seed, n_layers=4, max_width=4)
    order = workflow.topological_order()
    n_ticks = draw(st.integers(min_value=2, max_value=5))
    counts = sorted(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=len(order) - 1),
                min_size=n_ticks,
                max_size=n_ticks,
            )
        )
    )
    ticks = []
    prev_done = 0
    for k, n_done in enumerate(counts):
        mode = draw(st.sampled_from(["none", "adopt", "delta"]))
        ticks.append(
            _build_tick(
                draw, workflow, order, n_done, prev_done, 500.0 + 100.0 * k, mode
            )
        )
        prev_done = n_done
    return workflow, ticks


def _assert_same_projection(a, b):
    """Exact (bit-identical) equality of two projections."""
    assert a.at == b.at
    assert a.workflow_done == b.workflow_done
    assert a.task_ids == b.task_ids
    assert a.remaining.tolist() == b.remaining.tolist()
    assert a.restart_costs == b.restart_costs


@given(tick_sequences())
@settings(max_examples=50, deadline=None)
def test_incremental_projection_matches_from_scratch(scenario):
    """One persistent simulator across ticks ≡ a fresh one per tick.

    ``self_check=True`` additionally re-derives the persistent topology
    inside every projection and asserts it, so a silently-wrong delta
    patch fails here even if the final load happened to agree.
    """
    workflow, ticks = scenario
    persistent = LookaheadSimulator(workflow, self_check=True)
    for state, instances, queued, horizon in ticks:
        incremental = persistent.project(state, instances, queued, horizon)
        scratch = LookaheadSimulator(workflow).project(
            state, instances, queued, horizon
        )
        _assert_same_projection(incremental, scratch)


@given(tick_sequences())
@settings(max_examples=25, deadline=None)
def test_stale_run_state_replay_falls_back(scenario):
    """Re-projecting an old tick after newer ones must fall back exactly.

    A stale run state's delta metadata contradicts the simulator's
    persistent topology (its completed count went *backwards*); the
    simulator must detect that and rebuild rather than trust the patch.
    """
    workflow, ticks = scenario
    persistent = LookaheadSimulator(workflow, self_check=True)
    for state, instances, queued, horizon in ticks:
        persistent.project(state, instances, queued, horizon)
    state, instances, queued, horizon = ticks[0]
    replay = persistent.project(state, instances, queued, horizon)
    scratch = LookaheadSimulator(workflow).project(state, instances, queued, horizon)
    _assert_same_projection(replay, scratch)


# ---------------------------------------------------------------------------
# 2. vectorized steering ≡ pure-Python reference
# ---------------------------------------------------------------------------


@st.composite
def resize_cases(draw):
    """(load, u, s) biased toward Algorithm 3's boundary behaviour.

    Loads are concatenations of blocks: uniform cohorts (the consumable
    fast-path rows), unstructured floats, and values pinned to exact
    fractions/multiples of the charging unit (crossing ties).
    """
    u = draw(st.floats(min_value=1.0, max_value=5_000.0))
    s = draw(st.integers(min_value=1, max_value=8))
    load: list[float] = []
    for _ in range(draw(st.integers(min_value=0, max_value=5))):
        kind = draw(st.sampled_from(["uniform", "random", "near_unit", "zero"]))
        count = draw(st.integers(min_value=1, max_value=25))
        if kind == "uniform":
            value = draw(st.floats(min_value=0.0, max_value=2.0 * u))
            load.extend([value] * count)
        elif kind == "near_unit":
            factor = draw(st.sampled_from([0.25, 0.5, 1.0, 1.5, 2.0]))
            load.extend([u * factor] * count)
        elif kind == "zero":
            load.extend([0.0] * count)
        else:
            load.extend(
                draw(
                    st.lists(
                        st.floats(min_value=0.0, max_value=10_000.0),
                        min_size=count,
                        max_size=count,
                    )
                )
            )
    return load, u, s


@given(resize_cases())
@settings(max_examples=400, deadline=None)
def test_resize_pool_matches_reference(case):
    load, u, s = case
    assert resize_pool(load, u, s) == resize_pool_reference(load, u, s)


@given(resize_cases(), st.sampled_from([0.0, 0.2, 0.5, 1.0]))
@settings(max_examples=150, deadline=None)
def test_resize_pool_matches_reference_tail_fraction(case, tail):
    load, u, s = case
    assert resize_pool(
        load, u, s, tail_threshold_fraction=tail
    ) == resize_pool_reference(load, u, s, tail_threshold_fraction=tail)


@given(resize_cases())
@settings(max_examples=100, deadline=None)
def test_resize_pool_accepts_ndarray(case):
    """The vectorized entry point takes the projection's float64 column."""
    load, u, s = case
    assert resize_pool(np.asarray(load, dtype=np.float64), u, s) == (
        resize_pool_reference(load, u, s)
    )


# ---------------------------------------------------------------------------
# 3. memoization invalidation on model movement
# ---------------------------------------------------------------------------

training_sets = st.lists(
    st.tuples(
        st.floats(min_value=1.0, max_value=1e6),
        st.floats(min_value=0.0, max_value=1e4),
    ),
    min_size=1,
    max_size=8,
)


@given(
    rounds=st.lists(training_sets, min_size=1, max_size=6),
    sizes=st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=10),
)
@settings(max_examples=150, deadline=None)
def test_shared_cache_exact_across_generations(rounds, sizes):
    """SharedEvalCache ≡ model.predict through any update sequence.

    The cache is content-addressed on ``(alpha0, alpha1, scale)``, so a
    gradient step — which changes the coefficients — can never serve a
    stale hit: every lookup after an update must equal a fresh predict.
    """
    model = OnlineGradientDescentModel()
    cache = SharedEvalCache()
    for training_set in rounds:
        model.update(training_set)
        for size in sizes:
            assert cache.predict(model, size) == model.predict(size)
            # the second call is a guaranteed hit; still exact
            assert cache.predict(model, size) == model.predict(size)
    assert cache.hits > 0 or len(sizes) == 0


def _stage_workflow():
    builder = WorkflowBuilder("equiv")
    builder.add_stage(
        "map",
        count=6,
        runtime=[10, 11, 12, 20, 21, 30],
        input_sizes=[100.0, 100.0, 100.0, 200.0, 200.0, 300.0],
    )
    return builder.build()


def _complete(monitor, task_id, stage, start, duration, input_size):
    monitor.record_dispatch(task_id, stage, "vm", start, input_size, 0.0)
    monitor.record_exec_start(task_id, start)
    monitor.record_exec_end(task_id, start + duration)
    monitor.record_complete(task_id, start + duration)


def test_sized_memo_invalidated_on_generation_bump():
    """The per-stage Policy-4/5 memo is discarded when any key moves."""
    workflow = _stage_workflow()
    predictor = TaskPredictor(workflow)
    monitor = Monitor()
    stage = workflow.stage_of["map-0000"]
    _complete(monitor, "map-0000", stage, 0.0, 10.0, 100.0)

    memo = predictor._sized_eval_memo(stage, monitor)
    memo[123.0] = (1.0, PredictionPolicy.OGD)
    # stable while neither the completion log nor the model moved
    assert predictor._sized_eval_memo(stage, monitor) is memo

    # OGD generation bump -> fresh, empty memo
    predictor.ogd_model(stage).update([(100.0, 10.0)])
    memo2 = predictor._sized_eval_memo(stage, monitor)
    assert memo2 is not memo
    assert memo2 == {}

    # new completion (completed-version bump) -> fresh memo again
    memo2[456.0] = (2.0, PredictionPolicy.OGD)
    _complete(monitor, "map-0001", stage, 0.0, 11.0, 100.0)
    memo3 = predictor._sized_eval_memo(stage, monitor)
    assert memo3 is not memo2
    assert memo3 == {}

    # a different monitor never shares a memo
    assert predictor._sized_eval_memo(stage, Monitor()) is not memo3


@given(
    durations=st.lists(
        st.floats(min_value=0.5, max_value=100.0), min_size=1, max_size=6
    ),
    query_size=st.floats(min_value=1.0, max_value=500.0),
)
@settings(max_examples=100, deadline=None)
def test_repeated_queries_never_change_estimates(durations, query_size):
    """Querying through the memo is invisible: a predictor asked three
    times per round agrees exactly with a twin asked once, across rounds
    that bump both the completion log and the OGD generation."""
    workflow = _stage_workflow()
    once = TaskPredictor(workflow)
    thrice = TaskPredictor(workflow)
    monitor = Monitor()
    stage = workflow.stage_of["map-0000"]
    window_start = 0.0
    for index, duration in enumerate(durations):
        tid = f"map-{index:04d}"
        size = [100.0, 100.0, 100.0, 200.0, 200.0, 300.0][index]
        _complete(monitor, tid, stage, window_start, duration, size)
        now = window_start + duration + 1.0
        once.observe_interval(monitor, window_start, now)
        thrice.observe_interval(monitor, window_start, now)
        query = "map-0005" if index < 5 else "map-0000"
        expected = once.estimate_execution(
            query, TaskExecState.READY, monitor, now
        )
        for _ in range(3):
            assert (
                thrice.estimate_execution(query, TaskExecState.READY, monitor, now)
                == expected
            )
        window_start = now
