"""Tests for the five online prediction policies (§III-C)."""

from __future__ import annotations

import pytest

from repro.core import PredictionPolicy, TaskPredictor, WireConfig
from repro.core.predictor import group_by_input_size
from repro.dag import Task, WorkflowBuilder
from repro.engine import Monitor, TaskExecState


@pytest.fixture
def stage_workflow():
    """One stage with 6 tasks of varying sizes plus a blocked child."""
    builder = WorkflowBuilder("p")
    sizes = [100.0, 100.0, 100.0, 200.0, 200.0, 300.0]
    builder.add_stage(
        "map", count=6, runtime=[10, 11, 12, 20, 21, 30], input_sizes=sizes
    )
    return builder.build()


def complete(monitor, task_id, stage, start, duration, input_size):
    monitor.record_dispatch(task_id, stage, "vm", start, input_size, 0.0)
    monitor.record_exec_start(task_id, start)
    monitor.record_exec_end(task_id, start + duration)
    monitor.record_complete(task_id, start + duration)


class TestPolicySelection:
    def test_policy1_nothing_started(self, stage_workflow):
        predictor = TaskPredictor(stage_workflow)
        monitor = Monitor()
        estimate, policy = predictor.estimate_execution(
            "map-0000", TaskExecState.READY, monitor, 0.0
        )
        assert policy is PredictionPolicy.NO_TASK_STARTED
        assert estimate == 0.0

    def test_policy2_running_only(self, stage_workflow):
        predictor = TaskPredictor(stage_workflow)
        monitor = Monitor()
        stage = stage_workflow.stage_of["map-0000"]
        for tid, start in (("map-0000", 0.0), ("map-0001", 4.0), ("map-0002", 8.0)):
            monitor.record_dispatch(tid, stage, "vm", start, 100.0, 0.0)
            monitor.record_exec_start(tid, start)
        estimate, policy = predictor.estimate_execution(
            "map-0003", TaskExecState.READY, monitor, 10.0
        )
        assert policy is PredictionPolicy.RUNNING_ONLY
        # elapsed times are 10, 6, 2 -> median 6
        assert estimate == pytest.approx(6.0)

    def test_policy3_blocked_task_uses_stage_median(self, stage_workflow):
        predictor = TaskPredictor(stage_workflow)
        monitor = Monitor()
        stage = stage_workflow.stage_of["map-0000"]
        for tid, dur in (("map-0000", 10.0), ("map-0001", 20.0), ("map-0002", 30.0)):
            complete(monitor, tid, stage, 0.0, dur, 100.0)
        estimate, policy = predictor.estimate_execution(
            "map-0005", TaskExecState.BLOCKED, monitor, 50.0
        )
        assert policy is PredictionPolicy.COMPLETED_UNREADY
        assert estimate == pytest.approx(20.0)

    def test_policy4_matched_size_group(self, stage_workflow):
        predictor = TaskPredictor(stage_workflow)
        monitor = Monitor()
        stage = stage_workflow.stage_of["map-0000"]
        complete(monitor, "map-0000", stage, 0.0, 10.0, 100.0)
        complete(monitor, "map-0001", stage, 0.0, 12.0, 100.0)
        complete(monitor, "map-0003", stage, 0.0, 20.0, 200.0)
        # map-0002 has input size 100 -> matches the (100,) group.
        estimate, policy = predictor.estimate_execution(
            "map-0002", TaskExecState.READY, monitor, 30.0
        )
        assert policy is PredictionPolicy.MATCHED_GROUP
        assert estimate == pytest.approx(11.0)

    def test_policy5_new_size_uses_ogd(self, stage_workflow):
        predictor = TaskPredictor(stage_workflow)
        monitor = Monitor()
        stage = stage_workflow.stage_of["map-0000"]
        complete(monitor, "map-0000", stage, 0.0, 10.0, 100.0)
        complete(monitor, "map-0003", stage, 0.0, 20.0, 200.0)
        # Train the stage model over a few intervals.
        for i in range(50):
            predictor.observe_interval(monitor, -1.0 if i == 0 else 100.0, 100.0)
        # map-0005 has size 300: unseen -> OGD extrapolation.
        estimate, policy = predictor.estimate_execution(
            "map-0005", TaskExecState.READY, monitor, 100.0
        )
        assert policy is PredictionPolicy.OGD
        assert estimate > 20.0  # extrapolates beyond the largest seen


class TestGrouping:
    def test_exact_groups(self):
        monitor = Monitor()
        complete(monitor, "a", "s", 0.0, 10.0, 100.0)
        complete(monitor, "b", "s", 0.0, 12.0, 100.0)
        complete(monitor, "c", "s", 0.0, 20.0, 250.0)
        groups = group_by_input_size(monitor.completed_in_stage("s"), rtol=0.02)
        assert len(groups) == 2
        assert groups[0][0] == 100.0
        assert sorted(groups[0][1]) == [10.0, 12.0]

    def test_rtol_merges_near_sizes(self):
        monitor = Monitor()
        complete(monitor, "a", "s", 0.0, 10.0, 100.0)
        complete(monitor, "b", "s", 0.0, 12.0, 101.0)
        groups = group_by_input_size(monitor.completed_in_stage("s"), rtol=0.02)
        assert len(groups) == 1

    def test_zero_sizes_group_together(self):
        monitor = Monitor()
        complete(monitor, "a", "s", 0.0, 10.0, 0.0)
        complete(monitor, "b", "s", 0.0, 12.0, 0.0)
        groups = group_by_input_size(monitor.completed_in_stage("s"), rtol=0.02)
        assert len(groups) == 1


class TestTransferEstimate:
    def test_zero_before_observations(self, stage_workflow):
        predictor = TaskPredictor(stage_workflow)
        assert predictor.transfer_estimate() == 0.0

    def test_median_of_window_observations(self, stage_workflow):
        predictor = TaskPredictor(stage_workflow)
        monitor = Monitor()
        stage = stage_workflow.stage_of["map-0000"]
        # stage-in of 4s finishing at t=4, stage-out 2s finishing at t=14
        monitor.record_dispatch("map-0000", stage, "vm", 0.0, 100.0, 0.0)
        monitor.record_exec_start("map-0000", 4.0)
        monitor.record_exec_end("map-0000", 12.0)
        monitor.record_complete("map-0000", 14.0)
        predictor.observe_interval(monitor, 0.0, 20.0)
        assert predictor.transfer_estimate() == pytest.approx(3.0)  # median(4,2)

    def test_falls_back_to_last_interval_with_data(self, stage_workflow):
        predictor = TaskPredictor(stage_workflow, WireConfig(transfer_window=1))
        monitor = Monitor()
        stage = stage_workflow.stage_of["map-0000"]
        monitor.record_dispatch("map-0000", stage, "vm", 0.0, 100.0, 0.0)
        monitor.record_exec_start("map-0000", 5.0)
        predictor.observe_interval(monitor, 0.0, 10.0)
        first = predictor.transfer_estimate()
        # An empty interval must not reset the estimate to zero.
        predictor.observe_interval(monitor, 10.0, 20.0)
        assert predictor.transfer_estimate() == first == pytest.approx(5.0)


class TestRunStateAssembly:
    def test_annotates_every_task(self, stage_workflow):
        from repro.engine import FrameworkMaster

        predictor = TaskPredictor(stage_workflow)
        master = FrameworkMaster(stage_workflow)
        state = predictor.build_run_state(master, Monitor(), 0.0)
        assert set(state.estimates) == set(stage_workflow.tasks)

    def test_completed_tasks_observed(self, stage_workflow):
        from repro.engine import FrameworkMaster

        predictor = TaskPredictor(stage_workflow)
        master = FrameworkMaster(stage_workflow)
        monitor = Monitor()
        stage = stage_workflow.stage_of["map-0000"]
        master.mark_dispatched("map-0000")
        master.mark_executing("map-0000")
        master.mark_staging_out("map-0000")
        master.mark_completed("map-0000")
        complete(monitor, "map-0000", stage, 0.0, 10.0, 100.0)
        state = predictor.build_run_state(master, monitor, 20.0)
        estimate = state.estimate("map-0000")
        assert estimate.policy is PredictionPolicy.OBSERVED
        assert estimate.exec_estimate == pytest.approx(10.0)
        assert estimate.remaining_occupancy == 0.0

    def test_running_task_policy2_counts_full_estimate(self, stage_workflow):
        """§III-E growth arithmetic: pre-completion running tasks carry the
        whole growing estimate as remaining occupancy."""
        from repro.engine import FrameworkMaster

        predictor = TaskPredictor(stage_workflow)
        master = FrameworkMaster(stage_workflow)
        monitor = Monitor()
        stage = stage_workflow.stage_of["map-0000"]
        master.mark_dispatched("map-0000")
        master.mark_executing("map-0000")
        monitor.record_dispatch("map-0000", stage, "vm", 0.0, 100.0, 0.0)
        monitor.record_exec_start("map-0000", 0.0)
        state = predictor.build_run_state(master, monitor, 30.0)
        estimate = state.estimate("map-0000")
        assert estimate.policy is PredictionPolicy.RUNNING_ONLY
        assert estimate.remaining_occupancy == pytest.approx(30.0)
        assert estimate.sunk_occupancy == pytest.approx(30.0)

    def test_mean_ablation_changes_aggregation(self, stage_workflow):
        monitor = Monitor()
        stage = stage_workflow.stage_of["map-0000"]
        for tid, dur in (("map-0000", 10.0), ("map-0001", 10.0), ("map-0002", 40.0)):
            complete(monitor, tid, stage, 0.0, dur, 100.0)
        median_pred = TaskPredictor(stage_workflow, WireConfig(use_median=True))
        mean_pred = TaskPredictor(stage_workflow, WireConfig(use_median=False))
        est_median, _ = median_pred.estimate_execution(
            "map-0005", TaskExecState.BLOCKED, Monitor(), 0.0
        )  # empty monitor -> policy 1, so use the populated one below
        est_median, _ = median_pred.estimate_execution(
            "map-0005", TaskExecState.BLOCKED, monitor, 50.0
        )
        est_mean, _ = mean_pred.estimate_execution(
            "map-0005", TaskExecState.BLOCKED, monitor, 50.0
        )
        assert est_median == pytest.approx(10.0)
        assert est_mean == pytest.approx(20.0)
