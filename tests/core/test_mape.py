"""Integration tests for the WIRE MAPE controller."""

from __future__ import annotations

import pytest

from repro.autoscalers import WireAutoscaler
from repro.core import MapeController, WireConfig
from repro.engine import ExponentialTransferModel, Simulation
from repro.workloads import linear_stage_workflow, single_stage_workflow


class TestMapeIntegration:
    def test_scales_up_for_wide_long_stage(self, small_site):
        # 16 long tasks on a 4x2-slot site: wire should grow past 1.
        wf = single_stage_workflow(16, runtime=400.0)
        controller = MapeController()
        result = Simulation(wf, small_site, controller, 60.0).run()
        assert result.completed
        assert result.peak_instances > 1
        assert controller.diagnostics  # telemetry captured

    def test_releases_idle_instances(self, small_site):
        # A wide first stage then a single long tail task: the pool must
        # shrink back rather than bill idle instances to the end.
        wf = linear_stage_workflow([(8, 120.0), (1, 300.0)])
        result = Simulation(wf, small_site, MapeController(), 60.0).run()
        assert result.completed
        final_pool = result.pool_timeline[-1][1]
        assert final_pool <= 2

    def test_cheaper_than_static_peak(self, small_site, fixed_pool):
        wf = linear_stage_workflow([(8, 120.0), (1, 300.0)])
        wire = Simulation(wf, small_site, MapeController(), 60.0).run()
        static = Simulation(wf, small_site, fixed_pool(4), 60.0).run()
        assert wire.total_units < static.total_units

    def test_single_controller_per_run(self, small_site, diamond, two_stage):
        controller = MapeController()
        Simulation(diamond, small_site, controller, 60.0).run()
        with pytest.raises(RuntimeError, match="single run"):
            Simulation(two_stage, small_site, controller, 60.0).run()

    def test_state_size_tracked(self, small_site, two_stage):
        controller = MapeController()
        Simulation(two_stage, small_site, controller, 60.0).run()
        size = controller.state_size_bytes()
        assert size is not None and 0 < size < 16 * 1024  # paper: <= 16KB

    def test_predictor_property_guarded(self):
        with pytest.raises(RuntimeError, match="not observed"):
            MapeController().predictor


class TestBlackoutDegradation:
    """Monitor blackouts (cloud-fault injection) degrade gracefully:
    the controller holds its last-known model and never shrinks the pool
    off stale estimates."""

    def _blackout_run(self, small_site, blackout_from_tick):
        from repro.cloud.faults import ChaosSpec

        class OnOffInjector:
            """Real-injector stand-in: blackout from tick N onwards."""

            spec = ChaosSpec(blackout_probability=1e-9)

            def __init__(self) -> None:
                self.tick = 0

            def straggler_factor(self):
                return 1.0

            def revocation_delay(self):
                return None

            def provision_outcome(self, now):
                return "ok"

            def blackout(self):
                self.tick += 1
                return self.tick > blackout_from_tick

        wf = linear_stage_workflow([(8, 120.0), (1, 300.0)])
        controller = MapeController()
        sim = Simulation(
            wf, small_site, controller, 60.0, chaos=OnOffInjector.spec
        )
        sim._chaos_injector = OnOffInjector()
        return Simulation.run(sim), controller

    def test_blackout_ticks_counted_and_model_frozen(self, small_site):
        result, controller = self._blackout_run(small_site, blackout_from_tick=3)
        assert result.completed
        assert controller.blackout_ticks == result.cloud_faults["blackouts"]
        assert controller.blackout_ticks > 0

    def test_never_shrinks_on_stale_model(self, small_site):
        # Without blackouts this scenario provably shrinks (the
        # test_releases_idle_instances case); with every tick blacked
        # out, shrink decisions must be replaced by holds.
        clear, clear_ctrl = self._blackout_run(small_site, 10**9)
        assert clear_ctrl.blackout_ticks == 0
        assert any(d.terminated > 0 for d in clear_ctrl.diagnostics)

        dark, dark_ctrl = self._blackout_run(small_site, 0)
        assert dark.completed
        assert dark_ctrl.blackout_ticks > 0
        assert all(d.terminated == 0 for d in dark_ctrl.diagnostics)
        assert dark_ctrl.blackout_holds > 0


class TestConfigVariants:
    def test_lookahead_ablation_runs(self, small_site):
        wf = single_stage_workflow(8, runtime=100.0)
        controller = MapeController(WireConfig(lookahead=False))
        result = Simulation(wf, small_site, controller, 60.0).run()
        assert result.completed

    def test_wire_autoscaler_alias(self):
        assert WireAutoscaler().name == "wire"
        assert isinstance(WireAutoscaler(), MapeController)

    def test_custom_threshold_flows_through(self, small_site):
        wf = single_stage_workflow(8, runtime=100.0)
        controller = MapeController(WireConfig(restart_threshold_fraction=0.5))
        result = Simulation(wf, small_site, controller, 60.0).run()
        assert result.completed


class TestDiagnostics:
    def test_tick_telemetry_fields(self, small_site):
        wf = single_stage_workflow(8, runtime=150.0, )
        controller = MapeController()
        Simulation(
            wf,
            small_site,
            controller,
            60.0,
            transfer_model=ExponentialTransferModel(bandwidth=1e8),
        ).run()
        assert controller.diagnostics
        first = controller.diagnostics[0]
        assert first.now == pytest.approx(small_site.lag)
        assert first.pool_before >= 1
        assert first.upcoming_tasks >= 0
        assert first.policy_counts
