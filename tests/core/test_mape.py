"""Integration tests for the WIRE MAPE controller."""

from __future__ import annotations

import pytest

from repro.autoscalers import WireAutoscaler
from repro.core import MapeController, WireConfig
from repro.engine import ExponentialTransferModel, Simulation
from repro.workloads import linear_stage_workflow, single_stage_workflow


class TestMapeIntegration:
    def test_scales_up_for_wide_long_stage(self, small_site):
        # 16 long tasks on a 4x2-slot site: wire should grow past 1.
        wf = single_stage_workflow(16, runtime=400.0)
        controller = MapeController()
        result = Simulation(wf, small_site, controller, 60.0).run()
        assert result.completed
        assert result.peak_instances > 1
        assert controller.diagnostics  # telemetry captured

    def test_releases_idle_instances(self, small_site):
        # A wide first stage then a single long tail task: the pool must
        # shrink back rather than bill idle instances to the end.
        wf = linear_stage_workflow([(8, 120.0), (1, 300.0)])
        result = Simulation(wf, small_site, MapeController(), 60.0).run()
        assert result.completed
        final_pool = result.pool_timeline[-1][1]
        assert final_pool <= 2

    def test_cheaper_than_static_peak(self, small_site, fixed_pool):
        wf = linear_stage_workflow([(8, 120.0), (1, 300.0)])
        wire = Simulation(wf, small_site, MapeController(), 60.0).run()
        static = Simulation(wf, small_site, fixed_pool(4), 60.0).run()
        assert wire.total_units < static.total_units

    def test_single_controller_per_run(self, small_site, diamond, two_stage):
        controller = MapeController()
        Simulation(diamond, small_site, controller, 60.0).run()
        with pytest.raises(RuntimeError, match="single run"):
            Simulation(two_stage, small_site, controller, 60.0).run()

    def test_state_size_tracked(self, small_site, two_stage):
        controller = MapeController()
        Simulation(two_stage, small_site, controller, 60.0).run()
        size = controller.state_size_bytes()
        assert size is not None and 0 < size < 16 * 1024  # paper: <= 16KB

    def test_predictor_property_guarded(self):
        with pytest.raises(RuntimeError, match="not observed"):
            MapeController().predictor


class TestConfigVariants:
    def test_lookahead_ablation_runs(self, small_site):
        wf = single_stage_workflow(8, runtime=100.0)
        controller = MapeController(WireConfig(lookahead=False))
        result = Simulation(wf, small_site, controller, 60.0).run()
        assert result.completed

    def test_wire_autoscaler_alias(self):
        assert WireAutoscaler().name == "wire"
        assert isinstance(WireAutoscaler(), MapeController)

    def test_custom_threshold_flows_through(self, small_site):
        wf = single_stage_workflow(8, runtime=100.0)
        controller = MapeController(WireConfig(restart_threshold_fraction=0.5))
        result = Simulation(wf, small_site, controller, 60.0).run()
        assert result.completed


class TestDiagnostics:
    def test_tick_telemetry_fields(self, small_site):
        wf = single_stage_workflow(8, runtime=150.0, )
        controller = MapeController()
        Simulation(
            wf,
            small_site,
            controller,
            60.0,
            transfer_model=ExponentialTransferModel(bandwidth=1e8),
        ).run()
        assert controller.diagnostics
        first = controller.diagnostics[0]
        assert first.now == pytest.approx(small_site.lag)
        assert first.pool_before >= 1
        assert first.upcoming_tasks >= 0
        assert first.policy_counts
