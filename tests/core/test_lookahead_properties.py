"""Property-based tests on the lookahead projection's invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LookaheadSimulator, PredictionPolicy, RunState, TaskEstimate
from repro.core.lookahead import VirtualInstance
from repro.engine import TaskExecState
from repro.workloads import random_layered_workflow


@st.composite
def projection_scenario(draw):
    seed = draw(st.integers(min_value=0, max_value=300))
    workflow = random_layered_workflow(seed, n_layers=4, max_width=4)
    horizon = draw(st.floats(min_value=1.0, max_value=300.0))
    n_instances = draw(st.integers(min_value=1, max_value=4))
    slots = draw(st.integers(min_value=1, max_value=3))

    # Build a consistent run state: a topological prefix is completed, the
    # next few tasks run on instances, the rest are ready/blocked.
    order = workflow.topological_order()
    n_done = draw(st.integers(min_value=0, max_value=len(order) - 1))
    state = RunState(now=500.0, transfer_estimate=draw(
        st.floats(min_value=0.0, max_value=10.0)
    ))
    instances = [
        VirtualInstance(f"vm-{i}", slots=slots, available_at=500.0)
        for i in range(n_instances)
    ]
    occupants: dict[str, list[str]] = {vi.instance_id: [] for vi in instances}
    completed = set(order[:n_done])
    running: list[str] = []
    capacity = n_instances * slots
    queued: list[str] = []
    for tid in order[n_done:]:
        parents_done = all(p in completed for p in workflow.parents(tid))
        if parents_done and len(running) < capacity:
            running.append(tid)
        elif parents_done:
            queued.append(tid)
    for index, tid in enumerate(running):
        occupants[instances[index % n_instances].instance_id].append(tid)

    instances = [
        VirtualInstance(
            vi.instance_id,
            slots=vi.slots,
            available_at=vi.available_at,
            occupants=tuple(occupants[vi.instance_id]),
        )
        for vi in instances
    ]

    for tid in order:
        task = workflow.task(tid)
        if tid in completed:
            phase = TaskExecState.COMPLETED
            remaining = 0.0
        elif tid in running:
            phase = TaskExecState.EXECUTING
            remaining = task.runtime * draw(
                st.floats(min_value=0.05, max_value=1.0)
            )
        elif tid in queued:
            phase = TaskExecState.READY
            remaining = task.runtime
        else:
            phase = TaskExecState.BLOCKED
            remaining = task.runtime
        instance_id = None
        for vi in instances:
            if tid in vi.occupants:
                instance_id = vi.instance_id
        state.estimates[tid] = TaskEstimate(
            task_id=tid,
            stage_id=workflow.stage_of[tid],
            phase=phase,
            exec_estimate=task.runtime,
            policy=PredictionPolicy.MATCHED_GROUP,
            remaining_occupancy=remaining,
            sunk_occupancy=10.0 if tid in running else 0.0,
            instance_id=instance_id,
        )
    return workflow, state, instances, tuple(queued), horizon


@given(projection_scenario())
@settings(max_examples=60, deadline=None)
def test_projection_invariants(scenario):
    workflow, state, instances, queued, horizon = scenario
    load = LookaheadSimulator(workflow).project(state, instances, queued, horizon)

    incomplete = {
        tid
        for tid, e in state.estimates.items()
        if e.phase is not TaskExecState.COMPLETED
    }
    q_ids = [t.task_id for t in load.tasks]

    # Q contains only incomplete tasks, each at most once.
    assert set(q_ids) <= incomplete
    assert len(q_ids) == len(set(q_ids))

    # Remaining occupancies are non-negative and never exceed the task's
    # full predicted occupancy.
    for entry in load.tasks:
        assert entry.remaining >= 0.0
        original = state.estimates[entry.task_id]
        upper = max(
            original.remaining_occupancy,
            original.exec_estimate + 2 * state.transfer_estimate,
        )
        assert entry.remaining <= upper + 1e-9

    # Restart costs cover every provided instance and are non-negative.
    assert set(load.restart_costs) == {vi.instance_id for vi in instances}
    assert all(c >= 0.0 for c in load.restart_costs.values())

    # workflow_done implies an empty Q.
    if load.workflow_done:
        assert load.tasks == ()

    # The projection's target time is now + horizon.
    assert load.at == state.now + horizon
