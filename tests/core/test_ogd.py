"""Tests for the online gradient descent model (Algorithm 1)."""

from __future__ import annotations

import pytest

from repro.core import OnlineGradientDescentModel


class TestInitialState:
    def test_zero_coefficients(self):
        model = OnlineGradientDescentModel()
        assert model.alpha0 == 0.0
        assert model.alpha1 == 0.0
        assert model.predict(100.0) == 0.0

    def test_paper_learning_rate_default(self):
        assert OnlineGradientDescentModel().learning_rate == 0.1

    def test_rejects_bad_rate(self):
        with pytest.raises(Exception):
            OnlineGradientDescentModel(learning_rate=0.0)


class TestSingleStep:
    def test_one_update_moves_toward_target(self):
        model = OnlineGradientDescentModel()
        model.update([(1.0, 10.0)])
        # grad0 = -2 * 10, step = 0.1 -> alpha0 = 2; grad1 likewise.
        assert model.alpha0 == pytest.approx(2.0)
        assert model.alpha1 == pytest.approx(2.0)
        assert model.updates == 1

    def test_empty_training_set_noop(self):
        model = OnlineGradientDescentModel()
        model.update([])
        assert model.updates == 0
        assert model.predict(5.0) == 0.0


class TestConvergence:
    def test_converges_to_linear_relation(self):
        # t = 3 + 2*d on normalized sizes.
        training = [(d, 3.0 + 2.0 * d) for d in (0.1, 0.3, 0.5, 0.8, 1.0)]
        model = OnlineGradientDescentModel()
        for _ in range(3000):
            model.update(training)
        for d, t in training:
            assert model.predict(d) == pytest.approx(t, rel=0.02)

    def test_handles_large_byte_sizes(self):
        # Raw sizes in the hundreds of MB must not diverge (the scaling
        # reparameterization keeps gradients bounded).
        training = [(d * 1e8, 10.0 + d * 20.0) for d in (0.5, 1.0, 2.0, 4.0)]
        model = OnlineGradientDescentModel()
        for _ in range(3000):
            model.update(training)
        for size, t in training:
            assert model.predict(size) == pytest.approx(t, rel=0.05)

    def test_growing_scale_preserves_predictions(self):
        model = OnlineGradientDescentModel()
        for _ in range(500):
            model.update([(10.0, 5.0), (20.0, 9.0)])
        before = model.predict(15.0)
        # A much larger size arrives; prior predictions must be unchanged.
        model.update([(10.0, 5.0), (20.0, 9.0), (1000.0, 400.0)])
        after_scale = model.scale
        assert after_scale >= 1000.0
        assert model.predict(15.0) == pytest.approx(before, rel=0.2)


class TestPrediction:
    def test_clamped_at_zero(self):
        model = OnlineGradientDescentModel()
        model.alpha0 = -5.0
        assert model.predict(0.0) == 0.0

    def test_state_size_small(self):
        assert OnlineGradientDescentModel().state_size_bytes() <= 64
