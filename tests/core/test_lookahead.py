"""Tests for WIRE's lookahead workflow simulator (§III-B2)."""

from __future__ import annotations

import pytest

from repro.core import (
    LookaheadSimulator,
    PredictionPolicy,
    RunState,
    TaskEstimate,
    VirtualInstance,
)
from repro.dag import Task, WorkflowBuilder
from repro.engine import TaskExecState


def estimate(
    task_id,
    stage_id,
    phase,
    remaining,
    *,
    exec_estimate=None,
    sunk=0.0,
    instance=None,
):
    return TaskEstimate(
        task_id=task_id,
        stage_id=stage_id,
        phase=phase,
        exec_estimate=exec_estimate if exec_estimate is not None else remaining,
        policy=PredictionPolicy.MATCHED_GROUP,
        remaining_occupancy=remaining,
        sunk_occupancy=sunk,
        instance_id=instance,
    )


@pytest.fixture
def pipeline_workflow():
    """a -> b -> c, plus an independent task x."""
    builder = WorkflowBuilder("look")
    builder.add_task(Task("a", "a", runtime=10.0))
    builder.add_task(Task("b", "b", runtime=10.0), parents=["a"])
    builder.add_task(Task("c", "c", runtime=10.0), parents=["b"])
    builder.add_task(Task("x", "x", runtime=10.0))
    return builder.build()


def run_state(now, estimates, transfer=0.0):
    state = RunState(now=now, transfer_estimate=transfer)
    for e in estimates:
        state.estimates[e.task_id] = e
    return state


class TestProjection:
    def test_running_task_survives_horizon(self, pipeline_workflow):
        sim = LookaheadSimulator(pipeline_workflow)
        state = run_state(
            0.0,
            [
                estimate("a", "a#0", TaskExecState.EXECUTING, 50.0, instance="vm-1"),
                estimate("b", "b#0", TaskExecState.BLOCKED, 10.0),
                estimate("c", "c#0", TaskExecState.BLOCKED, 10.0),
                estimate("x", "x#0", TaskExecState.READY, 10.0),
            ],
        )
        instances = [VirtualInstance("vm-1", slots=1, available_at=0.0, occupants=("a",))]
        load = sim.project(state, instances, ("x",), horizon=30.0)
        by_id = {t.task_id: t.remaining for t in load.tasks}
        # a still has 20s left at the horizon.
        assert by_id["a"] == pytest.approx(20.0)
        # x was queued and never got a slot: full predicted occupancy.
        assert by_id["x"] == pytest.approx(10.0)
        # b and c are still blocked at the horizon: not in Q.
        assert "b" not in by_id and "c" not in by_id
        assert not load.workflow_done

    def test_completion_cascade_fires_children(self, pipeline_workflow):
        sim = LookaheadSimulator(pipeline_workflow)
        state = run_state(
            0.0,
            [
                estimate("a", "a#0", TaskExecState.EXECUTING, 5.0, instance="vm-1"),
                estimate("b", "b#0", TaskExecState.BLOCKED, 40.0),
                estimate("c", "c#0", TaskExecState.BLOCKED, 40.0),
                estimate("x", "x#0", TaskExecState.READY, 3.0),
            ],
        )
        instances = [VirtualInstance("vm-1", slots=1, available_at=0.0, occupants=("a",))]
        load = sim.project(state, instances, ("x",), horizon=30.0)
        by_id = {t.task_id: t.remaining for t in load.tasks}
        # a completes at 5, b starts (after queued x: FIFO -> x at 5? x
        # queued first, so x runs 5..8, then b 8.. with 40s: 18 left... but
        # b fires at a's completion and joins the queue behind x.
        assert "b" in by_id
        assert by_id["b"] == pytest.approx(18.0)
        # c is blocked on b at the horizon.
        assert "c" not in by_id

    def test_workflow_done_detected(self, pipeline_workflow):
        sim = LookaheadSimulator(pipeline_workflow)
        state = run_state(
            0.0,
            [
                estimate("a", "a#0", TaskExecState.EXECUTING, 1.0, instance="vm-1"),
                estimate("b", "b#0", TaskExecState.BLOCKED, 1.0),
                estimate("c", "c#0", TaskExecState.BLOCKED, 1.0),
                estimate("x", "x#0", TaskExecState.READY, 1.0),
            ],
        )
        instances = [VirtualInstance("vm-1", slots=2, available_at=0.0, occupants=("a",))]
        load = sim.project(state, instances, ("x",), horizon=100.0)
        assert load.workflow_done
        assert load.tasks == ()

    def test_pending_instance_adds_capacity_later(self, pipeline_workflow):
        sim = LookaheadSimulator(pipeline_workflow)
        state = run_state(
            0.0,
            [
                estimate("a", "a#0", TaskExecState.READY, 100.0),
                estimate("b", "b#0", TaskExecState.BLOCKED, 100.0),
                estimate("c", "c#0", TaskExecState.BLOCKED, 100.0),
                estimate("x", "x#0", TaskExecState.READY, 100.0),
            ],
        )
        instances = [
            VirtualInstance("vm-1", slots=1, available_at=0.0),
            VirtualInstance("vm-2", slots=1, available_at=20.0),  # pending
        ]
        load = sim.project(state, instances, ("a", "x"), horizon=30.0)
        by_id = {t.task_id: t.remaining for t in load.tasks}
        # a dispatched at 0 on vm-1 (100 -> 70 left), x at 20 on vm-2 (90).
        assert by_id["a"] == pytest.approx(70.0)
        assert by_id["x"] == pytest.approx(90.0)

    def test_restart_costs_grow_to_horizon(self, pipeline_workflow):
        sim = LookaheadSimulator(pipeline_workflow)
        state = run_state(
            100.0,
            [
                estimate(
                    "a",
                    "a#0",
                    TaskExecState.EXECUTING,
                    60.0,
                    sunk=25.0,
                    instance="vm-1",
                ),
                estimate("b", "b#0", TaskExecState.BLOCKED, 10.0),
                estimate("c", "c#0", TaskExecState.BLOCKED, 10.0),
                estimate("x", "x#0", TaskExecState.READY, 10.0),
            ],
        )
        instances = [VirtualInstance("vm-1", slots=2, available_at=100.0, occupants=("a",))]
        load = sim.project(state, instances, ("x",), horizon=30.0)
        # a's sunk cost at the horizon: 25 already + 30 more.
        assert load.restart_costs["vm-1"] == pytest.approx(55.0)

    def test_draining_instance_tasks_requeued(self, pipeline_workflow):
        sim = LookaheadSimulator(pipeline_workflow)
        state = run_state(
            0.0,
            [
                estimate(
                    "a",
                    "a#0",
                    TaskExecState.EXECUTING,
                    5.0,
                    exec_estimate=50.0,
                    instance="vm-gone",  # not in the instance list
                ),
                estimate("b", "b#0", TaskExecState.BLOCKED, 10.0),
                estimate("c", "c#0", TaskExecState.BLOCKED, 10.0),
                estimate("x", "x#0", TaskExecState.READY, 10.0),
            ],
        )
        instances = [VirtualInstance("vm-1", slots=1, available_at=0.0)]
        load = sim.project(state, instances, ("x",), horizon=20.0)
        by_id = {t.task_id: t.remaining for t in load.tasks}
        # a restarts with its full execution estimate (50), dispatched at 0
        # on vm-1 -> 30 left at the horizon; x stays queued.
        assert by_id["a"] == pytest.approx(30.0)
        assert by_id["x"] == pytest.approx(10.0)

    def test_q_order_running_first(self, pipeline_workflow):
        sim = LookaheadSimulator(pipeline_workflow)
        state = run_state(
            0.0,
            [
                estimate("a", "a#0", TaskExecState.EXECUTING, 100.0, instance="vm-1"),
                estimate("b", "b#0", TaskExecState.BLOCKED, 10.0),
                estimate("c", "c#0", TaskExecState.BLOCKED, 10.0),
                estimate("x", "x#0", TaskExecState.READY, 10.0),
            ],
        )
        instances = [VirtualInstance("vm-1", slots=1, available_at=0.0, occupants=("a",))]
        load = sim.project(state, instances, ("x",), horizon=10.0)
        assert [t.task_id for t in load.tasks] == ["a", "x"]
