"""Property-based tests on the predictor's invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PredictionPolicy, TaskPredictor
from repro.dag import Task, WorkflowBuilder
from repro.engine import Monitor, TaskExecState
from repro.util.rng import spawn_rng


@st.composite
def stage_scenario(draw):
    """A single stage plus a random monitoring state for it."""
    n = draw(st.integers(min_value=1, max_value=20))
    sizes = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1e9),
            min_size=n,
            max_size=n,
        )
    )
    runtimes = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=500.0),
            min_size=n,
            max_size=n,
        )
    )
    completed = draw(st.integers(min_value=0, max_value=n - 1))
    running = draw(st.integers(min_value=0, max_value=n - 1 - completed))
    return sizes, runtimes, completed, running


def build_scenario(sizes, runtimes, n_completed, n_running):
    builder = WorkflowBuilder("prop")
    for i, (size, runtime) in enumerate(zip(sizes, runtimes)):
        builder.add_task(
            Task(f"t{i:03d}", "map", runtime=runtime, input_size=size)
        )
    workflow = builder.build()
    monitor = Monitor()
    stage_id = workflow.stage_of["t000"]
    now = 1000.0
    for i in range(n_completed):
        tid = f"t{i:03d}"
        monitor.record_dispatch(tid, stage_id, "vm", 0.0, sizes[i], 0.0)
        monitor.record_exec_start(tid, 0.0)
        monitor.record_exec_end(tid, runtimes[i])
        monitor.record_complete(tid, runtimes[i])
    for i in range(n_completed, n_completed + n_running):
        tid = f"t{i:03d}"
        monitor.record_dispatch(tid, stage_id, "vm", 500.0, sizes[i], 0.0)
        monitor.record_exec_start(tid, 500.0)
    return workflow, monitor, now


@given(stage_scenario())
@settings(max_examples=100, deadline=None)
def test_estimates_are_finite_and_non_negative(scenario):
    sizes, runtimes, n_completed, n_running = scenario
    workflow, monitor, now = build_scenario(sizes, runtimes, n_completed, n_running)
    predictor = TaskPredictor(workflow)
    predictor.observe_interval(monitor, -1.0, now)
    target = f"t{len(sizes) - 1:03d}"  # always unstarted by construction
    for phase in (TaskExecState.READY, TaskExecState.BLOCKED):
        estimate, policy = predictor.estimate_execution(
            target, phase, monitor, now
        )
        assert estimate >= 0.0
        assert estimate == estimate  # not NaN
        assert isinstance(policy, PredictionPolicy)


@given(stage_scenario())
@settings(max_examples=100, deadline=None)
def test_policy_selection_matches_data_availability(scenario):
    sizes, runtimes, n_completed, n_running = scenario
    workflow, monitor, now = build_scenario(sizes, runtimes, n_completed, n_running)
    predictor = TaskPredictor(workflow)
    target = f"t{len(sizes) - 1:03d}"
    _, policy = predictor.estimate_execution(
        target, TaskExecState.READY, monitor, now
    )
    if n_completed == 0 and n_running == 0:
        assert policy is PredictionPolicy.NO_TASK_STARTED
    elif n_completed == 0:
        assert policy is PredictionPolicy.RUNNING_ONLY
    else:
        assert policy in (
            PredictionPolicy.MATCHED_GROUP,
            PredictionPolicy.OGD,
        )


@given(stage_scenario())
@settings(max_examples=60, deadline=None)
def test_run_state_annotates_everything(scenario):
    from repro.engine import FrameworkMaster

    sizes, runtimes, n_completed, n_running = scenario
    workflow, monitor, now = build_scenario(sizes, runtimes, n_completed, n_running)
    master = FrameworkMaster(workflow)
    for i in range(n_completed):
        tid = f"t{i:03d}"
        master.mark_dispatched(tid)
        master.mark_executing(tid)
        master.mark_staging_out(tid)
        master.mark_completed(tid)
    for i in range(n_completed, n_completed + n_running):
        tid = f"t{i:03d}"
        master.mark_dispatched(tid)
        master.mark_executing(tid)
    predictor = TaskPredictor(workflow)
    state = predictor.build_run_state(master, monitor, now)
    assert set(state.estimates) == set(workflow.tasks)
    for estimate in state.estimates.values():
        assert estimate.remaining_occupancy >= 0.0
        assert estimate.sunk_occupancy >= 0.0
        if estimate.phase is TaskExecState.COMPLETED:
            assert estimate.policy is PredictionPolicy.OBSERVED
            assert estimate.remaining_occupancy == 0.0


@given(
    seeds=st.integers(min_value=0, max_value=1000),
    lr=st.floats(min_value=0.01, max_value=0.5),
)
@settings(max_examples=50, deadline=None)
def test_ogd_never_diverges_on_bounded_data(seeds, lr):
    from repro.core import OnlineGradientDescentModel

    rng = spawn_rng(seeds, "ogd-prop")
    model = OnlineGradientDescentModel(learning_rate=lr)
    training = [
        (float(rng.uniform(0, 1e9)), float(rng.uniform(0, 500)))
        for _ in range(8)
    ]
    for _ in range(200):
        model.update(training)
    prediction = model.predict(training[0][0])
    assert prediction == prediction  # not NaN
    assert 0.0 <= prediction < 1e7  # bounded, no blow-up
