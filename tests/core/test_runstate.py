"""Tests for the run-state belief structure."""

from __future__ import annotations

from repro.core import PredictionPolicy, RunState, TaskEstimate
from repro.engine import TaskExecState


def make_estimate(task_id, phase, policy=PredictionPolicy.OGD):
    return TaskEstimate(
        task_id=task_id,
        stage_id="s",
        phase=phase,
        exec_estimate=10.0,
        policy=policy,
        remaining_occupancy=10.0,
    )


class TestRunState:
    def test_wavefront_excludes_completed(self):
        state = RunState(now=0.0, transfer_estimate=0.0)
        state.estimates["a"] = make_estimate("a", TaskExecState.COMPLETED,
                                             PredictionPolicy.OBSERVED)
        state.estimates["b"] = make_estimate("b", TaskExecState.READY)
        assert [e.task_id for e in state.wavefront()] == ["b"]

    def test_wavefront_sorted(self):
        state = RunState(now=0.0, transfer_estimate=0.0)
        for tid in ("z", "a", "m"):
            state.estimates[tid] = make_estimate(tid, TaskExecState.READY)
        assert [e.task_id for e in state.wavefront()] == ["a", "m", "z"]

    def test_policy_counts(self):
        state = RunState(now=0.0, transfer_estimate=0.0)
        state.estimates["a"] = make_estimate("a", TaskExecState.READY)
        state.estimates["b"] = make_estimate("b", TaskExecState.READY)
        state.estimates["c"] = make_estimate(
            "c", TaskExecState.READY, PredictionPolicy.MATCHED_GROUP
        )
        counts = state.policy_counts()
        assert counts[PredictionPolicy.OGD] == 2
        assert counts[PredictionPolicy.MATCHED_GROUP] == 1

    def test_estimate_lookup(self):
        state = RunState(now=0.0, transfer_estimate=0.0)
        state.estimates["a"] = make_estimate("a", TaskExecState.READY)
        assert state.estimate("a").task_id == "a"

    def test_state_size_scales_with_annotations(self):
        small = RunState(now=0.0, transfer_estimate=0.0)
        big = RunState(now=0.0, transfer_estimate=0.0)
        for i in range(100):
            big.estimates[str(i)] = make_estimate(str(i), TaskExecState.READY)
        assert big.state_size_bytes() > small.state_size_bytes()

    def test_policy_enum_matches_paper_numbering(self):
        assert PredictionPolicy.NO_TASK_STARTED == 1
        assert PredictionPolicy.RUNNING_ONLY == 2
        assert PredictionPolicy.COMPLETED_UNREADY == 3
        assert PredictionPolicy.MATCHED_GROUP == 4
        assert PredictionPolicy.OGD == 5
