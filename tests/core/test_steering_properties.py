"""Property-based tests on Algorithm 3's invariants."""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import resize_pool

loads = st.lists(
    st.floats(min_value=0.0, max_value=10_000.0, allow_nan=False),
    min_size=0,
    max_size=200,
)
units = st.floats(min_value=1.0, max_value=5_000.0)
slots = st.integers(min_value=1, max_value=8)


@given(load=loads, u=units, s=slots)
@settings(max_examples=300)
def test_pool_size_bounds(load, u, s):
    p = resize_pool(load, u, s)
    if not load:
        assert p == 0
    else:
        assert 1 <= p <= len(load)


@given(load=loads, u=units, s=slots)
@settings(max_examples=300)
def test_never_plans_beyond_work(load, u, s):
    """Counted instances must be justified: p-1 full instance-units fit in
    the total work (the final instance may be the line-28 tail)."""
    p = resize_pool(load, u, s)
    total = sum(load)
    assert (p - 1) * u <= total + 1e-6


@given(load=loads, u=units, s=slots)
@settings(max_examples=300)
def test_monotone_in_added_work(load, u, s):
    """Adding a task never shrinks the planned pool... by more than the
    tail-instance quantum (the tail rule can merge into a counted unit)."""
    p_before = resize_pool(load, u, s)
    p_after = resize_pool(load + [u], u, s)
    assert p_after >= p_before - 1


@given(load=loads, u=units, s=slots)
@settings(max_examples=300)
def test_deterministic(load, u, s):
    assert resize_pool(load, u, s) == resize_pool(load, u, s)


@given(n=st.integers(min_value=1, max_value=100), u=units, s=slots)
@settings(max_examples=200)
def test_long_tasks_full_parallelism(n, u, s):
    """Tasks of runtime >= u plan one slot each (§III-A: maximal
    parallelism consistent with full-unit utilization)."""
    p = resize_pool([u * 1.5] * n, u, s)
    assert p == math.ceil(n / s)


@given(u=units, s=slots)
@settings(max_examples=100)
def test_zero_work_tail_guard(u, s):
    """All-zero remaining times still plan exactly one instance."""
    assert resize_pool([0.0] * 50, u, s) == 1
