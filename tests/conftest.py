"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.cloud import CloudSite, InstanceType, exogeni_site
from repro.dag import Task, Workflow, WorkflowBuilder
from repro.engine import Autoscaler, ScalingDecision


class FixedPoolAutoscaler(Autoscaler):
    """Test helper: a static pool of a chosen size."""

    def __init__(self, size: int) -> None:
        self.size = size
        self.name = f"fixed-{size}"

    def initial_pool_size(self, site: CloudSite) -> int:
        return min(self.size, site.max_instances)

    def plan(self, obs) -> ScalingDecision:  # noqa: ANN001 - Observation
        return ScalingDecision()


@pytest.fixture
def site() -> CloudSite:
    """The paper's evaluation site (12 x 4-slot VMs, 3-minute lag)."""
    return exogeni_site()


@pytest.fixture
def small_site() -> CloudSite:
    """A snappy site for unit tests: 4 x 2-slot VMs, 10 s lag."""
    return CloudSite(
        name="mini",
        itype=InstanceType(name="mini", slots=2),
        max_instances=4,
        lag=10.0,
    )


@pytest.fixture
def diamond() -> Workflow:
    """a -> (b, c) -> d with 10 s tasks."""
    builder = WorkflowBuilder("diamond")
    builder.add_task(Task("a", "a", runtime=10.0))
    builder.add_task(Task("b", "b", runtime=10.0), parents=["a"])
    builder.add_task(Task("c", "c", runtime=10.0), parents=["a"])
    builder.add_task(Task("d", "d", runtime=10.0), parents=["b", "c"])
    return builder.build()


@pytest.fixture
def two_stage() -> Workflow:
    """split -> 6 maps -> merge, with size-correlated map runtimes."""
    builder = WorkflowBuilder("two-stage")
    builder.add_task(Task("split", "split", runtime=5.0, input_size=1e6))
    sizes = [1e7, 1e7, 2e7, 2e7, 3e7, 3e7]
    maps = builder.add_stage(
        "map",
        count=6,
        runtime=[10 + s / 1e6 for s in sizes],
        parents=["split"],
        input_sizes=sizes,
    )
    builder.add_task(Task("merge", "merge", runtime=4.0), parents=maps)
    return builder.build()


@pytest.fixture
def fixed_pool():
    """Factory for static test autoscalers."""
    return FixedPoolAutoscaler
