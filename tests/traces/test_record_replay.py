"""Tests for trace recording and the task-emulator replay."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import LinearTransferModel, Simulation
from repro.traces import RunTrace, emulated_workflow, record_run


@pytest.fixture
def completed_run(two_stage, small_site, fixed_pool):
    sim = Simulation(
        two_stage,
        small_site,
        fixed_pool(2),
        60.0,
        transfer_model=LinearTransferModel(bandwidth=1e7),
    )
    result = sim.run()
    return two_stage, result


class TestRecord:
    def test_records_every_task(self, completed_run):
        wf, result = completed_run
        trace = record_run(wf, result.monitor)
        assert len(trace.records) == len(wf)
        assert trace.workflow_name == wf.name

    def test_records_measured_times(self, completed_run):
        wf, result = completed_run
        trace = record_run(wf, result.monitor)
        by_id = {r.task_id: r for r in trace.records}
        # Nominal runtime model: measured == declared runtime.
        for tid, task in wf.tasks.items():
            assert by_id[tid].execution_time == pytest.approx(task.runtime)
            assert by_id[tid].stage_in_time >= 0.0

    def test_preserves_dag(self, completed_run):
        wf, result = completed_run
        trace = record_run(wf, result.monitor)
        by_id = {r.task_id: r for r in trace.records}
        for tid in wf.tasks:
            assert set(by_id[tid].parents) == set(wf.parents(tid))

    def test_incomplete_run_rejected(self, two_stage):
        from repro.engine import Monitor

        with pytest.raises(ValueError, match="no completed attempt"):
            record_run(two_stage, Monitor())

    def test_total_execution_time(self, completed_run):
        wf, result = completed_run
        trace = record_run(wf, result.monitor)
        assert trace.total_execution_time == pytest.approx(wf.total_work)


class TestSerialization:
    def test_round_trip(self, completed_run, tmp_path):
        wf, result = completed_run
        trace = record_run(wf, result.monitor)
        path = tmp_path / "trace.json"
        trace.save(path)
        loaded = RunTrace.load(path)
        assert loaded == trace

    def test_rejects_bad_version(self):
        with pytest.raises(ValueError, match="format version"):
            RunTrace.from_json('{"format_version": 99, "records": []}')


class TestReplay:
    def test_exact_replay(self, completed_run):
        wf, result = completed_run
        trace = record_run(wf, result.monitor)
        replay = emulated_workflow(trace)
        for tid, task in wf.tasks.items():
            assert replay.task(tid).runtime == pytest.approx(task.runtime)
        assert replay.topological_order() == wf.topological_order()

    def test_speed_factor(self, completed_run):
        wf, result = completed_run
        trace = record_run(wf, result.monitor)
        replay = emulated_workflow(trace, speed_factor=2.0)
        for tid, task in wf.tasks.items():
            assert replay.task(tid).runtime == pytest.approx(task.runtime * 2.0)

    def test_stage_factors(self, completed_run):
        wf, result = completed_run
        trace = record_run(wf, result.monitor)
        map_stage = wf.stage_of["map-0000"]
        replay = emulated_workflow(trace, stage_factors={map_stage: 3.0})
        assert replay.task("map-0000").runtime == pytest.approx(
            wf.task("map-0000").runtime * 3.0
        )
        assert replay.task("split").runtime == pytest.approx(
            wf.task("split").runtime
        )

    def test_noise_perturbation(self, completed_run):
        wf, result = completed_run
        trace = record_run(wf, result.monitor)
        a = emulated_workflow(trace, noise_cv=0.3, seed=1)
        b = emulated_workflow(trace, noise_cv=0.3, seed=2)
        ra = [t.runtime for t in a]
        rb = [t.runtime for t in b]
        assert ra != rb
        # Noise is mean-one: totals stay in the same ballpark.
        assert np.sum(ra) == pytest.approx(wf.total_work, rel=0.5)

    def test_replayed_workflow_runs(self, completed_run, small_site, fixed_pool):
        wf, result = completed_run
        trace = record_run(wf, result.monitor)
        replay = emulated_workflow(trace)
        replay_result = Simulation(replay, small_site, fixed_pool(2), 60.0).run()
        assert replay_result.completed

    def test_validation(self, completed_run):
        wf, result = completed_run
        trace = record_run(wf, result.monitor)
        with pytest.raises(Exception):
            emulated_workflow(trace, speed_factor=0.0)
        with pytest.raises(Exception):
            emulated_workflow(trace, noise_cv=-1.0)
