"""End-to-end tests: the InvariantChecker attached to real engine runs.

Covers the three contract points of the ``validate=`` wiring:

1. zero cost when disabled — ``sim.validator is None`` and results are
   bit-identical with/without a checker attached;
2. clean engines are quiet — full runs (single and fleet, clean and
   chaotic) report zero violations in collect mode and never raise in
   raise mode;
3. real corruptions are caught *mid-run* — a saboteur that drifts an
   index during the event loop trips raise mode at the next check.
"""

from __future__ import annotations

import pytest

from repro.autoscalers import PureReactiveAutoscaler, WireAutoscaler
from repro.cloud import exogeni_site
from repro.cloud.faults import parse_chaos_spec
from repro.engine.events import EventKind
from repro.engine.simulator import Simulation
from repro.experiments.harness import default_transfer_model
from repro.fleet.arrivals import PoissonArrivals
from repro.fleet.autoscalers import fleet_autoscaler
from repro.fleet.engine import FleetSimulation
from repro.fleet.policies import allocation_policy
from repro.validate import InvariantChecker, InvariantError
from repro.workloads import chain_workflow, single_stage_workflow, table1_specs


def make_sim(*, validate=None, chaos=None, policy=WireAutoscaler, seed=0):
    workflow = table1_specs()["tpch6-S"].generate(seed)
    return Simulation(
        workflow,
        exogeni_site(),
        policy(),
        60.0,
        transfer_model=default_transfer_model(),
        seed=seed,
        chaos=chaos,
        validate=validate,
    )


def make_fleet(*, validate=None, chaos=None, seed=1):
    catalog = {
        "wide": lambda seed: single_stage_workflow(6, 120.0),
        "deep": lambda seed: chain_workflow(4, 60.0),
    }
    submissions = PoissonArrivals(12.0, 3, ("wide", "deep")).generate(seed)
    return FleetSimulation(
        submissions,
        catalog,
        exogeni_site(),
        fleet_autoscaler("global-wire"),
        allocation_policy("fair-share"),
        900.0,
        seed=seed,
        chaos=chaos,
        validate=validate,
    )


def fingerprint(result) -> tuple:
    return (
        result.makespan.hex(),
        result.total_units,
        result.total_cost.hex(),
        result.wasted_seconds.hex(),
        result.utilization.hex(),
        result.restarts,
        result.ticks,
    )


class TestDisabledIsFree:
    def test_default_has_no_validator(self):
        assert make_sim().validator is None
        assert make_fleet().validator is None

    def test_false_means_disabled(self):
        assert make_sim(validate=False).validator is None

    def test_true_builds_raise_mode_checker(self):
        sim = make_sim(validate=True)
        assert isinstance(sim.validator, InvariantChecker)
        assert sim.validator.mode == "raise"


class TestCleanRunsAreQuiet:
    @pytest.mark.parametrize("chaos_text", [None, "revocations=8,stragglers=0.2"])
    def test_single_collect_mode_zero_violations(self, chaos_text):
        checker = InvariantChecker(mode="collect")
        chaos = parse_chaos_spec(chaos_text) if chaos_text else None
        sim = make_sim(
            validate=checker, chaos=chaos, policy=PureReactiveAutoscaler, seed=1
        )
        result = sim.run()
        assert result.completed
        assert checker.violations == []
        assert checker.events_checked > 0
        assert checker.ticks_checked > 0

    def test_single_raise_mode_does_not_raise(self):
        result = make_sim(validate=True).run()
        assert result.completed

    def test_fleet_collect_mode_zero_violations(self):
        checker = InvariantChecker(mode="collect")
        sim = make_fleet(validate=checker)
        result = sim.run()
        assert result.completed
        assert checker.violations == []

    def test_fleet_raise_mode_does_not_raise(self):
        result = make_fleet(validate=True).run()
        assert result.completed

    def test_shallow_mode_also_quiet(self):
        checker = InvariantChecker(mode="collect", deep=False)
        sim = make_sim(validate=checker)
        sim.run()
        assert checker.violations == []
        # shallow mode checks the pool only at ticks
        assert checker.ticks_checked < checker.events_checked


class TestValidationIsPureObservation:
    def test_single_run_bit_identical(self):
        bare = make_sim().run()
        validated = make_sim(validate=InvariantChecker(mode="collect")).run()
        assert fingerprint(bare) == fingerprint(validated)

    def test_single_chaos_run_bit_identical(self):
        chaos = parse_chaos_spec("revocations=8,stragglers=0.2")
        bare = make_sim(chaos=chaos, policy=PureReactiveAutoscaler, seed=1)
        validated = make_sim(
            chaos=chaos,
            policy=PureReactiveAutoscaler,
            seed=1,
            validate=InvariantChecker(mode="collect"),
        )
        assert fingerprint(bare.run()) == fingerprint(validated.run())

    def test_fleet_summary_byte_identical(self):
        bare = make_fleet().run().to_summary_json()
        validated = (
            make_fleet(validate=InvariantChecker(mode="collect"))
            .run()
            .to_summary_json()
        )
        assert bare == validated


class _Saboteur(InvariantChecker):
    """Checker that corrupts the pool once, mid-run, then checks as usual.

    Subclassing the checker is the least invasive way to mutate engine
    state from inside the event loop at a deterministic point.
    """

    def __init__(self, corrupt, **kwargs) -> None:
        super().__init__(**kwargs)
        self._corrupt = corrupt
        self.fired = False

    def after_event(self, sim, event):
        if (
            not self.fired
            and event.kind is EventKind.CONTROLLER_TICK
            and sim.pool.running_count() > 0
        ):
            self._corrupt(sim)
            self.fired = True
        super().after_event(sim, event)


class TestCorruptionIsCaught:
    def test_placement_ghost_raises_mid_run(self):
        def corrupt(sim):
            sim.pool._task_instance["ghost"] = next(iter(sim.pool._running_ids))

        checker = _Saboteur(corrupt)
        with pytest.raises(InvariantError) as excinfo:
            make_sim(validate=checker).run()
        assert checker.fired
        assert excinfo.value.violation.invariant == "pool.placement_index"

    def test_bucket_drift_raises_mid_run(self):
        def corrupt(sim):
            for bucket in sim.pool._buckets.values():
                if bucket:
                    bucket.pop()
                    return

        with pytest.raises(InvariantError) as excinfo:
            make_sim(validate=_Saboteur(corrupt)).run()
        assert excinfo.value.violation.invariant in (
            "pool.free_slot_index",
            "pool.free_slot_total",
        )

    def test_collect_mode_survives_to_completion(self):
        def corrupt(sim):
            sim.pool._task_instance["ghost"] = next(iter(sim.pool._running_ids))

        checker = _Saboteur(corrupt, mode="collect")
        result = make_sim(validate=checker).run()
        assert result.completed
        assert checker.violations
        assert "pool.placement_index" in {
            v.invariant for v in checker.violations
        }

    def test_busy_accounting_drop_raises(self):
        """Dropping one assign timestamp — the historical undercounting
        bug shape — trips slots.assign_times at the very next event."""

        def corrupt(sim):
            for instance in sim.pool:
                if instance._assign_times:
                    instance._assign_times.popitem()
                    return

        checker = _Saboteur(corrupt)
        with pytest.raises(InvariantError) as excinfo:
            make_sim(validate=checker, policy=PureReactiveAutoscaler).run()
        assert excinfo.value.violation.invariant == "slots.assign_times"


class TestCheckerConstruction:
    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            InvariantChecker(mode="explode")
