"""Targeted corruption tests for the pure invariant checks.

Each test hand-builds a small consistent structure, verifies the check
passes, then applies *one* corruption and asserts the matching invariant
(and only a sensible set) trips. This is the checker checking the
checker: a rewrite of an invariant that silently stops detecting its
bug class fails here.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud.billing import BillingModel
from repro.cloud.instance import Instance, InstanceState, InstanceType
from repro.cloud.pool import InstancePool
from repro.engine.monitor import Monitor
from repro.validate import (
    InvariantError,
    Violation,
    check_billing_instance,
    check_fleet_attribution,
    check_monitor_aggregates,
    check_pool_slots,
    check_task_conservation,
    committed_units,
    occupancy_integral,
)


def names(violations) -> set[str]:
    return {v.invariant for v in violations}


def make_pool(slots: int = 2) -> InstancePool:
    return InstancePool(InstanceType(name="t", slots=slots), BillingModel(60.0))


def running_instance(pool: InstancePool, now: float = 0.0) -> Instance:
    inst = pool.create(now)
    inst.mark_running(now)
    return inst


# ----------------------------------------------------------------------
# pool / slot accounting
# ----------------------------------------------------------------------
class TestPoolSlots:
    def test_clean_pool_passes(self):
        pool = make_pool()
        a = running_instance(pool)
        running_instance(pool)
        pool.create(5.0)  # a PENDING straggler
        a.assign("t1", 1.0)
        assert check_pool_slots(pool, 10.0) == []

    def test_over_capacity(self):
        pool = make_pool(slots=1)
        inst = running_instance(pool)
        inst.assign("t1", 1.0)
        # bypass assign() to overfill the slot set
        inst.occupants.add("t2")
        assert "slots.capacity" in names(check_pool_slots(pool, 10.0))

    def test_occupants_on_non_running_instance(self):
        pool = make_pool()
        inst = running_instance(pool)
        inst.assign("t1", 1.0)
        # bypass mark_terminated's occupants guard
        inst.state = InstanceState.TERMINATED
        found = names(check_pool_slots(pool, 10.0))
        assert "slots.occupied_not_running" in found

    def test_assign_without_timestamp(self):
        pool = make_pool()
        inst = running_instance(pool)
        inst.assign("t1", 1.0)
        # lose the busy-accounting record while keeping the occupant:
        # exactly what an untimed assign on the engine path would do
        del inst._assign_times["t1"]
        assert "slots.assign_times" in names(check_pool_slots(pool, 10.0))

    def test_negative_busy_accumulator(self):
        pool = make_pool()
        inst = running_instance(pool)
        inst.busy_slot_seconds = -1.0
        assert "slots.busy_non_negative" in names(check_pool_slots(pool, 10.0))

    def test_bucket_drift(self):
        pool = make_pool()
        inst = running_instance(pool)
        pool._buckets[2].discard(inst.instance_id)
        found = names(check_pool_slots(pool, 10.0))
        assert "pool.free_slot_index" in found
        assert "pool.free_slot_total" in found

    def test_stale_running_id(self):
        pool = make_pool()
        running_instance(pool)
        pool._running_ids.add("vm-9999")
        assert "pool.state_index" in names(check_pool_slots(pool, 10.0))

    def test_placement_ghost(self):
        pool = make_pool()
        inst = running_instance(pool)
        pool._task_instance["ghost"] = inst.instance_id
        assert "pool.placement_index" in names(check_pool_slots(pool, 10.0))

    def test_placement_moved(self):
        pool = make_pool()
        a = running_instance(pool)
        b = running_instance(pool)
        a.assign("t1", 1.0)
        pool._task_instance["t1"] = b.instance_id
        found = check_pool_slots(pool, 10.0)
        assert "pool.placement_index" in names(found)
        moved = next(
            v for v in found if v.invariant == "pool.placement_index"
        )
        assert moved.context["moved"] == ["t1"]


# ----------------------------------------------------------------------
# billing
# ----------------------------------------------------------------------
class _LyingBilling(BillingModel):
    """BillingModel whose overridden quantities inject one specific lie."""

    def __init__(self, u: float, **lies) -> None:
        super().__init__(u)
        self._lies = lies

    def units_charged(self, instance, now):
        if "units" in self._lies:
            return self._lies["units"]
        return super().units_charged(instance, now)

    def paid_until(self, instance, now):
        if "paid_until" in self._lies:
            return self._lies["paid_until"]
        return super().paid_until(instance, now)

    def next_charge_time(self, instance, now):
        if "next_charge" in self._lies:
            return self._lies["next_charge"]
        return super().next_charge_time(instance, now)

    def wasted_time(self, instance, now):
        if "wasted" in self._lies:
            return self._lies["wasted"]
        return super().wasted_time(instance, now)


def make_running(started_at: float = 0.0) -> Instance:
    inst = Instance(
        instance_id="v",
        itype=InstanceType(name="t", slots=1),
        requested_at=started_at,
    )
    inst.mark_running(started_at)
    return inst


class TestCommittedUnits:
    def test_never_started_owes_nothing(self):
        inst = Instance(
            instance_id="v",
            itype=InstanceType(name="t", slots=1),
            requested_at=0.0,
        )
        assert committed_units(BillingModel(60.0), inst, 100.0) == 0

    def test_first_unit_committed_immediately(self):
        assert committed_units(BillingModel(60.0), make_running(), 0.0) == 1
        assert committed_units(BillingModel(60.0), make_running(), 30.0) == 1

    def test_boundary_exact_release_still_owes_k_units(self):
        # at exactly t=60 a release owes 1 unit, not the provisional 2
        billing = BillingModel(60.0)
        assert committed_units(billing, make_running(), 60.0) == 1
        assert committed_units(billing, make_running(), 60.1) == 2

    @given(
        u=st.floats(min_value=0.5, max_value=10_000, allow_nan=False),
        e1=st.floats(min_value=0, max_value=1e6, allow_nan=False),
        e2=st.floats(min_value=0, max_value=1e6, allow_nan=False),
    )
    @settings(max_examples=200)
    def test_monotone_in_time(self, u, e1, e2):
        billing = BillingModel(u)
        inst = make_running(0.0)
        lo, hi = sorted((e1, e2))
        assert committed_units(billing, inst, lo) <= committed_units(
            billing, inst, hi
        )

    @given(
        u=st.floats(min_value=0.5, max_value=10_000, allow_nan=False),
        elapsed=st.floats(min_value=0, max_value=1e6, allow_nan=False),
    )
    @settings(max_examples=200)
    def test_never_exceeds_units_charged(self, u, elapsed):
        """The provisional count is an upper bound on the committed one."""
        billing = BillingModel(u)
        inst = make_running(0.0)
        assert committed_units(billing, inst, elapsed) <= billing.units_charged(
            inst, elapsed
        )


class TestBillingInstance:
    def test_clean_running_instance_passes(self):
        billing = BillingModel(60.0)
        inst = make_running(0.0)
        assert check_billing_instance(billing, inst, 95.0) == []

    @given(
        u=st.floats(min_value=0.5, max_value=10_000, allow_nan=False),
        start=st.floats(min_value=0, max_value=1e6, allow_nan=False),
        elapsed=st.floats(min_value=0, max_value=1e6, allow_nan=False),
    )
    @settings(max_examples=200)
    def test_real_billing_never_trips(self, u, start, elapsed):
        """The real BillingModel satisfies every per-instance invariant
        at arbitrary observation times (the checker must be quiet on
        correct code)."""
        billing = BillingModel(u)
        inst = make_running(start)
        now = start + elapsed
        assert check_billing_instance(
            billing, inst, now, last_units=committed_units(billing, inst, now)
        ) == []

    def test_monotonicity_violation(self):
        billing = BillingModel(60.0)
        found = check_billing_instance(
            billing, make_running(0.0), 30.0, last_units=5
        )
        assert "billing.units_monotone" in names(found)

    def test_undercharge(self):
        billing = _LyingBilling(60.0, units=0)
        found = check_billing_instance(billing, make_running(0.0), 30.0)
        assert "billing.undercharged" in names(found)

    def test_charge_after_termination(self):
        billing = BillingModel(60.0)
        inst = make_running(0.0)
        inst.mark_terminated(90.0)
        # frozen at 2 units; claim only 1 was owed at termination
        found = check_billing_instance(
            billing, inst, 500.0, units_at_termination=1
        )
        assert "billing.charged_after_termination" in names(found)

    def test_never_started_charged(self):
        billing = _LyingBilling(60.0, units=7)
        inst = Instance(
            instance_id="v",
            itype=InstanceType(name="t", slots=1),
            requested_at=5.0,
        )
        assert "billing.never_started_free" in names(
            check_billing_instance(billing, inst, 100.0)
        )

    def test_pending_paid_until(self):
        billing = _LyingBilling(60.0, paid_until=99.0)
        inst = Instance(
            instance_id="v",
            itype=InstanceType(name="t", slots=1),
            requested_at=5.0,
        )
        assert "billing.pending_paid_until" in names(
            check_billing_instance(billing, inst, 100.0)
        )

    def test_unpaid_running_time(self):
        billing = _LyingBilling(60.0, paid_until=10.0)
        found = check_billing_instance(billing, make_running(0.0), 30.0)
        assert "billing.paid_through_now" in names(found)

    def test_boundary_convention_drift(self):
        billing = _LyingBilling(60.0, next_charge=45.0)
        found = check_billing_instance(billing, make_running(0.0), 30.0)
        assert "billing.boundary_consistency" in names(found)

    def test_negative_waste(self):
        billing = _LyingBilling(60.0, wasted=-3.0)
        found = check_billing_instance(billing, make_running(0.0), 30.0)
        assert "billing.wasted_non_negative" in names(found)


# ----------------------------------------------------------------------
# monitor aggregates
# ----------------------------------------------------------------------
def populated_monitor() -> Monitor:
    monitor = Monitor()
    for i, task in enumerate(("a", "b", "c")):
        monitor.record_dispatch(task, "s0", "vm-1", float(i), 1e6, 1e6)
        monitor.record_exec_start(task, float(i) + 1.0)
    for task in ("a", "b"):
        monitor.record_exec_end(task, 10.0)
        monitor.record_complete(task, 11.0)
    return monitor


class TestMonitorAggregates:
    def test_clean_monitor_passes(self):
        assert check_monitor_aggregates(populated_monitor(), 20.0) == []

    def test_completed_index_drift(self):
        monitor = populated_monitor()
        monitor._completed_by_stage["s0"].pop()
        found = check_monitor_aggregates(monitor, 20.0)
        assert "monitor.completed_in_stage" in names(found)

    def test_running_index_drift(self):
        monitor = populated_monitor()
        monitor._running_by_stage["s0"].clear()
        found = check_monitor_aggregates(monitor, 20.0)
        assert "monitor.running_in_stage" in names(found)

    def test_transfer_log_drift(self):
        monitor = populated_monitor()
        monitor._transfer_obs.pop()
        found = check_monitor_aggregates(monitor, 20.0)
        assert "monitor.transfer_observations" in names(found)

    def test_label_prefixes_messages(self):
        monitor = populated_monitor()
        monitor._completed_by_stage["s0"].pop()
        found = check_monitor_aggregates(monitor, 20.0, label="tenant-3")
        assert any(v.message.startswith("tenant-3: ") for v in found)


# ----------------------------------------------------------------------
# task conservation
# ----------------------------------------------------------------------
class TestTaskConservation:
    def test_completed_run_clean(self):
        monitor = populated_monitor()
        monitor.record_exec_end("c", 12.0)
        monitor.record_complete("c", 13.0)
        assert check_task_conservation(["a", "b", "c"], monitor, 20.0) == []

    def test_missing_completion(self):
        monitor = populated_monitor()
        monitor.record_kill("c", 12.0)
        found = check_task_conservation(["a", "b", "c"], monitor, 20.0)
        assert "tasks.completed_once" in names(found)

    def test_incomplete_run_tolerates_missing_but_not_double(self):
        monitor = populated_monitor()
        monitor.record_kill("c", 12.0)
        assert (
            check_task_conservation(
                ["a", "b", "c"], monitor, 20.0, completed_run=False
            )
            == []
        )
        # double completion is wrong on any run
        monitor.attempts("a")[0].complete_time = 11.0
        monitor.record_dispatch("a", "s0", "vm-1", 14.0, 1e6, 1e6)
        monitor.record_complete("a", 15.0)
        found = check_task_conservation(
            ["a", "b", "c"], monitor, 20.0, completed_run=False
        )
        assert "tasks.completed_once" in names(found)

    def test_completed_and_killed_attempt(self):
        monitor = populated_monitor()
        monitor.record_exec_end("c", 12.0)
        monitor.record_complete("c", 13.0)
        monitor.attempts("a")[0].killed_at = 11.0
        found = check_task_conservation(["a", "b", "c"], monitor, 20.0)
        assert "tasks.attempt_accounting" in names(found)

    def test_inflight_after_finalization(self):
        monitor = populated_monitor()  # "c" is still in flight
        found = check_task_conservation(["a", "b"], monitor, 20.0)
        # "c" not in task_ids -> clean; now include it
        assert found == []
        found = check_task_conservation(["a", "b", "c"], monitor, 20.0)
        assert "tasks.attempt_accounting" in names(found)


# ----------------------------------------------------------------------
# fleet attribution + occupancy integral
# ----------------------------------------------------------------------
class TestFleetAttribution:
    def test_balanced_shares_pass(self):
        assert check_fleet_attribution(100.0, [40.0, 50.0], 10.0, 5.0) == []

    def test_leaked_share_trips(self):
        found = check_fleet_attribution(100.0, [40.0, 50.0], 0.0, 5.0)
        assert names(found) == {"fleet.cost_shares"}

    def test_zero_cost_fleet_passes(self):
        assert check_fleet_attribution(0.0, [], 0.0, 5.0) == []


class TestOccupancyIntegral:
    def test_completed_killed_and_inflight_attempts(self):
        monitor = Monitor()
        monitor.record_dispatch("a", "s0", "vm-1", 10.0, 0.0, 0.0)
        monitor.record_complete("a", 25.0)  # 15 s
        monitor.record_dispatch("b", "s0", "vm-1", 10.0, 0.0, 0.0)
        monitor.record_kill("b", 20.0)  # 10 s
        monitor.record_dispatch("b", "s0", "vm-2", 21.0, 0.0, 0.0)  # elsewhere
        monitor.record_dispatch("c", "s0", "vm-1", 25.0, 0.0, 0.0)  # in flight
        assert occupancy_integral(monitor, "vm-1", 30.0) == pytest.approx(
            15.0 + 10.0 + 5.0
        )
        assert occupancy_integral(monitor, "vm-2", 30.0) == pytest.approx(9.0)
        assert occupancy_integral(monitor, "vm-9", 30.0) == 0.0


# ----------------------------------------------------------------------
# violation plumbing
# ----------------------------------------------------------------------
class TestViolation:
    def test_to_json_round_trips(self):
        v = Violation("pool.free_slot_index", 12.5, "drift", {"x": 1})
        assert v.to_json() == {
            "invariant": "pool.free_slot_index",
            "time": 12.5,
            "message": "drift",
            "context": {"x": 1},
        }

    def test_invariant_error_carries_violation(self):
        v = Violation("billing.undercharged", 3.0, "short by one unit")
        err = InvariantError(v)
        assert err.violation is v
        assert "billing.undercharged" in str(err)
        assert isinstance(err, AssertionError)


# ----------------------------------------------------------------------
# property: timed assign/release bookkeeping stays consistent
# ----------------------------------------------------------------------
@given(
    st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=3),  # which task slot
            st.floats(min_value=0.1, max_value=100.0, allow_nan=False),
        ),
        max_size=30,
    )
)
@settings(max_examples=100)
def test_random_assign_release_keeps_pool_invariants(ops):
    """Any legal timed assign/release interleaving leaves the pool clean
    and accrues exactly the hand-tracked busy integral."""
    pool = make_pool(slots=4)
    inst = running_instance(pool)
    now = 0.0
    expected_busy = 0.0
    held: dict[str, float] = {}
    for slot, dt in ops:
        now += dt
        task = f"task-{slot}"
        if task in held:
            inst.release(task, now)
            expected_busy += now - held.pop(task)
        else:
            inst.assign(task, now)
            held[task] = now
    assert check_pool_slots(pool, now) == []
    assert inst.busy_slot_seconds == pytest.approx(expected_busy)
