"""Tests for the differential-replay fuzz harness (repro.validate.fuzz)."""

from __future__ import annotations

import json

from repro.validate.fuzz import (
    Outcome,
    Scenario,
    dump_repro,
    fleet_grid,
    main,
    run_differential,
    single_grid,
)
from repro.validate.invariants import Violation


class TestGrids:
    def test_single_grid_covers_every_policy(self):
        grid = list(single_grid([0]))
        assert {s.policy for s in grid} == {
            "full-site",
            "pure-reactive",
            "reactive-conserving",
            "wire",
            "oracle",
        }
        assert all(s.kind == "single" for s in grid)

    def test_fleet_grid_covers_arrivals_and_autoscalers(self):
        grid = list(fleet_grid([0]))
        assert {s.arrival for s in grid} == {"poisson", "bursty", "trace"}
        assert {s.fleet_autoscaler for s in grid} == {
            "global-wire",
            "global-static",
            "global-reactive",
        }

    def test_quick_trims_but_keeps_all_policies(self):
        quick = list(single_grid([0], quick=True))
        full = list(single_grid([0]))
        assert len(quick) < len(full)
        assert {s.policy for s in quick} == {s.policy for s in full}

    def test_labels_unique(self):
        grid = list(single_grid([0, 1])) + list(fleet_grid([0, 1]))
        labels = [s.label for s in grid]
        assert len(labels) == len(set(labels))

    def test_scenario_json_round_trips(self):
        scenario = next(iter(single_grid([0])))
        payload = scenario.to_json()
        assert Scenario(**payload) == scenario


class TestDifferential:
    def test_single_scenario_ok(self):
        scenario = Scenario(
            kind="single", label="t", workload="tpch6-S", policy="wire"
        )
        outcome = run_differential(scenario)
        assert outcome.ok
        assert outcome.identical
        assert outcome.violations == []
        assert outcome.expected == outcome.actual

    def test_chaos_scenario_ok(self):
        scenario = Scenario(
            kind="single",
            label="t",
            policy="pure-reactive",
            chaos="revocations=2,stragglers=0.2",
            seed=1,
        )
        assert run_differential(scenario).ok

    def test_fleet_scenario_ok(self):
        scenario = Scenario(
            kind="fleet", label="t", arrival="poisson", charging_unit=900.0
        )
        outcome = run_differential(scenario)
        assert outcome.ok
        # fleet fingerprints are the canonical summary JSON rendering
        assert isinstance(outcome.expected, str)

    def test_shallow_matches_deep(self):
        scenario = Scenario(kind="single", label="t")
        assert run_differential(scenario, deep=False).ok


class TestReproDump:
    def test_dump_writes_reconstructable_json(self, tmp_path):
        scenario = Scenario(
            kind="single", label="single/tpch6-S/wire/clean/s0"
        )
        outcome = Outcome(
            scenario=scenario,
            identical=False,
            violations=[
                Violation("pool.free_slot_index", 42.0, "drift", {"k": 1})
            ],
            expected={"makespan": "0x1.0p+6"},
            actual={"makespan": "0x1.8p+6"},
        )
        path = dump_repro(outcome, tmp_path)
        assert path.name == "repro_single_tpch6-S_wire_clean_s0.json"
        payload = json.loads(path.read_text())
        assert Scenario(**payload["scenario"]) == scenario
        assert payload["identical"] is False
        assert payload["violations"][0]["invariant"] == "pool.free_slot_index"
        assert payload["expected"] != payload["actual"]


class TestMain:
    def test_quick_single_sweep_passes(self, tmp_path, capsys):
        out = tmp_path / "summary.json"
        rc = main(
            [
                "--quick",
                "--seeds",
                "1",
                "--kind",
                "single",
                "--out",
                str(out),
                "--repro-dir",
                str(tmp_path / "repros"),
            ]
        )
        assert rc == 0
        summary = json.loads(out.read_text())
        assert summary["failures"] == 0
        assert summary["scenarios"] == len(summary["results"])
        assert all(r["status"] == "ok" for r in summary["results"])
        # no failures -> no repro files
        assert not (tmp_path / "repros").exists()
        assert "zero violations" in capsys.readouterr().out

    def test_quick_fleet_sweep_passes(self):
        assert main(["--quick", "--seeds", "1", "--kind", "fleet"]) == 0
