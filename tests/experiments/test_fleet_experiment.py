"""Tests for the fleet arrival-rate sweep experiment."""

from __future__ import annotations

import pytest

from repro.experiments import fleet_experiment, render_fleet_sweep
from repro.experiments.fleet import FleetSweepRow

#: tiny sweep so the multi-process cases stay fast
SWEEP = dict(n=2, workloads=("tpch6-S",), charging_unit=900.0)


class TestSweep:
    def test_one_row_per_rate_seed_cell(self):
        rows = fleet_experiment([6.0, 12.0], seeds=(0, 1), **SWEEP)
        assert len(rows) == 4
        assert [(r.rate, r.seed) for r in rows] == [
            (6.0, 0), (6.0, 1), (12.0, 0), (12.0, 1)
        ]
        assert all(isinstance(r, FleetSweepRow) for r in rows)
        assert all(r.completed for r in rows)

    def test_serial_equals_parallel(self):
        serial = fleet_experiment([6.0, 12.0], seeds=(0,), jobs=1, **SWEEP)
        parallel = fleet_experiment([6.0, 12.0], seeds=(0,), jobs=2, **SWEEP)
        assert serial == parallel

    def test_rejects_empty_rates(self):
        with pytest.raises(ValueError, match="arrival rate"):
            fleet_experiment([])

    def test_render(self):
        rows = fleet_experiment([6.0], seeds=(0,), **SWEEP)
        text = render_fleet_sweep(rows)
        assert "fleet sweep" in text
        assert "fair-share" in text

    def test_render_empty(self):
        assert render_fleet_sweep([]) == "no fleet sweep rows"
