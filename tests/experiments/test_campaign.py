"""Tests for the persistent campaign store."""

from __future__ import annotations

import json

import pytest

from repro.autoscalers import PureReactiveAutoscaler
from repro.experiments.campaign import (
    CampaignStore,
    CellRecord,
    run_campaign,
)
from repro.workloads import tpch6


@pytest.fixture
def matrix():
    return dict(
        specs={"tpch6-S": tpch6("S")},
        policies={"pure-reactive": PureReactiveAutoscaler},
        charging_units=[60.0, 900.0],
        seeds=[0, 1],
    )


class TestStore:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "campaign.json"
        store = CampaignStore(path)
        record = CellRecord(
            workflow="w", policy="p", charging_unit=60.0, seed=0,
            makespan=10.0, total_units=2, total_cost=2.0, utilization=0.5,
            peak_instances=1, restarts=0, completed=True,
        )
        store.put(record)
        store.save()
        again = CampaignStore(path)
        assert len(again) == 1
        assert again.get(record.key) == record

    def test_version_check(self, tmp_path):
        path = tmp_path / "campaign.json"
        path.write_text(json.dumps({"format_version": 99, "records": []}))
        with pytest.raises(ValueError, match="format version"):
            CampaignStore(path)

    def test_missing_file_starts_empty(self, tmp_path):
        assert len(CampaignStore(tmp_path / "new.json")) == 0


class TestRunCampaign:
    def test_fills_matrix(self, tmp_path, matrix):
        store = CampaignStore(tmp_path / "c.json")
        records, executed = run_campaign(store, **matrix)
        assert executed == 4  # 1 wf x 1 policy x 2 units x 2 seeds
        assert len(records) == 4
        assert all(r.completed for r in records)

    def test_resume_runs_nothing(self, tmp_path, matrix):
        path = tmp_path / "c.json"
        run_campaign(CampaignStore(path), **matrix)
        # A fresh store object against the same file: everything cached.
        records, executed = run_campaign(CampaignStore(path), **matrix)
        assert executed == 0
        assert len(records) == 4

    def test_partial_resume(self, tmp_path, matrix):
        path = tmp_path / "c.json"
        small = dict(matrix, seeds=[0])
        run_campaign(CampaignStore(path), **small)
        records, executed = run_campaign(CampaignStore(path), **matrix)
        assert executed == 2  # only the seed-1 cells were missing
        assert len(records) == 4

    def test_records_deterministic_and_consistent(self, tmp_path, matrix):
        path = tmp_path / "c.json"
        records, _ = run_campaign(CampaignStore(path), **matrix)
        keys = [r.key for r in records]
        assert keys == sorted(
            keys, key=lambda k: (k.workflow, k.policy, k.charging_unit, k.seed)
        )
        # Same seed + setting later reproduces the same measurements.
        rerun, _ = run_campaign(CampaignStore(tmp_path / "d.json"), **matrix)
        assert [r.makespan for r in rerun] == [r.makespan for r in records]
