"""Tests for the parallel campaign executor.

The load-bearing property: a parallel campaign's persisted store is
byte-identical to a serial one over the same matrix — cell results
depend only on their keys, never on scheduling — and an interrupted
campaign resumes without recomputing or losing any cell.
"""

from __future__ import annotations

import os
import signal

import pytest

from repro.autoscalers import PureReactiveAutoscaler, WireAutoscaler
from repro.experiments.campaign import CampaignStore, run_campaign
from repro.experiments.parallel import (
    FailedCell,
    _factory_payload,
    run_campaign_parallel,
)
from repro.workloads import tpch1, tpch6


class _KillWorkerOnce:
    """Picklable factory: the first worker to build it SIGKILLs itself.

    A sentinel file makes the kill one-shot — the retried attempt (in a
    rebuilt pool) finds the sentinel and returns a real policy — so the
    test models a worker process dying mid-cell, not a poisoned cell.
    """

    def __init__(self, sentinel: str) -> None:
        self.sentinel = sentinel

    def __call__(self):
        try:
            with open(self.sentinel, "x"):
                pass
        except FileExistsError:
            return WireAutoscaler()
        os.kill(os.getpid(), signal.SIGKILL)
        raise AssertionError("unreachable")  # pragma: no cover


class _BoomAutoscaler:
    """A picklable factory that always fails inside the worker."""

    def __call__(self):
        raise RuntimeError("boom")

    def __init__(self):
        pass

    def __reduce__(self):
        return (_BoomAutoscaler, ())


@pytest.fixture
def matrix():
    """The satellite's 2x2x2x2 determinism matrix."""
    return dict(
        specs={"tpch1-S": tpch1("S"), "tpch6-S": tpch6("S")},
        policies={
            "pure-reactive": PureReactiveAutoscaler,
            "wire": WireAutoscaler,
        },
        charging_units=[60.0, 900.0],
        seeds=[0, 1],
    )


class TestDeterminism:
    @pytest.mark.parametrize("save_every", [1, 5, 100])
    def test_jobs4_store_byte_identical_to_serial(
        self, tmp_path, matrix, save_every
    ):
        serial_path = tmp_path / "serial.json"
        run_campaign(CampaignStore(serial_path), **matrix)

        parallel_path = tmp_path / "parallel.json"
        records, executed, failed = run_campaign_parallel(
            CampaignStore(parallel_path),
            **matrix,
            jobs=4,
            save_every=save_every,
        )
        assert failed == []
        assert executed == 16  # 2 wf x 2 policies x 2 units x 2 seeds
        assert serial_path.read_bytes() == parallel_path.read_bytes()
        assert len(records) == 16

    def test_jobs1_inline_matches_serial(self, tmp_path, matrix):
        serial_path = tmp_path / "serial.json"
        run_campaign(CampaignStore(serial_path), **matrix)
        inline_path = tmp_path / "inline.json"
        _, executed, failed = run_campaign_parallel(
            CampaignStore(inline_path), **matrix, jobs=1
        )
        assert failed == []
        assert executed == 16
        assert serial_path.read_bytes() == inline_path.read_bytes()

    def test_chaos_campaign_jobs4_byte_identical_to_serial(
        self, tmp_path, matrix
    ):
        # ChaosSpec is frozen data: the fault draws a worker makes are
        # identical to an inline run's, so a chaotic campaign store is as
        # scheduling-independent as a clean one.
        from repro.cloud.faults import ChaosSpec

        chaos = ChaosSpec(
            revocation_rate=20.0,
            provision_failure=0.2,
            straggler_probability=0.2,
            blackout_probability=0.2,
        )
        serial_path = tmp_path / "serial.json"
        run_campaign(CampaignStore(serial_path), **matrix, chaos=chaos)
        parallel_path = tmp_path / "parallel.json"
        _, executed, failed = run_campaign_parallel(
            CampaignStore(parallel_path), **matrix, jobs=4, chaos=chaos
        )
        assert failed == []
        assert executed == 16
        assert serial_path.read_bytes() == parallel_path.read_bytes()
        # and chaos actually changed outcomes vs a clean campaign
        clean_path = tmp_path / "clean.json"
        run_campaign(CampaignStore(clean_path), **matrix)
        assert clean_path.read_bytes() != serial_path.read_bytes()


class TestResume:
    @pytest.mark.parametrize("jobs", [1, 4])
    def test_interrupted_campaign_never_recomputes_or_loses_cells(
        self, tmp_path, matrix, jobs
    ):
        path = tmp_path / "c.json"
        # First pass over a partial matrix stands in for an interrupted
        # run: only seed-0 cells exist afterwards.
        partial = dict(matrix, seeds=[0])
        _, first_executed, _ = run_campaign_parallel(
            CampaignStore(path), **partial, jobs=jobs
        )
        assert first_executed == 8
        before = {
            r.key: r for r in CampaignStore(path).records()
        }

        _, executed, failed = run_campaign_parallel(
            CampaignStore(path), **matrix, jobs=jobs
        )
        assert failed == []
        assert executed == 8  # only the seed-1 half was recomputed
        after = {r.key: r for r in CampaignStore(path).records()}
        assert len(after) == 16
        # no cell lost, no finished cell recomputed to a different value
        for key, record in before.items():
            assert after[key] == record

    def test_full_store_executes_nothing(self, tmp_path, matrix):
        path = tmp_path / "c.json"
        run_campaign_parallel(CampaignStore(path), **matrix, jobs=4)
        _, executed, failed = run_campaign_parallel(
            CampaignStore(path), **matrix, jobs=4
        )
        assert executed == 0
        assert failed == []


class TestFailureIsolation:
    @pytest.mark.parametrize("jobs", [1, 3])
    def test_failing_policy_reported_not_fatal(self, tmp_path, jobs):
        store = CampaignStore(tmp_path / "c.json")
        records, executed, failed = run_campaign_parallel(
            store,
            {"tpch6-S": tpch6("S")},
            {"good": PureReactiveAutoscaler, "bad": _BoomAutoscaler()},
            [60.0],
            [0, 1],
            jobs=jobs,
        )
        assert executed == 2  # the good policy's cells completed
        assert sorted(r.policy for r in records) == ["good", "good"]
        assert len(failed) == 2  # bad cells failed after one retry each
        assert all(isinstance(f, FailedCell) for f in failed)
        assert all("boom" in f.error for f in failed)
        assert all(f.key.policy == "bad" for f in failed)
        # the store on disk holds exactly the successful cells
        assert len(CampaignStore(store.path)) == 2

    def test_killed_worker_cell_retried_to_serial_identical_store(
        self, tmp_path
    ):
        """A worker SIGKILLed mid-cell breaks the pool; the cell's retry
        (after the pool rebuild) must leave a store — and per-cell trace
        files — byte-identical to a serial campaign's."""
        specs = {"tpch6-S": tpch6("S")}
        serial_path = tmp_path / "serial.json"
        serial_traces = tmp_path / "serial-traces"
        run_campaign(
            CampaignStore(serial_path),
            specs,
            {"wire": WireAutoscaler},
            [60.0],
            [0, 1],
            trace_dir=serial_traces,
        )

        parallel_path = tmp_path / "parallel.json"
        parallel_traces = tmp_path / "parallel-traces"
        killer = _KillWorkerOnce(str(tmp_path / "killed-once"))
        records, executed, failed = run_campaign_parallel(
            CampaignStore(parallel_path),
            specs,
            {"wire": killer},
            [60.0],
            [0, 1],
            jobs=2,
            trace_dir=parallel_traces,
        )
        assert (tmp_path / "killed-once").exists()  # a worker really died
        assert failed == []
        assert executed == 2
        assert len(records) == 2
        assert serial_path.read_bytes() == parallel_path.read_bytes()
        for name in sorted(p.name for p in serial_traces.iterdir()):
            assert (
                (serial_traces / name).read_bytes()
                == (parallel_traces / name).read_bytes()
            ), name

    def test_unpicklable_unknown_policy_rejected(self):
        marker = object()
        with pytest.raises(ValueError, match="not picklable"):
            _factory_payload("custom", lambda: marker)

    def test_standard_policy_names_ship_by_name(self):
        kind, blob = _factory_payload("wire", lambda: None)
        assert (kind, blob) == ("name", "wire")


class TestStoreFlush:
    def test_save_every_batches_but_exception_flushes(self, tmp_path, matrix):
        path = tmp_path / "c.json"
        store = CampaignStore(path)
        calls = 0
        original = store.save

        def counting_save():
            nonlocal calls
            calls += 1
            original()

        store.save = counting_save  # type: ignore[method-assign]
        _, executed = run_campaign(store, **matrix, save_every=5)
        assert executed == 16
        # 3 periodic saves (after cells 5, 10, 15) + the final flush
        assert calls == 4
        assert len(CampaignStore(path)) == 16

    def test_exception_mid_campaign_flushes_completed_cells(self, tmp_path):
        path = tmp_path / "c.json"
        store = CampaignStore(path)

        class FlakyFactory:
            calls = 0

            def __call__(self):
                FlakyFactory.calls += 1
                if FlakyFactory.calls >= 2:
                    raise KeyboardInterrupt  # an interrupt mid-campaign
                return PureReactiveAutoscaler()

        with pytest.raises(KeyboardInterrupt):
            run_campaign(
                store,
                # sorted workload order: the a-first cell completes, then
                # the factory interrupts the b-second cell
                {"a-first": tpch1("S"), "b-second": tpch6("S")},
                {"ok": FlakyFactory()},
                [60.0],
                [0],
                save_every=100,
            )
        # the cell finished before the interrupt was persisted even
        # though save_every was never reached
        assert len(CampaignStore(path)) == 1

    def test_dirty_counter(self, tmp_path):
        from repro.experiments.campaign import CellRecord

        store = CampaignStore(tmp_path / "c.json")
        assert store.dirty == 0
        store.put(
            CellRecord(
                workflow="w", policy="p", charging_unit=60.0, seed=0,
                makespan=1.0, total_units=1, total_cost=1.0, utilization=1.0,
                peak_instances=1, restarts=0, completed=True,
            )
        )
        assert store.dirty == 1
        store.flush()
        assert store.dirty == 0
        store.flush()  # no-op, file already current
        assert len(CampaignStore(store.path)) == 1
