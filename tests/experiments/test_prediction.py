"""Tests for the Fig 4 prediction-accuracy experiment."""

from __future__ import annotations

import pytest

from repro.core import PredictionPolicy
from repro.dag import Task
from repro.experiments import prediction_experiment, replay_stage_predictions
from repro.metrics import StageClass
from repro.workloads import tpch1


def uniform_tasks(n, runtime=10.0, size=100.0):
    return [
        Task(f"t{i:03d}", "map", runtime=runtime, input_size=size)
        for i in range(n)
    ]


class TestReplay:
    def test_identical_tasks_predicted_exactly(self):
        tasks = uniform_tasks(20)
        samples = replay_stage_predictions(tasks, list(range(20)), concurrency=4)
        assert len(samples) == 20
        late = [s for s in samples if s.policy is PredictionPolicy.MATCHED_GROUP]
        assert late, "completed peers should drive policy 4"
        for sample in late:
            assert sample.true_error == pytest.approx(0.0, abs=1e-9)

    def test_first_tasks_use_cold_policies(self):
        tasks = uniform_tasks(10)
        samples = replay_stage_predictions(tasks, list(range(10)), concurrency=3)
        cold = {
            s.policy
            for s in samples[:3]
        }
        assert cold <= {
            PredictionPolicy.NO_TASK_STARTED,
            PredictionPolicy.RUNNING_ONLY,
        }

    def test_size_correlated_runtimes_learned(self):
        # Runtime = size/10: policy 4/5 predictions should track sizes.
        tasks = [
            Task(f"t{i:03d}", "map", runtime=(100 + i % 5 * 50) / 10.0,
                 input_size=100.0 + i % 5 * 50)
            for i in range(30)
        ]
        samples = replay_stage_predictions(tasks, list(range(30)), concurrency=2)
        informed = [s for s in samples[10:] if s.policy.value >= 3]
        assert informed
        mean_abs = sum(abs(s.true_error) for s in informed) / len(informed)
        assert mean_abs < 2.0

    def test_rejects_bad_order(self):
        tasks = uniform_tasks(3)
        with pytest.raises(ValueError, match="permutation"):
            replay_stage_predictions(tasks, [0, 0, 1])

    def test_rejects_bad_concurrency(self):
        tasks = uniform_tasks(3)
        with pytest.raises(ValueError, match="concurrency"):
            replay_stage_predictions(tasks, [0, 1, 2], concurrency=0)


class TestExperiment:
    @pytest.fixture(scope="class")
    def results(self):
        wfs = {"tpch1-S": tpch1("S").generate(0)}
        return prediction_experiment(wfs, n_orders=3, seed=1)

    def test_multi_task_stages_only(self, results):
        assert all(r.n_tasks >= 2 for r in results)
        # tpch1-S has stages of 32/21/8/1 tasks -> 3 qualify.
        assert len(results) == 3

    def test_classes_assigned(self, results):
        assert {r.stage_class for r in results} <= set(StageClass)

    def test_errors_pooled_across_orders(self, results):
        for r in results:
            assert r.n_orders == 3
            assert len(r.errors) > 0
            assert r.summary.count == len(r.errors)

    def test_deterministic(self):
        wfs = {"tpch1-S": tpch1("S").generate(0)}
        a = prediction_experiment(wfs, n_orders=2, seed=5)
        b = prediction_experiment(wfs, n_orders=2, seed=5)
        assert [r.errors for r in a] == [r.errors for r in b]

    def test_headline_accuracy_on_block_sized_stage(self, results):
        """The big map stage has near-uniform block sizes: the paper's
        short/medium accuracy levels must be reachable."""
        map_stage = next(r for r in results if r.n_tasks == 32)
        assert map_stage.summary.within_threshold > 0.7
