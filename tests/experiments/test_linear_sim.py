"""Tests for the §IV-A linear-stage simulator (Figures 2/3)."""

from __future__ import annotations

import pytest

from repro.experiments import simulate_linear_stage, sweep_r_over_u, sweep_u_over_r


class TestPaperWorkedExamples:
    """The closed-form cases of §III-E."""

    def test_r_just_above_u(self):
        # R = U + eps: "the last task completes at time 2R + eps" and the
        # cost equals non-wasteful static provisioning (2 units per task).
        r = simulate_linear_stage(10, 60.1, 60.0)
        assert r.time_ratio == pytest.approx(2.0, rel=0.05)
        assert r.units == 20
        assert r.peak_instances == 10  # "the Nth instance is launched"
        assert r.restarts == 0

    def test_growth_reaches_full_width_for_r_above_u(self):
        # §III-E: "At time U, no task has terminated and the pool has N."
        r = simulate_linear_stage(50, 300.0, 60.0)
        assert r.peak_instances == 50

    def test_optimal_efficiency_when_r_below_u(self):
        # R = U - eps: "the algorithm has optimal efficiency — nothing is
        # wasted" (cost ratio ~ 1).
        r = simulate_linear_stage(10, 59.9, 60.0)
        assert r.cost_ratio == pytest.approx(1.0, rel=0.05)


class TestFigure2Bounds:
    """R > U: cost bounded ~1.33x, time ~1.67x, -> optimal at large R/U."""

    @pytest.mark.parametrize("n", [10, 100])
    def test_bounds_hold(self, n):
        results = sweep_r_over_u(n, [1.5, 2, 5, 10, 40])
        for r in results:
            assert r.cost_ratio <= 1.34 + 0.05
            assert r.time_ratio <= 1.67 + 0.05

    def test_approaches_optimal(self):
        results = sweep_r_over_u(10, [400, 1000])
        for r in results:
            assert r.cost_ratio == pytest.approx(1.0, abs=0.02)
            assert r.time_ratio == pytest.approx(1.0, abs=0.02)

    def test_time_ratio_decreasing_in_r_over_u(self):
        ratios = [r.time_ratio for r in sweep_r_over_u(10, [2, 5, 10, 40, 100])]
        assert ratios == sorted(ratios, reverse=True)

    def test_rejects_sub_one_ratio(self):
        with pytest.raises(ValueError):
            sweep_r_over_u(10, [0.5])


class TestFigure3Deviation:
    """R <= U: wide deviation from optimal along either metric."""

    def test_time_ratio_grows_with_u_over_r(self):
        results = sweep_u_over_r(100, [1, 5, 10])
        ratios = [r.time_ratio for r in results]
        assert ratios[-1] > ratios[0]
        assert ratios[-1] > 10  # far from optimal, as Fig 3 shows

    def test_cost_ratio_explodes_at_extreme(self):
        # One task's worth of work on a giant charging unit still bills a
        # whole unit: N=10, U/R=1000 -> optimal 0.01 units, billed >= 1.
        r = simulate_linear_stage(10, 60.0, 60_000.0)
        assert r.cost_ratio >= 50.0

    def test_peak_shrinks_with_u_over_r(self):
        results = sweep_u_over_r(100, [1, 10, 100])
        peaks = [r.peak_instances for r in results]
        assert peaks == sorted(peaks, reverse=True)

    def test_rejects_sub_one_ratio(self):
        with pytest.raises(ValueError):
            sweep_u_over_r(10, [0.9])


class TestAgainstFullEngine:
    """Cross-check the idealized simulator against the discrete-event
    engine running the real WIRE controller on the same single stage.

    The engine has a finite lag where the idealization is continuous, so
    only coarse agreement is expected; both must show the same regime:
    near-optimal cost for R > U and a bounded slowdown.
    """

    def test_same_regime_r_above_u(self):
        from repro.autoscalers import WireAutoscaler
        from repro.cloud import CloudSite, InstanceType
        from repro.engine import Simulation
        from repro.workloads import single_stage_workflow

        n, runtime, u = 12, 600.0, 60.0
        ideal = simulate_linear_stage(n, runtime, u)

        site = CloudSite(
            name="x",
            itype=InstanceType(name="i", slots=1),
            max_instances=n,
            lag=10.0,
        )
        wf = single_stage_workflow(n, runtime=runtime)
        engine = Simulation(wf, site, WireAutoscaler(), u).run()
        engine_cost_ratio = engine.total_units / (n * runtime / u)
        engine_time_ratio = engine.makespan / runtime

        assert engine_cost_ratio == pytest.approx(ideal.cost_ratio, rel=0.25)
        assert engine_time_ratio == pytest.approx(ideal.time_ratio, rel=0.35)


class TestValidation:
    def test_bad_args(self):
        with pytest.raises(ValueError):
            simulate_linear_stage(0, 1.0, 1.0)
        with pytest.raises(Exception):
            simulate_linear_stage(1, 0.0, 1.0)
        with pytest.raises(ValueError):
            simulate_linear_stage(1, 1.0, 1.0, initial_pool=0)

    def test_result_properties(self):
        r = simulate_linear_stage(4, 30.0, 60.0)
        assert r.optimal_units == pytest.approx(2.0)
        assert r.units >= 1
        assert r.makespan > 0
