"""Tests for the Fig 5/6 cost experiment and the §IV-F overhead report."""

from __future__ import annotations

import pytest

from repro.experiments import (
    CHARGING_UNITS,
    cost_experiment,
    overhead_experiment,
    relative_execution_table,
    run_setting,
    policy_factories,
)
from repro.workloads import tpch6


@pytest.fixture(scope="module")
def small_matrix():
    """A quick 1-workflow matrix over two charging units."""
    return cost_experiment(
        {"tpch6-S": tpch6("S")},
        charging_units=(60.0, 1800.0),
        repetitions=2,
        seed=0,
    )


class TestCostExperiment:
    def test_matrix_shape(self, small_matrix):
        # 1 workflow x 4 policies x 2 units
        assert len(small_matrix) == 8
        policies = {c.policy for c in small_matrix}
        assert policies == {
            "full-site",
            "pure-reactive",
            "reactive-conserving",
            "wire",
        }

    def test_repetitions_recorded(self, small_matrix):
        assert all(c.summary.runs == 2 for c in small_matrix)
        assert all(len(c.results) == 2 for c in small_matrix)

    def test_wire_not_costlier_than_full_site(self, small_matrix):
        """Fig 5's headline shape."""
        for u in (60.0, 1800.0):
            wire = next(
                c for c in small_matrix if c.policy == "wire" and c.charging_unit == u
            )
            static = next(
                c
                for c in small_matrix
                if c.policy == "full-site" and c.charging_unit == u
            )
            assert wire.summary.mean_units <= static.summary.mean_units

    def test_full_site_is_fastest(self, small_matrix):
        rows = relative_execution_table(small_matrix)
        static_rows = [r for r in rows if r[1] == "full-site"]
        assert all(rel == pytest.approx(1.0, abs=0.05) for _, _, _, rel, _ in static_rows)

    def test_relative_times_at_least_one(self, small_matrix):
        rows = relative_execution_table(small_matrix)
        assert all(rel >= 1.0 - 1e-9 for _, _, _, rel, _ in rows)

    def test_oracle_included_on_request(self):
        cells = cost_experiment(
            {"tpch6-S": tpch6("S")},
            charging_units=(60.0,),
            repetitions=1,
            include_oracle=True,
        )
        assert any(c.policy == "oracle" for c in cells)


class TestHarness:
    def test_charging_units_match_paper(self):
        assert CHARGING_UNITS == (60.0, 900.0, 1800.0, 3600.0)

    def test_run_setting_accepts_workflow_or_spec(self, small_site):
        from repro.autoscalers import PureReactiveAutoscaler

        spec = tpch6("S")
        by_spec = run_setting(
            spec, PureReactiveAutoscaler, 60.0, seed=1, site=small_site
        )
        by_wf = run_setting(
            spec.generate(1), PureReactiveAutoscaler, 60.0, seed=1, site=small_site
        )
        assert by_spec.completed and by_wf.completed
        assert by_spec.makespan == pytest.approx(by_wf.makespan)

    def test_policy_factories_fresh_instances(self):
        factories = policy_factories()
        a = factories["wire"]()
        b = factories["wire"]()
        assert a is not b


class TestOverhead:
    def test_overhead_rows(self):
        rows = overhead_experiment(
            {"tpch6-S": tpch6("S")}, charging_units=(60.0, 900.0)
        )
        assert len(rows) == 2
        for row in rows:
            assert row.ticks >= 1
            assert row.controller_seconds >= 0.0
            assert row.aggregate_task_seconds > 0.0
            # The paper's bounds are generous; ours must be in the same
            # order of magnitude (<= 5% of aggregate task time).
            assert row.time_overhead_fraction < 0.05
            assert 0 < row.state_bytes <= 16 * 1024
