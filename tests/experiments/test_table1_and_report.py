"""Tests for the Table I experiment and the text report rendering."""

from __future__ import annotations

import pytest

from repro.experiments import (
    prediction_experiment,
    simulate_linear_stage,
    table1_experiment,
)
from repro.experiments.cost import cost_experiment
from repro.experiments.overhead import overhead_experiment
from repro.experiments.report import (
    render_cost,
    render_linear,
    render_overhead,
    render_prediction,
    render_relative_time,
    render_table1,
)
from repro.workloads import tpch6


class TestTable1Experiment:
    @pytest.fixture(scope="class")
    def rows(self):
        return table1_experiment(seed=0)

    def test_all_eight_runs(self, rows):
        assert len(rows) == 8
        assert {r.profile.name for r in rows} == {
            "genome-S", "genome-L", "tpch1-S", "tpch1-L",
            "tpch6-S", "tpch6-L", "pagerank-S", "pagerank-L",
        }

    def test_structures_match(self, rows):
        assert all(r.counts_match for r in rows)

    def test_aggregate_ratio_sane(self, rows):
        for row in rows:
            if row.profile.aggregate_consistent:
                assert row.aggregate_ratio == pytest.approx(1.0, rel=0.1)
            else:
                # Hadoop rows: execution-only aggregate is below the
                # published (transfer-inclusive) number.
                assert 0.05 < row.aggregate_ratio <= 1.1


class TestRendering:
    def test_table1_render(self):
        text = render_table1(table1_experiment(seed=0))
        assert "genome-S" in text
        assert "405/405" in text

    def test_linear_render(self):
        results = [simulate_linear_stage(10, 120.0, 60.0)]
        text = render_linear(results, title="Figure 2")
        assert "Figure 2" in text
        assert "cost/optimal" in text

    def test_prediction_render(self):
        results = prediction_experiment(
            {"tpch6-S": tpch6("S").generate(0)}, n_orders=2
        )
        text = render_prediction(results)
        assert "within threshold" in text
        assert "stages:" in text

    def test_cost_renders(self):
        cells = cost_experiment(
            {"tpch6-S": tpch6("S")}, charging_units=(60.0,), repetitions=1
        )
        assert "Figure 5" in render_cost(cells)
        assert "Figure 6" in render_relative_time(cells)
        assert "1.00x" in render_relative_time(cells)

    def test_overhead_render(self):
        rows = overhead_experiment({"tpch6-S": tpch6("S")}, charging_units=(60.0,))
        text = render_overhead(rows)
        assert "overhead" in text
        assert "KB" in text
