"""The §III-E closed forms vs the simulator — Figure 2 as a theorem."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import simulate_linear_stage
from repro.experiments.analytic import (
    cost_ratio_r_above_u,
    makespan_r_above_u,
    time_ratio_bounds_r_below_u,
    time_ratio_r_above_u,
    units_r_above_u,
)


class TestClosedForms:
    def test_paper_bound_values(self):
        # The paper's 1.33x / 1.67x bounds fall out at R/U = 1.5.
        assert cost_ratio_r_above_u(90.0, 60.0) == pytest.approx(4 / 3)
        assert time_ratio_r_above_u(90.0, 60.0) == pytest.approx(5 / 3)

    def test_integer_multiples_are_cost_optimal(self):
        for k in (1, 2, 5, 10):
            assert cost_ratio_r_above_u(60.0 * k, 60.0) == pytest.approx(1.0)

    def test_converges_to_one(self):
        assert cost_ratio_r_above_u(60.0 * 400, 60.0) == pytest.approx(1.0)
        assert time_ratio_r_above_u(60.0 * 400, 60.0) == pytest.approx(1.0025)

    def test_regime_guards(self):
        with pytest.raises(ValueError, match="R >= U"):
            cost_ratio_r_above_u(30.0, 60.0)
        with pytest.raises(ValueError, match="R <= U"):
            time_ratio_bounds_r_below_u(10, 90.0, 60.0)


class TestSimulatorMatchesTheory:
    @pytest.mark.parametrize("ratio", [1.2, 1.5, 2.0, 3.7, 10.0])
    @pytest.mark.parametrize("n", [10, 50])
    def test_r_above_u_exact(self, ratio, n):
        u = 60.0
        r = u * ratio
        sim = simulate_linear_stage(n, r, u)
        assert sim.units == units_r_above_u(n, r, u)
        assert sim.makespan == pytest.approx(makespan_r_above_u(r, u), rel=0.02)
        assert sim.cost_ratio == pytest.approx(cost_ratio_r_above_u(r, u), rel=0.02)
        assert sim.time_ratio == pytest.approx(time_ratio_r_above_u(r, u), rel=0.02)

    @given(
        n=st.integers(min_value=2, max_value=60),
        # Floor at 1.1: just above R = U the closed forms stop being
        # exact for some N — Algorithm 3 packs several barely-over-U
        # tasks per instance and the pool plateaus below N (see the
        # module docstring of repro.experiments.analytic and
        # test_near_u_corner_trades_time_for_cost below).
        ratio=st.floats(min_value=1.1, max_value=50.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_r_above_u_property(self, n, ratio):
        u = 60.0
        r = u * ratio
        sim = simulate_linear_stage(n, r, u)
        assert sim.units == units_r_above_u(n, r, u)
        assert sim.time_ratio == pytest.approx(time_ratio_r_above_u(r, u), rel=0.05)

    def test_near_u_corner_trades_time_for_cost(self):
        # Known deviation from the closed forms: at N = 7, R/U = 1.05
        # the controller keeps the pool at 4 (< N), runs second tasks on
        # already-renewed instances, and finishes cheaper than
        # N * ceil(R/U) = 14 units but later than U + R. Pinned here so
        # a behavior change in resize_pool shows up as a diff, not as a
        # silent widening/narrowing of the corner.
        u = 60.0
        sim = simulate_linear_stage(7, u * 1.05, u)
        assert sim.peak_instances == 4
        assert sim.units == 11 < units_r_above_u(7, u * 1.05, u)
        assert sim.makespan > makespan_r_above_u(u * 1.05, u)

    @given(
        n=st.integers(min_value=2, max_value=40),
        ratio=st.floats(min_value=1.0, max_value=50.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_r_below_u_within_bounds(self, n, ratio):
        u = 60.0 * ratio
        r = 60.0
        sim = simulate_linear_stage(n, r, u)
        lower, upper = time_ratio_bounds_r_below_u(n, r, u)
        assert lower <= sim.time_ratio <= upper + 1e-9
