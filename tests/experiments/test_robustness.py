"""Tests for the robustness-to-imperfect-prediction experiment."""

from __future__ import annotations

import pytest

from repro.experiments import robustness_experiment
from repro.workloads import tpch6


class TestRobustnessExperiment:
    @pytest.fixture(scope="class")
    def rows(self):
        return robustness_experiment(
            {"tpch6-S": tpch6("S")},
            noise_levels=(0.0, 0.4),
            fault_levels=(0.0, 0.2),
            seed=1,
        )

    def test_grid_shape(self, rows):
        assert len(rows) == 4  # 1 workload x 2 noise x 2 fault

    def test_advantage_metric(self, rows):
        for row in rows:
            assert row.cost_advantage == pytest.approx(
                row.static_units / row.wire_units
            )
            assert row.cost_advantage >= 1.0

    def test_faults_cause_restarts(self, rows):
        faulty = [r for r in rows if r.fault_probability > 0]
        assert any(r.wire_restarts > 0 for r in faulty)

    def test_clean_baseline_has_no_restarts(self, rows):
        clean = [r for r in rows if r.fault_probability == 0 and r.noise_cv == 0]
        assert all(r.wire_restarts == 0 for r in clean)

    def test_deterministic(self):
        kwargs = dict(
            specs={"tpch6-S": tpch6("S")},
            noise_levels=(0.3,),
            fault_levels=(0.1,),
            seed=5,
        )
        a = robustness_experiment(**kwargs)
        b = robustness_experiment(**kwargs)
        assert a == b


class TestChaosAxis:
    CHAOS = None  # filled lazily to keep import costs at module level low

    @pytest.fixture(scope="class")
    def rows(self):
        from repro.cloud.faults import NO_CHAOS, ChaosSpec

        return robustness_experiment(
            {"tpch6-S": tpch6("S")},
            noise_levels=(0.0,),
            fault_levels=(0.0,),
            chaos_levels=(
                NO_CHAOS,
                ChaosSpec(revocation_rate=30.0, blackout_probability=0.3),
            ),
            seed=1,
        )

    def test_grid_gains_a_chaos_dimension(self, rows):
        assert len(rows) == 2  # 1 workload x 1 noise x 1 fault x 2 chaos
        assert [r.chaos_label for r in rows] == ["none", "rev30+blackout0.3"]

    def test_clean_cell_reports_no_cloud_faults(self, rows):
        clean = rows[0]
        assert clean.wire_revocations == 0
        assert clean.wire_blackouts == 0

    def test_chaotic_cell_reports_injections(self, rows):
        chaotic = rows[1]
        assert chaotic.wire_revocations + chaotic.wire_blackouts > 0

    def test_chaos_axis_deterministic(self):
        from repro.cloud.faults import ChaosSpec

        kwargs = dict(
            specs={"tpch6-S": tpch6("S")},
            noise_levels=(0.0,),
            fault_levels=(0.0,),
            chaos_levels=(ChaosSpec(revocation_rate=30.0),),
            seed=2,
        )
        assert robustness_experiment(**kwargs) == robustness_experiment(**kwargs)
