"""Backend conformance suite for :mod:`repro.experiments.executors`.

Every backend must be observably equivalent to the serial reference:
byte-identical campaign stores and traces, task-order results, retry
accounting that charges only executed-and-failed attempts (crash-drained
work resubmits free), and bounded behavior when workers die repeatedly.
The workqueue backend additionally proves its file protocol: two
consumers racing on one queue never double-execute a task, and a
consumer SIGKILLed mid-task is recovered through lease expiry.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro.autoscalers import PureReactiveAutoscaler, WireAutoscaler
from repro.experiments.campaign import CampaignStore, run_campaign
from repro.experiments.executors import (
    DEFAULT_START_METHOD,
    ExecutorBackend,
    ProcessBackend,
    SerialBackend,
    TaskOutcome,
    WorkqueueBackend,
    resolve_backend,
)
from repro.experiments.parallel import FailedCell, parallel_map, run_campaign_parallel
from repro.workloads import tpch1, tpch6

BACKEND_NAMES = ["serial", "process", "workqueue"]


def make_backend(name: str, tmp_path) -> ExecutorBackend:
    if name == "serial":
        return SerialBackend()
    if name == "process":
        return ProcessBackend(jobs=2)
    return WorkqueueBackend(tmp_path / "queue", jobs=2, lease_timeout=30.0)


def _square(context, task):
    return task * task


def _batch_of_squares(context, batch):
    return [item * item for item in batch]


def _explode(context, task):
    raise ValueError(f"task {task} is cursed")


def _record_and_maybe_kill(context, task):
    """Append one invocation record; SIGKILL the worker once per killer."""
    directory, kind = context
    with open(os.path.join(directory, f"ran-{task}"), "a", encoding="utf-8") as fh:
        fh.write("x\n")
    if kind == "always-kill" or (
        isinstance(task, str) and task.startswith("kill")
    ):
        sentinel = os.path.join(directory, f"sentinel-{task}")
        try:
            with open(sentinel, "x"):
                pass
        except FileExistsError:
            return task  # already killed once; succeed this time
        if kind == "always-kill":
            os.remove(sentinel)  # never stop killing
        os.kill(os.getpid(), signal.SIGKILL)
    time.sleep(0.05)  # keep innocents in flight across the crashes
    return task


def _exclusive_marker(context, task):
    """Fail loudly if any task is ever executed twice."""
    directory = context
    with open(os.path.join(directory, f"exec-{task}"), "x"):
        pass
    time.sleep(0.02)
    return task


class _KillConsumerOnce:
    """Picklable campaign factory: the first worker to build it dies."""

    def __init__(self, sentinel: str) -> None:
        self.sentinel = sentinel

    def __call__(self):
        try:
            with open(self.sentinel, "x"):
                pass
        except FileExistsError:
            return WireAutoscaler()
        os.kill(os.getpid(), signal.SIGKILL)
        raise AssertionError("unreachable")  # pragma: no cover


@pytest.fixture
def matrix():
    return dict(
        specs={"tpch1-S": tpch1("S"), "tpch6-S": tpch6("S")},
        policies={
            "pure-reactive": PureReactiveAutoscaler,
            "wire": WireAutoscaler,
        },
        charging_units=[60.0],
        seeds=[0, 1],
    )


class TestConformance:
    """The same observable semantics from all three backends."""

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_results_in_task_order(self, name, tmp_path):
        backend = make_backend(name, tmp_path)
        outcomes = backend.run(_square, list(range(17)), max_attempts=1)
        assert [o.index for o in outcomes] == list(range(17))
        assert all(o.ok for o in outcomes)
        assert [o.value for o in outcomes] == [i * i for i in range(17)]
        assert all(o.attempts == 1 for o in outcomes)

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_streaming_callback_sees_every_outcome(self, name, tmp_path):
        backend = make_backend(name, tmp_path)
        seen: list[TaskOutcome] = []
        outcomes = backend.run(
            _square, [1, 2, 3, 4], max_attempts=1, on_result=seen.append
        )
        assert sorted(o.index for o in seen) == [0, 1, 2, 3]
        assert {o.index: o.value for o in seen} == {
            o.index: o.value for o in outcomes
        }

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_executed_failures_charged_and_isolated(self, name, tmp_path):
        backend = make_backend(name, tmp_path)
        outcomes = backend.run(_explode, ["a", "b"], max_attempts=2)
        for outcome in outcomes:
            assert not outcome.ok
            assert outcome.attempts == 2  # retried once, then reported
            assert "cursed" in outcome.error
        # the original exception crosses the boundary where picklable
        assert isinstance(outcomes[0].exception, ValueError)

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_campaign_store_byte_identical_to_serial(
        self, name, tmp_path, matrix
    ):
        serial_path = tmp_path / "serial.json"
        run_campaign(CampaignStore(serial_path), **matrix)
        backend_path = tmp_path / f"via-{name}.json"
        records, executed, failed = run_campaign_parallel(
            CampaignStore(backend_path),
            **matrix,
            jobs=2,
            backend=make_backend(name, tmp_path),
        )
        assert failed == []
        assert executed == 8
        assert serial_path.read_bytes() == backend_path.read_bytes()

    @pytest.mark.parametrize("name", BACKEND_NAMES)
    def test_parallel_map_byte_equal_rows(self, name, tmp_path):
        serial = parallel_map(_noop_double, list(range(9)), jobs=1)
        via_backend = parallel_map(
            _noop_double,
            list(range(9)),
            jobs=2,
            backend=make_backend(name, tmp_path),
        )
        assert serial == via_backend


def _noop_double(item):
    return item * 2


class TestRetryAccounting:
    """Satellite: innocent in-flight work is never charged for a crash."""

    def test_two_unrelated_worker_deaths_do_not_fail_innocents(self, tmp_path):
        # Two killer tasks each SIGKILL their worker once; the innocent
        # tasks are in flight during both crashes. The old executor
        # charged drained futures against _MAX_ATTEMPTS, so the second
        # crash spuriously failed innocents ("failed twice"); honest
        # accounting resubmits them free and everything completes.
        backend = ProcessBackend(jobs=2)
        tasks = ["kill-1", "kill-2"] + [f"ok-{i}" for i in range(6)]
        outcomes = backend.run(
            _record_and_maybe_kill,
            tasks,
            context=(str(tmp_path), "kill-once"),
            max_attempts=2,
        )
        assert all(o.ok for o in outcomes), [o.error for o in outcomes]
        assert (tmp_path / "sentinel-kill-1").exists()
        assert (tmp_path / "sentinel-kill-2").exists()
        # every task really ran, and crash retries were not charged
        for task, outcome in zip(tasks, outcomes):
            assert (tmp_path / f"ran-{task}").exists()
            assert outcome.attempts == 1
        assert sum(o.crashes for o in outcomes) >= 2

    def test_reliably_crashing_task_converges_instead_of_livelocking(
        self, tmp_path
    ):
        # A task that kills its worker on *every* execution must exhaust
        # the free-crash cap and surface as a failed outcome — bounded
        # pool rebuilds, not an infinite rebuild loop.
        backend = ProcessBackend(jobs=2)
        outcomes = backend.run(
            _record_and_maybe_kill,
            ["kill-forever"],
            context=(str(tmp_path), "always-kill"),
            max_attempts=2,
        )
        assert len(outcomes) == 1
        assert not outcomes[0].ok
        assert "died repeatedly" in outcomes[0].error
        assert outcomes[0].crashes > 3

    def test_inline_deterministic_exception_never_retried(self):
        # Satellite: the jobs == 1 path used to blindly retry any
        # exception _MAX_ATTEMPTS times, doubling the cost of a
        # reproducible failure. parallel_map now invokes fn exactly once
        # per item on every path and raises the original exception.
        calls = []

        def boom(item):
            calls.append(item)
            raise ValueError("deterministic")

        with pytest.raises(ValueError, match="deterministic"):
            parallel_map(boom, [1, 2, 3], jobs=1)
        assert calls == [1]

    def test_process_deterministic_exception_not_retried(self, tmp_path):
        # The same contract across the process boundary, observed via
        # invocation-record files: one failing invocation, no retry.
        backend = ProcessBackend(jobs=2)
        outcomes = backend.run(
            _record_and_raise, ["x"], context=str(tmp_path), max_attempts=1
        )
        assert not outcomes[0].ok
        assert (tmp_path / "ran-x").read_text(encoding="utf-8") == "x\n"

    def test_campaign_cells_still_retry_executed_failures_once(
        self, tmp_path
    ):
        # Campaign semantics are deliberately different: a cell that
        # executed and raised is retried once before FailedCell.
        store = CampaignStore(tmp_path / "c.json")
        records, executed, failed = run_campaign_parallel(
            store,
            {"tpch6-S": tpch6("S")},
            {"bad": _BoomFactory()},
            [60.0],
            [0],
            jobs=2,
        )
        assert records == [] and executed == 0
        assert len(failed) == 1 and isinstance(failed[0], FailedCell)
        assert "boom" in failed[0].error


def _record_and_raise(context, task):
    with open(os.path.join(context, f"ran-{task}"), "a", encoding="utf-8") as fh:
        fh.write("x\n")
    raise RuntimeError("deterministic failure")


class _BoomFactory:
    def __call__(self):
        raise RuntimeError("boom")

    def __reduce__(self):
        return (_BoomFactory, ())


class TestStartMethod:
    """Satellite: the multiprocessing start method is pinned, not default."""

    def test_default_is_explicitly_resolved(self):
        assert DEFAULT_START_METHOD in ("fork", "spawn")
        backend = ProcessBackend(jobs=2)
        assert backend.start_method == DEFAULT_START_METHOD
        assert backend.mp_context.get_start_method() == DEFAULT_START_METHOD

    def test_override_is_honored(self):
        backend = ProcessBackend(jobs=2, start_method="spawn")
        assert backend.mp_context.get_start_method() == "spawn"

    def test_workqueue_consumers_share_the_pin(self, tmp_path):
        backend = WorkqueueBackend(tmp_path / "q", jobs=1)
        assert backend.start_method == DEFAULT_START_METHOD
        assert backend.mp_context.get_start_method() == DEFAULT_START_METHOD

    def test_spawn_backend_still_byte_identical(self, tmp_path):
        # The pin is about *explicitness*; either method must produce
        # identical results, just at different startup cost.
        serial = parallel_map(_noop_double, list(range(6)), jobs=1)
        spawned = parallel_map(
            _noop_double,
            list(range(6)),
            backend=ProcessBackend(jobs=2, start_method="spawn"),
        )
        assert serial == spawned


class TestWorkqueueProtocol:
    def test_two_consumers_never_double_execute(self, tmp_path):
        # Claims are exclusive-create files: of two consumers racing on
        # the same task, exactly one wins. The worker creates its marker
        # with O_EXCL, so any double execution raises FileExistsError
        # and surfaces as a failed outcome.
        backend = WorkqueueBackend(tmp_path / "q", jobs=2, lease_timeout=60.0)
        tasks = [f"t{i}" for i in range(12)]
        outcomes = backend.run(
            _exclusive_marker, tasks, context=str(tmp_path), max_attempts=1
        )
        assert all(o.ok for o in outcomes), [o.error for o in outcomes]
        executed = sorted(
            p.name for p in tmp_path.iterdir() if p.name.startswith("exec-")
        )
        assert executed == sorted(f"exec-{t}" for t in tasks)

    def test_consumer_sigkill_recovered_via_lease_expiry(self, tmp_path):
        # A consumer SIGKILLed mid-task leaves a claim with no result;
        # the producer re-enqueues the attempt free of charge after the
        # lease expires and the surviving consumer finishes the work.
        backend = WorkqueueBackend(
            tmp_path / "q", jobs=2, lease_timeout=0.4, poll_interval=0.02
        )
        tasks = ["kill-1"] + [f"ok-{i}" for i in range(4)]
        outcomes = backend.run(
            _record_and_maybe_kill,
            tasks,
            context=(str(tmp_path), "kill-once"),
            max_attempts=2,
        )
        assert all(o.ok for o in outcomes), [o.error for o in outcomes]
        assert outcomes[0].crashes >= 1  # recovered through expiry, free
        assert outcomes[0].attempts == 1

    def test_worker_sigkill_mid_campaign_store_byte_identical(
        self, tmp_path
    ):
        # The campaign-level version of the crash test, through the full
        # store/trace pipeline: a consumer death mid-cell must still end
        # in a store byte-identical to a serial campaign's.
        specs = {"tpch6-S": tpch6("S")}
        serial_path = tmp_path / "serial.json"
        run_campaign(
            CampaignStore(serial_path), specs, {"wire": WireAutoscaler},
            [60.0], [0, 1],
        )
        killer = _KillConsumerOnce(str(tmp_path / "killed-once"))
        backend = WorkqueueBackend(
            tmp_path / "q", jobs=2, lease_timeout=0.4, poll_interval=0.02
        )
        records, executed, failed = run_campaign_parallel(
            CampaignStore(tmp_path / "wq.json"),
            specs,
            {"wire": killer},
            [60.0],
            [0, 1],
            backend=backend,
        )
        assert (tmp_path / "killed-once").exists()  # a consumer really died
        assert failed == []
        assert executed == 2
        assert serial_path.read_bytes() == (tmp_path / "wq.json").read_bytes()

    def test_external_consumer_can_drain_producerless_queue(self, tmp_path):
        # jobs=0: the producer only coordinates; a consumer loop pointed
        # at the directory (what a remote host runs) does all the work.
        import threading

        from repro.experiments.executors import consume_workqueue

        backend = WorkqueueBackend(tmp_path / "q", jobs=0, poll_interval=0.01)
        consumer = threading.Thread(
            target=consume_workqueue,
            args=(tmp_path / "q",),
            kwargs={"poll_interval": 0.01},
            daemon=True,
        )
        consumer.start()
        outcomes = backend.run(_square, [2, 3, 4], max_attempts=1)
        consumer.join(timeout=5.0)
        assert not consumer.is_alive()
        assert [o.value for o in outcomes] == [4, 9, 16]


class TestResolveBackend:
    def test_defaults(self):
        assert isinstance(resolve_backend(None, jobs=1), SerialBackend)
        process = resolve_backend(None, jobs=3)
        assert isinstance(process, ProcessBackend)
        assert process.jobs == 3

    def test_instance_passthrough(self):
        backend = SerialBackend()
        assert resolve_backend(backend, jobs=8) is backend

    def test_workqueue_requires_dir(self, tmp_path):
        with pytest.raises(ValueError, match="workqueue-dir"):
            resolve_backend("workqueue", jobs=2)
        backend = resolve_backend(
            "workqueue", jobs=2, workqueue_dir=tmp_path / "q"
        )
        assert isinstance(backend, WorkqueueBackend)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown executor backend"):
            resolve_backend("carrier-pigeon")
