"""Tests for the cloud site description."""

from __future__ import annotations

import pytest

from repro.cloud import CloudSite, InstanceType, exogeni_site


class TestExoGeniDefaults:
    def test_paper_parameters(self):
        site = exogeni_site()
        assert site.max_instances == 12
        assert site.lag == 180.0
        assert site.itype.slots == 4
        assert site.min_instances == 1

    def test_overrides(self):
        site = exogeni_site(max_instances=4, lag=30.0)
        assert site.max_instances == 4
        assert site.lag == 30.0


class TestValidation:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            CloudSite("s", InstanceType("t", 1), max_instances=0, lag=1.0)

    def test_rejects_bad_lag(self):
        with pytest.raises(Exception):
            CloudSite("s", InstanceType("t", 1), max_instances=1, lag=0.0)

    def test_rejects_floor_above_capacity(self):
        with pytest.raises(ValueError, match="min_instances"):
            CloudSite(
                "s",
                InstanceType("t", 1),
                max_instances=2,
                lag=1.0,
                min_instances=3,
            )

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError, match="name"):
            CloudSite("", InstanceType("t", 1), max_instances=1, lag=1.0)
