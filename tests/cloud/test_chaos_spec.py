"""Unit tests for the cloud-fault spec layer (repro.cloud.faults)."""

from __future__ import annotations

import pickle

import pytest

from repro.cloud.faults import (
    NO_CHAOS,
    ChaosInjector,
    ChaosSpec,
    RetryPolicy,
    parse_chaos_spec,
)
from repro.util.rng import spawn_rng


class TestRetryPolicy:
    def test_delay_grows_geometrically(self):
        policy = RetryPolicy(max_retries=3, backoff=10.0, multiplier=2.0)
        assert policy.delay(1) == pytest.approx(10.0)
        assert policy.delay(2) == pytest.approx(20.0)
        assert policy.delay(3) == pytest.approx(40.0)

    def test_delay_rejects_nonpositive_attempt(self):
        with pytest.raises(ValueError):
            RetryPolicy().delay(0)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=-1.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.0)


class TestChaosSpec:
    def test_default_is_disabled(self):
        assert not NO_CHAOS.enabled
        assert NO_CHAOS.label() == "none"

    def test_any_positive_rate_enables(self):
        assert ChaosSpec(revocation_rate=0.1).enabled
        assert ChaosSpec(provision_failure=0.1).enabled
        assert ChaosSpec(provision_timeout=0.1).enabled
        assert ChaosSpec(straggler_probability=0.1).enabled
        assert ChaosSpec(blackout_probability=0.1).enabled

    def test_probability_bounds(self):
        with pytest.raises(ValueError):
            ChaosSpec(provision_failure=1.5)
        with pytest.raises(ValueError):
            ChaosSpec(straggler_probability=-0.1)
        with pytest.raises(ValueError):
            ChaosSpec(revocation_rate=-1.0)
        with pytest.raises(ValueError):
            ChaosSpec(straggler_slowdown=0.5)

    def test_label_is_compact_and_stable(self):
        spec = ChaosSpec(
            revocation_rate=3.0,
            provision_failure=0.4,
            straggler_probability=0.3,
            straggler_slowdown=2.5,
        )
        assert spec.label() == "rev3+pfail0.4+strag0.3x2.5"

    def test_frozen_and_picklable(self):
        spec = ChaosSpec(revocation_rate=1.0, retry=RetryPolicy(max_retries=5))
        with pytest.raises(AttributeError):
            spec.revocation_rate = 2.0  # type: ignore[misc]
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec


class TestParse:
    def test_parse_round_trip_keys(self):
        spec = parse_chaos_spec(
            "revocations=2,pfail=0.3,ptimeout=0.1,stragglers=0.2,"
            "slowdown=3,blackouts=0.25,retries=5,backoff=12,"
            "backoff-multiplier=1.5"
        )
        assert spec.revocation_rate == pytest.approx(2.0)
        assert spec.provision_failure == pytest.approx(0.3)
        assert spec.provision_timeout == pytest.approx(0.1)
        assert spec.straggler_probability == pytest.approx(0.2)
        assert spec.straggler_slowdown == pytest.approx(3.0)
        assert spec.blackout_probability == pytest.approx(0.25)
        assert spec.retry == RetryPolicy(max_retries=5, backoff=12.0, multiplier=1.5)

    def test_parse_long_names_and_flags(self):
        spec = parse_chaos_spec(
            "revocation-rate=1,blackout-probability=0.1,drop-records,"
            "pfail-until=3600"
        )
        assert spec.revocation_rate == pytest.approx(1.0)
        assert spec.blackout_drops is True
        assert spec.provision_failure_until == pytest.approx(3600.0)

    def test_parse_rejects_unknown_key(self):
        with pytest.raises(ValueError, match="unknown chaos key"):
            parse_chaos_spec("revocations=1,bogus=2")

    def test_parse_rejects_bad_value(self):
        with pytest.raises(ValueError):
            parse_chaos_spec("pfail=not-a-number")

    def test_parse_empty_is_disabled(self):
        assert not parse_chaos_spec("").enabled


class TestInjector:
    def test_rejects_disabled_spec(self):
        with pytest.raises(ValueError):
            ChaosInjector(NO_CHAOS, spawn_rng(0, "chaos-test"))

    def test_draws_are_deterministic_per_seed(self):
        spec = ChaosSpec(
            revocation_rate=2.0,
            provision_failure=0.5,
            straggler_probability=0.5,
            blackout_probability=0.5,
        )

        def draws(seed):
            inj = ChaosInjector(spec, spawn_rng(seed, "chaos-test"))
            return (
                [inj.straggler_factor() for _ in range(5)],
                [inj.revocation_delay() for _ in range(5)],
                [inj.provision_outcome(0.0) for _ in range(5)],
                [inj.blackout() for _ in range(5)],
            )

        assert draws(11) == draws(11)
        assert draws(11) != draws(12)

    def test_provision_failure_window(self):
        spec = ChaosSpec(provision_failure=1.0, provision_failure_until=100.0)
        inj = ChaosInjector(spec, spawn_rng(0, "chaos-test"))
        assert inj.provision_outcome(50.0) == "fail"
        assert inj.provision_outcome(150.0) == "ok"

    def test_revocation_delay_scales_with_rate(self):
        fast = ChaosSpec(revocation_rate=100.0)
        slow = ChaosSpec(revocation_rate=0.01)
        n = 200
        mean = lambda inj: sum(inj.revocation_delay() for _ in range(n)) / n
        assert mean(ChaosInjector(fast, spawn_rng(0, "chaos-test"))) < mean(
            ChaosInjector(slow, spawn_rng(0, "chaos-test"))
        )
