"""Property-based tests on billing invariants."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud import BillingModel, Instance, InstanceType


def make_running(started_at: float) -> Instance:
    inst = Instance(
        instance_id="v",
        itype=InstanceType(name="t", slots=1),
        requested_at=started_at,
    )
    inst.mark_running(started_at)
    return inst


units = st.floats(min_value=0.5, max_value=10_000, allow_nan=False)
times = st.floats(min_value=0, max_value=1e6, allow_nan=False)


@given(u=units, start=times, elapsed=times)
@settings(max_examples=200)
def test_units_cover_uptime(u, start, elapsed):
    """You are always paid through at least your uptime."""
    billing = BillingModel(u)
    inst = make_running(start)
    now = start + elapsed
    paid_seconds = billing.units_charged(inst, now) * u
    assert paid_seconds >= elapsed - 1e-6


@given(u=units, start=times, elapsed=times)
@settings(max_examples=200)
def test_units_never_overcharge_by_more_than_one(u, start, elapsed):
    """Charged units never exceed uptime/u by more than one unit."""
    billing = BillingModel(u)
    inst = make_running(start)
    now = start + elapsed
    assert billing.units_charged(inst, now) <= elapsed / u + 1 + 1e-9


@given(u=units, start=times, elapsed=times)
@settings(max_examples=200)
def test_time_to_next_charge_in_range(u, start, elapsed):
    billing = BillingModel(u)
    inst = make_running(start)
    r = billing.time_to_next_charge(inst, start + elapsed)
    assert 0 < r <= u + 1e-9


@given(u=units, start=times, e1=times, e2=times)
@settings(max_examples=200)
def test_units_monotone_in_time(u, start, e1, e2):
    billing = BillingModel(u)
    inst = make_running(start)
    lo, hi = sorted((e1, e2))
    assert billing.units_charged(inst, start + lo) <= billing.units_charged(
        inst, start + hi
    )


@given(u=units, start=times, elapsed=times)
@settings(max_examples=200)
def test_waste_bounded_by_one_unit(u, start, elapsed):
    """Terminating forfeits strictly less than one full unit."""
    billing = BillingModel(u)
    inst = make_running(start)
    now = start + elapsed
    inst.mark_terminated(now)
    assert 0 <= billing.wasted_time(inst, now) <= u + 1e-6
