"""Tests for the cloud-side messaging protocol."""

from __future__ import annotations

import pytest

from repro.cloud import (
    BillingModel,
    CloudSite,
    InstancePool,
    InstanceType,
    Provisioner,
)
from repro.cloud.messaging import (
    CloudBroker,
    ErrorReply,
    LeaseGrant,
    LeaseRequest,
    MessagingClient,
    PoolStatus,
    ProtocolError,
    decode,
    encode,
)


@pytest.fixture
def stack():
    itype = InstanceType(name="t", slots=2)
    site = CloudSite(name="s", itype=itype, max_instances=3, lag=10.0)
    pool = InstancePool(itype, BillingModel(60.0))
    broker = CloudBroker(Provisioner(site, pool))
    return pool, broker, MessagingClient(broker)


class TestWireEncoding:
    def test_round_trip(self):
        msg = LeaseRequest(request_id=7, now=1.5, count=2)
        assert decode(encode(msg)) == msg

    def test_tuples_survive(self):
        msg = LeaseGrant(request_id=1, instance_ids=("a", "b"), ready_at=2.0)
        again = decode(encode(msg))
        assert again.instance_ids == ("a", "b")

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError, match="unknown message type"):
            decode('{"type": "teleport", "request_id": 1}')

    def test_missing_type_rejected(self):
        with pytest.raises(ValueError, match="without type"):
            decode('{"request_id": 1}')


class TestBroker:
    def test_lease_grants_instances(self, stack):
        pool, broker, client = stack
        grant = client.lease(2, now=5.0)
        assert len(grant.instance_ids) == 2
        assert grant.ready_at == 15.0
        assert pool.active_size() == 2

    def test_lease_truncated_at_capacity(self, stack):
        pool, _, client = stack
        grant = client.lease(10, now=0.0)
        assert len(grant.instance_ids) == 3  # site capacity

    def test_release_flow(self, stack):
        pool, _, client = stack
        grant = client.lease(2, now=0.0)
        for iid in grant.instance_ids:
            pool.get(iid).mark_running(10.0)
        ack = client.release(grant.instance_ids[0], at=30.0, now=10.0)
        assert ack.at == 30.0

    def test_release_unknown_instance_errors(self, stack):
        _, _, client = stack
        client.lease(2, now=0.0)
        with pytest.raises(ProtocolError, match="unknown instance"):
            client.release("vm-9999", at=5.0, now=0.0)

    def test_release_below_floor_errors(self, stack):
        pool, _, client = stack
        grant = client.lease(1, now=0.0)
        pool.get(grant.instance_ids[0]).mark_running(5.0)
        with pytest.raises(ProtocolError, match="cannot be terminated"):
            client.release(grant.instance_ids[0], at=10.0, now=5.0)

    def test_pool_status(self, stack):
        pool, _, client = stack
        grant = client.lease(2, now=0.0)
        pool.get(grant.instance_ids[0]).mark_running(5.0)
        status = client.pool_status()
        assert isinstance(status, PoolStatus)
        assert status.running == (grant.instance_ids[0],)
        assert status.pending == (grant.instance_ids[1],)
        assert status.capacity == 3

    def test_negative_lease_errors(self, stack):
        _, broker, _ = stack
        reply = decode(
            broker.handle(encode(LeaseRequest(request_id=1, now=0.0, count=-1)))
        )
        assert isinstance(reply, ErrorReply)

    def test_broker_logs_both_directions(self, stack):
        _, broker, client = stack
        client.lease(1, now=0.0)
        assert len(broker.log) == 2
        assert decode(broker.log[0]) == LeaseRequest(request_id=1, now=0.0, count=1)
        assert isinstance(decode(broker.log[1]), LeaseGrant)


class TestProtocolSufficiency:
    def test_full_scaling_episode_over_the_wire(self, stack):
        """Grow, observe, shrink — everything WIRE's Execute step needs,
        expressed purely in protocol messages."""
        pool, _, client = stack
        grant = client.lease(3, now=0.0)
        for iid in grant.instance_ids:
            pool.get(iid).mark_running(10.0)
        assert len(client.pool_status().running) == 3
        # Release two at their charge boundary.
        for iid in grant.instance_ids[:2]:
            ack = client.release(iid, at=70.0, now=15.0)
            pool.get(iid).mark_terminated(ack.at)
        status = client.pool_status()
        assert len(status.running) == 1
