"""Tests for launch/terminate provisioning with lag and capacity."""

from __future__ import annotations

import pytest

from repro.cloud import (
    BillingModel,
    CloudSite,
    InstancePool,
    InstanceType,
    Provisioner,
)


@pytest.fixture
def setup():
    itype = InstanceType(name="t", slots=2)
    site = CloudSite(name="s", itype=itype, max_instances=3, lag=10.0)
    pool = InstancePool(itype, BillingModel(60.0))
    return site, pool, Provisioner(site, pool)


class TestLaunches:
    def test_orders_have_lagged_ready_time(self, setup):
        _, _, prov = setup
        orders = prov.order_launches(2, now=5.0)
        assert len(orders) == 2
        assert all(o.ready_at == 15.0 for o in orders)

    def test_capacity_truncates(self, setup):
        _, pool, prov = setup
        assert len(prov.order_launches(5, now=0.0)) == 3
        assert pool.active_size() == 3
        assert prov.order_launches(1, now=0.0) == []

    def test_pending_counts_against_capacity(self, setup):
        _, _, prov = setup
        prov.order_launches(2, now=0.0)
        assert len(prov.order_launches(2, now=1.0)) == 1

    def test_zero_is_noop(self, setup):
        _, pool, prov = setup
        assert prov.order_launches(0, now=0.0) == []
        assert len(pool) == 0

    def test_negative_rejected(self, setup):
        _, _, prov = setup
        with pytest.raises(ValueError):
            prov.order_launches(-1, now=0.0)


class TestTerminations:
    def test_validate_running(self, setup):
        _, pool, prov = setup
        a = pool.create(0.0)
        a.mark_running(0.0)
        b = pool.create(0.0)
        b.mark_running(0.0)
        assert prov.validate_termination(a, at=20.0, now=10.0) == 20.0

    def test_floor_protected(self, setup):
        _, pool, prov = setup
        a = pool.create(0.0)
        a.mark_running(0.0)
        # min_instances defaults to 1; the only instance is protected.
        with pytest.raises(RuntimeError, match="cannot be terminated"):
            prov.validate_termination(a, at=5.0, now=0.0)

    def test_pending_not_terminable(self, setup):
        _, pool, prov = setup
        a = pool.create(0.0)
        pool.create(0.0)
        assert not prov.can_terminate(a)

    def test_past_time_rejected(self, setup):
        _, pool, prov = setup
        a = pool.create(0.0)
        a.mark_running(0.0)
        b = pool.create(0.0)
        b.mark_running(0.0)
        with pytest.raises(ValueError, match="precedes"):
            prov.validate_termination(a, at=5.0, now=10.0)
