"""Tests for the instance pool."""

from __future__ import annotations

import pytest

from repro.cloud import BillingModel, InstancePool, InstanceType


@pytest.fixture
def pool():
    return InstancePool(InstanceType(name="t", slots=2), BillingModel(60.0))


class TestMembership:
    def test_create_assigns_unique_ids(self, pool):
        a = pool.create(0.0)
        b = pool.create(0.0)
        assert a.instance_id != b.instance_id
        assert len(pool) == 2

    def test_get(self, pool):
        a = pool.create(0.0)
        assert pool.get(a.instance_id) is a

    def test_views_by_state(self, pool):
        a = pool.create(0.0)
        b = pool.create(0.0)
        a.mark_running(1.0)
        assert [i.instance_id for i in pool.running()] == [a.instance_id]
        assert [i.instance_id for i in pool.pending()] == [b.instance_id]
        assert pool.active_size() == 2

    def test_terminated_not_active(self, pool):
        a = pool.create(0.0)
        a.mark_running(0.0)
        a.mark_terminated(10.0)
        assert pool.active_size() == 0
        assert len(pool) == 1  # still tracked for billing


class TestSlots:
    def test_free_and_total(self, pool):
        a = pool.create(0.0)
        a.mark_running(0.0)
        assert pool.total_slots() == 2
        assert pool.free_slots() == 2
        a.assign("t1")
        assert pool.free_slots() == 1

    def test_instance_of_task(self, pool):
        a = pool.create(0.0)
        a.mark_running(0.0)
        a.assign("t1")
        assert pool.instance_of_task("t1") is a
        assert pool.instance_of_task("ghost") is None


class TestBillingAggregation:
    def test_total_units_and_cost(self, pool):
        a = pool.create(0.0)
        a.mark_running(0.0)
        b = pool.create(0.0)
        b.mark_running(0.0)
        assert pool.total_units(90.0) == 4  # 2 instances x 2 units
        assert pool.total_cost(90.0) == pytest.approx(4.0)

    def test_pending_costs_nothing(self, pool):
        pool.create(0.0)
        assert pool.total_units(1000.0) == 0

    def test_wasted_time_aggregates(self, pool):
        a = pool.create(0.0)
        a.mark_running(0.0)
        a.mark_terminated(30.0)  # wastes 30 of the 60s unit
        b = pool.create(0.0)
        b.mark_running(0.0)
        b.mark_terminated(50.0)  # wastes 10
        assert pool.total_wasted_time(100.0) == pytest.approx(40.0)
