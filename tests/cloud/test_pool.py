"""Tests for the instance pool."""

from __future__ import annotations

import pytest

from repro.cloud import BillingModel, InstancePool, InstanceType


@pytest.fixture
def pool():
    return InstancePool(InstanceType(name="t", slots=2), BillingModel(60.0))


class TestMembership:
    def test_create_assigns_unique_ids(self, pool):
        a = pool.create(0.0)
        b = pool.create(0.0)
        assert a.instance_id != b.instance_id
        assert len(pool) == 2

    def test_get(self, pool):
        a = pool.create(0.0)
        assert pool.get(a.instance_id) is a

    def test_views_by_state(self, pool):
        a = pool.create(0.0)
        b = pool.create(0.0)
        a.mark_running(1.0)
        assert [i.instance_id for i in pool.running()] == [a.instance_id]
        assert [i.instance_id for i in pool.pending()] == [b.instance_id]
        assert pool.active_size() == 2

    def test_terminated_not_active(self, pool):
        a = pool.create(0.0)
        a.mark_running(0.0)
        a.mark_terminated(10.0)
        assert pool.active_size() == 0
        assert len(pool) == 1  # still tracked for billing


class TestSlots:
    def test_free_and_total(self, pool):
        a = pool.create(0.0)
        a.mark_running(0.0)
        assert pool.total_slots() == 2
        assert pool.free_slots() == 2
        a.assign("t1")
        assert pool.free_slots() == 1

    def test_instance_of_task(self, pool):
        a = pool.create(0.0)
        a.mark_running(0.0)
        a.assign("t1")
        assert pool.instance_of_task("t1") is a
        assert pool.instance_of_task("ghost") is None


class TestBillingAggregation:
    def test_total_units_and_cost(self, pool):
        a = pool.create(0.0)
        a.mark_running(0.0)
        b = pool.create(0.0)
        b.mark_running(0.0)
        assert pool.total_units(90.0) == 4  # 2 instances x 2 units
        assert pool.total_cost(90.0) == pytest.approx(4.0)

    def test_pending_costs_nothing(self, pool):
        pool.create(0.0)
        assert pool.total_units(1000.0) == 0

    def test_wasted_time_aggregates(self, pool):
        a = pool.create(0.0)
        a.mark_running(0.0)
        a.mark_terminated(30.0)  # wastes 30 of the 60s unit
        b = pool.create(0.0)
        b.mark_running(0.0)
        b.mark_terminated(50.0)  # wastes 10
        assert pool.total_wasted_time(100.0) == pytest.approx(40.0)


class TestIncrementalIndexes:
    """The pool's free-slot buckets / placement map vs brute-force scans.

    ``best_dispatchable`` must pick exactly the instance the historical
    full-pool scan picked: fullest (fewest free slots) first, lowest id
    tie-break, draining ids excluded.
    """

    @staticmethod
    def reference_best(pool, excluded):
        candidates = [
            i
            for i in pool.running()
            if i.free_slots > 0 and i.instance_id not in excluded
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda i: (i.free_slots, i.instance_id))

    def test_random_op_stream_matches_reference(self):
        import numpy as np

        from repro.cloud import BillingModel, InstancePool, InstanceType

        rng = np.random.default_rng(7)
        pool = InstancePool(InstanceType(name="t", slots=3), BillingModel(60.0))
        now = 0.0
        task_counter = 0
        assigned: dict[str, str] = {}  # task -> instance id
        for _ in range(600):
            now += float(rng.uniform(0.1, 2.0))
            op = rng.integers(0, 5)
            if op == 0:
                pool.create(now)
            elif op == 1:
                pending = pool.pending()
                if pending:
                    pending[int(rng.integers(0, len(pending)))].mark_running(now)
            elif op == 2:
                target = pool.best_dispatchable()
                if target is not None:
                    task = f"task-{task_counter}"
                    task_counter += 1
                    target.assign(task)
                    assigned[task] = target.instance_id
            elif op == 3 and assigned:
                task = list(assigned)[int(rng.integers(0, len(assigned)))]
                pool.get(assigned.pop(task)).release(task)
            elif op == 4:
                running = pool.running()
                if running:
                    victim = running[int(rng.integers(0, len(running)))]
                    for task in list(victim.occupants):
                        victim.release(task)
                        assigned.pop(task, None)
                    victim.mark_terminated(now)
            # -- invariants after every op ------------------------------
            by_scan_running = sorted(
                i.instance_id
                for i in pool
                if i.state.name == "RUNNING"
            )
            assert [i.instance_id for i in pool.running()] == by_scan_running
            assert pool.running_count() == len(by_scan_running)
            assert pool.free_slots() == sum(i.free_slots for i in pool.running())
            assert pool.total_slots() == 3 * len(by_scan_running)
            for task, iid in assigned.items():
                found = pool.instance_of_task(task)
                assert found is not None and found.instance_id == iid
            excluded = set()
            running = pool.running()
            if running and rng.uniform() < 0.5:
                excluded = {
                    running[int(rng.integers(0, len(running)))].instance_id
                }
            assert pool.best_dispatchable(excluded) is self.reference_best(
                pool, excluded
            )

    def test_cancel_pending_removes_from_pending_view(self):
        from repro.cloud import BillingModel, InstancePool, InstanceType

        pool = InstancePool(InstanceType(name="t", slots=2), BillingModel(60.0))
        a = pool.create(0.0)
        b = pool.create(0.0)
        a.cancel_pending()
        assert [i.instance_id for i in pool.pending()] == [b.instance_id]
        assert a.terminated_at == a.requested_at
        assert pool.active_size() == 1
