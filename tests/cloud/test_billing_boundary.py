"""Boundary-exact billing regression tests.

These pin the reconciled charge-boundary convention (ISSUE 5 satellite):
at ``t = started_at + k*u`` a *running* instance has just been charged
its ``k+1``-th unit — the same convention ``time_to_next_charge``
documents ("at an exact unit boundary the new unit has just been
charged") — while a *terminated* instance that released exactly at the
boundary owes ``k`` units. The pre-fix ``units_charged`` treated the
boundary as not-yet-charged for running instances, contradicting
``time_to_next_charge`` and leaving ``paid_until == now`` while the next
charge was claimed to be a full unit away.
"""

from __future__ import annotations

import pytest

from repro.cloud import BillingModel, Instance, InstanceType

#: the paper's charging units (§IV-B): 1, 15, 30, 60 minutes
UNITS = (60.0, 900.0, 1800.0, 3600.0)
BOUNDARIES = (1, 2, 3)


def make_instance(requested_at: float = 0.0) -> Instance:
    return Instance(
        instance_id="vm-1",
        itype=InstanceType(name="t", slots=2),
        requested_at=requested_at,
    )


def make_running(started_at: float = 0.0) -> Instance:
    inst = make_instance(requested_at=started_at)
    inst.mark_running(started_at)
    return inst


@pytest.mark.parametrize("u", UNITS)
@pytest.mark.parametrize("k", BOUNDARIES)
class TestExactBoundary:
    def test_running_units_charged(self, u, k):
        """At t = started + k*u a running instance owes k+1 units."""
        billing = BillingModel(u)
        inst = make_running(started_at=7.0)
        now = 7.0 + k * u
        assert billing.units_charged(inst, now) == k + 1

    def test_running_paid_until_covers_new_unit(self, u, k):
        """paid_until at the boundary extends a full unit past now."""
        billing = BillingModel(u)
        inst = make_running(started_at=7.0)
        now = 7.0 + k * u
        assert billing.paid_until(inst, now) == pytest.approx(now + u)

    def test_running_next_charge_is_full_unit_away(self, u, k):
        billing = BillingModel(u)
        inst = make_running(started_at=7.0)
        now = 7.0 + k * u
        assert billing.time_to_next_charge(inst, now) == pytest.approx(u)
        assert billing.next_charge_time(inst, now) == pytest.approx(now + u)

    def test_running_next_charge_equals_paid_until(self, u, k):
        """The reconciled invariant: next_charge_time == paid_until.

        This is the cross-check the pre-fix code failed — it reported
        paid_until == now (unit not yet charged) while next_charge_time
        said now + u (unit just charged).
        """
        billing = BillingModel(u)
        inst = make_running(started_at=7.0)
        now = 7.0 + k * u
        assert billing.next_charge_time(inst, now) == pytest.approx(
            billing.paid_until(inst, now)
        )

    def test_terminated_at_boundary_owes_k_units(self, u, k):
        """Releasing exactly at the boundary avoids the recharge."""
        billing = BillingModel(u)
        inst = make_running(started_at=7.0)
        now = 7.0 + k * u
        inst.mark_terminated(now)
        assert billing.units_charged(inst, now) == k
        assert billing.wasted_time(inst, now) == pytest.approx(0.0, abs=1e-6)
        assert billing.paid_until(inst, now) == pytest.approx(now)

    def test_terminated_ulps_past_boundary_forgiven(self, u, k):
        """Float noise a few ulps past the boundary adds no unit."""
        billing = BillingModel(u)
        inst = make_running(started_at=7.0)
        now = 7.0 + k * u + 1e-10
        inst.mark_terminated(now)
        assert billing.units_charged(inst, now) == k

    def test_mid_unit_unchanged(self, u, k):
        """Away from boundaries the two conventions agree."""
        billing = BillingModel(u)
        inst = make_running(started_at=7.0)
        now = 7.0 + k * u + 0.5 * u
        assert billing.units_charged(inst, now) == k + 1
        assert billing.paid_until(inst, now) == pytest.approx(
            7.0 + (k + 1) * u
        )
        assert billing.next_charge_time(inst, now) == pytest.approx(
            billing.paid_until(inst, now)
        )


class TestNeverStartedPaidUntil:
    def test_pending_paid_until_is_requested_at(self):
        """A pending instance has paid nothing: paid_until collapses to
        requested_at, never to ``now`` (the pre-fix value, which claimed
        an unbilled instance was paid through the present)."""
        billing = BillingModel(60.0)
        inst = make_instance(requested_at=42.0)
        assert billing.paid_until(inst, 500.0) == 42.0
        assert billing.units_charged(inst, 500.0) == 0

    def test_cancelled_pending_paid_until_is_requested_at(self):
        billing = BillingModel(60.0)
        inst = make_instance(requested_at=42.0)
        inst.cancel_pending()
        assert billing.paid_until(inst, 500.0) == 42.0
        assert billing.units_charged(inst, 500.0) == 0
