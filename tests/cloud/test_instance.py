"""Tests for instance lifecycle and slot management."""

from __future__ import annotations

import pytest

from repro.cloud import Instance, InstanceState, InstanceType, XO_XLARGE


def make_instance(slots=2, requested_at=0.0):
    return Instance(
        instance_id="vm-1",
        itype=InstanceType(name="t", slots=slots),
        requested_at=requested_at,
    )


class TestInstanceType:
    def test_paper_flavor(self):
        assert XO_XLARGE.slots == 4
        assert XO_XLARGE.name == "XOXLarge"

    def test_rejects_bad_slots(self):
        with pytest.raises(ValueError):
            InstanceType(name="t", slots=0)

    def test_rejects_empty_name(self):
        with pytest.raises(ValueError):
            InstanceType(name="", slots=1)


class TestLifecycle:
    def test_starts_pending(self):
        inst = make_instance()
        assert inst.state is InstanceState.PENDING
        assert inst.free_slots == 0  # unusable until running

    def test_mark_running(self):
        inst = make_instance()
        inst.mark_running(5.0)
        assert inst.state is InstanceState.RUNNING
        assert inst.started_at == 5.0
        assert inst.free_slots == 2

    def test_cannot_start_before_request(self):
        inst = make_instance(requested_at=10.0)
        with pytest.raises(ValueError):
            inst.mark_running(5.0)

    def test_cannot_start_twice(self):
        inst = make_instance()
        inst.mark_running(1.0)
        with pytest.raises(RuntimeError):
            inst.mark_running(2.0)

    def test_terminate(self):
        inst = make_instance()
        inst.mark_running(0.0)
        inst.mark_terminated(10.0)
        assert inst.state is InstanceState.TERMINATED
        assert inst.uptime(99.0) == 10.0

    def test_terminate_with_occupants_rejected(self):
        inst = make_instance()
        inst.mark_running(0.0)
        inst.assign("t1")
        with pytest.raises(RuntimeError, match="occupants"):
            inst.mark_terminated(5.0)

    def test_double_terminate_rejected(self):
        inst = make_instance()
        inst.mark_running(0.0)
        inst.mark_terminated(1.0)
        with pytest.raises(RuntimeError):
            inst.mark_terminated(2.0)


class TestSlots:
    def test_assign_release(self):
        inst = make_instance(slots=2)
        inst.mark_running(0.0)
        inst.assign("a")
        assert inst.free_slots == 1
        inst.assign("b")
        assert inst.free_slots == 0
        inst.release("a")
        assert inst.free_slots == 1

    def test_overfill_rejected(self):
        inst = make_instance(slots=1)
        inst.mark_running(0.0)
        inst.assign("a")
        with pytest.raises(RuntimeError, match="no free slot"):
            inst.assign("b")

    def test_double_assign_rejected(self):
        inst = make_instance(slots=2)
        inst.mark_running(0.0)
        inst.assign("a")
        with pytest.raises(RuntimeError, match="already"):
            inst.assign("a")

    def test_release_unknown_rejected(self):
        inst = make_instance()
        inst.mark_running(0.0)
        with pytest.raises(RuntimeError, match="does not occupy"):
            inst.release("ghost")

    def test_assign_to_pending_rejected(self):
        inst = make_instance()
        with pytest.raises(RuntimeError, match="pending"):
            inst.assign("a")


class TestUptime:
    def test_never_started(self):
        assert make_instance().uptime(100.0) == 0.0

    def test_running_uses_now(self):
        inst = make_instance()
        inst.mark_running(10.0)
        assert inst.uptime(25.0) == 15.0

    def test_terminated_fixed(self):
        inst = make_instance()
        inst.mark_running(0.0)
        inst.mark_terminated(30.0)
        assert inst.uptime(1000.0) == 30.0
