"""Tests for charging-unit billing semantics."""

from __future__ import annotations

import pytest

from repro.cloud import BillingModel, Instance, InstanceType


def running_instance(started_at=0.0, slots=1):
    inst = Instance(
        instance_id="vm-1",
        itype=InstanceType(name="t", slots=slots),
        requested_at=started_at,
    )
    inst.mark_running(started_at)
    return inst


class TestUnitsCharged:
    def test_never_started_free(self):
        inst = Instance(
            instance_id="vm-1",
            itype=InstanceType(name="t", slots=1),
            requested_at=0.0,
        )
        assert BillingModel(60.0).units_charged(inst, 100.0) == 0

    def test_minimum_one_unit(self):
        inst = running_instance()
        assert BillingModel(60.0).units_charged(inst, 0.0) == 1

    def test_unit_boundaries_running(self):
        # A running instance is charged every unit it *enters*: at the
        # exact boundary the new unit has just been charged, matching
        # time_to_next_charge's documented convention.
        billing = BillingModel(60.0)
        inst = running_instance()
        assert billing.units_charged(inst, 59.0) == 1
        assert billing.units_charged(inst, 60.0) == 2  # boundary: recharged
        assert billing.units_charged(inst, 60.1) == 2
        assert billing.units_charged(inst, 180.0) == 4  # boundary again

    def test_unit_boundaries_terminated(self):
        # Releasing exactly at the boundary never enters the next unit
        # (this is where Algorithm 2 releases instances).
        billing = BillingModel(60.0)
        inst = running_instance()
        inst.mark_terminated(120.0)
        assert billing.units_charged(inst, 120.0) == 2

    def test_float_noise_at_boundary_forgiven(self):
        billing = BillingModel(60.0)
        inst = running_instance()
        # A termination a few ulps past the boundary must not add a unit.
        inst.mark_terminated(120.0 + 1e-10)
        assert billing.units_charged(inst, 120.0 + 1e-10) == 2

    def test_termination_freezes_units(self):
        billing = BillingModel(60.0)
        inst = running_instance()
        inst.mark_terminated(61.0)
        assert billing.units_charged(inst, 10_000.0) == 2

    def test_cost_scales_with_price(self):
        itype = InstanceType(name="t", slots=1, price_per_unit=2.5)
        inst = Instance(instance_id="v", itype=itype, requested_at=0.0)
        inst.mark_running(0.0)
        assert BillingModel(60.0).cost(inst, 100.0) == pytest.approx(5.0)


class TestTimeToNextCharge:
    def test_mid_unit(self):
        billing = BillingModel(60.0)
        inst = running_instance()
        assert billing.time_to_next_charge(inst, 10.0) == pytest.approx(50.0)

    def test_at_boundary_full_unit(self):
        billing = BillingModel(60.0)
        inst = running_instance()
        assert billing.time_to_next_charge(inst, 60.0) == pytest.approx(60.0)
        assert billing.time_to_next_charge(inst, 0.0) == pytest.approx(60.0)

    def test_in_unit_range(self):
        billing = BillingModel(60.0)
        inst = running_instance(started_at=7.0)
        for now in (7.0, 20.0, 66.9, 67.1, 200.0):
            r = billing.time_to_next_charge(inst, now)
            assert 0 < r <= 60.0

    def test_pending_charges_immediately(self):
        inst = Instance(
            instance_id="v",
            itype=InstanceType(name="t", slots=1),
            requested_at=0.0,
        )
        assert BillingModel(60.0).time_to_next_charge(inst, 5.0) == 0.0

    def test_next_charge_time(self):
        billing = BillingModel(60.0)
        inst = running_instance(started_at=10.0)
        assert billing.next_charge_time(inst, 30.0) == pytest.approx(70.0)


class TestWaste:
    def test_no_waste_at_exact_boundary(self):
        billing = BillingModel(60.0)
        inst = running_instance()
        inst.mark_terminated(120.0)
        assert billing.wasted_time(inst, 120.0) == pytest.approx(0.0, abs=1e-6)

    def test_mid_unit_termination_wastes_remainder(self):
        billing = BillingModel(60.0)
        inst = running_instance()
        inst.mark_terminated(70.0)
        assert billing.wasted_time(inst, 70.0) == pytest.approx(50.0)

    def test_paid_until(self):
        billing = BillingModel(60.0)
        inst = running_instance(started_at=5.0)
        assert billing.paid_until(inst, 10.0) == pytest.approx(65.0)
        assert billing.paid_until(inst, 70.0) == pytest.approx(125.0)


class TestValidation:
    def test_rejects_bad_unit(self):
        with pytest.raises(Exception):
            BillingModel(0.0)
