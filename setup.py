"""Setup shim.

The execution environment is offline and has no ``wheel`` package, so
PEP 517 editable installs (which build a wheel) fail. This shim lets
``pip install -e . --no-build-isolation`` fall back to the legacy
``setup.py develop`` path. Metadata mirrors pyproject.toml.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of WIRE: Resource-efficient Scaling with Online "
        "Prediction for DAG-based Workflows (CLUSTER 2021)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
