#!/usr/bin/env python3
"""The paper's headline scenario: Epigenomics on an elastic ExoGENI site.

Runs the Genome S workflow (405 tasks, 8 stages — paper Table I) under all
four §IV-C resource-management settings and two charging units, printing a
miniature of Figures 5 and 6 plus an ASCII pool-size timeline for the wire
run. Run with:

    python examples/epigenomics_autoscaling.py
"""

from __future__ import annotations

from repro.experiments import default_transfer_model, policy_factories, run_setting
from repro.util.formatting import format_duration, render_table
from repro.workloads import epigenomics


def pool_ascii(timeline, makespan, width=72, height=12):
    """Render (time, pool size) steps as a small ASCII chart."""
    if not timeline:
        return "(no pool changes)"
    peak = max(c for _, c in timeline)
    columns = []
    for x in range(width):
        t = makespan * x / (width - 1)
        size = 0
        for time, count in timeline:
            if time <= t:
                size = count
            else:
                break
        columns.append(size)
    lines = []
    for level in range(peak, 0, -1):
        row = "".join("#" if c >= level else " " for c in columns)
        lines.append(f"{level:3d} |{row}")
    lines.append("    +" + "-" * width)
    lines.append(f"     0 {'time ->':^{width - 14}} {format_duration(makespan)}")
    return "\n".join(lines)


def main() -> None:
    spec = epigenomics("S")
    factories = policy_factories()
    charging_units = (60.0, 1800.0)  # 1 and 30 minutes

    results = {}
    for policy_name, factory in factories.items():
        for u in charging_units:
            results[(policy_name, u)] = run_setting(
                spec, factory, u, seed=7, transfer_model=default_transfer_model()
            )

    best = min(r.makespan for r in results.values())
    rows = [
        [
            name,
            int(u // 60),
            format_duration(r.makespan),
            f"{r.makespan / best:.2f}x",
            r.total_units,
            r.peak_instances,
            r.restarts,
        ]
        for (name, u), r in sorted(results.items())
    ]
    print(
        render_table(
            ["policy", "u (min)", "makespan", "relative", "units", "peak", "restarts"],
            rows,
            title="Genome S across settings (mini Figures 5/6)",
        )
    )

    wire = results[("wire", 60.0)]
    print("\nwire run pool size over time (u = 1 minute):\n")
    print(pool_ascii(wire.pool_timeline, wire.makespan))
    print(
        "\nThe pool ramps up for the wide per-chunk stages, then collapses "
        "to one instance for the serial merge/index/pileup tail — exactly "
        "the §III-E behaviour."
    )


if __name__ == "__main__":
    main()
