#!/usr/bin/env python3
"""Record a run, then replay it with cross-run variability (§II-B).

This mirrors the paper's Hadoop workflow methodology: a run's task
profiles are recorded (kickstart-style), turned into an emulated workflow
by the task-emulator analogue, and replayed under perturbations modelling
the three cross-run variability sources of §II-B — different datasets
(stage factors), different instance types (speed factor), and co-located
interference (noise). WIRE re-learns each replay online rather than
trusting the recorded history. Run with:

    python examples/trace_replay_variability.py
"""

from __future__ import annotations

from repro.autoscalers import WireAutoscaler
from repro.cloud import exogeni_site
from repro.engine import Simulation
from repro.experiments import default_transfer_model
from repro.traces import emulated_workflow, record_run
from repro.util.formatting import format_duration, render_table
from repro.workloads import pagerank


def run(workflow, label, rows):
    result = Simulation(
        workflow,
        exogeni_site(),
        WireAutoscaler(),
        charging_unit=60.0,
        transfer_model=default_transfer_model(),
        seed=3,
    ).run()
    rows.append(
        [
            label,
            format_duration(result.makespan),
            result.total_units,
            result.peak_instances,
            f"{result.total_task_seconds / 3600:.2f}h",
        ]
    )
    return result


def main() -> None:
    rows: list[list] = []

    # 1. Original run: PageRank S, recorded like a Hadoop profile capture.
    original = pagerank("S").generate(seed=0)
    result = run(original, "original run", rows)
    trace = record_run(original, result.monitor)
    print(
        f"Recorded {len(trace.records)} task profiles "
        f"({trace.total_execution_time / 3600:.2f}h of execution)."
    )

    # 2. Pure replay: the task emulator reproduces the measurements.
    run(emulated_workflow(trace), "exact replay", rows)

    # 3. A "bigger dataset" next run: the iteration stages grow 2x.
    heavy_stages = {
        record.stage_id for record in trace.records if "iter" in record.stage_id
    }
    run(
        emulated_workflow(
            trace,
            stage_factors={s: 2.0 for s in heavy_stages},
            name="pagerank-bigger-input",
        ),
        "2x iteration stages",
        rows,
    )

    # 4. A slower instance type plus co-located interference.
    run(
        emulated_workflow(
            trace,
            speed_factor=1.5,
            noise_cv=0.2,
            seed=9,
            name="pagerank-slow-noisy",
        ),
        "1.5x slower + 20% noise",
        rows,
    )

    print()
    print(
        render_table(
            ["scenario", "makespan", "units", "peak VMs", "task hours"],
            rows,
            title="WIRE re-adapts to every replay without historical profiles",
        )
    )
    print(
        "\nEach scenario is a different 'next run' of the same workflow; "
        "WIRE's online models retrain within the run, which is exactly why "
        "the paper rejects predicting from previous-run statistics (§II-B)."
    )


if __name__ == "__main__":
    main()
