#!/usr/bin/env python3
"""How the billing granularity steers WIRE's cost/speed trade (§IV-E).

Runs TPCH-1 L under WIRE with the paper's four charging units
(1/15/30/60 minutes). Small units let WIRE scale aggressively — each
instance only has to justify a minute of billing — while hour-long units
force conservative pools: "for small charging units WIRE prioritizes
application execution times over cost". Run with:

    python examples/charging_unit_tradeoff.py
"""

from __future__ import annotations

from repro.autoscalers import WireAutoscaler, full_site
from repro.cloud import exogeni_site
from repro.experiments import CHARGING_UNITS, default_transfer_model, run_setting
from repro.util.formatting import format_duration, render_table
from repro.workloads import tpch1


def main() -> None:
    spec = tpch1("L")
    site = exogeni_site()

    rows = []
    for u in CHARGING_UNITS:
        wire = run_setting(
            spec, WireAutoscaler, u, seed=11,
            transfer_model=default_transfer_model(),
        )
        static = run_setting(
            spec, lambda: full_site(site), u, seed=11,
            transfer_model=default_transfer_model(),
        )
        rows.append(
            [
                int(u // 60),
                format_duration(wire.makespan),
                f"{wire.makespan / static.makespan:.2f}x",
                wire.total_units,
                static.total_units,
                f"{static.total_units / wire.total_units:.1f}x",
                wire.peak_instances,
            ]
        )

    print(
        render_table(
            [
                "u (min)",
                "wire makespan",
                "vs full-site",
                "wire units",
                "full-site units",
                "savings",
                "wire peak VMs",
            ],
            rows,
            title="TPCH-1 L: WIRE across charging units",
        )
    )
    print(
        "\nShorter charging units give WIRE agility: it can afford wide "
        "pools because each instance only needs to stay useful for one "
        "cheap unit. As u grows the pool shrinks and execution stretches, "
        "but cost savings over static provisioning widen."
    )


if __name__ == "__main__":
    main()
