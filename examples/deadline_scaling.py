#!/usr/bin/env python3
"""Meet a deadline at minimum cost (the deadline extension policy).

Runs the Montage mosaic workflow under the `DeadlineAutoscaler` — an
extension that reuses WIRE's online prediction stack but steers toward a
target makespan instead of a utilization bar — across a range of
deadlines, next to plain WIRE and static peak provisioning. Run with:

    python examples/deadline_scaling.py
"""

from __future__ import annotations

from repro.autoscalers import DeadlineAutoscaler, WireAutoscaler, full_site
from repro.cloud import exogeni_site
from repro.engine import ExponentialTransferModel, Simulation
from repro.util.formatting import format_duration, render_table
from repro.workloads import montage


def main() -> None:
    site = exogeni_site()
    charging_unit = 60.0
    transfers = ExponentialTransferModel(bandwidth=5e7, latency=2.0)

    def run(factory):
        return Simulation(
            montage("L", seed=4),
            site,
            factory(),
            charging_unit,
            transfer_model=transfers,
            seed=4,
        ).run()

    static = run(lambda: full_site(site))
    rows = [
        [
            "full-site",
            "-",
            format_duration(static.makespan),
            static.total_units,
            "-",
        ]
    ]
    for multiple, initial in ((1.5, 12), (3.0, 1), (6.0, 1)):
        deadline = static.makespan * multiple
        result = run(
            lambda: DeadlineAutoscaler(deadline, initial_instances=initial)
        )
        rows.append(
            [
                f"deadline (start {initial})",
                format_duration(deadline),
                format_duration(result.makespan),
                result.total_units,
                "yes" if result.makespan <= deadline else "MISSED",
            ]
        )
    wire = run(WireAutoscaler)
    rows.append(
        ["wire", "-", format_duration(wire.makespan), wire.total_units, "-"]
    )

    print(
        render_table(
            ["policy", "deadline", "makespan", "units", "met"],
            rows,
            title="Montage L: the cost-vs-deadline frontier (u = 1 minute)",
        )
    )
    print(
        "\nA deadline tighter than the cold-start floor (one instance plus "
        "a provisioning lag of ramp-up) needs a larger initial pool — the "
        "initial_instances knob. "
        "Slack deadlines let the controller ride WIRE's utilization-first "
        "behaviour. The deadline arithmetic includes a markup of one "
        "provisioning lag per still-undiscovered stage, because online "
        "prediction knows nothing about a stage until it fires (§III-E)."
    )


if __name__ == "__main__":
    main()
