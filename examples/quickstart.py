#!/usr/bin/env python3
"""Quickstart: autoscale a small workflow with WIRE.

Builds a split -> map -> merge workflow, runs it on a simulated IaaS site
under WIRE and under static peak provisioning, and compares cost and
makespan. Run with:

    python examples/quickstart.py
"""

from __future__ import annotations

from repro.autoscalers import WireAutoscaler, full_site
from repro.cloud import exogeni_site
from repro.dag import Task, WorkflowBuilder
from repro.engine import ExponentialTransferModel, Simulation
from repro.util.formatting import format_duration, render_table


def build_workflow():
    """A classic fan-out/fan-in: 1 split, 40 maps, 1 merge.

    Map runtimes scale with their input sizes — the structure WIRE's
    online gradient descent model learns (paper Eq. 1).
    """
    builder = WorkflowBuilder("quickstart")
    builder.add_task(
        Task("split", "split", runtime=45.0, input_size=4e9, output_size=4e9)
    )
    sizes = [1e8 * (1 + i % 4) for i in range(40)]
    maps = builder.add_stage(
        "map",
        count=40,
        runtime=[20.0 + s / 2e7 for s in sizes],  # 25-40s, size-correlated
        parents=["split"],
        input_sizes=sizes,
        output_sizes=[s * 0.1 for s in sizes],
    )
    builder.add_task(
        Task("merge", "merge", runtime=30.0, input_size=4e8), parents=maps
    )
    return builder.build()


def main() -> None:
    site = exogeni_site()  # 12 x 4-slot VMs, 3-minute provisioning lag
    charging_unit = 60.0  # 1-minute billing, as in the paper's best case
    transfers = ExponentialTransferModel(bandwidth=5e7, latency=2.0)

    rows = []
    for scaler_factory in (lambda: full_site(site), WireAutoscaler):
        workflow = build_workflow()
        result = Simulation(
            workflow,
            site,
            scaler_factory(),
            charging_unit,
            transfer_model=transfers,
            seed=42,
        ).run()
        rows.append(
            [
                result.autoscaler_name,
                format_duration(result.makespan),
                result.total_units,
                result.peak_instances,
                f"{result.utilization * 100:.0f}%",
            ]
        )

    print(
        render_table(
            ["policy", "makespan", "charging units", "peak VMs", "utilization"],
            rows,
            title="WIRE vs static peak provisioning (u = 1 minute)",
        )
    )
    static_units, wire_units = rows[0][2], rows[1][2]
    print(
        f"\nWIRE used {static_units / wire_units:.1f}x fewer charging units "
        "by growing the pool only while the wide map stage justified it."
    )


if __name__ == "__main__":
    main()
