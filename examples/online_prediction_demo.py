#!/usr/bin/env python3
"""Watch the five online prediction policies (§III-C) take over in turn.

Feeds a stage of tasks through the real :class:`TaskPredictor` one
completion at a time and prints which policy produced each estimate: the
stage starts blind (Policy 1), leans on running peers (Policy 2), then on
completed medians, matched input-size groups, and finally the online
gradient descent model for novel sizes (Policies 3-5). Run with:

    python examples/online_prediction_demo.py
"""

from __future__ import annotations

from repro.core import PredictionPolicy, TaskPredictor
from repro.dag import Task, WorkflowBuilder
from repro.engine import Monitor, TaskExecState
from repro.util.formatting import render_table

# A stage whose runtimes are a clean function of input size: 5 + size/20.
SIZES = [100.0, 100.0, 100.0, 200.0, 200.0, 200.0, 400.0, 400.0, 800.0]


def build_stage():
    builder = WorkflowBuilder("demo-stage")
    for i, size in enumerate(SIZES):
        builder.add_task(
            Task(f"task-{i}", "transform", runtime=5.0 + size / 20.0, input_size=size)
        )
    return builder.build()


def main() -> None:
    workflow = build_stage()
    predictor = TaskPredictor(workflow)
    monitor = Monitor()
    stage_id = workflow.stage_of["task-0"]

    rows = []
    now = 0.0
    for i, size in enumerate(SIZES):
        task_id = f"task-{i}"
        actual = workflow.task(task_id).runtime

        # Ask for the estimate *before* the task runs.
        estimate, policy = predictor.estimate_execution(
            task_id, TaskExecState.READY, monitor, now
        )
        rows.append(
            [
                task_id,
                int(size),
                f"{estimate:.1f}s",
                f"{actual:.1f}s",
                f"{estimate - actual:+.1f}s",
                f"{policy.value}: {policy.name}",
            ]
        )

        # Run the task to completion and harvest (one MAPE iteration).
        attempt = monitor.record_dispatch(
            task_id, stage_id, "vm-demo", now, size, 0.0
        )
        attempt.exec_start = now
        attempt.exec_end = now + actual
        attempt.complete_time = now + actual
        now += actual
        predictor.observe_interval(monitor, now - actual, now)

    print(
        render_table(
            ["task", "input size", "estimate", "actual", "error", "policy used"],
            rows,
            title="Online prediction policies taking over as data arrives",
        )
    )

    model = predictor.ogd_model(stage_id)
    print(
        f"\nOGD model after the stream: t = {model.alpha0:.2f} + "
        f"{model.alpha1 / model.scale:.4f} x size   (true relation: t = 5 + size/20)"
    )
    novel = 1600.0
    print(
        f"Extrapolating a never-seen input of {novel:.0f} bytes: "
        f"predicted {model.predict(novel):.1f}s, true {5 + novel / 20:.1f}s"
    )
    assert rows[0][5].startswith("1"), "first task must use Policy 1"
    assert any(r[5].startswith("5") for r in rows), "a novel size must hit Policy 5"


if __name__ == "__main__":
    main()
