"""Command-line interface.

``python -m repro <command>`` drives the library without writing code:

- ``workloads`` — list the Table I workloads and their published profiles;
- ``run`` — execute one workload under one policy, with optional SVG
  pool/Gantt exports;
- ``compare`` — one workload under all four §IV-C settings;
- ``table1`` / ``fig2`` / ``fig3`` / ``fig4`` / ``overhead`` — regenerate
  a paper artifact and print its rows (``fig5``/``fig6`` run the full
  matrix and accept ``--repetitions``);
- ``dax export`` / ``dax run`` — write a workload as a Pegasus DAX, or
  autoscale a DAX file;
- ``run --trace out.jsonl`` — emit the run's structured telemetry
  (control ticks, instance billing, task attempts) as JSONL;
- ``trace summarize`` — turn a trace into per-stage prediction-error and
  cost/waste tables;
- ``run --chaos revocations=2,stragglers=0.2`` — inject cloud-level
  faults (``repro.cloud.faults``); also accepted by ``campaign``;
- ``robustness`` — the §IV-E degradation sweep, with optional
  ``--chaos`` cloud-fault axes;
- ``zoo list/describe/import/calibrate`` — the real-workflow zoo
  (:mod:`repro.zoo`): WfCommons ingestion and trace calibration.
  Every workload-name argument accepts the full registry, including
  ``zoo/<instance>`` calibrated workloads.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from repro.cloud import exogeni_site
from repro.engine.simulator import RunResult, Simulation
from repro.experiments import (
    CHARGING_UNITS,
    cost_experiment,
    default_transfer_model,
    overhead_experiment,
    policy_factories,
    prediction_experiment,
    sweep_r_over_u,
    sweep_u_over_r,
    table1_experiment,
)
from repro.experiments.report import (
    render_cost,
    render_linear,
    render_overhead,
    render_prediction,
    render_relative_time,
    render_table1,
)
from repro.fleet import DEFAULT_FLEET_WORKLOADS
from repro.util.formatting import format_duration, render_table
from repro.workloads import PAPER_PROFILES, table1_specs

__all__ = ["main"]


def _non_negative_int(text: str) -> int:
    """argparse type for seeds: any integer >= 0."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}") from None
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _positive_int(text: str) -> int:
    """argparse type for counts (--jobs, --save-every): any integer >= 1."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}") from None
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _workload(name: str):
    """Resolve a workload name via the central registry.

    One code path for every subcommand: Table I names, montage, and
    ``zoo/<instance>`` all resolve here, and an unknown name exits with
    the registry's available-name listing instead of a traceback.
    """
    from repro.zoo.registry import UnknownWorkloadError, resolve_workload

    try:
        return resolve_workload(name)
    except UnknownWorkloadError as exc:
        raise SystemExit(str(exc)) from None


def _check_workload_names(names) -> None:
    """Validate registry names without resolving (calibrating) them.

    Fleet catalogs resolve lazily at submission time; this pre-flight
    check turns a bad ``--workloads`` entry into the same clean
    available-name exit as :func:`_workload`.
    """
    from repro.zoo.registry import UnknownWorkloadError, available_workloads

    known = set(available_workloads())
    for name in names:
        if name not in known:
            raise SystemExit(str(UnknownWorkloadError(name)))


def _policy(name: str, site):
    factories = policy_factories(site, include_oracle=True)
    if name not in factories:
        known = ", ".join(sorted(factories))
        raise SystemExit(f"unknown policy {name!r}; choose one of: {known}")
    return factories[name]


def _chaos(text: str | None):
    """Parse a ``--chaos`` argument, or None when the flag is absent."""
    if not text:
        return None
    from repro.cloud.faults import parse_chaos_spec

    try:
        return parse_chaos_spec(text)
    except ValueError as exc:
        raise SystemExit(f"bad --chaos value: {exc}") from None


def _run(workflow, policy_factory, args) -> RunResult:
    from repro.telemetry import JsonlSink, Tracer

    trace_path = getattr(args, "trace", None)
    sink = JsonlSink(trace_path) if trace_path else None
    try:
        result = Simulation(
            workflow,
            exogeni_site(),
            policy_factory(),
            args.charging_unit,
            transfer_model=default_transfer_model(),
            seed=args.seed,
            tracer=Tracer(sink) if sink is not None else None,
            chaos=_chaos(getattr(args, "chaos", None)),
            validate=getattr(args, "validate", False),
        ).run()
    finally:
        if sink is not None:
            sink.close()
    if sink is not None:
        print(f"wrote {sink.emitted} trace records to {trace_path}")
    return result


def _summary_row(result: RunResult) -> list:
    return [
        result.autoscaler_name,
        format_duration(result.makespan),
        result.total_units,
        result.peak_instances,
        f"{result.utilization * 100:.0f}%",
        result.restarts,
    ]


_SUMMARY_HEADERS = ["policy", "makespan", "units", "peak", "utilization", "restarts"]


# ----------------------------------------------------------------------
# subcommand handlers
# ----------------------------------------------------------------------
def cmd_workloads(args: argparse.Namespace) -> int:
    rows = []
    for name, profile in sorted(PAPER_PROFILES.items()):
        rows.append(
            [
                name,
                profile.framework,
                profile.total_tasks,
                profile.n_stages,
                f"{profile.aggregate_exec_hours}h",
                profile.task_types,
            ]
        )
    print(
        render_table(
            ["workload", "framework", "tasks", "stages", "aggregate", "task types"],
            rows,
            title="Table I workloads",
        )
    )
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    site = exogeni_site()
    workflow = _workload(args.workload).generate(args.seed)
    controller = None
    if args.deadline is not None:
        from repro.autoscalers import DeadlineAutoscaler

        deadline = args.deadline
        factory = lambda: DeadlineAutoscaler(deadline)  # noqa: E731
    elif args.explain and args.policy == "wire":
        from repro.autoscalers import WireAutoscaler

        controller = WireAutoscaler()
        factory = lambda: controller  # noqa: E731
    else:
        factory = _policy(args.policy, site)
    result = _run(workflow, factory, args)
    print(
        render_table(
            _SUMMARY_HEADERS,
            [_summary_row(result)],
            title=f"{args.workload} (u = {args.charging_unit:.0f}s, seed {args.seed})",
        )
    )
    if result.cloud_faults:
        print(
            "\ncloud faults injected: "
            + ", ".join(
                f"{name}={count}"
                for name, count in sorted(result.cloud_faults.items())
            )
        )
    if args.pool_chart:
        from repro.reporting import pool_ascii

        print()
        print(pool_ascii(result))
    if args.explain:
        if controller is None:
            print("\n--explain requires --policy wire (without --deadline)")
        else:
            print("\nMAPE iterations (what the controller saw and decided):")
            rows = [
                [
                    f"{d.now:.0f}s",
                    d.upcoming_tasks,
                    d.pool_before,
                    d.target_pool,
                    d.launched,
                    d.terminated,
                    f"{d.transfer_estimate:.1f}s",
                    ", ".join(
                        f"{policy.name.lower()}:{count}"
                        for policy, count in sorted(d.policy_counts.items())
                        if policy.value > 0  # skip OBSERVED
                    ),
                ]
                for d in controller.diagnostics
            ]
            print(
                render_table(
                    ["tick", "Q", "pool", "target", "+", "-", "t~data",
                     "prediction policies"],
                    rows,
                )
            )
    if args.svg:
        from repro.reporting import gantt_svg, pool_svg, save_svg

        base = Path(args.svg)
        save_svg(pool_svg(result), base.with_suffix(".pool.svg"))
        save_svg(gantt_svg(result), base.with_suffix(".gantt.svg"))
        print(f"\nSVGs written to {base.with_suffix('.pool.svg')} and "
              f"{base.with_suffix('.gantt.svg')}")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    site = exogeni_site()
    spec = _workload(args.workload)
    rows = []
    for name, factory in policy_factories(site, include_oracle=args.oracle).items():
        result = _run(spec.generate(args.seed), factory, args)
        rows.append(_summary_row(result))
    print(
        render_table(
            _SUMMARY_HEADERS,
            rows,
            title=f"{args.workload} across policies "
            f"(u = {args.charging_unit:.0f}s)",
        )
    )
    return 0


def cmd_analyze(args: argparse.Namespace) -> int:
    from repro.dag import (
        critical_path_length,
        depth,
        ideal_parallelism_profile,
        level_widths,
    )
    from repro.workloads import summarize_workflow

    workflow = _workload(args.workload).generate(args.seed)
    summary = summarize_workflow(workflow)
    profile = ideal_parallelism_profile(workflow)
    print(
        render_table(
            ["metric", "value"],
            [
                ["tasks", summary.total_tasks],
                ["stages", summary.n_stages],
                ["DAG depth (levels)", depth(workflow)],
                ["tasks per stage", f"{summary.min_stage_tasks}-{summary.max_stage_tasks}"],
                ["stage mean exec (s)", f"{summary.min_stage_mean_exec:.2f}-"
                 f"{summary.max_stage_mean_exec:.2f}"],
                ["aggregate execution", f"{summary.aggregate_exec_hours:.3f}h"],
                ["critical path", format_duration(critical_path_length(workflow))],
                ["ideal peak parallelism", profile.peak],
                ["total input data", f"{summary.total_input_gb:.2f} GB"],
            ],
            title=f"{args.workload} (seed {args.seed})",
        )
    )
    # A compact width histogram over DAG levels.
    widths = level_widths(workflow)
    peak = max(widths)
    print("\nparallelism by DAG level (each # ~ tasks):")
    for index, width in enumerate(widths):
        bar = "#" * max(1, round(40 * width / peak))
        print(f"  level {index:2d} {width:5d} |{bar}")
    return 0


def cmd_table1(args: argparse.Namespace) -> int:
    print(render_table1(table1_experiment(seed=args.seed)))
    return 0


def cmd_fig2(args: argparse.Namespace) -> int:
    ratios = [1.5, 2, 5, 10, 40, 100, 400]
    for n in args.n_tasks:
        print(render_linear(sweep_r_over_u(n, ratios), title=f"Figure 2 — N = {n}"))
        print()
    return 0


def cmd_fig3(args: argparse.Namespace) -> int:
    ratios = [1, 2, 5, 10, 100, 1000]
    for n in args.n_tasks:
        print(render_linear(sweep_u_over_r(n, ratios), title=f"Figure 3 — N = {n}"))
        print()
    return 0


def cmd_fig4(args: argparse.Namespace) -> int:
    workflows = None
    if args.workloads:
        workflows = {
            name: _workload(name).generate(args.seed) for name in args.workloads
        }
    results = prediction_experiment(
        workflows, n_orders=args.orders, seed=args.seed
    )
    print(render_prediction(results))
    return 0


def cmd_fig5(args: argparse.Namespace) -> int:
    specs = None
    if args.workloads:
        specs = {name: _workload(name) for name in args.workloads}
    cells = cost_experiment(specs, repetitions=args.repetitions, seed=args.seed)
    print(render_cost(cells))
    print()
    print(render_relative_time(cells))
    return 0


def cmd_overhead(args: argparse.Namespace) -> int:
    print(render_overhead(overhead_experiment(seed=args.seed)))
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    from repro.experiments import CampaignStore, run_campaign_parallel

    site = exogeni_site()
    specs = table1_specs()
    if args.workloads:
        specs = {name: _workload(name) for name in args.workloads}
    policies = policy_factories(site, include_oracle=args.oracle)
    if args.policies:
        unknown = sorted(set(args.policies) - set(policies))
        if unknown:
            known = ", ".join(sorted(policies))
            raise SystemExit(
                f"unknown policies {unknown}; choose from: {known}"
            )
        policies = {name: policies[name] for name in args.policies}
    units = args.charging_units or list(CHARGING_UNITS)
    seeds = list(range(args.repetitions))
    store = CampaignStore(args.store)
    try:
        records, executed, failed = run_campaign_parallel(
            store,
            specs,
            policies,
            units,
            seeds,
            site=site,
            jobs=args.jobs,
            save_every=args.save_every,
            trace_dir=args.trace_dir,
            chaos=_chaos(args.chaos),
            validate=args.validate,
            backend=args.backend,
            workqueue_dir=args.workqueue_dir,
        )
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    shown_backend = args.backend or ("serial" if args.jobs == 1 else "process")
    print(
        f"{len(records)} cells in {args.store} "
        f"({executed} newly executed, backend={shown_backend}, jobs={args.jobs})"
    )
    for cell in failed:
        print(
            f"FAILED {cell.key.workflow}/{cell.key.policy}"
            f"/u{cell.key.charging_unit:.0f}/s{cell.key.seed}: {cell.error}",
            file=sys.stderr,
        )
    return 1 if failed else 0


def cmd_robustness(args: argparse.Namespace) -> int:
    from repro.cloud.faults import NO_CHAOS
    from repro.experiments.robustness import robustness_experiment

    specs = None
    if args.workloads:
        specs = {name: _workload(name) for name in args.workloads}
    chaos_levels = [NO_CHAOS]
    chaos_levels += [_chaos(text) for text in (args.chaos or [])]
    try:
        rows = robustness_experiment(
            specs,
            noise_levels=tuple(args.noise),
            fault_levels=tuple(args.faults),
            chaos_levels=tuple(chaos_levels),
            charging_unit=args.charging_unit,
            seed=args.seed,
            jobs=args.jobs,
            backend=args.backend,
            workqueue_dir=args.workqueue_dir,
        )
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    print(
        render_table(
            ["workload", "noise", "faults", "chaos", "wire u", "static u",
             "advantage", "slowdown", "restarts", "revoked", "blackouts"],
            [
                [
                    row.workflow,
                    f"{row.noise_cv:g}",
                    f"{row.fault_probability:g}",
                    row.chaos_label,
                    row.wire_units,
                    row.static_units,
                    f"{row.cost_advantage:.2f}x",
                    f"{row.slowdown:.2f}x",
                    row.wire_restarts,
                    row.wire_revocations,
                    row.wire_blackouts,
                ]
                for row in rows
            ],
            title="robustness under degradation (wire vs full-site)",
        )
    )
    if args.out:
        import json
        from dataclasses import asdict

        Path(args.out).write_text(
            json.dumps([asdict(row) for row in rows], indent=2, sort_keys=True),
            encoding="utf-8",
        )
        print(f"\nwrote {len(rows)} rows to {args.out}")
    return 0


def cmd_fleet(args: argparse.Namespace) -> int:
    from repro.fleet import make_arrivals, resume_fleet, run_fleet

    chaos = _chaos(args.chaos)
    if not args.resume:
        _check_workload_names(args.workloads)
    if args.checkpoint_every is not None and not args.checkpoint:
        raise SystemExit("--checkpoint-every requires --checkpoint FILE")
    if args.stop_after_checkpoint and args.checkpoint_every is None:
        raise SystemExit("--stop-after-checkpoint requires --checkpoint-every")
    if args.rates:
        # Sweep mode: one fleet run per (rate, seed) cell, optionally in
        # parallel; serial and parallel sweeps return identical rows.
        from repro.experiments import fleet_experiment, render_fleet_sweep

        try:
            rows = fleet_experiment(
                args.rates,
                n=args.n,
                workloads=args.workloads,
                policy=args.policy,
                autoscaler=args.autoscaler,
                charging_unit=args.charging_unit,
                seeds=tuple(range(args.seed, args.seed + args.repetitions)),
                jobs=args.jobs,
                chaos=chaos,
                backend=args.backend,
                workqueue_dir=args.workqueue_dir,
            )
        except ValueError as exc:
            raise SystemExit(str(exc)) from None
        print(render_fleet_sweep(rows))
        if args.out:
            import json
            from dataclasses import asdict

            Path(args.out).write_text(
                json.dumps([asdict(row) for row in rows], indent=2, sort_keys=True),
                encoding="utf-8",
            )
            print(f"\nwrote {len(rows)} sweep rows to {args.out}")
        return 0

    try:
        if args.resume:
            # The checkpoint carries the full engine configuration;
            # workload/arrival flags are ignored on resume.
            from repro.checkpoint import CheckpointError

            try:
                result = resume_fleet(
                    args.resume,
                    checkpoint_every=args.checkpoint_every,
                    checkpoint_path=args.checkpoint,
                    stop_after_checkpoint=args.stop_after_checkpoint,
                )
            except CheckpointError as exc:
                raise SystemExit(str(exc)) from None
        else:
            arrivals = make_arrivals(
                args.arrival,
                rate=args.rate,
                n=args.n,
                burst_size=args.burst_size,
                gap=args.gap,
                times=args.times,
                workloads=args.workloads,
            )
            result = run_fleet(
                arrivals=arrivals,
                policy=args.policy,
                autoscaler=args.autoscaler,
                charging_unit=args.charging_unit,
                seed=args.seed,
                max_active=args.max_active,
                trace_path=args.trace,
                chaos=chaos,
                validate=args.validate,
                shards=args.shards,
                checkpoint_every=args.checkpoint_every,
                checkpoint_path=args.checkpoint,
                stop_after_checkpoint=args.stop_after_checkpoint,
            )
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    if result is None:
        from repro.checkpoint import read_checkpoint_info

        info = read_checkpoint_info(args.checkpoint)
        print(
            f"checkpoint written to {args.checkpoint} at tick {info.ticks} "
            f"(t={info.now:.0f}s, {info.events_processed} events); "
            f"resume with: repro fleet --resume {args.checkpoint}"
        )
        return 0
    print(
        render_table(
            ["tenant", "workload", "prio", "makespan", "queue wait",
             "slowdown", "cost", "restarts", "done"],
            [
                [
                    t.tenant_id,
                    t.workload,
                    t.priority,
                    format_duration(t.makespan),
                    f"{t.queue_wait_mean:.1f}s",
                    f"{t.slowdown:.2f}x",
                    f"{t.attributed_cost:.2f}",
                    t.restarts,
                    "yes" if t.completed else "NO",
                ]
                for t in result.tenants
            ],
            title=(
                f"fleet of {result.n_tenants} ({args.arrival} arrivals, "
                f"{result.allocation_policy} / {result.autoscaler_name}, "
                f"u = {result.charging_unit:.0f}s, seed {result.seed})"
            ),
        )
    )
    print(
        render_table(
            ["makespan", "units", "cost", "peak", "utilization",
             "mean slowdown", "restarts", "done"],
            [[
                format_duration(result.makespan),
                result.total_units,
                f"{result.total_cost:.2f}",
                result.peak_instances,
                f"{result.utilization * 100:.0f}%",
                f"{result.mean_slowdown:.2f}x",
                result.restarts,
                "yes" if result.completed else "NO",
            ]],
            title="fleet totals",
        )
    )
    if result.cloud_faults:
        print(
            "\ncloud faults injected: "
            + ", ".join(
                f"{name}={count}"
                for name, count in sorted(result.cloud_faults.items())
            )
        )
    if args.trace:
        print(f"\nwrote trace to {args.trace}")
    if args.summary_json:
        Path(args.summary_json).write_text(
            result.to_summary_json() + "\n", encoding="utf-8"
        )
        print(f"wrote fleet summary to {args.summary_json}")
    return 0 if result.completed else 1


def cmd_validate(args: argparse.Namespace) -> int:
    from repro.validate.fuzz import main as fuzz_main

    argv = ["--seeds", str(args.seeds), "--kind", args.kind]
    if args.quick:
        argv.append("--quick")
    if args.shallow:
        argv.append("--shallow")
    if args.repro_dir:
        argv.extend(["--repro-dir", args.repro_dir])
    if args.out:
        argv.extend(["--out", args.out])
    return fuzz_main(argv)


def cmd_trace_summarize(args: argparse.Namespace) -> int:
    from repro.telemetry import (
        read_jsonl,
        read_jsonl_dir,
        render_trace_summary,
        summarize_trace,
    )

    try:
        if Path(args.file).is_dir():
            # A multi-shard or multi-run trace directory: merge every
            # per-shard JSONL in timestamp order before summarizing.
            records = read_jsonl_dir(args.file)
        else:
            records = read_jsonl(args.file)
    except FileNotFoundError as exc:
        detail = str(exc)
        if "no .jsonl" in detail:
            raise SystemExit(detail) from None
        raise SystemExit(f"trace file not found: {args.file}") from None
    except OSError as exc:
        raise SystemExit(f"cannot read trace {args.file}: {exc}") from None
    except ValueError as exc:
        # read_jsonl pinpoints the bad file and line; a trace cut off
        # mid-record (interrupted run, partial copy) lands here.
        raise SystemExit(f"truncated or corrupt trace: {exc}") from None
    if not records:
        raise SystemExit(
            f"trace {args.file} contains no records; "
            "was the run started with --trace?"
        )
    print(render_trace_summary(summarize_trace(records)))
    return 0


def _zoo_workflow(source: str):
    """Load a zoo source: a vendored instance name or a JSON file path."""
    from repro.zoo import load_instance, read_wfcommons_file

    path = Path(source)
    if path.suffix == ".json" or path.is_file():
        try:
            return read_wfcommons_file(path)
        except FileNotFoundError:
            raise SystemExit(f"no such WfCommons file: {source}") from None
        except ValueError as exc:
            raise SystemExit(f"cannot import {source}: {exc}") from None
    from repro.zoo.registry import UnknownWorkloadError

    try:
        return load_instance(source)
    except UnknownWorkloadError as exc:
        raise SystemExit(str(exc)) from None


def cmd_zoo_list(args: argparse.Namespace) -> int:
    from repro.workloads import summarize_workflow
    from repro.zoo import load_instance, zoo_instance_names
    from repro.zoo.registry import ZOO_PREFIX, available_workloads

    rows = []
    for name in zoo_instance_names():
        summary = summarize_workflow(load_instance(name))
        rows.append(
            [
                ZOO_PREFIX + name,
                summary.total_tasks,
                summary.n_stages,
                f"{summary.aggregate_exec_hours:.3f}h",
                f"{summary.total_input_gb:.2f} GB",
            ]
        )
    print(
        render_table(
            ["workload", "tasks", "stages", "aggregate", "input"],
            rows,
            title="zoo workloads (calibrated WfCommons instances)",
        )
    )
    builtin = [n for n in available_workloads() if not n.startswith(ZOO_PREFIX)]
    print("\nbuiltin workloads: " + ", ".join(builtin))
    return 0


def cmd_zoo_describe(args: argparse.Namespace) -> int:
    from repro.dag import critical_path_length, depth
    from repro.workloads import summarize_workflow
    from repro.zoo import calibrate

    workflow = _zoo_workflow(args.instance)
    summary = summarize_workflow(workflow)
    result = calibrate(workflow)
    print(
        render_table(
            ["metric", "value"],
            [
                ["tasks", summary.total_tasks],
                ["stages", summary.n_stages],
                ["DAG depth (levels)", depth(workflow)],
                ["aggregate execution", f"{summary.aggregate_exec_hours:.3f}h"],
                ["critical path", format_duration(critical_path_length(workflow))],
                ["total input data", f"{summary.total_input_gb:.2f} GB"],
            ],
            title=workflow.name,
        )
    )
    print()
    print(
        render_table(
            ["stage", "executable", "tasks", "linkage", "mean exec",
             "cv", "size dep"],
            [
                [
                    fit.stage_id,
                    fit.executable,
                    fit.count,
                    fit.linkage,
                    f"{fit.source_mean:.2f}s",
                    f"{fit.source_cv:.3f}",
                    f"{fit.size_dependence:.2f}",
                ]
                for fit in result.stages
            ],
            title="per-stage trace statistics",
        )
    )
    return 0


def cmd_zoo_import(args: argparse.Namespace) -> int:
    workflow = _zoo_workflow(args.file)
    print(
        f"imported {workflow.name!r}: {len(workflow)} tasks, "
        f"{len(workflow.stages)} stages, "
        f"{sum(len(workflow.parents(t)) for t in workflow.tasks)} edges"
    )
    if args.dax:
        from repro.dag.dax import write_dax_file

        write_dax_file(workflow, args.dax)
        print(f"wrote {len(workflow)} jobs to {args.dax}")
    return 0


def cmd_zoo_calibrate(args: argparse.Namespace) -> int:
    from repro.zoo import calibrate, render_calibration, scale_spec, spec_to_json

    workflow = _zoo_workflow(args.instance)
    result = calibrate(workflow)
    if args.report:
        print(render_calibration(result))
        print(
            f"\nmax relative error: mean {result.max_mean_rel_err * 100:.2f}%, "
            f"cv {result.max_cv_rel_err * 100:.2f}%"
        )
    else:
        print(
            f"calibrated {result.source_name!r}: {len(result.stages)} stages, "
            f"max mean err {result.max_mean_rel_err * 100:.2f}%, "
            f"max cv err {result.max_cv_rel_err * 100:.2f}%"
        )
    spec = result.spec
    if args.scale is not None:
        try:
            spec = scale_spec(spec, args.scale)
        except ValueError as exc:
            raise SystemExit(str(exc)) from None
        tasks = sum(t.count for t in spec.templates)
        print(f"scaled x{args.scale:g}: {tasks} tasks")
    if args.out:
        Path(args.out).write_text(spec_to_json(spec) + "\n", encoding="utf-8")
        print(f"wrote spec to {args.out}")
    return 0


def cmd_dax_export(args: argparse.Namespace) -> int:
    from repro.dag.dax import write_dax_file

    workflow = _workload(args.workload).generate(args.seed)
    write_dax_file(workflow, args.out)
    print(f"wrote {len(workflow)} jobs to {args.out}")
    return 0


def cmd_dax_run(args: argparse.Namespace) -> int:
    from repro.dag.dax import read_dax_file

    site = exogeni_site()
    workflow = read_dax_file(args.file)
    result = _run(workflow, _policy(args.policy, site), args)
    print(
        render_table(
            _SUMMARY_HEADERS,
            [_summary_row(result)],
            title=f"{args.file} (u = {args.charging_unit:.0f}s)",
        )
    )
    return 0


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------
def _add_common_run_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--charging-unit",
        type=float,
        default=60.0,
        help="billing unit in seconds (paper: 60/900/1800/3600)",
    )
    parser.add_argument(
        "--seed", type=_non_negative_int, default=0, help="run seed"
    )


def _add_backend_args(parser: argparse.ArgumentParser) -> None:
    """``--backend``/``--workqueue-dir`` for every fan-out subcommand."""
    from repro.experiments.executors import BACKEND_NAMES

    parser.add_argument(
        "--backend",
        choices=list(BACKEND_NAMES),
        default=None,
        help="executor backend (default: serial at --jobs 1, else a "
        "process pool with a pinned start method; workqueue fans out "
        "over every host draining --workqueue-dir)",
    )
    parser.add_argument(
        "--workqueue-dir",
        metavar="DIR",
        help="shared directory for --backend workqueue; other hosts join "
        "with: python -m repro.experiments.executors.workqueue DIR",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="WIRE (CLUSTER 2021) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="list Table I workloads").set_defaults(
        handler=cmd_workloads
    )

    run = sub.add_parser("run", help="run one workload under one policy")
    run.add_argument("workload")
    run.add_argument("--policy", default="wire")
    run.add_argument(
        "--deadline",
        type=float,
        help="use the deadline extension policy targeting this many seconds",
    )
    run.add_argument(
        "--pool-chart", action="store_true", help="print an ASCII pool chart"
    )
    run.add_argument(
        "--explain",
        action="store_true",
        help="print per-tick MAPE diagnostics (wire policy only)",
    )
    run.add_argument("--svg", help="basename for SVG pool/Gantt exports")
    run.add_argument(
        "--trace",
        metavar="FILE",
        help="write the run's structured telemetry to this JSONL file",
    )
    run.add_argument(
        "--chaos",
        metavar="SPEC",
        help=(
            "inject cloud faults, e.g. "
            "'revocations=2,stragglers=0.2,blackouts=0.1'"
        ),
    )
    run.add_argument(
        "--validate",
        action="store_true",
        help="run with the runtime invariant checker attached (aborts "
        "on the first violated engine invariant)",
    )
    _add_common_run_args(run)
    run.set_defaults(handler=cmd_run)

    compare = sub.add_parser("compare", help="run all policies on one workload")
    compare.add_argument("workload")
    compare.add_argument(
        "--oracle", action="store_true", help="include the clairvoyant oracle"
    )
    _add_common_run_args(compare)
    compare.set_defaults(handler=cmd_compare)

    analyze = sub.add_parser("analyze", help="structural analysis of a workload")
    analyze.add_argument("workload")
    analyze.add_argument("--seed", type=_non_negative_int, default=0)
    analyze.set_defaults(handler=cmd_analyze)

    table1 = sub.add_parser("table1", help="regenerate Table I")
    table1.add_argument("--seed", type=_non_negative_int, default=0)
    table1.set_defaults(handler=cmd_table1)

    for name, handler in (("fig2", cmd_fig2), ("fig3", cmd_fig3)):
        fig = sub.add_parser(name, help=f"regenerate Figure {name[-1]}")
        fig.add_argument(
            "--n-tasks", type=_positive_int, nargs="+", default=[10, 100],
            help="stage sizes to sweep",
        )
        fig.set_defaults(handler=handler)

    fig4 = sub.add_parser("fig4", help="regenerate Figure 4")
    fig4.add_argument("--orders", type=_positive_int, default=5)
    fig4.add_argument("--seed", type=_non_negative_int, default=0)
    fig4.add_argument(
        "--workloads", nargs="+", help="subset of workloads (default: all)"
    )
    fig4.set_defaults(handler=cmd_fig4)

    fig5 = sub.add_parser("fig5", help="regenerate Figures 5 and 6")
    fig5.add_argument("--repetitions", type=_positive_int, default=1)
    fig5.add_argument("--seed", type=_non_negative_int, default=0)
    fig5.add_argument(
        "--workloads", nargs="+", help="subset of workloads (default: all)"
    )
    fig5.set_defaults(handler=cmd_fig5)

    overhead = sub.add_parser("overhead", help="regenerate the §IV-F report")
    overhead.add_argument("--seed", type=_non_negative_int, default=0)
    overhead.set_defaults(handler=cmd_overhead)

    campaign = sub.add_parser(
        "campaign",
        help="fill a persistent run matrix, optionally across processes",
    )
    campaign.add_argument(
        "--store", default="campaign.json", help="campaign store JSON path"
    )
    campaign.add_argument(
        "--jobs", type=_positive_int, default=1, help="worker processes (1 = inline)"
    )
    campaign.add_argument(
        "--save-every",
        type=_positive_int,
        default=8,
        help="persist the store after this many completed cells",
    )
    campaign.add_argument("--repetitions", type=_positive_int, default=1)
    campaign.add_argument(
        "--workloads", nargs="+", help="subset of workloads (default: all)"
    )
    campaign.add_argument(
        "--policies", nargs="+", help="subset of policies (default: the four §IV-C)"
    )
    campaign.add_argument(
        "--charging-units",
        type=float,
        nargs="+",
        help="subset of charging units (default: 60/900/1800/3600)",
    )
    campaign.add_argument(
        "--oracle", action="store_true", help="include the clairvoyant oracle"
    )
    campaign.add_argument(
        "--trace-dir",
        metavar="DIR",
        help="write one JSONL telemetry trace per executed cell here",
    )
    campaign.add_argument(
        "--chaos",
        metavar="SPEC",
        help="apply one cloud-fault spec to every cell in the matrix",
    )
    campaign.add_argument(
        "--validate",
        action="store_true",
        help="run every cell with the runtime invariant checker attached",
    )
    _add_backend_args(campaign)
    campaign.set_defaults(handler=cmd_campaign)

    robustness = sub.add_parser(
        "robustness",
        help="wire vs full-site across noise/fault/chaos degradation levels",
    )
    robustness.add_argument(
        "--workloads", nargs="+", help="subset of workloads (default: 2 picks)"
    )
    robustness.add_argument(
        "--noise",
        type=float,
        nargs="+",
        default=[0.0, 0.2, 0.5],
        help="runtime noise CVs to sweep",
    )
    robustness.add_argument(
        "--faults",
        type=float,
        nargs="+",
        default=[0.0, 0.1],
        help="task-fault probabilities to sweep",
    )
    robustness.add_argument(
        "--chaos",
        metavar="SPEC",
        action="append",
        help=(
            "a cloud-fault level to sweep (repeatable); the fault-free "
            "baseline is always included"
        ),
    )
    robustness.add_argument(
        "--out", metavar="FILE", help="also write the rows as JSON here"
    )
    robustness.add_argument(
        "--jobs", type=_positive_int, default=1,
        help="worker processes for the grid (1 = inline)",
    )
    _add_backend_args(robustness)
    _add_common_run_args(robustness)
    robustness.set_defaults(handler=cmd_robustness)

    fleet = sub.add_parser(
        "fleet",
        help="multi-tenant shared-site simulation with global steering",
    )
    fleet.add_argument(
        "--arrival",
        choices=["poisson", "bursty", "trace"],
        default="poisson",
        help="arrival process for workflow submissions",
    )
    fleet.add_argument(
        "--rate",
        type=float,
        default=4.0,
        help="poisson arrival rate in workflows per hour",
    )
    fleet.add_argument(
        "--n", type=_positive_int, default=4, help="number of submissions"
    )
    fleet.add_argument(
        "--workloads",
        nargs="+",
        default=list(DEFAULT_FLEET_WORKLOADS),
        help="workload names cycled round-robin over submissions",
    )
    fleet.add_argument(
        "--policy",
        choices=["fifo", "fair-share", "priority"],
        default="fair-share",
        help="allocation policy for free slots",
    )
    fleet.add_argument(
        "--autoscaler",
        choices=["global-wire", "global-static", "global-reactive"],
        default="global-wire",
        help="global pool-sizing policy",
    )
    fleet.add_argument(
        "--burst-size", type=_positive_int, default=2,
        help="submissions per burst (bursty arrivals)",
    )
    fleet.add_argument(
        "--gap", type=float, default=1800.0,
        help="seconds between bursts (bursty arrivals)",
    )
    fleet.add_argument(
        "--times", type=float, nargs="+",
        help="explicit submission times in seconds (trace arrivals)",
    )
    fleet.add_argument(
        "--max-active", type=_positive_int,
        help="admission cap: tenants running concurrently (default: unbounded)",
    )
    fleet.add_argument(
        "--trace",
        metavar="FILE",
        help="write the fleet's structured telemetry to this JSONL file",
    )
    fleet.add_argument(
        "--summary-json",
        metavar="FILE",
        help="write the deterministic fleet summary as JSON here",
    )
    fleet.add_argument(
        "--chaos",
        metavar="SPEC",
        help="inject cloud faults, e.g. 'revocations=2,stragglers=0.2'",
    )
    fleet.add_argument(
        "--validate",
        action="store_true",
        help="run with the runtime invariant checker attached (aborts "
        "on the first violated engine invariant)",
    )
    fleet.add_argument(
        "--shards",
        type=_positive_int,
        default=1,
        help="partition the event queue across this many per-site shards "
        "(bit-identical to 1; see docs/fleet.md)",
    )
    fleet.add_argument(
        "--checkpoint-every",
        type=_positive_int,
        metavar="N",
        help="serialize the engine to --checkpoint every N controller ticks",
    )
    fleet.add_argument(
        "--checkpoint",
        metavar="FILE",
        help="checkpoint file written by --checkpoint-every",
    )
    fleet.add_argument(
        "--stop-after-checkpoint",
        action="store_true",
        help="exit right after the first checkpoint is written (simulates "
        "an interrupted run; finish it later with --resume)",
    )
    fleet.add_argument(
        "--resume",
        metavar="FILE",
        help="restore a checkpointed fleet run and drive it to completion "
        "(workload/arrival flags are ignored; results are byte-identical "
        "to an uninterrupted run)",
    )
    fleet.add_argument(
        "--rates",
        type=float,
        nargs="+",
        help="sweep mode: run one cell per arrival rate instead of one fleet",
    )
    fleet.add_argument(
        "--repetitions", type=_positive_int, default=1,
        help="sweep mode: seeds per rate (seed, seed+1, ...)",
    )
    fleet.add_argument(
        "--jobs", type=_positive_int, default=1,
        help="sweep mode: worker processes (1 = inline)",
    )
    fleet.add_argument(
        "--out", metavar="FILE", help="sweep mode: also write rows as JSON here"
    )
    _add_backend_args(fleet)
    _add_common_run_args(fleet)
    fleet.set_defaults(handler=cmd_fleet)

    validate = sub.add_parser(
        "validate",
        help="differential-replay invariant fuzzing over scenario grids",
    )
    validate.add_argument(
        "--seeds",
        type=_positive_int,
        default=2,
        metavar="N",
        help="number of seeds per grid cell (default 2)",
    )
    validate.add_argument(
        "--kind",
        choices=["single", "fleet", "all"],
        default="all",
        help="which scenario grid to sweep (default all)",
    )
    validate.add_argument(
        "--quick",
        action="store_true",
        help="trim the grid (fewer workloads/arrivals/chaos specs) for "
        "fast CI gating",
    )
    validate.add_argument(
        "--shallow",
        action="store_true",
        help="check pool indexes only at controller ticks instead of "
        "after every event (faster, coarser localization)",
    )
    validate.add_argument(
        "--repro-dir",
        metavar="DIR",
        help="write a minimal JSON repro per failing scenario here",
    )
    validate.add_argument(
        "--out",
        metavar="FILE",
        help="write a JSON summary of every scenario outcome here",
    )
    validate.set_defaults(handler=cmd_validate)

    trace = sub.add_parser("trace", help="inspect JSONL telemetry traces")
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    summarize = trace_sub.add_parser(
        "summarize",
        help="per-stage prediction error and cost/waste report from a trace",
    )
    summarize.add_argument(
        "file",
        help="JSONL trace written by run --trace, or a directory of "
        "per-shard *.jsonl traces (merged in timestamp order)",
    )
    summarize.set_defaults(handler=cmd_trace_summarize)

    zoo = sub.add_parser(
        "zoo",
        help="real-workflow zoo: WfCommons import, calibration, registry",
    )
    zoo_sub = zoo.add_subparsers(dest="zoo_command", required=True)
    zoo_list = zoo_sub.add_parser(
        "list", help="list the zoo instances and every registry workload"
    )
    zoo_list.set_defaults(handler=cmd_zoo_list)
    zoo_describe = zoo_sub.add_parser(
        "describe", help="structural + per-stage statistics of an instance"
    )
    zoo_describe.add_argument(
        "instance", help="vendored instance name or WfCommons JSON path"
    )
    zoo_describe.set_defaults(handler=cmd_zoo_describe)
    zoo_import = zoo_sub.add_parser(
        "import", help="import a WfCommons JSON file (validates the DAG)"
    )
    zoo_import.add_argument("file", help="WfCommons JSON path")
    zoo_import.add_argument(
        "--dax", metavar="FILE", help="also export the workflow as Pegasus DAX"
    )
    zoo_import.set_defaults(handler=cmd_zoo_import)
    zoo_calibrate = zoo_sub.add_parser(
        "calibrate", help="fit a generative spec to an instance's trace"
    )
    zoo_calibrate.add_argument(
        "instance", help="vendored instance name or WfCommons JSON path"
    )
    zoo_calibrate.add_argument(
        "--report",
        action="store_true",
        help="print the fitted-vs-source per-stage table",
    )
    zoo_calibrate.add_argument(
        "--scale",
        type=float,
        metavar="F",
        help="scale per-stage task counts by this factor before writing",
    )
    zoo_calibrate.add_argument(
        "--out", metavar="FILE", help="write the fitted spec as JSON here"
    )
    zoo_calibrate.set_defaults(handler=cmd_zoo_calibrate)

    dax = sub.add_parser("dax", help="Pegasus DAX import/export")
    dax_sub = dax.add_subparsers(dest="dax_command", required=True)
    export = dax_sub.add_parser("export", help="write a workload as DAX")
    export.add_argument("workload")
    export.add_argument("--out", required=True)
    export.add_argument("--seed", type=_non_negative_int, default=0)
    export.set_defaults(handler=cmd_dax_export)
    dax_run = dax_sub.add_parser("run", help="autoscale a DAX file")
    dax_run.add_argument("file")
    dax_run.add_argument("--policy", default="wire")
    _add_common_run_args(dax_run)
    dax_run.set_defaults(handler=cmd_dax_run)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
