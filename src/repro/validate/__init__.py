"""Runtime invariant checking and differential replay.

``repro.validate`` is the engine's self-audit layer: an
:class:`InvariantChecker` can ride along inside a
:class:`~repro.engine.simulator.Simulation` or
:class:`~repro.fleet.engine.FleetSimulation` (the ``validate=``
constructor argument) and recompute, at event and tick boundaries, every
piece of incremental bookkeeping the hot path relies on — slot indexes,
billing, monitor aggregates, task conservation, fleet cost attribution.
A run without a checker is bit-identical to one built before this module
existed.

The differential-replay fuzz harness lives in :mod:`repro.validate.fuzz`
(imported on demand only — it pulls in the experiment harnesses, which
this package must not do at import time lest it cycle back into the
engines that lazily import us).
"""

from repro.validate.checker import InvariantChecker
from repro.validate.invariants import (
    InvariantError,
    Violation,
    check_billing_instance,
    check_fleet_attribution,
    check_monitor_aggregates,
    check_pool_slots,
    check_task_conservation,
    committed_units,
    occupancy_integral,
)

__all__ = [
    "InvariantChecker",
    "InvariantError",
    "Violation",
    "check_billing_instance",
    "check_fleet_attribution",
    "check_monitor_aggregates",
    "check_pool_slots",
    "check_task_conservation",
    "committed_units",
    "occupancy_integral",
]
