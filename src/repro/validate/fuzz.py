"""Differential-replay fuzz harness.

Sweeps a seeded grid of scenarios — all five single-workflow prediction
policies x chaos specs, and fleet runs across arrival processes x global
autoscalers x chaos — running each scenario twice: once bare and once
with a collect-mode :class:`~repro.validate.checker.InvariantChecker`
attached. Every pair must satisfy two properties:

1. **differential**: the validated run's result fingerprint is
   byte-identical to the unvalidated run's (validation is pure
   observation, like telemetry and disabled chaos);
2. **invariants**: the validated run reports zero violations.

A failing scenario dumps a minimal JSON repro — the scenario parameters
(enough to reconstruct the run from a fresh checkout), every violation,
and the two fingerprints — so a bug report is one file.

Entry points: ``python tools/invariant_fuzz.py`` and ``repro validate``
(both call :func:`main`). This module imports the experiment harnesses,
so it must never be imported from ``repro.validate.__init__`` — the
engines lazily import the checker, and pulling the harnesses in from
there would cycle.
"""

from __future__ import annotations

import argparse
import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.cloud.faults import parse_chaos_spec
from repro.experiments.harness import policy_factories, run_setting
from repro.fleet.harness import make_arrivals, run_fleet
from repro.validate.checker import InvariantChecker
from repro.workloads import table1_specs

__all__ = ["Scenario", "fleet_grid", "main", "run_differential", "single_grid"]

#: chaos specs the grids cross with every policy/autoscaler: none, the
#: revocation/straggler mix, and the provisioning-fault mix (the same
#: profiles the chaos CI tier exercises)
CHAOS_SPECS: tuple[str | None, ...] = (
    None,
    "revocations=2,stragglers=0.2",
    "pfail=0.3,ptimeout=0.2,blackouts=0.1",
)

#: fixed submit times for the deterministic trace arrival process
_TRACE_TIMES: tuple[float, ...] = (0.0, 600.0, 1800.0)


@dataclass(frozen=True)
class Scenario:
    """One fuzz cell: everything needed to reconstruct the run."""

    kind: str  # "single" | "fleet"
    label: str
    seed: int = 0
    charging_unit: float = 60.0
    chaos: str | None = None
    # single-workflow parameters
    workload: str = "tpch6-S"
    policy: str = "wire"
    # fleet parameters
    arrival: str = "poisson"
    n_tenants: int = 3
    fleet_policy: str = "fair-share"
    fleet_autoscaler: str = "global-wire"

    def to_json(self) -> dict:
        return asdict(self)


@dataclass
class Outcome:
    """Result of one differential scenario run."""

    scenario: Scenario
    identical: bool
    violations: list = field(default_factory=list)
    expected: object = None
    actual: object = None

    @property
    def ok(self) -> bool:
        return self.identical and not self.violations


# ----------------------------------------------------------------------
# grids
# ----------------------------------------------------------------------
def single_grid(
    seeds: Sequence[int], *, quick: bool = False
) -> Iterable[Scenario]:
    """All five prediction policies x chaos specs x seeds."""
    policies = list(policy_factories(include_oracle=True))
    chaos_specs = CHAOS_SPECS[:2] if quick else CHAOS_SPECS
    workloads = ("tpch6-S",) if quick else ("tpch6-S", "genome-S")
    for workload in workloads:
        for policy in policies:
            for chaos in chaos_specs:
                for seed in seeds:
                    yield Scenario(
                        kind="single",
                        label=(
                            f"single/{workload}/{policy}/"
                            f"{chaos or 'clean'}/s{seed}"
                        ),
                        workload=workload,
                        policy=policy,
                        chaos=chaos,
                        seed=seed,
                    )


def fleet_grid(
    seeds: Sequence[int], *, quick: bool = False
) -> Iterable[Scenario]:
    """Arrival processes x global autoscalers x chaos specs x seeds."""
    arrivals = ("poisson",) if quick else ("poisson", "bursty", "trace")
    autoscalers = (
        ("global-wire",)
        if quick
        else ("global-wire", "global-static", "global-reactive")
    )
    chaos_specs = CHAOS_SPECS[:2] if quick else CHAOS_SPECS
    for arrival in arrivals:
        for autoscaler in autoscalers:
            for chaos in chaos_specs:
                for seed in seeds:
                    yield Scenario(
                        kind="fleet",
                        label=(
                            f"fleet/{arrival}/{autoscaler}/"
                            f"{chaos or 'clean'}/s{seed}"
                        ),
                        arrival=arrival,
                        fleet_autoscaler=autoscaler,
                        chaos=chaos,
                        seed=seed,
                        charging_unit=900.0,
                    )


# ----------------------------------------------------------------------
# execution
# ----------------------------------------------------------------------
def _fingerprint_run(result) -> dict:
    """Exact (repr-level) single-run measurements, matching the golden
    engine suite's fingerprint fields."""
    return {
        "makespan": result.makespan.hex(),
        "completed": result.completed,
        "total_units": result.total_units,
        "total_cost": result.total_cost.hex(),
        "wasted_seconds": result.wasted_seconds.hex(),
        "utilization": result.utilization.hex(),
        "peak_instances": result.peak_instances,
        "instances_launched": result.instances_launched,
        "restarts": result.restarts,
        "ticks": result.ticks,
        "pool_timeline_len": len(result.pool_timeline),
        "attempts": sum(1 for _ in result.monitor.all_attempts()),
    }


def run_scenario(scenario: Scenario, validate: object = None):
    """Execute one scenario; returns its byte-exact fingerprint."""
    chaos = (
        parse_chaos_spec(scenario.chaos)
        if scenario.chaos is not None
        else None
    )
    if scenario.kind == "single":
        specs = table1_specs()
        factory = policy_factories(include_oracle=True)[scenario.policy]
        result = run_setting(
            specs[scenario.workload],
            factory,
            scenario.charging_unit,
            seed=scenario.seed,
            chaos=chaos,
            validate=validate,
        )
        return _fingerprint_run(result)
    if scenario.kind == "fleet":
        arrivals = make_arrivals(
            scenario.arrival,
            n=scenario.n_tenants,
            times=_TRACE_TIMES if scenario.arrival == "trace" else None,
        )
        result = run_fleet(
            arrivals=arrivals,
            policy=scenario.fleet_policy,
            autoscaler=scenario.fleet_autoscaler,
            charging_unit=scenario.charging_unit,
            seed=scenario.seed,
            chaos=chaos,
            validate=validate,
        )
        # the canonical byte-deterministic rendering of a fleet run
        return result.to_summary_json()
    raise ValueError(f"unknown scenario kind {scenario.kind!r}")


def run_differential(
    scenario: Scenario, *, deep: bool = True
) -> Outcome:
    """Run one scenario bare and validated; compare byte-for-byte."""
    expected = run_scenario(scenario)
    checker = InvariantChecker(mode="collect", deep=deep)
    actual = run_scenario(scenario, validate=checker)
    return Outcome(
        scenario=scenario,
        identical=expected == actual,
        violations=list(checker.violations),
        expected=expected,
        actual=actual,
    )


def dump_repro(outcome: Outcome, repro_dir: Path) -> Path:
    """Write a minimal JSON repro for one failing scenario."""
    repro_dir.mkdir(parents=True, exist_ok=True)
    safe = outcome.scenario.label.replace("/", "_").replace("=", "-")
    path = repro_dir / f"repro_{safe}.json"
    payload = {
        "scenario": outcome.scenario.to_json(),
        "identical": outcome.identical,
        "violations": [v.to_json() for v in outcome.violations],
        "expected": outcome.expected,
        "actual": outcome.actual,
    }
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", "utf-8"
    )
    return path


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="invariant-fuzz",
        description=(
            "Differential-replay fuzzing: run seeded scenario grids "
            "validated and unvalidated, asserting byte-identical results "
            "and zero invariant violations."
        ),
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=2,
        metavar="N",
        help="number of seeds per grid cell (default 2)",
    )
    parser.add_argument(
        "--kind",
        choices=("single", "fleet", "all"),
        default="all",
        help="which grid to sweep (default all)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="trim the grid (fewer workloads/arrivals/chaos specs) for "
        "fast CI gating",
    )
    parser.add_argument(
        "--shallow",
        action="store_true",
        help="check pool indexes only at controller ticks instead of "
        "after every event (faster, coarser localization)",
    )
    parser.add_argument(
        "--repro-dir",
        metavar="DIR",
        help="write a minimal JSON repro per failing scenario here",
    )
    parser.add_argument(
        "--out",
        metavar="FILE",
        help="write a JSON summary of every scenario outcome here",
    )
    args = parser.parse_args(argv)

    seeds = list(range(args.seeds))
    grid: list[Scenario] = []
    if args.kind in ("single", "all"):
        grid += list(single_grid(seeds, quick=args.quick))
    if args.kind in ("fleet", "all"):
        grid += list(fleet_grid(seeds, quick=args.quick))

    failures = 0
    summary = []
    for scenario in grid:
        outcome = run_differential(scenario, deep=not args.shallow)
        status = "ok"
        if not outcome.ok:
            failures += 1
            status = "FAIL"
            detail = []
            if not outcome.identical:
                detail.append("fingerprint drift")
            if outcome.violations:
                detail.append(f"{len(outcome.violations)} violation(s)")
            print(f"FAIL {scenario.label}: {', '.join(detail)}")
            for v in outcome.violations[:5]:
                print(f"     [{v.invariant}] t={v.time:.3f} {v.message}")
            if args.repro_dir:
                path = dump_repro(outcome, Path(args.repro_dir))
                print(f"     repro: {path}")
        summary.append(
            {
                "scenario": scenario.to_json(),
                "status": status,
                "identical": outcome.identical,
                "violations": [v.to_json() for v in outcome.violations],
            }
        )
    if args.out:
        Path(args.out).write_text(
            json.dumps(
                {
                    "scenarios": len(grid),
                    "failures": failures,
                    "results": summary,
                },
                indent=2,
                sort_keys=True,
            )
            + "\n",
            "utf-8",
        )
    if failures:
        print(f"FAIL: {failures}/{len(grid)} scenario(s) failed")
        return 1
    print(
        f"ok: {len(grid)} scenarios bit-identical under validation, "
        "zero violations"
    )
    return 0
