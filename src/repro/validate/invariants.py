"""Pure invariant checks over engine state.

Each function inspects one subsystem — the instance pool's incremental
indexes, the billing model, the monitor's incremental aggregates, task
conservation, fleet cost attribution — and returns a list of
:class:`Violation` records (empty when the invariant holds). The
functions are deliberately *recomputations*: they rebuild the quantity
under test from first principles (the instances' ``occupants`` sets, the
full attempt history) and compare it against the hand-maintained index
the hot path actually serves, so a drifted index is caught even when
both "look plausible" in isolation.

:class:`~repro.validate.checker.InvariantChecker` orchestrates these at
event/tick boundaries; they are also usable directly in tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

from repro.cloud.billing import _BOUNDARY_EPS, BillingModel
from repro.cloud.instance import Instance, InstanceState
from repro.cloud.pool import InstancePool
from repro.engine.monitor import Monitor, TaskAttempt

__all__ = [
    "InvariantError",
    "Violation",
    "check_billing_instance",
    "committed_units",
    "check_fleet_attribution",
    "check_monitor_aggregates",
    "check_pool_slots",
    "check_task_conservation",
    "occupancy_integral",
]

#: absolute slack for float comparisons on simulation-time quantities
#: (times are sums of many float additions; 1e-6 s is far below any
#: charging unit yet far above accumulated ulp noise)
_TIME_TOL = 1e-6


@dataclass(frozen=True)
class Violation:
    """One detected invariant breach.

    ``invariant`` is a stable dotted name (``"pool.free_slot_index"``,
    ``"billing.units_monotone"``, ...) that tests and the fuzz harness
    key on; ``context`` is JSON-serializable detail for the repro dump.
    """

    invariant: str
    time: float
    message: str
    context: dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> dict[str, Any]:
        return {
            "invariant": self.invariant,
            "time": self.time,
            "message": self.message,
            "context": self.context,
        }


class InvariantError(AssertionError):
    """Raised by a raise-mode checker on the first violation."""

    def __init__(self, violation: Violation) -> None:
        super().__init__(
            f"[{violation.invariant}] at t={violation.time}: "
            f"{violation.message}"
        )
        self.violation = violation


# ----------------------------------------------------------------------
# pool / slot accounting
# ----------------------------------------------------------------------
def check_pool_slots(pool: InstancePool, now: float) -> list[Violation]:
    """Slot accounting: the pool's incremental indexes == recomputation.

    Rebuilds the free-slot buckets, the task-placement map, and the
    RUNNING/PENDING id sets from each instance's authoritative
    ``state``/``occupants`` and compares them against the indexes the
    dispatch hot path serves (PR 1's optimization), plus per-instance
    capacity and busy-accounting preconditions.
    """
    violations: list[Violation] = []
    expected_running: set[str] = set()
    expected_pending: set[str] = set()
    expected_buckets: dict[int, set[str]] = {}
    expected_placement: dict[str, str] = {}
    for instance in pool:
        iid = instance.instance_id
        slots = instance.itype.slots
        if len(instance.occupants) > slots:
            violations.append(
                Violation(
                    "slots.capacity",
                    now,
                    f"instance {iid} holds {len(instance.occupants)} "
                    f"occupants on {slots} slots",
                    {"instance": iid, "occupants": sorted(instance.occupants)},
                )
            )
        if instance.state is not InstanceState.RUNNING and instance.occupants:
            violations.append(
                Violation(
                    "slots.occupied_not_running",
                    now,
                    f"{instance.state.value} instance {iid} still holds "
                    f"occupants {sorted(instance.occupants)}",
                    {"instance": iid, "state": instance.state.value},
                )
            )
        if set(instance.occupants) != set(instance._assign_times):
            violations.append(
                Violation(
                    "slots.assign_times",
                    now,
                    f"instance {iid} occupants and busy-accounting assign "
                    "times disagree (a slot was assigned or vacated "
                    "without a timestamp, undercounting busy_slot_seconds)",
                    {
                        "instance": iid,
                        "occupants": sorted(instance.occupants),
                        "assign_times": sorted(instance._assign_times),
                    },
                )
            )
        if instance.busy_slot_seconds < -_TIME_TOL:
            violations.append(
                Violation(
                    "slots.busy_non_negative",
                    now,
                    f"instance {iid} busy_slot_seconds "
                    f"{instance.busy_slot_seconds} < 0",
                    {"instance": iid, "busy": instance.busy_slot_seconds},
                )
            )
        if instance.state is InstanceState.RUNNING:
            expected_running.add(iid)
            free = slots - len(instance.occupants)
            if free > 0:
                expected_buckets.setdefault(free, set()).add(iid)
        elif instance.state is InstanceState.PENDING:
            expected_pending.add(iid)
        for task_id in instance.occupants:
            expected_placement[task_id] = iid

    if expected_running != pool._running_ids:
        violations.append(
            Violation(
                "pool.state_index",
                now,
                "RUNNING id set drifted from instance states",
                {
                    "missing": sorted(expected_running - pool._running_ids),
                    "stale": sorted(pool._running_ids - expected_running),
                },
            )
        )
    if expected_pending != pool._pending_ids:
        violations.append(
            Violation(
                "pool.state_index",
                now,
                "PENDING id set drifted from instance states",
                {
                    "missing": sorted(expected_pending - pool._pending_ids),
                    "stale": sorted(pool._pending_ids - expected_pending),
                },
            )
        )
    actual_buckets = {
        free: set(bucket) for free, bucket in pool._buckets.items() if bucket
    }
    if actual_buckets != expected_buckets:
        violations.append(
            Violation(
                "pool.free_slot_index",
                now,
                "free-slot buckets drifted from occupants recomputation",
                {
                    "expected": {
                        str(k): sorted(v) for k, v in expected_buckets.items()
                    },
                    "actual": {
                        str(k): sorted(v) for k, v in actual_buckets.items()
                    },
                },
            )
        )
    if pool._task_instance != expected_placement:
        extra = set(pool._task_instance) - set(expected_placement)
        missing = set(expected_placement) - set(pool._task_instance)
        moved = {
            t
            for t in set(pool._task_instance) & set(expected_placement)
            if pool._task_instance[t] != expected_placement[t]
        }
        violations.append(
            Violation(
                "pool.placement_index",
                now,
                "task-placement map drifted from occupants recomputation",
                {
                    "stale": sorted(extra),
                    "missing": sorted(missing),
                    "moved": sorted(moved),
                },
            )
        )
    expected_free = sum(
        free * len(bucket) for free, bucket in expected_buckets.items()
    )
    if pool.free_slots() != expected_free:
        violations.append(
            Violation(
                "pool.free_slot_total",
                now,
                f"pool.free_slots() == {pool.free_slots()} but occupants "
                f"recomputation gives {expected_free}",
                {"actual": pool.free_slots(), "expected": expected_free},
            )
        )
    return violations


# ----------------------------------------------------------------------
# billing
# ----------------------------------------------------------------------
def committed_units(
    billing: BillingModel, instance: Instance, now: float
) -> int:
    """Units the instance owes *no matter what happens next*.

    A running instance's ``units_charged`` includes a provisional unit
    the moment a boundary passes — provisional because a release at
    exactly that boundary (Algorithm 2's whole point) rescinds it. The
    committed count is what terminating right now would owe: this is the
    quantity that is monotone non-decreasing over an instance's life,
    while the provisional count may legitimately drop by one at a
    boundary-exact release.
    """
    if instance.started_at is None:
        return 0
    uptime = instance.uptime(now)
    return max(
        1, math.ceil((uptime - _BOUNDARY_EPS) / billing.charging_unit)
    )


def check_billing_instance(
    billing: BillingModel,
    instance: Instance,
    now: float,
    *,
    last_units: int | None = None,
    units_at_termination: int | None = None,
) -> list[Violation]:
    """Billing consistency for one instance as of ``now``.

    - :func:`committed_units` is monotone non-decreasing (vs
      ``last_units``, the committed count recorded at the previous
      check), and ``units_charged`` never undercuts it;
    - a terminated instance is never charged past the termination
      boundary (vs ``units_at_termination``);
    - a never-started instance is charged nothing and is "paid" only
      through its request time;
    - a running instance is always paid through ``now``, its next charge
      lies in ``(0, u]``, and ``next_charge_time == paid_until`` — the
      reconciled charge-boundary convention;
    - ``wasted_time`` is non-negative.
    """
    violations: list[Violation] = []
    iid = instance.instance_id
    u = billing.charging_unit
    units = billing.units_charged(instance, now)
    committed = committed_units(billing, instance, now)
    if last_units is not None and committed < last_units:
        violations.append(
            Violation(
                "billing.units_monotone",
                now,
                f"instance {iid} committed units fell from {last_units} "
                f"to {committed}; billing went backwards",
                {"instance": iid, "before": last_units, "after": committed},
            )
        )
    if units < committed:
        violations.append(
            Violation(
                "billing.undercharged",
                now,
                f"instance {iid} units_charged {units} is below its "
                f"committed count {committed}",
                {"instance": iid, "units": units, "committed": committed},
            )
        )
    if units_at_termination is not None and units != units_at_termination:
        violations.append(
            Violation(
                "billing.charged_after_termination",
                now,
                f"terminated instance {iid} units moved from "
                f"{units_at_termination} to {units}; billing must stop at "
                "the termination/revocation boundary",
                {
                    "instance": iid,
                    "at_termination": units_at_termination,
                    "now": units,
                },
            )
        )
    wasted = billing.wasted_time(instance, now)
    if wasted < -_TIME_TOL:
        violations.append(
            Violation(
                "billing.wasted_non_negative",
                now,
                f"instance {iid} wasted_time {wasted} < 0",
                {"instance": iid, "wasted": wasted},
            )
        )
    if instance.started_at is None:
        if units != 0:
            violations.append(
                Violation(
                    "billing.never_started_free",
                    now,
                    f"never-started instance {iid} charged {units} units",
                    {"instance": iid, "units": units},
                )
            )
        paid = billing.paid_until(instance, now)
        if abs(paid - instance.requested_at) > _TIME_TOL:
            violations.append(
                Violation(
                    "billing.pending_paid_until",
                    now,
                    f"never-started instance {iid} claims paid_until="
                    f"{paid}, expected its requested_at "
                    f"{instance.requested_at}",
                    {"instance": iid, "paid_until": paid},
                )
            )
        return violations
    if instance.state is InstanceState.RUNNING:
        paid = billing.paid_until(instance, now)
        if paid < now - _TIME_TOL:
            violations.append(
                Violation(
                    "billing.paid_through_now",
                    now,
                    f"running instance {iid} paid only through {paid} "
                    f"< now {now}: the unit in progress was never charged",
                    {"instance": iid, "paid_until": paid},
                )
            )
        r = billing.time_to_next_charge(instance, now)
        if not 0.0 < r <= u + _TIME_TOL:
            violations.append(
                Violation(
                    "billing.next_charge_range",
                    now,
                    f"running instance {iid} time_to_next_charge {r} "
                    f"outside (0, {u}]",
                    {"instance": iid, "r": r},
                )
            )
        next_charge = billing.next_charge_time(instance, now)
        if abs(next_charge - paid) > _TIME_TOL + 2e-9 * max(1.0, abs(paid)):
            violations.append(
                Violation(
                    "billing.boundary_consistency",
                    now,
                    f"running instance {iid}: next_charge_time "
                    f"{next_charge} != paid_until {paid}; units_charged "
                    "and time_to_next_charge apply different charge-"
                    "boundary conventions",
                    {
                        "instance": iid,
                        "next_charge_time": next_charge,
                        "paid_until": paid,
                    },
                )
            )
    return violations


# ----------------------------------------------------------------------
# monitor aggregates
# ----------------------------------------------------------------------
def check_monitor_aggregates(
    monitor: Monitor, now: float, *, label: str = ""
) -> list[Violation]:
    """Incremental monitor aggregates == brute-force recomputation.

    Guards PR 1's hot-path optimization: ``completed_in_stage`` /
    ``running_in_stage`` / ``transfer_times_between`` are served from
    hand-maintained indexes; here they are recomputed from the full
    per-stage attempt history (the authoritative record) and compared
    element-for-element, order included.
    """
    violations: list[Violation] = []
    tag = f"{label}: " if label else ""
    for stage_id, attempts in monitor._by_stage.items():
        expected_completed = [a for a in attempts if a.is_completed]
        actual_completed = monitor.completed_in_stage(stage_id)
        if [id(a) for a in expected_completed] != [
            id(a) for a in actual_completed
        ]:
            violations.append(
                Violation(
                    "monitor.completed_in_stage",
                    now,
                    f"{tag}stage {stage_id}: incremental completed list "
                    "drifted from the attempt-history scan",
                    {
                        "stage": stage_id,
                        "expected": [a.task_id for a in expected_completed],
                        "actual": [a.task_id for a in actual_completed],
                    },
                )
            )
        expected_running = [a for a in attempts if a.in_flight]
        actual_running = monitor.running_in_stage(stage_id)
        if [id(a) for a in expected_running] != [id(a) for a in actual_running]:
            violations.append(
                Violation(
                    "monitor.running_in_stage",
                    now,
                    f"{tag}stage {stage_id}: incremental in-flight list "
                    "drifted from the attempt-history scan",
                    {
                        "stage": stage_id,
                        "expected": [a.task_id for a in expected_running],
                        "actual": [a.task_id for a in actual_running],
                    },
                )
            )
    expected_transfers = _reference_transfer_times(monitor, -1.0, now)
    actual_transfers = monitor.transfer_times_between(-1.0, now)
    if expected_transfers != actual_transfers:
        violations.append(
            Violation(
                "monitor.transfer_observations",
                now,
                f"{tag}incremental transfer-observation log drifted from "
                "the attempt-history scan",
                {
                    "expected_n": len(expected_transfers),
                    "actual_n": len(actual_transfers),
                },
            )
        )
    return violations


def _reference_transfer_times(
    monitor: Monitor, t0: float, t1: float
) -> list[float]:
    """The historical full-scan implementation of transfer_times_between:
    attempts in first-dispatch order, stage-in before stage-out within an
    attempt, keeping durations that finished in ``(t0, t1]``."""
    ordered: list[TaskAttempt] = sorted(
        monitor.all_attempts(), key=lambda a: (a._task_order, a.attempt)
    )
    durations: list[float] = []
    for attempt in ordered:
        if attempt.exec_start is not None and t0 < attempt.exec_start <= t1:
            durations.append(attempt.stage_in_time or 0.0)
        if (
            attempt.complete_time is not None
            and t0 < attempt.complete_time <= t1
        ):
            durations.append(attempt.stage_out_time or 0.0)
    return durations


# ----------------------------------------------------------------------
# task conservation
# ----------------------------------------------------------------------
def check_task_conservation(
    task_ids,
    monitor: Monitor,
    now: float,
    *,
    completed_run: bool = True,
    label: str = "",
) -> list[Violation]:
    """Every task completes exactly once; attempt accounting balances.

    On a completed run each DAG task must have exactly one completed
    attempt, every other attempt must be killed (a restart), and no
    attempt may be simultaneously completed and killed or still in
    flight after finalization.
    """
    violations: list[Violation] = []
    tag = f"{label}: " if label else ""
    for task_id in task_ids:
        attempts = monitor.attempts(task_id)
        completed = [a for a in attempts if a.is_completed]
        if completed_run and len(completed) != 1:
            violations.append(
                Violation(
                    "tasks.completed_once",
                    now,
                    f"{tag}task {task_id} completed {len(completed)} times "
                    "on a completed run (expected exactly once)",
                    {"task": task_id, "completions": len(completed)},
                )
            )
        elif not completed_run and len(completed) > 1:
            violations.append(
                Violation(
                    "tasks.completed_once",
                    now,
                    f"{tag}task {task_id} completed {len(completed)} times",
                    {"task": task_id, "completions": len(completed)},
                )
            )
        for attempt in attempts:
            if attempt.is_completed and attempt.is_killed:
                violations.append(
                    Violation(
                        "tasks.attempt_accounting",
                        now,
                        f"{tag}task {task_id} attempt {attempt.attempt} is "
                        "both completed and killed",
                        {"task": task_id, "attempt": attempt.attempt},
                    )
                )
            elif attempt.in_flight:
                violations.append(
                    Violation(
                        "tasks.attempt_accounting",
                        now,
                        f"{tag}task {task_id} attempt {attempt.attempt} "
                        "still in flight after finalization",
                        {"task": task_id, "attempt": attempt.attempt},
                    )
                )
    return violations


# ----------------------------------------------------------------------
# fleet
# ----------------------------------------------------------------------
def check_fleet_attribution(
    total_cost: float,
    attributed_costs,
    unattributed_cost: float,
    now: float,
) -> list[Violation]:
    """Per-tenant cost shares (plus the operator's unattributed share)
    must sum to the pool's bill."""
    share_sum = sum(attributed_costs) + unattributed_cost
    tol = 1e-6 * max(1.0, abs(total_cost))
    if abs(share_sum - total_cost) > tol:
        return [
            Violation(
                "fleet.cost_shares",
                now,
                f"attributed {sum(attributed_costs)} + unattributed "
                f"{unattributed_cost} = {share_sum} != pool bill "
                f"{total_cost}",
                {
                    "attributed": list(attributed_costs),
                    "unattributed": unattributed_cost,
                    "total_cost": total_cost,
                },
            )
        ]
    return []


def occupancy_integral(
    monitor: Monitor, instance_id: str, now: float
) -> float:
    """Hand-computed busy-slot integral of one instance from the attempt
    record: sum over attempts placed on it of (end − dispatch), where end
    is completion, kill, or ``now`` for in-flight attempts. The engine's
    timed assign/release pairs must accumulate exactly this into
    ``Instance.busy_slot_seconds``."""
    return sum(
        a.occupancy_elapsed(now)
        for a in monitor.all_attempts()
        if a.instance_id == instance_id
    )
