"""Runtime invariant checker for the simulation engines.

:class:`InvariantChecker` hooks into :class:`~repro.engine.simulator.
Simulation` and :class:`~repro.fleet.engine.FleetSimulation` through the
``validate=`` constructor argument. It follows the repo's
zero-cost-when-disabled contract (the chaos/telemetry pattern): a run
constructed without ``validate`` stores ``None`` and the engine loop pays
a single ``is not None`` check per event — no checker object, no extra
RNG draws, bit-identical results.

With a checker attached the engine calls three hooks:

- ``after_event(sim, event)`` — after every handled event: event-time
  monotonicity, plus (``deep`` mode) a full recomputation of the pool's
  slot indexes. On ``CONTROLLER_TICK`` events the heavier sweeps run
  too: billing consistency for every instance, monitor incremental
  aggregates vs brute force, and attempt/instance liveness.
- ``check_final(sim, result)`` — after finalization: billing frozen past
  the horizon, task conservation, fleet cost attribution, and result
  sanity.
- ``begin_run(sim)`` — before the event loop: fleet scoped-id
  disjointness.

``mode="raise"`` (default) raises :class:`~repro.validate.invariants.
InvariantError` on the first violation; ``mode="collect"`` accumulates
them in :attr:`violations` so a differential-replay run can finish and
report everything it saw.
"""

from __future__ import annotations

from typing import Any

from repro.cloud.instance import InstanceState
from repro.engine.events import Event, EventKind
from repro.validate.invariants import (
    InvariantError,
    Violation,
    check_billing_instance,
    check_fleet_attribution,
    check_monitor_aggregates,
    check_pool_slots,
    check_task_conservation,
    committed_units,
)

__all__ = ["InvariantChecker"]

#: horizon margin (in charging units) for the billing-frozen final check
_FROZEN_HORIZON_UNITS = 7


class InvariantChecker:
    """Engine-agnostic runtime invariant checker.

    Parameters
    ----------
    mode:
        ``"raise"`` stops the run at the first violation (debugging);
        ``"collect"`` records all violations in :attr:`violations` and
        lets the run finish (differential replay).
    deep:
        When True (default) the pool's slot indexes are recomputed after
        *every* event; when False only at controller ticks. Deep mode
        pins index drift to the exact event that caused it.
    """

    def __init__(self, *, mode: str = "raise", deep: bool = True) -> None:
        if mode not in ("raise", "collect"):
            raise ValueError(f"mode must be 'raise' or 'collect', got {mode!r}")
        self.mode = mode
        self.deep = deep
        self.violations: list[Violation] = []
        self.events_checked = 0
        self.ticks_checked = 0
        self._last_event_time: float | None = None
        #: instance id -> committed units at the previous billing sweep
        #: (the monotone quantity; see invariants.committed_units)
        self._last_units: dict[str, int] = {}
        #: instance id -> units_charged observed at/after termination
        self._frozen_units: dict[str, int] = {}

    # ------------------------------------------------------------------
    # engine hooks
    # ------------------------------------------------------------------
    def begin_run(self, sim: Any) -> None:
        """Pre-loop structural checks (fleet scoped-id disjointness)."""
        if _is_fleet(sim):
            self._emit(self._check_fleet_ownership(sim))

    def after_event(self, sim: Any, event: Event) -> None:
        """Per-event boundary checks; heavier sweeps at controller ticks."""
        self.events_checked += 1
        violations: list[Violation] = []
        if (
            self._last_event_time is not None
            and event.time < self._last_event_time
        ):
            violations.append(
                Violation(
                    "events.time_monotone",
                    event.time,
                    f"event {event.kind.name} fired at {event.time}, before "
                    f"the previous event's {self._last_event_time}",
                    {
                        "kind": event.kind.name,
                        "previous": self._last_event_time,
                    },
                )
            )
        self._last_event_time = event.time
        now = sim._now
        if self.deep:
            violations += check_pool_slots(sim.pool, now)
        if event.kind is EventKind.CONTROLLER_TICK:
            self.ticks_checked += 1
            if not self.deep:
                violations += check_pool_slots(sim.pool, now)
            violations += self._billing_sweep(sim, now)
            violations += self._monitor_sweep(sim, now)
            violations += self._liveness_sweep(sim, now)
            if _is_fleet(sim):
                violations += self._fleet_sweep(sim, now)
        self._emit(violations)

    def check_final(self, sim: Any, result: Any) -> None:
        """Post-finalization checks on the torn-down run and its result."""
        now = sim._now
        makespan = result.makespan
        violations = check_pool_slots(sim.pool, now)
        violations += self._billing_sweep(sim, makespan)
        violations += self._monitor_sweep(sim, makespan)
        # Billing must be frozen: re-evaluating every (now terminated)
        # instance far past the horizon must charge nothing more.
        horizon = makespan + _FROZEN_HORIZON_UNITS * sim.billing.charging_unit
        for instance in sim.pool:
            if instance.state is not InstanceState.TERMINATED:
                violations.append(
                    Violation(
                        "instances.terminated_at_finalize",
                        makespan,
                        f"instance {instance.instance_id} still "
                        f"{instance.state.value} after finalization",
                        {"instance": instance.instance_id},
                    )
                )
                continue
            violations += check_billing_instance(
                sim.billing,
                instance,
                horizon,
                units_at_termination=sim.billing.units_charged(
                    instance, makespan
                ),
            )
        violations += self._conservation(sim, result, makespan)
        violations += self._result_sanity(result, makespan)
        if _is_fleet(sim):
            violations += self._fleet_sweep(sim, makespan)
            violations += check_fleet_attribution(
                result.total_cost,
                [t.attributed_cost for t in result.tenants],
                result.unattributed_cost,
                makespan,
            )
        self._emit(violations)

    # ------------------------------------------------------------------
    # sweeps
    # ------------------------------------------------------------------
    def _billing_sweep(self, sim: Any, now: float) -> list[Violation]:
        violations: list[Violation] = []
        billing = sim.billing
        for instance in sim.pool:
            iid = instance.instance_id
            violations += check_billing_instance(
                billing,
                instance,
                now,
                last_units=self._last_units.get(iid),
                units_at_termination=self._frozen_units.get(iid),
            )
            self._last_units[iid] = committed_units(billing, instance, now)
            if (
                instance.state is InstanceState.TERMINATED
                and iid not in self._frozen_units
            ):
                self._frozen_units[iid] = billing.units_charged(instance, now)
        return violations

    def _monitor_sweep(self, sim: Any, now: float) -> list[Violation]:
        if _is_fleet(sim):
            violations: list[Violation] = []
            for tenant in sim.tenants:
                violations += check_monitor_aggregates(
                    tenant.monitor, now, label=tenant.tenant_id
                )
            return violations
        return check_monitor_aggregates(sim.monitor, now)

    def _liveness_sweep(self, sim: Any, now: float) -> list[Violation]:
        """Every in-flight attempt runs on a live instance it occupies.

        This is the "no attempt on a TERMINATED/revoked instance" task
        invariant: a kill path that forgot to close the attempt (or to
        vacate the slot) leaves an in-flight attempt pointing at a dead
        or foreign instance.
        """
        violations: list[Violation] = []
        monitors = (
            [(t.tenant_id, t.monitor, t.scoped) for t in sim.tenants]
            if _is_fleet(sim)
            else [("", sim.monitor, lambda local: local)]
        )
        for label, monitor, scoped_of in monitors:
            tag = f"{label}: " if label else ""
            for running in monitor._running_by_stage.values():
                for attempt in running.values():
                    scoped = scoped_of(attempt.task_id)
                    placed = sim.pool._task_instance.get(scoped)
                    if placed != attempt.instance_id:
                        violations.append(
                            Violation(
                                "tasks.inflight_placement",
                                now,
                                f"{tag}in-flight attempt of {attempt.task_id} "
                                f"claims instance {attempt.instance_id} but "
                                f"the pool places it on {placed}",
                                {
                                    "task": attempt.task_id,
                                    "attempt_instance": attempt.instance_id,
                                    "pool_instance": placed,
                                },
                            )
                        )
                        continue
                    instance = sim.pool.get(attempt.instance_id)
                    if instance.state is not InstanceState.RUNNING:
                        violations.append(
                            Violation(
                                "tasks.inflight_on_dead_instance",
                                now,
                                f"{tag}attempt of {attempt.task_id} is still "
                                f"in flight on {instance.state.value} "
                                f"instance {attempt.instance_id}"
                                + (" (revoked)" if instance.revoked else ""),
                                {
                                    "task": attempt.task_id,
                                    "instance": attempt.instance_id,
                                    "state": instance.state.value,
                                },
                            )
                        )
        return violations

    def _fleet_sweep(self, sim: Any, now: float) -> list[Violation]:
        """Fleet-only cross-structure checks.

        - each instance's ``busy_slot_seconds`` equals the summed
          per-tenant busy shares the attribution step will split its bill
          by (so attribution draws from the same integral billing does);
        - each tenant's ``occupied_slots`` counter matches its actual
          slot occupancy across the pool.
        """
        violations: list[Violation] = []
        per_instance: dict[str, float] = {}
        for (iid, _), busy in sim._tenant_busy.items():
            per_instance[iid] = per_instance.get(iid, 0.0) + busy
        for instance in sim.pool:
            iid = instance.instance_id
            # In-flight occupancy is not yet accrued on either side, so
            # the settled integrals must agree exactly.
            settled = per_instance.get(iid, 0.0)
            if abs(settled - instance.busy_slot_seconds) > 1e-6 * max(
                1.0, instance.busy_slot_seconds
            ):
                violations.append(
                    Violation(
                        "fleet.busy_attribution",
                        now,
                        f"instance {iid} accrued {instance.busy_slot_seconds}"
                        f" busy slot-seconds but tenant shares sum to "
                        f"{settled}; cost attribution would split the bill "
                        "by a different integral than billing charged",
                        {
                            "instance": iid,
                            "instance_busy": instance.busy_slot_seconds,
                            "tenant_sum": settled,
                        },
                    )
                )
        occupancy: dict[int, int] = {}
        for scoped in sim.pool._task_instance:
            tenant, _ = sim._owner[scoped]
            occupancy[tenant.index] = occupancy.get(tenant.index, 0) + 1
        for tenant in sim.tenants:
            actual = occupancy.get(tenant.index, 0)
            if tenant.occupied_slots != actual:
                violations.append(
                    Violation(
                        "fleet.occupied_slots",
                        now,
                        f"tenant {tenant.tenant_id} counter claims "
                        f"{tenant.occupied_slots} occupied slots but the "
                        f"pool holds {actual} of its tasks",
                        {
                            "tenant": tenant.tenant_id,
                            "counter": tenant.occupied_slots,
                            "actual": actual,
                        },
                    )
                )
        return violations

    def _check_fleet_ownership(self, sim: Any) -> list[Violation]:
        expected = sum(len(t.workflow) for t in sim.tenants)
        if len(sim._owner) != expected:
            return [
                Violation(
                    "fleet.scoped_ids_disjoint",
                    0.0,
                    f"ownership index holds {len(sim._owner)} scoped ids "
                    f"for {expected} tenant tasks; scoped ids collide "
                    "across tenants",
                    {"owned": len(sim._owner), "expected": expected},
                )
            ]
        return []

    def _conservation(
        self, sim: Any, result: Any, makespan: float
    ) -> list[Violation]:
        if _is_fleet(sim):
            violations: list[Violation] = []
            for tenant, tres in zip(sim.tenants, result.tenants):
                violations += check_task_conservation(
                    tenant.workflow.tasks,
                    tenant.monitor,
                    makespan,
                    completed_run=tres.completed,
                    label=tenant.tenant_id,
                )
            return violations
        return check_task_conservation(
            sim.workflow.tasks,
            sim.monitor,
            makespan,
            completed_run=result.completed,
        )

    def _result_sanity(self, result: Any, makespan: float) -> list[Violation]:
        violations: list[Violation] = []
        if result.wasted_seconds < -1e-6:
            violations.append(
                Violation(
                    "result.wasted_non_negative",
                    makespan,
                    f"wasted_seconds {result.wasted_seconds} < 0",
                    {"wasted_seconds": result.wasted_seconds},
                )
            )
        if not 0.0 <= result.utilization <= 1.0:
            violations.append(
                Violation(
                    "result.utilization_range",
                    makespan,
                    f"utilization {result.utilization} outside [0, 1]",
                    {"utilization": result.utilization},
                )
            )
        if result.total_cost < 0.0 or result.total_units < 0:
            violations.append(
                Violation(
                    "result.cost_non_negative",
                    makespan,
                    f"cost {result.total_cost} / units {result.total_units} "
                    "negative",
                    {
                        "total_cost": result.total_cost,
                        "total_units": result.total_units,
                    },
                )
            )
        return violations

    # ------------------------------------------------------------------
    # violation routing
    # ------------------------------------------------------------------
    def _emit(self, violations: list[Violation]) -> None:
        if not violations:
            return
        if self.mode == "raise":
            raise InvariantError(violations[0])
        self.violations.extend(violations)


def _is_fleet(sim: Any) -> bool:
    return hasattr(sim, "tenants")
