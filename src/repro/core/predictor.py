"""Online task-performance prediction (paper §III-B1 and §III-C).

At the start of each MAPE iteration the task predictor harvests the
previous interval's measurements and updates two kinds of estimators:

- per-stage execution-time models, applied through the five online
  prediction policies of §III-C (reproduced in
  :class:`~repro.core.runstate.PredictionPolicy`);
- the data-transfer estimate ``t̃_data``, the (moving) median of the
  transfer times observed between consecutive iterations (§III-B1).

The predictor then annotates the DAG wavefront with conservative minimum
remaining occupancy times, producing the
:class:`~repro.core.runstate.RunState` the lookahead simulator consumes.

Incremental run-state assembly
------------------------------
``build_run_state`` no longer rescans the full DAG each tick, nor does it
build per-task annotation objects for tasks nothing will look at. It
consumes the monitor's append-only completion log as a delta stream,
maintaining per-stage counts of blocked and sized-ready tasks plus the
DAG's unfinished-parent topology, so each tick costs O(completions since
the last tick + stages + in-flight) instead of O(tasks). The returned run
state's ``estimates`` is a lazy mapping: completed and in-flight tasks
are materialized eagerly (both are cheap and needed every tick), while
BLOCKED/READY annotations are built on first access from per-stage
contexts *captured at the tick* (stage view, Policy 4/5 memo, frozen OGD
coefficients) — a deferred materialization is therefore bit-identical to
an eager one. Per-stage policy evaluations are memoized keyed on
``(completed-version, model generation)`` — see docs/performance.md.
Every fast path is backed by an exact fallback (a full scan identical to
the historical implementation) taken whenever the bookkeeping cannot
prove the delta view consistent; the golden engine matrix and the
property suites in tests/core/test_controller_equivalence.py enforce the
equivalence.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from collections.abc import MutableMapping
from itertools import chain
from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence

from repro.core.config import WireConfig
from repro.core.ogd import OnlineGradientDescentModel
from repro.core.runstate import PredictionPolicy, RunState, TaskEstimate
from repro.dag.workflow import Workflow
from repro.engine.master import FrameworkMaster, TaskExecState
from repro.engine.monitor import Monitor, TaskAttempt
from repro.metrics.stats import MovingMedian, mean, median, median_sorted

__all__ = ["SharedEvalCache", "TaskPredictor", "group_by_input_size"]


def group_by_input_size(
    attempts: Sequence[TaskAttempt], rtol: float
) -> list[tuple[float, list[float]]]:
    """Cluster completed attempts by (approximately) equal input size.

    Returns ``(representative_size, execution_times)`` pairs sorted by
    size. Two sizes are "equivalent" (paper Policy 4's group *L*) when
    they differ by at most ``rtol`` relative to the larger of the two.
    """
    completed = sorted(
        (a for a in attempts if a.execution_time is not None),
        key=lambda a: a.input_size,
    )
    groups: list[tuple[float, list[float]]] = []
    for attempt in completed:
        size = attempt.input_size
        exec_time = attempt.execution_time
        assert exec_time is not None
        if groups and _sizes_equivalent(groups[-1][0], size, rtol):
            groups[-1][1].append(exec_time)
        else:
            groups.append((size, [exec_time]))
    return groups


def _sizes_equivalent(a: float, b: float, rtol: float) -> bool:
    if a == b:
        return True
    return abs(a - b) <= rtol * max(abs(a), abs(b))


class SharedEvalCache:
    """Content-addressed cache of OGD model predictions.

    The key is the full model state ``(alpha0, alpha1, scale)`` plus the
    input size, so a hit is guaranteed to reproduce ``model.predict``
    bit-for-bit — which is what makes the cache safely shareable across
    *different* predictors: fleet steering hands one instance to every
    tenant's predictor, so tenants running the same workflow genome at the
    same model state reuse each other's evaluations (§IV-F overhead).
    """

    __slots__ = ("_cache", "max_entries", "hits", "misses")

    def __init__(self, max_entries: int = 1 << 16) -> None:
        self._cache: dict[tuple[float, float, float, float], float] = {}
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0

    def predict_from(
        self, alpha0: float, alpha1: float, scale: float, input_size: float
    ) -> float:
        """Memoized OGD evaluation from explicit (frozen) coefficients."""
        key = (alpha0, alpha1, scale, input_size)
        value = self._cache.get(key)
        if value is None:
            if len(self._cache) >= self.max_entries:
                self._cache.clear()
            value = self._cache[key] = OnlineGradientDescentModel.predict_from(
                alpha0, alpha1, scale, input_size
            )
            self.misses += 1
        else:
            self.hits += 1
        return value

    def predict(self, model: OnlineGradientDescentModel, input_size: float) -> float:
        """``model.predict(input_size)``, memoized on the model state."""
        return self.predict_from(
            model.alpha0, model.alpha1, model.scale, input_size
        )


class _StageAccumulator:
    """Per-stage completed-attempt aggregates, maintained incrementally.

    ``by_size`` mirrors the stable sort ``group_by_input_size`` performs
    over :meth:`Monitor.completed_in_stage` (which is in stage-dispatch
    order): entries are kept sorted by ``(input_size, _stage_seq)``, so
    ties on size preserve dispatch order exactly. ``by_seq`` mirrors the
    un-sorted ``completed_in_stage`` list itself (sorted by dispatch
    index). On top of those order-preserving views (which the mean
    aggregator needs), *value-sorted* execution-time lists — per stage and
    per distinct input size — are maintained so the median aggregator
    reads each tick's medians by index (:func:`median_sorted`) instead of
    re-aggregating thousands of floats.
    """

    __slots__ = (
        "count",
        "use_median",
        "by_size",
        "by_seq",
        "by_time",
        "sizes",
        "size_times",
    )

    def __init__(self, use_median: bool = True) -> None:
        #: completed attempts seen, including any without an exec time
        self.count = 0
        #: which family of views to maintain (set from the config once)
        self.use_median = use_median
        #: (input_size, stage_seq, exec_time) sorted by (size, seq)
        self.by_size: list[tuple[float, int, float]] = []
        #: (stage_seq, exec_time) sorted by seq — dispatch order
        self.by_seq: list[tuple[int, float]] = []
        #: all execution times, sorted by value
        self.by_time: list[float] = []
        #: distinct input sizes, sorted ascending
        self.sizes: list[float] = []
        #: input size -> its execution times, sorted by value
        self.size_times: dict[float, list[float]] = {}

    def add(self, attempt: TaskAttempt) -> None:
        self.count += 1
        exec_time = attempt.execution_time
        if exec_time is None:
            return
        size = attempt.input_size
        if not self.use_median:
            # the mean is order-sensitive; keep the dispatch-order views
            insort(self.by_size, (size, attempt._stage_seq, exec_time))
            insort(self.by_seq, (attempt._stage_seq, exec_time))
            return
        insort(self.by_time, exec_time)
        times = self.size_times.get(size)
        if times is None:
            times = self.size_times[size] = []
            insort(self.sizes, size)
        insort(times, exec_time)


@dataclass(frozen=True)
class _StageView:
    """One stage's peer-task aggregates at a single instant."""

    stage_id: str
    has_completed: bool
    has_running: bool
    #: aggregate elapsed run time of in-flight tasks (Policy 2), if any
    median_elapsed: float | None
    #: aggregate execution time of completed tasks (Policy 3), if any
    median_completed: float | None
    #: (representative input size, aggregate execution time) per group
    groups: list[tuple[float, float]]
    #: the representative sizes alone (ascending — the clustering walks
    #: sizes in sorted order), for bisecting into ``groups``
    group_sizes: list[float] = field(default_factory=list)


@dataclass(slots=True)
class _StageTickContext:
    """One stage's frozen evaluation context for a single MAPE tick.

    Everything a deferred Policy 4/5 evaluation needs, captured when the
    run state is built: the completed-peer view, the (shared, epoch-keyed)
    size memo, and the OGD coefficients as plain floats. The live model
    may step after the tick; evaluating from the captured coefficients via
    :meth:`OnlineGradientDescentModel.predict_from` reproduces the at-tick
    result exactly.
    """

    view: _StageView
    memo: dict[float, tuple[float, PredictionPolicy]]
    rtol: float
    alpha0: float
    alpha1: float
    scale: float
    shared: SharedEvalCache

    def sized(self, input_size: float) -> tuple[float, PredictionPolicy]:
        """Policies 4/5 for a READY/in-flight task of known input size.

        The group scan exploits that the Policy-4 match window is
        contiguous over the ascending representative sizes: for reps
        ``s <= d`` the predicate needs ``d - s <= rtol*d`` and for
        ``s >= d`` it needs ``s - d <= rtol*s``, both defining one
        interval around ``d``. Bisecting to a *conservative* lower bound
        (rtol widened by 1%, dwarfing any float rounding in the bound
        arithmetic) only skips reps that provably fail the predicate, and
        the symmetric upper guard only stops once reps provably keep
        failing — every candidate in between is still decided by the
        exact predicate in ascending order, so the first match (and the
        Policy-5 fallback) is identical to the full linear scan.
        """
        result = self.memo.get(input_size)
        if result is None:
            rtol = self.rtol
            view = self.view
            groups = view.groups
            lo = 0
            margin = rtol * 1.01 * abs(input_size)
            if len(groups) > 32:
                lo = bisect_left(view.group_sizes, input_size - margin)
            result = None
            for i in range(lo, len(groups)):
                size, agg_time = groups[i]
                if _sizes_equivalent(size, input_size, rtol):
                    result = (agg_time, PredictionPolicy.MATCHED_GROUP)
                    break
                if size > input_size and size - input_size > rtol * 1.01 * size:
                    break
            if result is None:
                result = (
                    self.shared.predict_from(
                        self.alpha0, self.alpha1, self.scale, input_size
                    ),
                    PredictionPolicy.OGD,
                )
            self.memo[input_size] = result
        return result


class _LazyEstimates(MutableMapping):
    """The run state's ``estimates`` mapping, materialized on demand.

    Iteration order is the workflow's topological order — identical to
    the dict the historical full scan built. Completed tasks resolve to
    the predictor's immutable final annotations; in-flight tasks were
    annotated eagerly at build time; BLOCKED/READY tasks materialize on
    first access from the captured per-stage tick contexts, so untouched
    tasks never pay for a :class:`TaskEstimate`. All inputs are frozen at
    the tick (the phase snapshot is a copy), making deferred access
    bit-identical to the eager build.
    """

    __slots__ = (
        "_order",
        "_phases",
        "_final",
        "_final_raw",
        "_data",
        "_ctx",
        "_stage_of",
        "_input_size",
        "_ss_key",
        "_t_data",
        "_annotate",
        "_monitor",
        "_now",
        "_rem_ready",
        "_rem_blocked",
    )

    def __init__(
        self,
        order: tuple[str, ...],
        phases: dict[str, TaskExecState],
        final: dict[str, TaskEstimate],
        final_raw: dict[str, tuple[float, str | None]],
        data: dict[str, TaskEstimate],
        ctx: dict[str, _StageTickContext],
        stage_of,
        input_size: dict[str, float],
        ss_key: dict[str, tuple[str, float]],
        t_data: float,
        annotate,
        monitor: Monitor,
        now: float,
    ) -> None:
        self._order = order
        self._phases = phases
        self._final = final
        self._final_raw = final_raw
        self._data = data
        self._ctx = ctx
        self._stage_of = stage_of
        self._input_size = input_size
        self._ss_key = ss_key
        self._t_data = t_data
        self._annotate = annotate
        self._monitor = monitor
        self._now = now
        # remaining-occupancy memos for the float-only fast path: within
        # a tick the value is a pure function of (stage, input size) for
        # READY tasks and of the stage alone for BLOCKED ones
        self._rem_ready: dict[tuple[str, float], float] = {}
        self._rem_blocked: dict[str, float] = {}

    # -- materialization ------------------------------------------------
    def _eval(
        self, task_id: str, phase: TaskExecState
    ) -> tuple[float, PredictionPolicy]:
        """§III-C policy selection from the captured stage context."""
        ctx = self._ctx[self._stage_of[task_id]]
        view = ctx.view
        if not view.has_completed:
            if view.has_running:
                assert view.median_elapsed is not None
                return view.median_elapsed, PredictionPolicy.RUNNING_ONLY
            return 0.0, PredictionPolicy.NO_TASK_STARTED
        if phase is TaskExecState.BLOCKED:
            assert view.median_completed is not None
            return view.median_completed, PredictionPolicy.COMPLETED_UNREADY
        return ctx.sized(self._input_size[task_id])

    def _materialize(self, task_id: str) -> TaskEstimate:
        phase = self._phases[task_id]  # unknown id -> KeyError, like a dict
        if phase is TaskExecState.COMPLETED:
            estimate = self._final.get(task_id)
            if estimate is None:
                # built once per task ever: the annotation is immutable,
                # and the materialized cache is shared across ticks
                exec_time, instance_id = self._final_raw[task_id]
                estimate = self._final[task_id] = TaskEstimate(
                    task_id=task_id,
                    stage_id=self._stage_of[task_id],
                    phase=TaskExecState.COMPLETED,
                    exec_estimate=exec_time,
                    policy=PredictionPolicy.OBSERVED,
                    remaining_occupancy=0.0,
                    sunk_occupancy=0.0,
                    instance_id=instance_id,
                )
        else:
            exec_estimate, policy = self._eval(task_id, phase)
            if phase is TaskExecState.BLOCKED or phase is TaskExecState.READY:
                t_data = self._t_data
                estimate = TaskEstimate(
                    task_id=task_id,
                    stage_id=self._stage_of[task_id],
                    phase=phase,
                    exec_estimate=exec_estimate,
                    policy=policy,
                    remaining_occupancy=t_data + exec_estimate + t_data,
                    sunk_occupancy=0.0,
                    instance_id=None,
                )
            else:
                # A slot-occupying task missing from the eager set: the
                # master and monitor disagree about the in-flight set
                # (hand-built fixtures). Annotate exactly like the
                # historical scan, from the attempt record.
                estimate = self._annotate(
                    task_id,
                    self._stage_of[task_id],
                    phase,
                    exec_estimate,
                    policy,
                    self._monitor,
                    self._now,
                    self._t_data,
                )
        self._data[task_id] = estimate
        return estimate

    # -- fast float-only accessors (no TaskEstimate construction) -------
    def remaining_of(self, task_id: str) -> float:
        """``self[task_id].remaining_occupancy`` without materializing.

        The projection calls this for every queued task every tick;
        per-(stage, size) memos reduce the common READY/BLOCKED cases to
        two dictionary hits.
        """
        cached = self._data.get(task_id)
        if cached is not None:
            return cached.remaining_occupancy
        phase = self._phases[task_id]
        if phase is TaskExecState.COMPLETED:
            return 0.0
        if phase is TaskExecState.READY:
            key = self._ss_key[task_id]
            remaining = self._rem_ready.get(key)
            if remaining is None:
                exec_estimate, _ = self._eval(task_id, phase)
                t_data = self._t_data
                remaining = self._rem_ready[key] = (
                    t_data + exec_estimate + t_data
                )
            return remaining
        if phase is TaskExecState.BLOCKED:
            stage_id = self._stage_of[task_id]
            remaining = self._rem_blocked.get(stage_id)
            if remaining is None:
                exec_estimate, _ = self._eval(task_id, phase)
                t_data = self._t_data
                remaining = self._rem_blocked[stage_id] = (
                    t_data + exec_estimate + t_data
                )
            return remaining
        return self._materialize(task_id).remaining_occupancy

    def remaining_many(self, task_ids: "Iterable[str]") -> list[float]:
        """:meth:`remaining_of` over a batch, one attribute walk total.

        The projection resolves its whole seed queue (hundreds of ids)
        through this in a single call; hoisting the per-call attribute
        and global lookups out of the loop roughly triples throughput
        over repeated :meth:`remaining_of` calls.
        """
        data_get = self._data.get
        phases = self._phases
        stage_of = self._stage_of
        ss_key = self._ss_key
        rem_ready = self._rem_ready
        rem_blocked = self._rem_blocked
        ready = TaskExecState.READY
        blocked = TaskExecState.BLOCKED
        completed = TaskExecState.COMPLETED
        out: list[float] = []
        append = out.append
        for task_id in task_ids:
            cached = data_get(task_id)
            if cached is not None:
                append(cached.remaining_occupancy)
                continue
            phase = phases[task_id]
            if phase is ready:
                key = ss_key[task_id]
                remaining = rem_ready.get(key)
                if remaining is None:
                    exec_estimate, _ = self._eval(task_id, phase)
                    t_data = self._t_data
                    remaining = rem_ready[key] = (
                        t_data + exec_estimate + t_data
                    )
                append(remaining)
            elif phase is blocked:
                stage_id = stage_of[task_id]
                remaining = rem_blocked.get(stage_id)
                if remaining is None:
                    exec_estimate, _ = self._eval(task_id, phase)
                    t_data = self._t_data
                    remaining = rem_blocked[stage_id] = (
                        t_data + exec_estimate + t_data
                    )
                append(remaining)
            elif phase is completed:
                append(0.0)
            else:
                append(self._materialize(task_id).remaining_occupancy)
        return out

    def phase_of(self, task_id: str) -> TaskExecState:
        """``self[task_id].phase`` without materializing."""
        return self._phases[task_id]

    @property
    def phases_map(self) -> dict[str, TaskExecState]:
        """The frozen per-tick phase snapshot (treat as read-only).

        Bulk consumers (the projection's from-scratch topology rebuild)
        iterate this directly instead of calling :meth:`phase_of` per id.
        """
        return self._phases

    # -- mapping protocol -----------------------------------------------
    def __getitem__(self, task_id: str) -> TaskEstimate:
        estimate = self._data.get(task_id)
        if estimate is not None:
            return estimate
        return self._materialize(task_id)

    def __setitem__(self, task_id: str, value: TaskEstimate) -> None:
        if task_id not in self._phases:
            raise KeyError(
                f"run-state estimates are keyed by workflow tasks; "
                f"{task_id!r} is not one"
            )
        self._data[task_id] = value

    def __delitem__(self, task_id: str) -> None:
        raise TypeError("run-state estimates cannot be deleted")

    def __iter__(self) -> Iterator[str]:
        return iter(self._order)

    def __len__(self) -> int:
        return len(self._order)

    def __contains__(self, task_id: object) -> bool:
        return task_id in self._phases


class TaskPredictor:
    """Per-stage online estimators plus the transfer-time estimate."""

    def __init__(
        self,
        workflow: Workflow,
        config: WireConfig | None = None,
        *,
        shared_cache: SharedEvalCache | None = None,
    ) -> None:
        self.workflow = workflow
        self.config = config or WireConfig()
        self._agg: Callable[[Sequence[float]], float] = (
            median if self.config.use_median else mean
        )
        self._ogd: dict[str, OnlineGradientDescentModel] = {
            stage.stage_id: OnlineGradientDescentModel(self.config.learning_rate)
            for stage in workflow.stages
        }
        self._transfer = MovingMedian(self.config.transfer_window)
        self._transfer_fallback: float | None = None
        # Per-stage aggregates over *completed* attempts are pure functions
        # of the stage's completed set; cache them keyed on the monitor's
        # completed-version counter so stages that gained no completions
        # since the last tick (e.g. finished stages) are not re-aggregated.
        #: stage -> (monitor id, version, median_completed, groups)
        self._completed_cache: dict[
            str, tuple[int, int, float | None, list[tuple[float, float]]]
        ] = {}
        # A completed task's annotation never changes again; the raw
        # (exec time, instance) pairs are recorded from the completion
        # delta and only materialized into TaskEstimate objects when
        # someone actually reads them (then cached here forever).
        self._final_estimates: dict[str, TaskEstimate] = {}
        self._final_raw: dict[str, tuple[float, str | None]] = {}
        self._shared = shared_cache if shared_cache is not None else SharedEvalCache()
        #: input size per task (hot in the Policy 4/5 path)
        self._input_size: dict[str, float] = {
            tid: workflow.task(tid).input_size for tid in workflow.tasks
        }
        stage_of = workflow.stage_of
        #: task -> (stage id, input size), prebuilt so the remaining-
        #: occupancy fast path resolves its memo key in one lookup
        self._stage_size_key: dict[str, tuple[str, float]] = {
            tid: (stage_of[tid], size) for tid, size in self._input_size.items()
        }
        self._topo_index: dict[str, int] = {
            tid: k for k, tid in enumerate(workflow.topological_order())
        }
        # incremental completed-aggregate state (fed by the monitor log)
        self._acc: dict[str, _StageAccumulator] = {}
        self._acc_monitor: int | None = None
        self._acc_cursor = 0
        # incremental run-state machinery --------------------------------
        #: monitor-log cursor as of the previous build_run_state call
        self._rs_cursor = 0
        self._rs_monitor: int | None = None
        #: stage -> (monitor id, completed version, model generation,
        #: {input_size -> (estimate, policy)}) — the §III-C Policy 4/5
        #: evaluation memo; any key component change discards the memo
        self._eval_cache: dict[
            str,
            tuple[int, int, int, dict[float, tuple[float, PredictionPolicy]]],
        ] = {}
        # per-stage class counts over incomplete tasks, patched from the
        # completion delta: how many are BLOCKED, and the input-size
        # histogram of the non-blocked rest (READY or in-flight — the
        # Policy 4/5 population). Together with the unfinished-parent
        # topology these let policy tallies and stage iteration run in
        # O(stages + distinct sizes) per tick instead of O(tasks).
        self._unfinished_parents: dict[str, int] = {}
        self._blocked_count: dict[str, int] = {}
        self._nonblocked_sizes: dict[str, dict[float, int]] = {}
        self._stage_incomplete: dict[str, int] = {}
        self._tracking_ok = False
        # Subclasses (e.g. the oracle's clairvoyant predictor) may override
        # estimate_execution; the delta/lazy fast path in build_run_state
        # is only sound for the base implementation.
        self._base_eval = (
            type(self).estimate_execution is TaskPredictor.estimate_execution
        )

    @property
    def shared_cache(self) -> SharedEvalCache:
        """The OGD evaluation cache (shared across tenants in fleets)."""
        return self._shared

    def _reset_tracking(self) -> None:
        """Seed the per-stage class counts for a fresh (unstarted) run."""
        workflow = self.workflow
        stage_of = workflow.stage_of
        input_size = self._input_size
        blocked: dict[str, int] = {}
        nonblocked: dict[str, dict[float, int]] = {}
        stage_incomplete: dict[str, int] = {}
        for stage in workflow.stages:
            blocked[stage.stage_id] = 0
            nonblocked[stage.stage_id] = {}
            stage_incomplete[stage.stage_id] = len(stage.task_ids)
        unfinished: dict[str, int] = {}
        parent_counts = workflow.parent_counts
        for tid in workflow.topological_order():
            n_parents = parent_counts[tid]
            unfinished[tid] = n_parents
            sid = stage_of[tid]
            if n_parents:
                blocked[sid] += 1
            else:
                sizes = nonblocked[sid]
                size = input_size[tid]
                sizes[size] = sizes.get(size, 0) + 1
        self._unfinished_parents = unfinished
        self._blocked_count = blocked
        self._nonblocked_sizes = nonblocked
        self._stage_incomplete = stage_incomplete
        self._tracking_ok = True

    # ------------------------------------------------------------------
    # Monitor + Analyze: harvest the previous interval
    # ------------------------------------------------------------------
    def observe_interval(self, monitor: Monitor, window_start: float, now: float) -> None:
        """Update all models from data gathered in ``(window_start, now]``.

        Called once per MAPE iteration before any prediction is made.
        """
        observations = monitor.transfer_durations_between(window_start, now)
        if observations:
            interval_median = median(observations)
            self._transfer.push(interval_median)
            self._transfer_fallback = interval_median
        for stage in self.workflow.stages:
            _, training_set = self._completed_aggregates(stage.stage_id, monitor)
            if not training_set:
                continue
            model = self._ogd[stage.stage_id]
            for _ in range(self.config.ogd_epochs_per_update):
                model.update(training_set)

    def transfer_estimate(self) -> float:
        """Current ``t̃_data`` in seconds (0 before any observation)."""
        value = self._transfer.value()
        if value is not None:
            return value
        return self._transfer_fallback or 0.0

    def ogd_model(self, stage_id: str) -> OnlineGradientDescentModel:
        """The stage's online-gradient-descent model (read access)."""
        return self._ogd[stage_id]

    # ------------------------------------------------------------------
    # checkpoint round-trip
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """The predictor's *learned* state as plain JSON-able data.

        Covers everything a restored predictor cannot rederive from its
        workflow and the monitor log: the per-stage OGD coefficients
        (with their generation counters) and the transfer-time moving
        median. Derived caches — completed-aggregate accumulators, the
        Policy 4/5 evaluation memos, run-state cursors — are pure
        functions of (monitor log, model generation) and are rebuilt on
        first use after :meth:`load_state_dict`, bit-identically (the
        PR 6 equivalence suites pin the rebuild paths to the
        incremental ones).
        """
        return {
            "ogd": {
                stage_id: model.state_dict()
                for stage_id, model in sorted(self._ogd.items())
            },
            "transfer": self._transfer.state_dict(),
            "transfer_fallback": self._transfer_fallback,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore learned state captured by :meth:`state_dict`.

        The stage set must match this predictor's workflow. All derived
        caches and incremental cursors are invalidated so the next tick
        recomputes them from the attached monitor.
        """
        ours = set(self._ogd)
        theirs = set(state["ogd"])
        if ours != theirs:
            raise ValueError(
                "state dict stages do not match workflow stages: "
                f"missing {sorted(ours - theirs)}, "
                f"unexpected {sorted(theirs - ours)}"
            )
        for stage_id, model_state in state["ogd"].items():
            self._ogd[stage_id].load_state_dict(model_state)
        self._transfer.load_state_dict(state["transfer"])
        fallback = state["transfer_fallback"]
        self._transfer_fallback = None if fallback is None else float(fallback)
        # Drop every derived view; they rebuild from the monitor log.
        self._completed_cache = {}
        self._final_estimates = {}
        self._final_raw = {}
        self._eval_cache = {}
        self._acc = {}
        self._acc_monitor = None
        self._acc_cursor = 0
        self._rs_cursor = 0
        self._rs_monitor = None
        self._tracking_ok = False

    # ------------------------------------------------------------------
    # the five prediction policies (§III-C)
    # ------------------------------------------------------------------
    def _ingest_completions(self, monitor: Monitor) -> None:
        """Advance the per-stage accumulators to the monitor's log head."""
        monitor_id = id(monitor)
        if self._acc_monitor != monitor_id:
            self._acc_monitor = monitor_id
            self._acc = {}
            self._acc_cursor = 0
        log_len = monitor.completed_log_length()
        if log_len == self._acc_cursor:
            return
        accs = self._acc
        accs_get = accs.get
        use_median = self.config.use_median
        # :meth:`_StageAccumulator.add` inlined: the loop runs once per
        # completion ever recorded, and the method-call overhead measurably
        # dominates the work it wraps at fleet scale. New values are
        # appended and each touched list re-sorted once at the end —
        # timsort is stable, so the result is element-for-element identical
        # to per-item ``insort`` (equal values keep arrival order, exactly
        # as repeated right-insertions place them) at a fraction of the
        # cost when a tick absorbs a large completion batch.
        dirty: dict[int, list] = {}
        for attempt in monitor.completed_since(self._acc_cursor):
            stage_id = attempt.stage_id
            acc = accs_get(stage_id)
            if acc is None:
                acc = accs[stage_id] = _StageAccumulator(use_median)
            acc.count += 1
            exec_time = attempt.execution_time
            if exec_time is None:
                continue
            size = attempt.input_size
            if use_median:
                by_time = acc.by_time
                by_time.append(exec_time)
                dirty[id(by_time)] = by_time
                size_times = acc.size_times
                times = size_times.get(size)
                if times is None:
                    times = size_times[size] = []
                    sizes = acc.sizes
                    sizes.append(size)
                    dirty[id(sizes)] = sizes
                times.append(exec_time)
                dirty[id(times)] = times
            else:
                by_size = acc.by_size
                by_size.append((size, attempt._stage_seq, exec_time))
                dirty[id(by_size)] = by_size
                by_seq = acc.by_seq
                by_seq.append((attempt._stage_seq, exec_time))
                dirty[id(by_seq)] = by_seq
        for lst in dirty.values():
            lst.sort()
        self._acc_cursor = log_len

    def _completed_aggregates(
        self, stage_id: str, monitor: Monitor
    ) -> tuple[float | None, list[tuple[float, float]]]:
        """(aggregate completed exec time, input-size groups) for a stage.

        Cached on the monitor's per-stage completed-version counter, and
        recomputed from incrementally maintained sorted flat tuples (the
        log-fed accumulators) rather than re-sorting attempt objects; the
        full-scan path remains as the exact fallback and reference.
        """
        version = monitor.completed_version(stage_id)
        cached = self._completed_cache.get(stage_id)
        if (
            cached is not None
            and cached[0] == id(monitor)
            and cached[1] == version
        ):
            return cached[2], cached[3]
        self._ingest_completions(monitor)
        acc = self._acc.get(stage_id)
        if acc is not None and acc.count == version:
            if acc.count:
                if self.config.use_median:
                    # value-sorted lists are maintained per completion;
                    # each median is an index, not an aggregation
                    median_completed = median_sorted(acc.by_time)
                    groups = self._cluster_median(acc)
                else:
                    median_completed = self._agg([t for _, t in acc.by_seq])
                    groups = self._cluster_sorted(acc.by_size)
            else:
                median_completed = None
                groups = []
        else:
            # the accumulator cannot account for every completion the
            # version counter reports (e.g. a monitor populated outside
            # the engine's record path) — take the exact full scan
            median_completed, groups = self._aggregates_full_scan(
                stage_id, monitor
            )
        self._completed_cache[stage_id] = (
            id(monitor), version, median_completed, groups
        )
        return median_completed, groups

    def _cluster_median(
        self, acc: _StageAccumulator
    ) -> list[tuple[float, float]]:
        """Input-size groups with median aggregates, from sorted state.

        Clustering over the *distinct* sizes is identical to
        :func:`group_by_input_size` over the individual attempts: equal
        sizes are consecutive in the sorted walk and always compare
        equivalent to their own group's representative (the group's first
        — smallest — size), so they can never open a new group. The
        median per group is order-free over the group's multiset, so
        value-sorted per-size lists feed it directly.
        """
        rtol = self.config.input_size_rtol
        clusters: list[tuple[float, list[list[float]]]] = []
        size_times = acc.size_times
        for size in acc.sizes:
            if clusters and _sizes_equivalent(clusters[-1][0], size, rtol):
                clusters[-1][1].append(size_times[size])
            else:
                clusters.append((size, [size_times[size]]))
        out: list[tuple[float, float]] = []
        for rep, members in clusters:
            if len(members) == 1:
                out.append((rep, median_sorted(members[0])))
            else:
                out.append((rep, median_sorted(sorted(chain.from_iterable(members)))))
        return out

    def _cluster_sorted(
        self, entries: list[tuple[float, int, float]]
    ) -> list[tuple[float, float]]:
        """Cluster (size, seq, time) entries already sorted by (size, seq).

        Identical clustering to :func:`group_by_input_size` — same greedy
        walk over the same sequence — without re-sorting attempt objects.
        """
        rtol = self.config.input_size_rtol
        raw: list[tuple[float, list[float]]] = []
        for size, _, exec_time in entries:
            if raw and _sizes_equivalent(raw[-1][0], size, rtol):
                raw[-1][1].append(exec_time)
            else:
                raw.append((size, [exec_time]))
        agg = self._agg
        return [(size, agg(times)) for size, times in raw]

    def _aggregates_full_scan(
        self, stage_id: str, monitor: Monitor
    ) -> tuple[float | None, list[tuple[float, float]]]:
        """The historical O(n log n) aggregation — exact reference."""
        completed = monitor.completed_in_stage(stage_id)
        if not completed:
            return None, []
        exec_times = [
            a.execution_time for a in completed if a.execution_time is not None
        ]
        median_completed = self._agg(exec_times)
        groups = [
            (size, self._agg(times))
            for size, times in group_by_input_size(
                completed, self.config.input_size_rtol
            )
        ]
        return median_completed, groups

    def _stage_view(self, stage_id: str, monitor: Monitor, now: float) -> "_StageView":
        """Aggregate one stage's peer-task data once (shared by all its
        incomplete tasks within a tick — stages can hold thousands)."""
        running = monitor.running_in_stage(stage_id)
        median_elapsed = (
            self._agg([a.elapsed_execution(now) for a in running])
            if running
            else None
        )
        median_completed, groups = self._completed_aggregates(stage_id, monitor)
        return _StageView(
            stage_id=stage_id,
            has_completed=median_completed is not None,
            has_running=bool(running),
            median_elapsed=median_elapsed,
            median_completed=median_completed,
            groups=groups,
            group_sizes=[g[0] for g in groups],
        )

    def estimate_execution(
        self,
        task_id: str,
        phase: TaskExecState,
        monitor: Monitor,
        now: float,
        *,
        _view: "_StageView | None" = None,
    ) -> tuple[float, PredictionPolicy]:
        """Estimated minimum execution time for an incomplete task.

        Implements the policy selection of §III-C verbatim; returns the
        estimate and which policy produced it. ``_view`` is an internal
        fast path: :meth:`build_run_state` precomputes one stage view and
        shares it across the stage's tasks.
        """
        view = (
            _view
            if _view is not None
            else self._stage_view(self.workflow.stage_of[task_id], monitor, now)
        )

        if not view.has_completed:
            if view.has_running:
                # Policy 2: conservatively presume running tasks are about
                # to complete; the estimate is their median run time so far.
                assert view.median_elapsed is not None
                return view.median_elapsed, PredictionPolicy.RUNNING_ONLY
            # Policy 1: nothing observed at this stage. (A stage whose only
            # attempts were all killed also lands here: with no live data
            # the conservative floor is zero.)
            return 0.0, PredictionPolicy.NO_TASK_STARTED

        if phase is TaskExecState.BLOCKED:
            # Policy 3: input data not yet available; use the stage median.
            assert view.median_completed is not None
            return view.median_completed, PredictionPolicy.COMPLETED_UNREADY

        return self._estimate_sized(
            self.workflow.stage_of[task_id], view, self._input_size[task_id]
        )

    def _estimate_sized(
        self, stage_id: str, view: "_StageView", input_size: float
    ) -> tuple[float, PredictionPolicy]:
        """Policies 4/5 for a READY/in-flight task of known input size."""
        rtol = self.config.input_size_rtol
        for size, agg_time in view.groups:
            if _sizes_equivalent(size, input_size, rtol):
                # Policy 4: a group L of completed peers shares this size.
                return agg_time, PredictionPolicy.MATCHED_GROUP
        # Policy 5: ready to run with a previously unseen input size.
        return (
            self._shared.predict(self._ogd[stage_id], input_size),
            PredictionPolicy.OGD,
        )

    def _sized_eval_memo(
        self, stage_id: str, monitor: Monitor
    ) -> dict[float, tuple[float, PredictionPolicy]]:
        """The Policy 4/5 memo for a stage, valid for the current models.

        Keyed on ``(monitor, completed-version, OGD generation)``: both
        the group table (Policy 4) and the OGD coefficients (Policy 5) are
        pure functions of those counters, so entries stay exact across
        ticks — and are discarded wholesale the moment either advances.
        """
        key_monitor = id(monitor)
        key_version = monitor.completed_version(stage_id)
        key_generation = self._ogd[stage_id].generation
        cached = self._eval_cache.get(stage_id)
        if (
            cached is not None
            and cached[0] == key_monitor
            and cached[1] == key_version
            and cached[2] == key_generation
        ):
            return cached[3]
        memo: dict[float, tuple[float, PredictionPolicy]] = {}
        self._eval_cache[stage_id] = (key_monitor, key_version, key_generation, memo)
        return memo

    # ------------------------------------------------------------------
    # run-state assembly
    # ------------------------------------------------------------------
    def build_run_state(
        self, master: FrameworkMaster, monitor: Monitor, now: float
    ) -> RunState:
        """Annotate every task with its estimate and remaining occupancy.

        Incremental and lazy: completions are absorbed from the monitor's
        log as a delta patching the per-stage class counts, per-stage
        contexts are captured once, in-flight tasks are annotated eagerly
        (the projection needs their instance/sunk state), and everything
        else materializes on first access. Falls back to the exact full
        scan whenever the delta view cannot be proven consistent.
        """
        t_data = self.transfer_estimate()
        monitor_id = id(monitor)
        if self._rs_monitor != monitor_id:
            # new run / new monitor: restart the delta stream from zero
            self._rs_monitor = monitor_id
            self._rs_cursor = 0
            self._final_estimates = {}
            self._final_raw = {}
            self._reset_tracking()
        if not self._base_eval:
            # overridden estimate_execution (oracle): the inlined policy
            # selection below would bypass it — take the exact scan
            return self._build_run_state_full(master, monitor, now, t_data)

        new_attempts = monitor.completed_since(self._rs_cursor)
        self._rs_cursor = monitor.completed_log_length()
        final_raw = self._final_raw
        stage_of = self.workflow.stage_of
        tracking_ok = self._tracking_ok
        unfinished = self._unfinished_parents
        blocked_count = self._blocked_count
        nonblocked_sizes = self._nonblocked_sizes
        stage_incomplete = self._stage_incomplete
        input_size = self._input_size
        children_map = self.workflow.children_tuples
        unfinished_pop = unfinished.pop
        unfinished_get = unfinished.get
        newly: list[str] = []
        newly_append = newly.append
        for attempt in new_attempts:
            task_id = attempt.task_id
            newly_append(task_id)
            sid = stage_of[task_id]
            final_raw[task_id] = (
                attempt.execution_time or 0.0,
                attempt.instance_id,
            )
            if not tracking_ok:
                continue
            if unfinished_pop(task_id, None) is None:
                # a completion we never tracked (duplicate/replayed log
                # entry) — the class counts are unprovable from here on
                tracking_ok = False
                continue
            stage_incomplete[sid] -= 1
            sizes = nonblocked_sizes[sid]
            sizes[input_size[task_id]] -= 1
            for child in children_map[task_id]:
                count = unfinished_get(child)
                if count is None:
                    continue
                count -= 1
                unfinished[child] = count
                if count == 0:
                    csid = stage_of[child]
                    blocked_count[csid] -= 1
                    csizes = nonblocked_sizes[csid]
                    csize = input_size[child]
                    csizes[csize] = csizes.get(csize, 0) + 1
        self._tracking_ok = tracking_ok
        newly_completed = tuple(newly)

        if not tracking_ok or len(final_raw) != master.completed_count:
            # the master knows completions the monitor log does not (or
            # vice versa) — e.g. hand-built fixtures; rebuild exactly
            return self._build_run_state_full(master, monitor, now, t_data)

        # The phase snapshot: one C-speed dict copy, frozen at the tick so
        # deferred materialization cannot see post-tick transitions.
        phases = dict(master.states)

        # per-stage tick contexts + the §III-C policy tally, both from
        # the incrementally maintained class counts
        counts: dict[PredictionPolicy, int] = {}
        if final_raw:
            counts[PredictionPolicy.OBSERVED] = len(final_raw)
        contexts: dict[str, _StageTickContext] = {}
        rtol = self.config.input_size_rtol
        shared = self._shared
        ogd = self._ogd
        total_incomplete = 0
        for stage in self.workflow.stages:
            sid = stage.stage_id
            incomplete_n = stage_incomplete[sid]
            if incomplete_n <= 0:
                if incomplete_n < 0:
                    return self._build_run_state_full(master, monitor, now, t_data)
                continue
            total_incomplete += incomplete_n
            view = self._stage_view(sid, monitor, now)
            model = ogd[sid]
            ctx = contexts[sid] = _StageTickContext(
                view=view,
                memo=self._sized_eval_memo(sid, monitor),
                rtol=rtol,
                alpha0=model.alpha0,
                alpha1=model.alpha1,
                scale=model.scale,
                shared=shared,
            )
            if not view.has_completed:
                policy = (
                    PredictionPolicy.RUNNING_ONLY
                    if view.has_running
                    else PredictionPolicy.NO_TASK_STARTED
                )
                counts[policy] = counts.get(policy, 0) + incomplete_n
                continue
            blocked_n = blocked_count[sid]
            if blocked_n:
                counts[PredictionPolicy.COMPLETED_UNREADY] = (
                    counts.get(PredictionPolicy.COMPLETED_UNREADY, 0) + blocked_n
                )
            for size, cnt in nonblocked_sizes[sid].items():
                if cnt:
                    policy = ctx.sized(size)[1]
                    counts[policy] = counts.get(policy, 0) + cnt
        if total_incomplete + len(final_raw) != len(self.workflow):
            return self._build_run_state_full(master, monitor, now, t_data)

        # eager in-flight annotations (the projection and Algorithm 2 read
        # their instance/sunk state every tick), in topological order
        in_flight_ids = monitor.in_flight_task_ids()
        try:
            in_flight_ids.sort(key=self._topo_index.__getitem__)
        except KeyError:
            return self._build_run_state_full(master, monitor, now, t_data)
        data: dict[str, TaskEstimate] = {}
        for task_id in in_flight_ids:
            phase = phases.get(task_id)
            if phase is None or not phase.occupies_slot:
                return self._build_run_state_full(master, monitor, now, t_data)
            sid = stage_of[task_id]
            ctx = contexts.get(sid)
            if ctx is None:
                return self._build_run_state_full(master, monitor, now, t_data)
            view = ctx.view
            if not view.has_completed:
                if view.has_running:
                    assert view.median_elapsed is not None
                    estimate = view.median_elapsed
                    policy = PredictionPolicy.RUNNING_ONLY
                else:
                    estimate = 0.0
                    policy = PredictionPolicy.NO_TASK_STARTED
            else:
                estimate, policy = ctx.sized(input_size[task_id])
            data[task_id] = self._annotate_incomplete(
                task_id, sid, phase, estimate, policy, monitor, now, t_data
            )

        estimates = _LazyEstimates(
            order=self.workflow.topological_order(),
            phases=phases,
            final=self._final_estimates,
            final_raw=final_raw,
            data=data,
            ctx=contexts,
            stage_of=stage_of,
            input_size=input_size,
            ss_key=self._stage_size_key,
            t_data=t_data,
            annotate=self._annotate_incomplete,
            monitor=monitor,
            now=now,
        )
        state = RunState(now=now, transfer_estimate=t_data, estimates=estimates)
        state.newly_completed = newly_completed
        state.completed_count = master.completed_count
        state.in_flight = tuple(in_flight_ids)
        state.unfinished_parents = unfinished
        state._policy_counts = counts
        return state

    def _build_run_state_full(
        self, master: FrameworkMaster, monitor: Monitor, now: float, t_data: float
    ) -> RunState:
        """The historical full-DAG scan — exact reference and fallback.

        Leaves the delta fields of the returned :class:`RunState` unset so
        downstream incremental consumers (the lookahead simulator) also
        take their exact fallback, and resynchronizes the predictor's own
        incremental bookkeeping so the next tick can resume the fast path.
        """
        state = RunState(now=now, transfer_estimate=t_data)
        views: dict[str, _StageView] = {}
        estimates = state.estimates
        final = self._final_estimates
        final_raw = self._final_raw
        workflow = self.workflow
        stage_of = workflow.stage_of
        task_state = master.state
        completed = TaskExecState.COMPLETED
        input_size = self._input_size
        # resynchronized class tracking, rebuilt alongside the scan
        blocked_count = {s.stage_id: 0 for s in workflow.stages}
        nonblocked_sizes: dict[str, dict[float, int]] = {
            s.stage_id: {} for s in workflow.stages
        }
        stage_incomplete = {s.stage_id: 0 for s in workflow.stages}
        unfinished: dict[str, int] = {}
        completed_set: set[str] = set()
        parents_of = workflow.parents
        for task_id in workflow.topological_order():
            phase = task_state(task_id)
            if phase is completed:
                completed_set.add(task_id)
                # A completed task's annotation is immutable; build it the
                # first time the task is seen completed, then reuse. Keep
                # the raw record in sync so the delta path's completed
                # count reconciles after this resync.
                estimate = final.get(task_id)
                if estimate is None:
                    attempt = monitor.current_attempt(task_id)
                    final_raw[task_id] = (
                        attempt.execution_time or 0.0,
                        attempt.instance_id,
                    )
                    estimate = final[task_id] = TaskEstimate(
                        task_id=task_id,
                        stage_id=stage_of[task_id],
                        phase=phase,
                        exec_estimate=attempt.execution_time or 0.0,
                        policy=PredictionPolicy.OBSERVED,
                        remaining_occupancy=0.0,
                        sunk_occupancy=0.0,
                        instance_id=attempt.instance_id,
                    )
                estimates[task_id] = estimate
                continue
            stage_id = stage_of[task_id]
            stage_incomplete[stage_id] += 1
            unfinished[task_id] = sum(
                1 for p in parents_of(task_id) if p not in completed_set
            )
            if phase is TaskExecState.BLOCKED:
                blocked_count[stage_id] += 1
            else:
                sizes = nonblocked_sizes[stage_id]
                size = input_size[task_id]
                sizes[size] = sizes.get(size, 0) + 1
            view = views.get(stage_id)
            if view is None:
                view = views[stage_id] = self._stage_view(stage_id, monitor, now)
            estimate, policy = self.estimate_execution(
                task_id, phase, monitor, now, _view=view
            )
            estimates[task_id] = self._annotate_incomplete(
                task_id, stage_id, phase, estimate, policy, monitor, now, t_data
            )
        # resync the delta machinery with what the scan established
        self._unfinished_parents = unfinished
        self._blocked_count = blocked_count
        self._nonblocked_sizes = nonblocked_sizes
        self._stage_incomplete = stage_incomplete
        self._tracking_ok = True
        # The scan-derived completion topology is exact, so hand it to the
        # projection even though the other delta fields stay unset.
        state.unfinished_parents = unfinished
        state.completed_count = len(completed_set)
        return state

    def _annotate_incomplete(
        self,
        task_id: str,
        stage_id: str,
        phase: TaskExecState,
        estimate: float,
        policy: PredictionPolicy,
        monitor: Monitor,
        now: float,
        t_data: float,
    ) -> TaskEstimate:
        sunk = 0.0
        instance_id: str | None = None
        if phase in (TaskExecState.BLOCKED, TaskExecState.READY):
            remaining = t_data + estimate + t_data
        else:
            attempt = monitor.current_attempt(task_id)
            sunk = attempt.occupancy_elapsed(now)
            instance_id = attempt.instance_id
            if phase is TaskExecState.STAGING_IN:
                elapsed_in = now - attempt.dispatch_time
                remaining = max(t_data - elapsed_in, 0.0) + estimate + t_data
            elif phase is TaskExecState.EXECUTING:
                elapsed_exec = attempt.elapsed_execution(now)
                # A running task will run at least as long as it already
                # has (§III-A's conservative presumption).
                estimate = max(estimate, elapsed_exec)
                if policy is PredictionPolicy.RUNNING_ONLY:
                    # Before any peer completes, the stage's estimate is the
                    # median elapsed time and keeps growing; §III-E's pool
                    # arithmetic ("at time U the pool has N instances")
                    # requires running tasks to contribute the full growing
                    # estimate, not estimate-minus-elapsed (which would be
                    # ~0 and freeze growth).
                    remaining = estimate + t_data
                else:
                    remaining = max(estimate - elapsed_exec, 0.0) + t_data
            else:  # STAGING_OUT
                assert attempt.exec_end is not None
                elapsed_out = now - attempt.exec_end
                remaining = max(t_data - elapsed_out, 0.0)
        return TaskEstimate(
            task_id=task_id,
            stage_id=stage_id,
            phase=phase,
            exec_estimate=estimate,
            policy=policy,
            remaining_occupancy=remaining,
            sunk_occupancy=sunk,
            instance_id=instance_id,
        )

    def state_size_bytes(self) -> int:
        """Model footprint: OGD coefficients per stage + transfer window."""
        ogd = sum(m.state_size_bytes() for m in self._ogd.values())
        return ogd + 8 * self.config.transfer_window
