"""Online task-performance prediction (paper §III-B1 and §III-C).

At the start of each MAPE iteration the task predictor harvests the
previous interval's measurements and updates two kinds of estimators:

- per-stage execution-time models, applied through the five online
  prediction policies of §III-C (reproduced in
  :class:`~repro.core.runstate.PredictionPolicy`);
- the data-transfer estimate ``t̃_data``, the (moving) median of the
  transfer times observed between consecutive iterations (§III-B1).

The predictor then annotates the DAG wavefront with conservative minimum
remaining occupancy times, producing the
:class:`~repro.core.runstate.RunState` the lookahead simulator consumes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.config import WireConfig
from repro.core.ogd import OnlineGradientDescentModel
from repro.core.runstate import PredictionPolicy, RunState, TaskEstimate
from repro.dag.workflow import Workflow
from repro.engine.master import FrameworkMaster, TaskExecState
from repro.engine.monitor import Monitor, TaskAttempt
from repro.metrics.stats import MovingMedian, mean, median

__all__ = ["TaskPredictor", "group_by_input_size"]


def group_by_input_size(
    attempts: Sequence[TaskAttempt], rtol: float
) -> list[tuple[float, list[float]]]:
    """Cluster completed attempts by (approximately) equal input size.

    Returns ``(representative_size, execution_times)`` pairs sorted by
    size. Two sizes are "equivalent" (paper Policy 4's group *L*) when
    they differ by at most ``rtol`` relative to the larger of the two.
    """
    completed = sorted(
        (a for a in attempts if a.execution_time is not None),
        key=lambda a: a.input_size,
    )
    groups: list[tuple[float, list[float]]] = []
    for attempt in completed:
        size = attempt.input_size
        exec_time = attempt.execution_time
        assert exec_time is not None
        if groups and _sizes_equivalent(groups[-1][0], size, rtol):
            groups[-1][1].append(exec_time)
        else:
            groups.append((size, [exec_time]))
    return groups


def _sizes_equivalent(a: float, b: float, rtol: float) -> bool:
    if a == b:
        return True
    return abs(a - b) <= rtol * max(abs(a), abs(b))


@dataclass(frozen=True)
class _StageView:
    """One stage's peer-task aggregates at a single instant."""

    stage_id: str
    has_completed: bool
    has_running: bool
    #: aggregate elapsed run time of in-flight tasks (Policy 2), if any
    median_elapsed: float | None
    #: aggregate execution time of completed tasks (Policy 3), if any
    median_completed: float | None
    #: (representative input size, aggregate execution time) per group
    groups: list[tuple[float, float]]


class TaskPredictor:
    """Per-stage online estimators plus the transfer-time estimate."""

    def __init__(self, workflow: Workflow, config: WireConfig | None = None) -> None:
        self.workflow = workflow
        self.config = config or WireConfig()
        self._agg: Callable[[Sequence[float]], float] = (
            median if self.config.use_median else mean
        )
        self._ogd: dict[str, OnlineGradientDescentModel] = {
            stage.stage_id: OnlineGradientDescentModel(self.config.learning_rate)
            for stage in workflow.stages
        }
        self._transfer = MovingMedian(self.config.transfer_window)
        self._transfer_fallback: float | None = None
        # Per-stage aggregates over *completed* attempts are pure functions
        # of the stage's completed set; cache them keyed on the monitor's
        # completed-version counter so stages that gained no completions
        # since the last tick (e.g. finished stages) are not re-aggregated.
        #: stage -> (monitor id, version, median_completed, groups)
        self._completed_cache: dict[
            str, tuple[int, int, float | None, list[tuple[float, float]]]
        ] = {}
        # A completed task's annotation never changes again; reuse it.
        self._final_estimates: dict[str, TaskEstimate] = {}

    # ------------------------------------------------------------------
    # Monitor + Analyze: harvest the previous interval
    # ------------------------------------------------------------------
    def observe_interval(self, monitor: Monitor, window_start: float, now: float) -> None:
        """Update all models from data gathered in ``(window_start, now]``.

        Called once per MAPE iteration before any prediction is made.
        """
        observations = monitor.transfer_times_between(window_start, now)
        if observations:
            interval_median = median(observations)
            self._transfer.push(interval_median)
            self._transfer_fallback = interval_median
        for stage in self.workflow.stages:
            _, training_set = self._completed_aggregates(stage.stage_id, monitor)
            if not training_set:
                continue
            model = self._ogd[stage.stage_id]
            for _ in range(self.config.ogd_epochs_per_update):
                model.update(training_set)

    def transfer_estimate(self) -> float:
        """Current ``t̃_data`` in seconds (0 before any observation)."""
        value = self._transfer.value()
        if value is not None:
            return value
        return self._transfer_fallback or 0.0

    def ogd_model(self, stage_id: str) -> OnlineGradientDescentModel:
        """The stage's online-gradient-descent model (read access)."""
        return self._ogd[stage_id]

    # ------------------------------------------------------------------
    # the five prediction policies (§III-C)
    # ------------------------------------------------------------------
    def _completed_aggregates(
        self, stage_id: str, monitor: Monitor
    ) -> tuple[float | None, list[tuple[float, float]]]:
        """(aggregate completed exec time, input-size groups) for a stage.

        Cached on the monitor's per-stage completed-version counter: the
        aggregation only reruns when the stage actually gained a
        completion since it was last computed.
        """
        version = monitor.completed_version(stage_id)
        cached = self._completed_cache.get(stage_id)
        if (
            cached is not None
            and cached[0] == id(monitor)
            and cached[1] == version
        ):
            return cached[2], cached[3]
        completed = monitor.completed_in_stage(stage_id)
        if completed:
            exec_times = [
                a.execution_time for a in completed if a.execution_time is not None
            ]
            median_completed = self._agg(exec_times)
            groups = [
                (size, self._agg(times))
                for size, times in group_by_input_size(
                    completed, self.config.input_size_rtol
                )
            ]
        else:
            median_completed = None
            groups = []
        self._completed_cache[stage_id] = (
            id(monitor), version, median_completed, groups
        )
        return median_completed, groups

    def _stage_view(self, stage_id: str, monitor: Monitor, now: float) -> "_StageView":
        """Aggregate one stage's peer-task data once (shared by all its
        incomplete tasks within a tick — stages can hold thousands)."""
        running = monitor.running_in_stage(stage_id)
        median_elapsed = (
            self._agg([a.elapsed_execution(now) for a in running])
            if running
            else None
        )
        median_completed, groups = self._completed_aggregates(stage_id, monitor)
        return _StageView(
            stage_id=stage_id,
            has_completed=median_completed is not None,
            has_running=bool(running),
            median_elapsed=median_elapsed,
            median_completed=median_completed,
            groups=groups,
        )

    def estimate_execution(
        self,
        task_id: str,
        phase: TaskExecState,
        monitor: Monitor,
        now: float,
        *,
        _view: "_StageView | None" = None,
    ) -> tuple[float, PredictionPolicy]:
        """Estimated minimum execution time for an incomplete task.

        Implements the policy selection of §III-C verbatim; returns the
        estimate and which policy produced it. ``_view`` is an internal
        fast path: :meth:`build_run_state` precomputes one stage view and
        shares it across the stage's tasks.
        """
        view = (
            _view
            if _view is not None
            else self._stage_view(self.workflow.stage_of[task_id], monitor, now)
        )

        if not view.has_completed:
            if view.has_running:
                # Policy 2: conservatively presume running tasks are about
                # to complete; the estimate is their median run time so far.
                assert view.median_elapsed is not None
                return view.median_elapsed, PredictionPolicy.RUNNING_ONLY
            # Policy 1: nothing observed at this stage. (A stage whose only
            # attempts were all killed also lands here: with no live data
            # the conservative floor is zero.)
            return 0.0, PredictionPolicy.NO_TASK_STARTED

        if phase is TaskExecState.BLOCKED:
            # Policy 3: input data not yet available; use the stage median.
            assert view.median_completed is not None
            return view.median_completed, PredictionPolicy.COMPLETED_UNREADY

        task = self.workflow.task(task_id)
        for size, agg_time in view.groups:
            if _sizes_equivalent(size, task.input_size, self.config.input_size_rtol):
                # Policy 4: a group L of completed peers shares this size.
                return agg_time, PredictionPolicy.MATCHED_GROUP
        # Policy 5: ready to run with a previously unseen input size.
        return (
            self._ogd[self.workflow.stage_of[task_id]].predict(task.input_size),
            PredictionPolicy.OGD,
        )

    # ------------------------------------------------------------------
    # run-state assembly
    # ------------------------------------------------------------------
    def build_run_state(
        self, master: FrameworkMaster, monitor: Monitor, now: float
    ) -> RunState:
        """Annotate every task with its estimate and remaining occupancy."""
        t_data = self.transfer_estimate()
        state = RunState(now=now, transfer_estimate=t_data)
        views: dict[str, _StageView] = {}
        estimates = state.estimates
        final = self._final_estimates
        stage_of = self.workflow.stage_of
        task_state = master.state
        completed = TaskExecState.COMPLETED
        for task_id in self.workflow.topological_order():
            phase = task_state(task_id)
            if phase is completed:
                # A completed task's annotation is immutable; build it the
                # first time the task is seen completed, then reuse.
                estimate = final.get(task_id)
                if estimate is None:
                    attempt = monitor.current_attempt(task_id)
                    estimate = final[task_id] = TaskEstimate(
                        task_id=task_id,
                        stage_id=stage_of[task_id],
                        phase=phase,
                        exec_estimate=attempt.execution_time or 0.0,
                        policy=PredictionPolicy.OBSERVED,
                        remaining_occupancy=0.0,
                        sunk_occupancy=0.0,
                        instance_id=attempt.instance_id,
                    )
                estimates[task_id] = estimate
                continue
            stage_id = stage_of[task_id]
            view = views.get(stage_id)
            if view is None:
                view = views[stage_id] = self._stage_view(stage_id, monitor, now)
            estimate, policy = self.estimate_execution(
                task_id, phase, monitor, now, _view=view
            )
            estimates[task_id] = self._annotate_incomplete(
                task_id, stage_id, phase, estimate, policy, monitor, now, t_data
            )
        return state

    def _annotate_incomplete(
        self,
        task_id: str,
        stage_id: str,
        phase: TaskExecState,
        estimate: float,
        policy: PredictionPolicy,
        monitor: Monitor,
        now: float,
        t_data: float,
    ) -> TaskEstimate:
        sunk = 0.0
        instance_id: str | None = None
        if phase in (TaskExecState.BLOCKED, TaskExecState.READY):
            remaining = t_data + estimate + t_data
        else:
            attempt = monitor.current_attempt(task_id)
            sunk = attempt.occupancy_elapsed(now)
            instance_id = attempt.instance_id
            if phase is TaskExecState.STAGING_IN:
                elapsed_in = now - attempt.dispatch_time
                remaining = max(t_data - elapsed_in, 0.0) + estimate + t_data
            elif phase is TaskExecState.EXECUTING:
                elapsed_exec = attempt.elapsed_execution(now)
                # A running task will run at least as long as it already
                # has (§III-A's conservative presumption).
                estimate = max(estimate, elapsed_exec)
                if policy is PredictionPolicy.RUNNING_ONLY:
                    # Before any peer completes, the stage's estimate is the
                    # median elapsed time and keeps growing; §III-E's pool
                    # arithmetic ("at time U the pool has N instances")
                    # requires running tasks to contribute the full growing
                    # estimate, not estimate-minus-elapsed (which would be
                    # ~0 and freeze growth).
                    remaining = estimate + t_data
                else:
                    remaining = max(estimate - elapsed_exec, 0.0) + t_data
            else:  # STAGING_OUT
                assert attempt.exec_end is not None
                elapsed_out = now - attempt.exec_end
                remaining = max(t_data - elapsed_out, 0.0)
        return TaskEstimate(
            task_id=task_id,
            stage_id=stage_id,
            phase=phase,
            exec_estimate=estimate,
            policy=policy,
            remaining_occupancy=remaining,
            sunk_occupancy=sunk,
            instance_id=instance_id,
        )

    def state_size_bytes(self) -> int:
        """Model footprint: OGD coefficients per stage + transfer window."""
        ogd = sum(m.state_size_bytes() for m in self._ogd.values())
        return ogd + 8 * self.config.transfer_window
