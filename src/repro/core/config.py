"""WIRE controller configuration.

Every constant the paper fixes is a field here with the paper's value as
the default, so the ablation benches can sweep them without touching the
algorithms: the 0.2u restart/partial-instance threshold (§III-D), the 0.1
OGD learning rate (Algorithm 1), the first-five stage boost (§III-C), and
the median estimator choice (§III-C).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import check_in_range, check_positive

__all__ = ["WireConfig"]


@dataclass(frozen=True)
class WireConfig:
    """Tunable parameters of the WIRE MAPE controller.

    Parameters
    ----------
    restart_threshold_fraction:
        Maximum restart cost, as a fraction of the charging unit, at which
        Algorithm 2 will still release an instance ("arbitrarily chosen as
        0.2u ... but freely configurable", §III-D). The same fraction
        bounds the tail-instance test in Algorithm 3 line 28.
    learning_rate:
        Online-gradient-descent step size (Algorithm 1 line 4).
    ogd_epochs_per_update:
        Gradient passes over the training set per MAPE iteration.
        Algorithm 1 performs exactly one; values > 1 are an extension for
        the learning-rate ablation.
    use_median:
        True (paper) uses medians for peer-task aggregation; False uses
        means — the §III-C design-choice ablation.
    input_size_rtol:
        Relative tolerance under which two input sizes count as
        "equivalent" for Policy 4's completed-group matching.
    transfer_window:
        Moving-median window (in MAPE intervals) for the transfer-time
        estimate ``t̃_data``. 1 = the paper's literal "median of the
        observations between the n-1th and nth iterations".
    lookahead:
        When False, the controller skips the workflow simulation and
        steers from the instantaneous ready/running load — the
        degenerate-to-reactive ablation.
    boost_k:
        Ready tasks per stage dispatched with high priority (§III-C: 5).
        Consumed by the engine's scheduler; carried here so one config
        object describes a full WIRE deployment.
    """

    restart_threshold_fraction: float = 0.2
    learning_rate: float = 0.1
    ogd_epochs_per_update: int = 1
    use_median: bool = True
    input_size_rtol: float = 0.02
    transfer_window: int = 1
    lookahead: bool = True
    boost_k: int = 5

    def __post_init__(self) -> None:
        check_in_range(
            "restart_threshold_fraction", self.restart_threshold_fraction, 0.0, 1.0
        )
        check_positive("learning_rate", self.learning_rate)
        if not isinstance(self.ogd_epochs_per_update, int) or (
            self.ogd_epochs_per_update < 1
        ):
            raise ValueError(
                "ogd_epochs_per_update must be an int >= 1, got "
                f"{self.ogd_epochs_per_update!r}"
            )
        check_in_range("input_size_rtol", self.input_size_rtol, 0.0, 1.0)
        if not isinstance(self.transfer_window, int) or self.transfer_window < 1:
            raise ValueError(
                f"transfer_window must be an int >= 1, got {self.transfer_window!r}"
            )
        if not isinstance(self.boost_k, int) or self.boost_k < 0:
            raise ValueError(f"boost_k must be an int >= 0, got {self.boost_k!r}")
