"""WIRE's run state: the belief the controller maintains about a run.

Paper §III-B: the MAPE components "maintain a *run state* that tracks the
worker instance pool and annotates the workflow DAG with the completed or
predicted minimum execution times for a subset of tasks in the run,
proceeding as a wavefront through the DAG as the workflow executes."

The run state is rebuilt at every tick from fresh monitoring data — it is
WIRE's *belief*, deliberately separate from the engine's ground truth.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.engine.master import TaskExecState

__all__ = ["PredictionPolicy", "RunState", "TaskEstimate"]


class PredictionPolicy(enum.IntEnum):
    """Which of §III-C's rules produced an estimate.

    Values 1-5 match the paper's numbering; OBSERVED marks a completed
    task whose execution time is known exactly rather than predicted.
    """

    OBSERVED = 0
    NO_TASK_STARTED = 1
    RUNNING_ONLY = 2
    COMPLETED_UNREADY = 3
    MATCHED_GROUP = 4
    OGD = 5


@dataclass(frozen=True, slots=True)
class TaskEstimate:
    """One task's annotation in the run state.

    ``exec_estimate`` is the predicted (or observed) total execution time;
    ``remaining_occupancy`` is the conservative minimum remaining slot
    occupancy from the snapshot time, including predicted data transfers —
    the quantity the lookahead simulator and Algorithm 3 consume.
    ``sunk_occupancy`` is the occupancy already consumed by the current
    attempt (the restart-cost basis, §III-B2).
    """

    task_id: str
    stage_id: str
    phase: TaskExecState
    exec_estimate: float
    policy: PredictionPolicy
    remaining_occupancy: float
    sunk_occupancy: float = 0.0
    instance_id: str | None = None


@dataclass
class RunState:
    """The controller's annotated snapshot at one MAPE tick.

    The delta fields (``newly_completed``, ``completed_count``,
    ``in_flight``) are optional accelerator metadata filled in by
    :meth:`~repro.core.predictor.TaskPredictor.build_run_state`: they let
    the lookahead simulator patch its persistent projection state
    incrementally instead of re-deriving the DAG completion topology from
    ``estimates`` every tick. A ``RunState`` built by hand (tests, custom
    policies) can leave them ``None`` — consumers then fall back to the
    exact from-scratch path.
    """

    now: float
    transfer_estimate: float
    estimates: dict[str, TaskEstimate] = field(default_factory=dict)
    #: task ids completed since the previous run state built by the same
    #: predictor, in completion order (None: unknown — force fallback)
    newly_completed: tuple[str, ...] | None = None
    #: total completed tasks at this tick (None: unknown)
    completed_count: int | None = None
    #: tasks currently occupying slots, in topological order (None: unknown)
    in_flight: tuple[str, ...] | None = None
    #: live reference to the predictor's incomplete-task -> unfinished
    #: parent count map at this tick (None: unknown). Consumers must
    #: treat it as read-only between ticks; the lookahead simulator
    #: adopts it directly instead of re-deriving the same map, and rolls
    #: back any temporary projection decrements through its undo log.
    unfinished_parents: "dict[str, int] | None" = None
    #: policy tally pre-counted during the run-state build (internal
    #: cache consumed by :meth:`policy_counts`)
    _policy_counts: dict[PredictionPolicy, int] | None = None

    def estimate(self, task_id: str) -> TaskEstimate:
        """The annotation for ``task_id``."""
        return self.estimates[task_id]

    def wavefront(self) -> list[TaskEstimate]:
        """All incomplete-task annotations, sorted by task id."""
        return sorted(
            (e for e in self.estimates.values() if e.phase is not TaskExecState.COMPLETED),
            key=lambda e: e.task_id,
        )

    def policy_counts(self) -> dict[PredictionPolicy, int]:
        """How many estimates each policy produced (diagnostics, Fig 4)."""
        if self._policy_counts is not None:
            return dict(self._policy_counts)
        counts: dict[PredictionPolicy, int] = {}
        for estimate in self.estimates.values():
            counts[estimate.policy] = counts.get(estimate.policy, 0) + 1
        return counts

    def state_size_bytes(self) -> int:
        """Approximate footprint of the annotations (§IV-F overhead).

        Counts the numeric payload per annotation (three floats, two small
        enums, an id reference), mirroring what a C implementation would
        keep; Python object overhead is not the paper's claim.
        """
        return 40 * len(self.estimates) + 16
