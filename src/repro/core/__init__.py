"""WIRE core: the paper's primary contribution.

- :class:`TaskPredictor` — the five online prediction policies (§III-C)
  plus the online-gradient-descent model (Algorithm 1);
- :class:`LookaheadSimulator` — the workflow simulator that predicts the
  upcoming load ``Q_task`` one control interval ahead (§III-B2);
- :class:`SteeringPolicy` / :func:`resize_pool` — the resource-steering
  policy (Algorithms 2 and 3);
- :class:`MapeController` — the MAPE loop tying them together.
"""

from repro.core.config import WireConfig
from repro.core.lookahead import (
    LookaheadSimulator,
    UpcomingLoad,
    UpcomingTask,
    VirtualInstance,
)
from repro.core.mape import MapeController, TickDiagnostics
from repro.core.ogd import OnlineGradientDescentModel
from repro.core.predictor import TaskPredictor, group_by_input_size
from repro.core.runstate import PredictionPolicy, RunState, TaskEstimate
from repro.core.steering import SteerableInstance, SteeringPolicy, resize_pool

__all__ = [
    "LookaheadSimulator",
    "MapeController",
    "OnlineGradientDescentModel",
    "PredictionPolicy",
    "RunState",
    "SteerableInstance",
    "SteeringPolicy",
    "TaskEstimate",
    "TaskPredictor",
    "TickDiagnostics",
    "UpcomingLoad",
    "UpcomingTask",
    "VirtualInstance",
    "WireConfig",
    "group_by_input_size",
    "resize_pool",
]
