"""Online gradient descent task-runtime model (paper Algorithm 1).

One model per stage. The prediction problem is the linear system of Eq. 1:

    t_i = alpha0_n + alpha1_n * d_i

with task input size ``d_i`` as the single feature. Each MAPE iteration
performs one full-batch gradient step over the current training set —
groups of completed tasks with equal input size, targeted at the group's
median execution time — starting from the previous iteration's
coefficients. Learning rate is 0.1; initial state alpha0 = alpha1 = 0.

Feature scaling
---------------
The paper leaves units unstated, but raw byte counts make the alpha1
gradient (which carries a ``d^2`` factor) explode for any realistic input
size. We therefore normalize sizes by the largest size seen so far before
applying Algorithm 1 verbatim; coefficients are stored in normalized
space and rescaled transparently on prediction. This preserves the
algorithm exactly up to a benign reparameterization and is recorded in
DESIGN.md as a modelling decision.
"""

from __future__ import annotations

from repro.util.validation import check_positive

__all__ = ["OnlineGradientDescentModel"]


class OnlineGradientDescentModel:
    """Per-stage online linear model of execution time vs input size."""

    def __init__(self, learning_rate: float = 0.1) -> None:
        check_positive("learning_rate", learning_rate)
        self.learning_rate = learning_rate
        #: coefficients in normalized-feature space (d' = d / scale)
        self.alpha0 = 0.0
        self.alpha1 = 0.0
        #: divisor applied to input sizes; grows monotonically
        self.scale = 1.0
        #: gradient steps taken so far
        self.updates = 0

    @property
    def generation(self) -> int:
        """Monotonic model-state counter (bumped on every gradient step).

        Coefficients and the feature scale only change inside
        :meth:`update`, so two evaluations at the same generation are
        guaranteed identical — the key consumers use to memoize
        :meth:`predict` results across MAPE ticks (and, content-addressed,
        across fleet tenants).
        """
        return self.updates

    # ------------------------------------------------------------------
    def _rescale(self, new_scale: float) -> None:
        """Adopt a larger feature scale without changing predictions.

        The prediction is ``a0 + a1 * d / s``; keeping it invariant under
        ``s -> s_new`` requires ``a1_new = a1 * s_new / s``.
        """
        if new_scale <= self.scale:
            return
        self.alpha1 *= new_scale / self.scale
        self.scale = new_scale

    def update(self, training_set: list[tuple[float, float]]) -> None:
        """One gradient step over ``training_set`` (Algorithm 1).

        ``training_set`` holds ``(d_M, t_M)`` points: each the input size
        of a group of completed tasks and the group's median execution
        time. An empty set is a no-op (nothing completed yet).
        """
        if not training_set:
            return
        largest = max(d for d, _ in training_set)
        if largest > self.scale:
            self._rescale(largest)
        m = len(training_set)
        grad0 = 0.0
        grad1 = 0.0
        # locals hoisted out of the loop: the full-batch step runs over
        # every size group each tick, at fleet scale thousands of times
        a0 = self.alpha0
        a1 = self.alpha1
        scale = self.scale
        coeff = -(2.0 / m)
        for d, t in training_set:
            dn = d / scale
            residual = t - (a1 * dn + a0)
            grad0 += coeff * residual
            grad1 += coeff * dn * residual
        self.alpha0 = a0 - self.learning_rate * grad0
        self.alpha1 = a1 - self.learning_rate * grad1
        self.updates += 1

    @staticmethod
    def predict_from(
        alpha0: float, alpha1: float, scale: float, input_size: float
    ) -> float:
        """:meth:`predict` as a pure function of explicit coefficients.

        The run-state build captures ``(alpha0, alpha1, scale)`` at the
        tick and evaluates lazily through this single implementation, so a
        deferred evaluation is bit-identical to one made at capture time
        no matter how the live model has moved since.
        """
        value = alpha0 + alpha1 * (input_size / scale)
        return max(0.0, value)

    def predict(self, input_size: float) -> float:
        """Predicted execution time for a task with ``input_size`` bytes.

        Clamped at zero: Algorithm 1 can transiently produce a negative
        intercept, and a negative *minimum remaining occupancy* would be
        meaningless downstream.
        """
        return self.predict_from(self.alpha0, self.alpha1, self.scale, input_size)

    def state_size_bytes(self) -> int:
        """Approximate in-memory footprint: four floats and a counter."""
        return 5 * 8

    # ------------------------------------------------------------------
    # checkpoint round-trip
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Complete model state as plain JSON-able data.

        Round-trips through :meth:`load_state_dict`: a restored model is
        indistinguishable from the original — same coefficients, same
        feature scale, and the same ``generation`` counter, so every
        generation-keyed prediction memo keeps its exact semantics.
        """
        return {
            "learning_rate": self.learning_rate,
            "alpha0": self.alpha0,
            "alpha1": self.alpha1,
            "scale": self.scale,
            "updates": self.updates,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`."""
        missing = {"learning_rate", "alpha0", "alpha1", "scale", "updates"} - set(
            state
        )
        if missing:
            raise ValueError(f"OGD state dict missing keys {sorted(missing)}")
        check_positive("learning_rate", state["learning_rate"])
        check_positive("scale", state["scale"])
        if state["updates"] < 0:
            raise ValueError(f"updates must be >= 0, got {state['updates']}")
        self.learning_rate = float(state["learning_rate"])
        self.alpha0 = float(state["alpha0"])
        self.alpha1 = float(state["alpha1"])
        self.scale = float(state["scale"])
        self.updates = int(state["updates"])
