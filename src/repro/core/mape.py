"""The WIRE MAPE controller.

Wires the paper's three components — task predictor, workflow simulator,
and resource-steering policy (§III-B, Figure 1) — into a single
:class:`~repro.engine.control.Autoscaler` executed once per control
interval:

- **Monitor**: harvest the previous interval's measurements
  (:meth:`TaskPredictor.observe_interval`).
- **Analyze**: rebuild the run state — conservative minimum remaining
  occupancy for every task on the wavefront.
- **Plan**: project one interval ahead with the lookahead simulator to get
  the upcoming load ``Q_task`` and per-instance restart costs.
- **Execute**: apply Algorithms 2/3 to grow or shrink the pool.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.config import WireConfig
from repro.core.lookahead import LookaheadSimulator, VirtualInstance
from repro.core.predictor import TaskPredictor
from repro.core.runstate import PredictionPolicy, RunState, TaskEstimate
from repro.core.steering import SteeringPolicy, resize_pool, steer_inputs_for
from repro.dag.workflow import Workflow
from repro.engine.control import NO_CHANGE, Autoscaler, Observation, ScalingDecision
from repro.engine.master import TaskExecState
from repro.telemetry.records import StagePrediction, TickTelemetry

__all__ = ["MapeController", "TickDiagnostics"]


@dataclass(frozen=True)
class TickDiagnostics:
    """What one MAPE iteration saw and decided (experiment telemetry)."""

    now: float
    upcoming_tasks: int
    target_pool: int
    pool_before: int
    launched: int
    terminated: int
    transfer_estimate: float
    policy_counts: dict[PredictionPolicy, int] = field(default_factory=dict)


class MapeController(Autoscaler):
    """WIRE: online-prediction-driven elastic pool control.

    One controller instance manages one workflow run; it lazily binds to
    the workflow on the first tick and refuses to be reused for another.
    """

    name = "wire"

    def __init__(self, config: WireConfig | None = None) -> None:
        self.config = config or WireConfig()
        self._steering = SteeringPolicy(self.config.restart_threshold_fraction)
        self._predictor: TaskPredictor | None = None
        self._lookahead: LookaheadSimulator | None = None
        self._workflow: Workflow | None = None
        self._last_run_state: RunState | None = None
        # inputs of the most recent Algorithm 3 evaluation, kept so
        # tick_telemetry() can reconstruct the planned target lazily
        self._last_upcoming: list[float] | None = None
        self._last_charging_unit = 0.0
        self._last_slots = 1
        #: per-tick telemetry, appended in tick order
        self.diagnostics: list[TickDiagnostics] = []
        #: graceful-degradation counters under cloud-fault injection:
        #: ticks whose kickstart records were blacked out, and shrink
        #: decisions suppressed on such ticks
        self.blackout_ticks = 0
        self.blackout_holds = 0

    # ------------------------------------------------------------------
    def _make_predictor(self, workflow: Workflow) -> TaskPredictor:
        """Factory hook; the oracle baseline substitutes a clairvoyant
        predictor here while reusing the whole MAPE pipeline."""
        return TaskPredictor(workflow, self.config)

    def _bind(self, workflow: Workflow) -> None:
        if self._workflow is None:
            self._workflow = workflow
            self._predictor = self._make_predictor(workflow)
            self._lookahead = LookaheadSimulator(workflow)
        elif self._workflow is not workflow:
            raise RuntimeError(
                "a MapeController instance manages a single run; create a "
                "fresh controller per workflow"
            )

    @property
    def predictor(self) -> TaskPredictor:
        """The bound task predictor (after the first tick)."""
        if self._predictor is None:
            raise RuntimeError("controller has not observed a run yet")
        return self._predictor

    # ------------------------------------------------------------------
    def plan(self, obs: Observation) -> ScalingDecision:
        self._bind(obs.workflow)
        assert self._predictor is not None and self._lookahead is not None

        # Monitor + Analyze. Under a monitoring blackout (cloud-fault
        # injection) this tick's kickstart records are missing: skip the
        # learning pass so the per-stage models and transfer estimate
        # stay at their last-known values instead of training on a
        # partial window. The engine re-offers the starved window at the
        # next clear tick (delayed-records mode) or never (dropped).
        # The run state is still rebuilt — task lifecycle state is the
        # framework master's own knowledge, not kickstart data — and
        # revoked capacity needs no special casing here: a revoked
        # instance is TERMINATED, so it has already left the steerable
        # set and its requeued tasks are back on the wavefront.
        if not obs.monitor_blackout:
            self._predictor.observe_interval(
                obs.monitor, obs.window_start, obs.now
            )
        else:
            self.blackout_ticks += 1
        run_state = self._predictor.build_run_state(obs.master, obs.monitor, obs.now)
        self._last_run_state = run_state

        steerable = obs.steerable_instances()
        pending = obs.pool.pending()

        # Plan: project the next interval
        if self.config.lookahead:
            virtual = [
                VirtualInstance(
                    instance_id=i.instance_id,
                    slots=i.itype.slots,
                    available_at=obs.now,
                    occupants=tuple(sorted(i.occupants)),
                )
                for i in steerable
            ]
            virtual.extend(
                VirtualInstance(
                    instance_id=i.instance_id,
                    slots=i.itype.slots,
                    available_at=i.requested_at + obs.lag,
                )
                for i in pending
            )
            load = self._lookahead.project(
                run_state, virtual, obs.queued_task_ids, horizon=obs.lag
            )
            # flat float64 Q_task column, consumed by the vectorized
            # Algorithm 3 without per-task object hops
            upcoming = load.remaining
        else:
            # Ablation: steer from the instantaneous load with no DAG
            # projection — ready/in-flight tasks only.
            load = None
            upcoming = [
                e.remaining_occupancy
                for e in run_state.wavefront()
                if e.phase is not TaskExecState.BLOCKED
            ]

        # Restart cost c_j, evaluated at the moment a release would actually
        # happen: the instance's charge boundary (Algorithm 2 frames c_j "at
        # the interval's start", but releasing at the interval start would
        # already incur the recharge Algorithm 2 exists to avoid — see
        # DESIGN.md).
        steer_inputs = steer_inputs_for(
            steerable, obs.billing, obs.now, run_state.estimates.__getitem__
        )

        self._last_upcoming = (
            upcoming.tolist() if isinstance(upcoming, np.ndarray) else list(upcoming)
        )
        self._last_charging_unit = obs.charging_unit
        self._last_slots = obs.site.itype.slots

        # Execute
        decision = self._steering.decide(
            now=obs.now,
            upcoming_remaining=upcoming,
            instances=steer_inputs,
            pending_count=len(pending),
            charging_unit=obs.charging_unit,
            lag=obs.lag,
            slots_per_instance=obs.site.itype.slots,
            min_instances=max(1, obs.site.min_instances),
            max_instances=obs.site.max_instances,
        )

        # Never shrink on a stale model: a blackout tick's estimates may
        # under-state remaining load, and releasing capacity it would
        # immediately re-order thrashes through the provisioning lag.
        # Growing (or holding) on last-known data is safe by comparison.
        if obs.monitor_blackout and decision.terminations:
            self.blackout_holds += 1
            decision = NO_CHANGE

        self.diagnostics.append(
            TickDiagnostics(
                now=obs.now,
                upcoming_tasks=len(upcoming),
                target_pool=len(steerable)
                + len(pending)
                + decision.launch
                - len(decision.terminations),
                pool_before=len(steerable) + len(pending),
                launched=decision.launch,
                terminated=len(decision.terminations),
                transfer_estimate=run_state.transfer_estimate,
                policy_counts=run_state.policy_counts(),
            )
        )
        return decision

    # ------------------------------------------------------------------
    def tick_telemetry(self) -> TickTelemetry | None:
        """Controller detail of the last tick, for the trace layer.

        Only invoked by the engine when a trace sink is attached, so the
        Algorithm 3 re-evaluation here adds nothing to untraced runs.
        """
        run_state = self._last_run_state
        upcoming = self._last_upcoming
        if run_state is None or upcoming is None:
            return None
        target = resize_pool(
            upcoming,
            self._last_charging_unit,
            self._last_slots,
            tail_threshold_fraction=self._steering.restart_threshold_fraction,
        )
        by_stage: dict[str, list[TaskEstimate]] = {}
        for estimate in run_state.estimates.values():
            if estimate.phase is TaskExecState.COMPLETED:
                continue
            by_stage.setdefault(estimate.stage_id, []).append(estimate)
        predictions = []
        for stage_id in sorted(by_stage):
            estimates = by_stage[stage_id]
            counts: dict[PredictionPolicy, int] = {}
            for estimate in estimates:
                counts[estimate.policy] = counts.get(estimate.policy, 0) + 1
            # most frequent policy wins; ties break toward the lower
            # policy number (the paper's rule order)
            dominant = max(counts.items(), key=lambda kv: (kv[1], -kv[0]))[0]
            predictions.append(
                StagePrediction(
                    stage_id=stage_id,
                    model=dominant.name.lower(),
                    n_tasks=len(estimates),
                    mean_estimate=sum(e.exec_estimate for e in estimates)
                    / len(estimates),
                )
            )
        return TickTelemetry(
            target_pool=target,
            q_task=len(upcoming),
            q_remaining=sum(upcoming),
            transfer_estimate=run_state.transfer_estimate,
            stage_predictions=tuple(predictions),
        )

    # ------------------------------------------------------------------
    def state_size_bytes(self) -> int | None:
        """Persistent controller state for the §IV-F overhead report.

        Counts what WIRE must keep *between* MAPE iterations: the
        per-stage learning models and the transfer-estimate window. The
        run-state annotations are a transient per-iteration working
        buffer rebuilt from monitoring data each tick (tracked separately
        in :meth:`working_set_bytes`); the paper's <= 16 KB claim can only
        refer to the persistent state — Genome L alone has 4005 tasks,
        whose per-task annotations would exceed 16 KB under any encoding.
        """
        if self._predictor is None:
            return 0
        return self._predictor.state_size_bytes()

    def working_set_bytes(self) -> int:
        """Transient per-iteration working buffer (run-state annotations)."""
        if self._last_run_state is None:
            return 0
        return self._last_run_state.state_size_bytes()
