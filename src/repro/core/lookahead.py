"""WIRE's workflow simulator (paper §III-B2).

At each MAPE iteration, WIRE simulates the workflow's execution over the
next control interval to predict the *upcoming load*: the set of tasks
expected to be active (runnable) at the start of the target interval, each
with its predicted minimum remaining slot occupancy, plus the sunk restart
cost of every instance at that time.

The simulation projects the framework's FIFO dispatch (§III-D) over the
current pool: predicted completions free slots, freed slots pull queued
tasks, completions fire children. Any drift between this projection and
the framework master's true schedule is tolerated by design — the paper's
§III-D argues (and §IV-E confirms) the effect is minor.

Incremental projection state
----------------------------
The seed implementation re-derived the DAG completion topology (which
tasks are done, how many unfinished parents each survivor has) from the
full run state every tick — O(tasks + edges) per projection. The
simulator now keeps that topology persistently and patches it with the
completion deltas the predictor records on the
:class:`~repro.core.runstate.RunState` (``newly_completed`` /
``completed_count``); virtual-task records are materialized lazily, only
for tasks the projection actually touches. Whenever the delta view cannot
be proven consistent (hand-built run states, a skipped tick, a replayed
snapshot) the simulator falls back to an exact full rebuild — incremental
≡ from-scratch is a hard invariant, enforced by ``self_check`` mode and
the property suite in tests/core/test_controller_equivalence.py.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.core.runstate import RunState, TaskEstimate
from repro.dag.workflow import Workflow
from repro.engine.master import TaskExecState

__all__ = ["LookaheadSimulator", "UpcomingLoad", "UpcomingTask", "VirtualInstance"]


@dataclass(frozen=True, slots=True)
class UpcomingTask:
    """One entry of the upcoming load Q_task."""

    task_id: str
    #: predicted minimum remaining occupancy at the target interval start
    remaining: float


@dataclass(frozen=True, slots=True)
class VirtualInstance:
    """An instance available to the projection.

    ``available_at`` is when it can accept work (now for running
    instances, the launch-ready time for pending ones); ``occupants`` are
    the task ids currently holding its slots.
    """

    instance_id: str
    slots: int
    available_at: float
    occupants: tuple[str, ...] = ()


@dataclass(frozen=True, eq=False)
class UpcomingLoad:
    """Output of one lookahead projection.

    The load is stored as flat parallel columns — ``task_ids`` and the
    float64 ``remaining`` vector — which is what the vectorized steering
    path (Algorithm 3's Q_task packing) consumes directly; the historical
    object view is available lazily through :attr:`tasks`.
    """

    #: target interval start (now + horizon)
    at: float
    #: ids of tasks expected active at ``at``: virtually running first
    #: (soonest completion first), then still-queued tasks in FIFO order
    task_ids: tuple[str, ...]
    #: remaining occupancy per entry of ``task_ids`` (float64 vector)
    remaining: np.ndarray
    #: per-instance max sunk occupancy of tasks projected onto it at ``at``
    restart_costs: dict[str, float]
    #: True when the projection finishes the whole workflow before ``at``
    workflow_done: bool

    @property
    def tasks(self) -> tuple[UpcomingTask, ...]:
        """The load as :class:`UpcomingTask` objects (built lazily)."""
        cached = getattr(self, "_tasks_cache", None)
        if cached is None:
            cached = tuple(
                UpcomingTask(task_id=tid, remaining=rem)
                for tid, rem in zip(self.task_ids, self.remaining.tolist())
            )
            object.__setattr__(self, "_tasks_cache", cached)
        return cached


class LookaheadSimulator:
    """Projects one control interval ahead from a run-state snapshot.

    ``self_check`` re-derives the persistent completion topology from
    scratch on every projection and asserts it matches the incrementally
    patched one (the equivalence invariant); use it in tests and debug
    runs, not in the hot path.
    """

    def __init__(self, workflow: Workflow, *, self_check: bool = False) -> None:
        self.workflow = workflow
        self.self_check = self_check
        #: incomplete task id -> number of incomplete parents (the
        #: persistent projection topology; None until first seeded)
        self._unfinished: dict[str, int] | None = None
        #: False while ``_unfinished`` aliases a predictor-owned map (an
        #: adopted ``RunState.unfinished_parents``): the delta-patching
        #: path must not mutate a dict it does not own
        self._owns_unfinished = False
        self._n_completed = 0
        #: diagnostics: how often the exact fallback ran vs the delta path
        self.full_rebuilds = 0
        self.incremental_syncs = 0

    def _sorted_children(self, task_id: str) -> tuple[str, ...]:
        return self.workflow.sorted_children[task_id]

    # ------------------------------------------------------------------
    # persistent completion topology
    # ------------------------------------------------------------------
    def _rebuild(self, estimates: dict[str, TaskEstimate]) -> None:
        """Exact from-scratch derivation (fallback and reference)."""
        self._unfinished, self._n_completed = self._derive(estimates)
        self._owns_unfinished = True
        self.full_rebuilds += 1

    def _derive(
        self, estimates: dict[str, TaskEstimate]
    ) -> tuple[dict[str, int], int]:
        phases_map = getattr(estimates, "phases_map", None)
        if phases_map is not None:
            return self._derive_bulk(phases_map)
        completed: set[str] = set()
        unfinished: dict[str, int] = {}
        parents_of = self.workflow.parents
        # lazy run-state mappings expose phase lookups that skip estimate
        # materialization; plain dicts fall back to the object field
        phase_of = getattr(estimates, "phase_of", None)
        if phase_of is None:
            phase_of = lambda tid: estimates[tid].phase  # noqa: E731
        for task_id in self.workflow.topological_order():
            if phase_of(task_id) is TaskExecState.COMPLETED:
                completed.add(task_id)
                continue
            # Topological order guarantees every completed parent is
            # already in `completed` when its child is visited.
            unfinished[task_id] = sum(
                1 for p in parents_of(task_id) if p not in completed
            )
        return unfinished, len(completed)

    def _derive_bulk(
        self, phases_map: "dict[str, TaskExecState]"
    ) -> tuple[dict[str, int], int]:
        """:meth:`_derive` from a full phase snapshot, without per-id calls.

        An incomplete task's unfinished-parent count equals its total
        parent count minus its completed parents, so seeding from the
        cached totals and walking only the completed tasks' child edges
        yields the identical dict (order-insensitive arithmetic; dict
        equality ignores insertion order).
        """
        base = self.workflow.parent_counts
        completed_state = TaskExecState.COMPLETED
        completed: list[str] = []
        completed_append = completed.append
        unfinished: dict[str, int] = {}
        for task_id, phase in phases_map.items():
            if phase is completed_state:
                completed_append(task_id)
            else:
                unfinished[task_id] = base[task_id]
        children_map = self.workflow.children_tuples
        for task_id in completed:
            for child in children_map[task_id]:
                count = unfinished.get(child)
                if count is not None:
                    unfinished[child] = count - 1
        return unfinished, len(completed)

    def _sync(self, run_state: RunState) -> None:
        """Bring the persistent topology up to ``run_state``.

        Applies the predictor's completion delta when one is available
        and provably consistent (the completed-count must reconcile);
        otherwise rebuilds from the estimates — exactly.
        """
        adopted = run_state.unfinished_parents
        if (
            adopted is not None
            and run_state.completed_count is not None
            and len(self.workflow) - len(adopted) == run_state.completed_count
        ):
            # The predictor maintains the identical incomplete-task ->
            # unfinished-parent-count map; adopt its live dict instead of
            # re-deriving or delta-patching a private copy. The length
            # reconciliation proves the map still matches this run state:
            # entries are only ever removed (on completion) and counts only
            # decrement alongside a removal, so an unchanged length means
            # an unchanged map. The projection's in-place decrements are
            # rolled back through its undo log, leaving the shared dict
            # exactly as the predictor left it.
            self._unfinished = adopted
            self._owns_unfinished = False
            self._n_completed = run_state.completed_count
            self.incremental_syncs += 1
            if self.self_check:
                expect_unfinished, expect_n = self._derive(run_state.estimates)
                assert self._unfinished == expect_unfinished, (
                    "adopted projection topology diverged from scratch"
                )
                assert self._n_completed == expect_n
            return
        newly = run_state.newly_completed
        unfinished = self._unfinished
        if (
            unfinished is None
            or not self._owns_unfinished
            or newly is None
            or run_state.completed_count is None
        ):
            self._rebuild(run_state.estimates)
        else:
            children_map = self.workflow.children_tuples
            n = self._n_completed
            ok = True
            for task_id in newly:
                if unfinished.pop(task_id, None) is None:
                    # a completion we never tracked (replayed or duplicate
                    # delta) — the incremental view is unprovable
                    ok = False
                    break
                n += 1
                for child in children_map[task_id]:
                    count = unfinished.get(child)
                    if count is not None:
                        unfinished[child] = count - 1
            if ok:
                self._n_completed = n
            if not ok or self._n_completed != run_state.completed_count:
                self._rebuild(run_state.estimates)
            else:
                self.incremental_syncs += 1
        if self.self_check:
            expect_unfinished, expect_n = self._derive(run_state.estimates)
            assert self._unfinished == expect_unfinished, (
                "incremental projection topology diverged from scratch"
            )
            assert self._n_completed == expect_n

    # ------------------------------------------------------------------
    def project(
        self,
        run_state: RunState,
        instances: list[VirtualInstance],
        queued_task_ids: tuple[str, ...],
        horizon: float,
    ) -> UpcomingLoad:
        """Simulate from ``run_state.now`` to ``now + horizon``.

        ``instances`` must cover every instance whose occupants appear in
        the run state as in-flight; tasks attached to excluded (draining)
        instances are re-queued at time ``now`` with their full predicted
        occupancy, mirroring the engine's resubmit-on-terminate semantics.
        """
        now = run_state.now
        target = now + horizon
        estimates = run_state.estimates
        # float-only remaining-occupancy lookups (no TaskEstimate build)
        # when the run state carries a lazy mapping
        remaining_of = getattr(estimates, "remaining_of", None)
        if remaining_of is None:
            remaining_of = (  # noqa: E731
                lambda tid: estimates[tid].remaining_occupancy
            )

        self._sync(run_state)
        assert self._unfinished is not None
        # The projection loop decrements unfinished-parent counts
        # destructively. Mutate the persistent topology in place and roll
        # the decrements back through an undo log afterwards: the log is
        # O(projected completion edges), far smaller than copying the
        # whole O(incomplete) dict every tick.
        unfinished = self._unfinished
        undo: list[tuple[str, int]] = []
        seed_completed = self._n_completed

        known_instances = {vi.instance_id: vi for vi in instances}
        counter = itertools.count()
        # (time, seq, kind, id); seq is unique so kind is never compared
        heap: list[tuple[float, int, int, str]] = []
        INSTANCE, COMPLETE = 0, 1
        heappush = heapq.heappush
        heappop = heapq.heappop

        # -- seed instance availability -------------------------------
        free_slots: dict[str, int] = {}
        # Lazy min-heap of host ids that may have a free slot: the seed
        # implementation re-ran ``sorted(free_slots)`` per dispatch to
        # find the lowest-id host with capacity; this heap serves the
        # same minimum in O(log n), with stale entries (hosts whose slots
        # filled meanwhile) skipped on pop.
        avail_heap: list[str] = []
        in_avail_heap: set[str] = set()

        def mark_available(instance_id: str) -> None:
            if (
                free_slots[instance_id] > 0
                and instance_id not in in_avail_heap
            ):
                heapq.heappush(avail_heap, instance_id)
                in_avail_heap.add(instance_id)

        def host_with_free_slot() -> str | None:
            while avail_heap:
                instance_id = avail_heap[0]
                if free_slots.get(instance_id, 0) > 0:
                    return instance_id
                heapq.heappop(avail_heap)
                in_avail_heap.discard(instance_id)
            return None

        for vi in instances:
            if vi.available_at <= now:
                free_slots[vi.instance_id] = vi.slots - len(vi.occupants)
                mark_available(vi.instance_id)
            else:
                heappush(
                    heap, (vi.available_at, next(counter), INSTANCE, vi.instance_id)
                )

        # -- seed task states ------------------------------------------
        # Virtual-task records — (remaining, instance_id, started_at,
        # initial_sunk) tuples, cheap enough for the thousands of events a
        # projection can replay — are created lazily: up front only for
        # in-flight tasks (they carry instance/sunk state), and on first
        # dispatch for queued ones. Untouched tasks never materialize.
        virtual: dict[str, tuple[float, str | None, float | None, float]] = {}
        assigned: set[str] = set()
        queue: deque[str] = deque()
        queued_set: set[str] = set()

        def enqueue(task_id: str, *, front: bool = False) -> None:
            if task_id in queued_set:
                return
            queued_set.add(task_id)
            if front:
                queue.appendleft(task_id)
            else:
                queue.append(task_id)

        in_flight = run_state.in_flight
        if in_flight is None:
            # exact fallback: derive the slot holders by topological scan,
            # matching the order the incremental field records them in
            phase_of = getattr(estimates, "phase_of", None)
            if phase_of is None:
                phase_of = lambda tid: estimates[tid].phase  # noqa: E731
            in_flight = tuple(
                task_id
                for task_id in self.workflow.topological_order()
                if task_id in unfinished and phase_of(task_id).occupies_slot
            )
        for task_id in in_flight:
            estimate = estimates[task_id]
            if estimate.instance_id in known_instances:
                remaining = estimate.remaining_occupancy
                virtual[task_id] = (
                    remaining,
                    estimate.instance_id,
                    now,
                    estimate.sunk_occupancy,
                )
                assigned.add(task_id)
                heappush(
                    heap, (now + remaining, next(counter), COMPLETE, task_id)
                )
            else:
                # Its instance is draining/gone: the task will restart.
                # Conservatively requeue at the front with full occupancy.
                virtual[task_id] = (
                    2 * run_state.transfer_estimate + estimate.exec_estimate,
                    None,
                    None,
                    0.0,
                )
                enqueue(task_id, front=True)

        for task_id in queued_task_ids:
            if (
                task_id in unfinished
                and task_id not in assigned
                and task_id not in queued_set
            ):
                queued_set.add(task_id)
                queue.append(task_id)

        # Pre-resolve the seed queue's remaining occupancies in one bulk
        # call; tasks enqueued later (children readied mid-projection)
        # fall back to per-id lookups.
        remaining_many = getattr(estimates, "remaining_many", None)
        rem_hint: dict[str, float] = {}
        if remaining_many is not None and queue:
            rem_hint = dict(zip(queue, remaining_many(queue)))
        rem_hint_get = rem_hint.get

        # -- projection loop -------------------------------------------
        def dispatch(time: float) -> None:
            while queue:
                slot_host = host_with_free_slot()
                if slot_host is None:
                    return
                task_id = queue.popleft()
                queued_set.discard(task_id)
                vt = virtual.get(task_id)
                if vt is not None:
                    remaining = vt[0]
                else:
                    remaining = rem_hint_get(task_id)
                    if remaining is None:
                        remaining = remaining_of(task_id)
                virtual[task_id] = (remaining, slot_host, time, 0.0)
                free_slots[slot_host] -= 1
                heappush(
                    heap, (time + remaining, next(counter), COMPLETE, task_id)
                )

        projected_done = 0
        children_cache = self.workflow.sorted_children
        try:
            dispatch(now)
            unfinished_get = unfinished.get
            undo_append = undo.append
            virtual_pop = virtual.pop
            virtual_get = virtual.get
            queue_append = queue.append
            queue_popleft = queue.popleft
            queued_add = queued_set.add
            queued_discard = queued_set.discard
            while heap and heap[0][0] <= target:
                time, _, kind, payload = heappop(heap)
                if kind == INSTANCE:
                    vi = known_instances[payload]
                    free_slots[payload] = vi.slots
                    mark_available(payload)
                    dispatch(time)
                    continue
                # a predicted task completion
                host = virtual_pop(payload)[1]
                projected_done += 1
                # A non-empty queue proves every slot in the pool is full
                # (dispatch() always drains one or the other), so the slot
                # this completion frees is the only free slot anywhere and
                # the queue head must land exactly there. Inlining that
                # single dispatch skips the avail-heap round-trip that
                # otherwise dominates steady-state event cost.
                busy = bool(queue)
                for child in children_cache[payload]:
                    count = unfinished_get(child)
                    if count is None:
                        continue
                    undo_append((child, count))
                    count -= 1
                    unfinished[child] = count
                    if count == 0 and child not in queued_set:
                        queued_add(child)
                        queue_append(child)
                if host is not None and host in free_slots:
                    if busy:
                        task_id = queue_popleft()
                        queued_discard(task_id)
                        vt = virtual_get(task_id)
                        if vt is not None:
                            remaining = vt[0]
                        else:
                            remaining = rem_hint_get(task_id)
                            if remaining is None:
                                remaining = remaining_of(task_id)
                        virtual[task_id] = (remaining, host, time, 0.0)
                        heappush(
                            heap,
                            (time + remaining, next(counter), COMPLETE, task_id),
                        )
                        continue
                    free_slots[host] += 1
                    mark_available(host)
                elif busy:
                    # nothing freed and the pool was already full: no
                    # dispatch can succeed
                    continue
                dispatch(time)
        finally:
            # roll the projection's decrements back off the persistent
            # topology (reverse order restores the original values)
            for child, count in reversed(undo):
                unfinished[child] = count

        # -- snapshot at the target interval start ---------------------
        running: list[tuple[float, str, float]] = []  # (completion, id, remaining)
        restart_costs: dict[str, float] = {
            vi.instance_id: 0.0 for vi in instances
        }
        for task_id, (rem, host, started_at, initial_sunk) in virtual.items():
            if host is None:
                continue
            assert started_at is not None
            completion = started_at + rem
            remaining = max(0.0, completion - target)
            running.append((completion, task_id, remaining))
            sunk = initial_sunk + (target - started_at)
            if host in restart_costs:
                restart_costs[host] = max(restart_costs[host], sunk)
        running.sort()

        task_ids: list[str] = [tid for _, tid, _ in running]
        remaining_col: list[float] = [rem for _, _, rem in running]
        if remaining_many is not None:
            unresolved = [
                tid
                for tid in queue
                if tid not in virtual and tid not in rem_hint
            ]
            if unresolved:
                rem_hint.update(zip(unresolved, remaining_many(unresolved)))
        for task_id in queue:
            vt = virtual.get(task_id)
            if vt is not None:
                task_ids.append(task_id)
                remaining_col.append(vt[0])
                continue
            remaining = rem_hint_get(task_id)
            if remaining is None:
                remaining = remaining_of(task_id)
            task_ids.append(task_id)
            remaining_col.append(remaining)

        return UpcomingLoad(
            at=target,
            task_ids=tuple(task_ids),
            remaining=np.array(remaining_col, dtype=np.float64),
            restart_costs=restart_costs,
            workflow_done=seed_completed + projected_done == len(self.workflow),
        )
