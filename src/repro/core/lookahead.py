"""WIRE's workflow simulator (paper §III-B2).

At each MAPE iteration, WIRE simulates the workflow's execution over the
next control interval to predict the *upcoming load*: the set of tasks
expected to be active (runnable) at the start of the target interval, each
with its predicted minimum remaining slot occupancy, plus the sunk restart
cost of every instance at that time.

The simulation projects the framework's FIFO dispatch (§III-D) over the
current pool: predicted completions free slots, freed slots pull queued
tasks, completions fire children. Any drift between this projection and
the framework master's true schedule is tolerated by design — the paper's
§III-D argues (and §IV-E confirms) the effect is minor.
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass

from repro.core.runstate import RunState
from repro.dag.workflow import Workflow
from repro.engine.master import TaskExecState

__all__ = ["LookaheadSimulator", "UpcomingLoad", "UpcomingTask", "VirtualInstance"]


@dataclass(frozen=True, slots=True)
class UpcomingTask:
    """One entry of the upcoming load Q_task."""

    task_id: str
    #: predicted minimum remaining occupancy at the target interval start
    remaining: float


@dataclass(frozen=True, slots=True)
class VirtualInstance:
    """An instance available to the projection.

    ``available_at`` is when it can accept work (now for running
    instances, the launch-ready time for pending ones); ``occupants`` are
    the task ids currently holding its slots.
    """

    instance_id: str
    slots: int
    available_at: float
    occupants: tuple[str, ...] = ()


@dataclass(frozen=True)
class UpcomingLoad:
    """Output of one lookahead projection."""

    #: target interval start (now + horizon)
    at: float
    #: tasks expected active at ``at``: virtually running first (soonest
    #: completion first), then still-queued tasks in FIFO order
    tasks: tuple[UpcomingTask, ...]
    #: per-instance max sunk occupancy of tasks projected onto it at ``at``
    restart_costs: dict[str, float]
    #: True when the projection finishes the whole workflow before ``at``
    workflow_done: bool


@dataclass(slots=True)
class _VirtualTask:
    task_id: str
    remaining: float
    instance_id: str | None = None
    started_at: float | None = None  # virtual dispatch time
    initial_sunk: float = 0.0  # real occupancy consumed before `now`


class LookaheadSimulator:
    """Projects one control interval ahead from a run-state snapshot."""

    def __init__(self, workflow: Workflow) -> None:
        self.workflow = workflow

    def project(
        self,
        run_state: RunState,
        instances: list[VirtualInstance],
        queued_task_ids: tuple[str, ...],
        horizon: float,
    ) -> UpcomingLoad:
        """Simulate from ``run_state.now`` to ``now + horizon``.

        ``instances`` must cover every instance whose occupants appear in
        the run state as in-flight; tasks attached to excluded (draining)
        instances are re-queued at time ``now`` with their full predicted
        occupancy, mirroring the engine's resubmit-on-terminate semantics.
        """
        now = run_state.now
        target = now + horizon
        estimates = run_state.estimates

        known_instances = {vi.instance_id: vi for vi in instances}
        counter = itertools.count()
        heap: list[tuple[float, int, str, str]] = []  # (time, seq, kind, id)

        # -- seed instance availability -------------------------------
        free_slots: dict[str, int] = {}
        # Lazy min-heap of host ids that may have a free slot: the seed
        # implementation re-ran ``sorted(free_slots)`` per dispatch to
        # find the lowest-id host with capacity; this heap serves the
        # same minimum in O(log n), with stale entries (hosts whose slots
        # filled meanwhile) skipped on pop.
        avail_heap: list[str] = []
        in_avail_heap: set[str] = set()

        def mark_available(instance_id: str) -> None:
            if (
                free_slots[instance_id] > 0
                and instance_id not in in_avail_heap
            ):
                heapq.heappush(avail_heap, instance_id)
                in_avail_heap.add(instance_id)

        def host_with_free_slot() -> str | None:
            while avail_heap:
                instance_id = avail_heap[0]
                if free_slots.get(instance_id, 0) > 0:
                    return instance_id
                heapq.heappop(avail_heap)
                in_avail_heap.discard(instance_id)
            return None

        for vi in instances:
            if vi.available_at <= now:
                free_slots[vi.instance_id] = vi.slots - len(vi.occupants)
                mark_available(vi.instance_id)
            else:
                heapq.heappush(
                    heap, (vi.available_at, next(counter), "instance", vi.instance_id)
                )

        # -- seed task states ------------------------------------------
        virtual: dict[str, _VirtualTask] = {}
        unfinished_parents: dict[str, int] = {}
        completed: set[str] = set()
        queue: deque[str] = deque()
        queued_set: set[str] = set()

        def enqueue(task_id: str, *, front: bool = False) -> None:
            if task_id in queued_set:
                return
            queued_set.add(task_id)
            if front:
                queue.appendleft(task_id)
            else:
                queue.append(task_id)

        parents_of = self.workflow.parents
        for task_id in self.workflow.topological_order():
            estimate = estimates[task_id]
            if estimate.phase is TaskExecState.COMPLETED:
                completed.add(task_id)
                continue
            # Topological order guarantees every completed parent is
            # already in `completed` when its child is visited.
            unfinished_parents[task_id] = sum(
                1 for p in parents_of(task_id) if p not in completed
            )
            vt = _VirtualTask(task_id=task_id, remaining=estimate.remaining_occupancy)
            virtual[task_id] = vt
            if estimate.phase.occupies_slot:
                if estimate.instance_id in known_instances:
                    vt.instance_id = estimate.instance_id
                    vt.started_at = now
                    vt.initial_sunk = estimate.sunk_occupancy
                    heapq.heappush(
                        heap,
                        (now + vt.remaining, next(counter), "complete", task_id),
                    )
                else:
                    # Its instance is draining/gone: the task will restart.
                    # Conservatively requeue at the front with full occupancy.
                    exec_part = estimate.exec_estimate
                    vt.remaining = (
                        2 * run_state.transfer_estimate + exec_part
                    )
                    enqueue(task_id, front=True)

        for task_id in queued_task_ids:
            if task_id in virtual and virtual[task_id].instance_id is None:
                enqueue(task_id)

        # -- projection loop -------------------------------------------
        def dispatch(time: float) -> None:
            while queue:
                slot_host = host_with_free_slot()
                if slot_host is None:
                    return
                task_id = queue.popleft()
                queued_set.discard(task_id)
                vt = virtual[task_id]
                vt.instance_id = slot_host
                vt.started_at = time
                free_slots[slot_host] -= 1
                heapq.heappush(
                    heap, (time + vt.remaining, next(counter), "complete", task_id)
                )

        dispatch(now)
        while heap and heap[0][0] <= target:
            time, _, kind, payload = heapq.heappop(heap)
            if kind == "instance":
                vi = known_instances[payload]
                free_slots[payload] = vi.slots
                mark_available(payload)
            else:  # a predicted task completion
                vt = virtual[payload]
                completed.add(payload)
                del virtual[payload]
                if vt.instance_id is not None and vt.instance_id in free_slots:
                    free_slots[vt.instance_id] += 1
                    mark_available(vt.instance_id)
                for child in sorted(self.workflow.children(payload)):
                    if child not in unfinished_parents:
                        continue
                    unfinished_parents[child] -= 1
                    if unfinished_parents[child] == 0:
                        enqueue(child)
            dispatch(time)

        # -- snapshot at the target interval start ---------------------
        running: list[tuple[float, str, float]] = []  # (completion, id, remaining)
        restart_costs: dict[str, float] = {
            vi.instance_id: 0.0 for vi in instances
        }
        for task_id, vt in virtual.items():
            if vt.instance_id is None:
                continue
            assert vt.started_at is not None
            completion = vt.started_at + vt.remaining
            remaining = max(0.0, completion - target)
            running.append((completion, task_id, remaining))
            sunk = vt.initial_sunk + (target - vt.started_at)
            if vt.instance_id in restart_costs:
                restart_costs[vt.instance_id] = max(
                    restart_costs[vt.instance_id], sunk
                )
        running.sort()

        upcoming: list[UpcomingTask] = [
            UpcomingTask(task_id=tid, remaining=rem) for _, tid, rem in running
        ]
        for task_id in queue:
            upcoming.append(
                UpcomingTask(task_id=task_id, remaining=virtual[task_id].remaining)
            )

        return UpcomingLoad(
            at=target,
            tasks=tuple(upcoming),
            restart_costs=restart_costs,
            workflow_done=len(completed) == len(self.workflow),
        )
