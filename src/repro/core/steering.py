"""The resource-steering policy (paper Algorithms 2 and 3).

Algorithm 3 ("resizePool") computes the ideal pool size *p*: it greedily
packs the upcoming tasks into instance slots, counting an instance
whenever the packed occupancy fills at least one charging unit, plus one
final instance when leftover work is non-trivial (a task with more than
``0.2u`` remaining) or no instance was counted at all.

Algorithm 2 compares *p* to the current pool size *m* and either requests
``p - m`` launches or releases instances — but only instances whose
charging unit expires before the next interval (``r_j <= t``, avoiding the
recharge cost) and whose task restart cost is below the ``0.2u``
threshold. Released instances' running tasks are resubmitted.

Vectorized packing
------------------
:func:`resize_pool` runs Algorithm 3 over a flat float64 vector. With
``s`` slots per instance, consecutive task rows that are *consumable* —
uniform (all ties leave the slot set together) or with a row minimum
that alone fills a charging unit — are classified in bulk with vectorized
row min/max, then charged by a single sequential walk over the row
minima, reproducing the reference loop's float operations bit-for-bit.
All remaining rounds — survivor shrinking, partially filled slot sets —
fall through to scalar code identical to :func:`resize_pool_reference`,
which is kept as the differential-testing reference
(tests/core/test_steering_properties.py).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.engine.control import ScalingDecision, TerminationOrder
from repro.util.validation import check_in_range, check_positive

__all__ = [
    "SteerableInstance",
    "SteeringPolicy",
    "resize_pool",
    "resize_pool_reference",
    "steer_inputs_for",
]


def _validate_resize_args(
    charging_unit: float, slots_per_instance: int, tail_threshold_fraction: float
) -> None:
    check_positive("charging_unit", charging_unit)
    if slots_per_instance <= 0:
        raise ValueError(
            f"slots_per_instance must be > 0, got {slots_per_instance}"
        )
    check_in_range(
        "tail_threshold_fraction", tail_threshold_fraction, 0.0, 1.0
    )


def resize_pool_reference(
    remaining_times: Sequence[float],
    charging_unit: float,
    slots_per_instance: int,
    *,
    tail_threshold_fraction: float = 0.2,
) -> int:
    """Algorithm 3, literal per-task loop (the differential reference).

    Semantics are the contract; :func:`resize_pool` must agree with this
    bit-for-bit on every input it accepts.
    """
    _validate_resize_args(
        charging_unit, slots_per_instance, tail_threshold_fraction
    )
    if len(remaining_times) == 0:
        return 0

    queue = list(remaining_times)
    queue.reverse()  # pop() from the end == FIFO poll()
    p = 0
    t_used = 0.0
    slot_used: list[float] = []
    while queue:
        while len(slot_used) < slots_per_instance and queue:
            slot_used.append(queue.pop())
        if len(slot_used) == slots_per_instance:
            t_min = min(slot_used)
            t_used += t_min
            if t_used >= charging_unit:
                p += 1
                t_used = 0.0
                slot_used = []
            else:
                # Lines 18-24: tasks at the minimum complete and leave the
                # slot set (all ties at once — each would otherwise leave
                # on a zero-cost later round); the rest advance by t_min.
                slot_used = [t - t_min for t in slot_used if t != t_min]
    if p == 0 or (slot_used and max(slot_used) > tail_threshold_fraction * charging_unit):
        p += 1
    return p


def _scan_crossings(
    values: "Sequence[float]", start: float, u: float
) -> tuple[int, float]:
    """Sequential ``t_used`` walk over ``values`` starting from ``start``.

    Counts charging-unit crossings (each resets the running sum to
    exactly 0.0) and returns the leftover sum. This IS the scalar
    accumulation of Algorithm 3's loop, so bit-identity is by
    construction. A tight Python walk beats windowed ``np.cumsum`` +
    ``searchsorted`` here: real loads cross a charging unit every handful
    of tasks (a task often occupies a sizable fraction of ``u``), and a
    cumsum restart cannot be replaced by differencing one global prefix
    sum without changing the float rounding.
    """
    crossings = 0
    t_used = start
    for value in values:
        t_used += value
        if t_used >= u:
            crossings += 1
            t_used = 0.0
    return crossings, t_used


def resize_pool(
    remaining_times: "Sequence[float] | np.ndarray",
    charging_unit: float,
    slots_per_instance: int,
    *,
    tail_threshold_fraction: float = 0.2,
) -> int:
    """Algorithm 3: ideal instance count for the upcoming load.

    ``remaining_times`` are the predicted minimum remaining occupancy
    times of Q_task, in the FIFO order the framework is expected to
    dispatch them. Returns the planned pool size ``p`` (>= 1 whenever the
    load is non-empty). Accepts any float sequence or a float64 vector;
    results are bit-identical to :func:`resize_pool_reference`.
    """
    _validate_resize_args(
        charging_unit, slots_per_instance, tail_threshold_fraction
    )
    n = len(remaining_times)
    if n == 0:
        return 0
    arr = np.asarray(remaining_times, dtype=np.float64)
    if not np.isfinite(arr).all() or bool((arr < 0.0).any()):
        # the bulk moves assume non-decreasing partial sums; degenerate
        # inputs (negative / NaN / inf occupancy) take the literal loop
        return resize_pool_reference(
            remaining_times,
            charging_unit,
            slots_per_instance,
            tail_threshold_fraction=tail_threshold_fraction,
        )

    u = charging_unit
    s = slots_per_instance
    p = 0
    if s == 1:
        # One task per round: the slot set empties every round, so the
        # whole input is one sequential t_used walk. Leftover tasks end
        # mid-sum with an empty slot set, so the tail rule below reduces
        # to the p == 0 floor.
        p, _ = _scan_crossings(arr.tolist(), 0.0, u)
        if p == 0:
            p += 1
        return p

    # s slots per instance: from a clean (empty) slot set, a row of s
    # tasks is consumed *wholesale* when it is uniform (all ties leave
    # together, emptying the set again — t_used carries) or when its
    # minimum alone crosses the unit from any carry (the crossing resets
    # the whole set). A run of consecutive consumable rows is therefore
    # exactly the s == 1 sequential walk over the row minima, vectorized
    # by _scan_crossings; every other round runs the literal loop.
    tasks: list[float] | None = None  # lazily materialized Python floats
    i = 0
    t_used = 0.0
    slot_used: list[float] = []
    while i < n or slot_used:
        if not slot_used and n - i >= s:
            chunk = 32  # doubles while rows keep consuming, bounding rescans
            while n - i >= s:
                g = min((n - i) // s, chunk)
                block = arr[i : i + g * s].reshape(g, s)
                mins = block.min(axis=1)
                consumable = (block.max(axis=1) == mins) | (mins >= u)
                k = g if bool(consumable.all()) else int(np.argmin(consumable))
                if k:
                    crossings, t_used = _scan_crossings(
                        mins[:k].tolist(), t_used, u
                    )
                    p += crossings
                    i += k * s
                if k < g:
                    break
                chunk *= 2
        if tasks is None:
            tasks = arr.tolist()
        while len(slot_used) < s and i < n:
            slot_used.append(tasks[i])
            i += 1
        if len(slot_used) < s:
            break  # queue exhausted mid-fill: leftovers go to the tail rule
        t_min = min(slot_used)
        t_used += t_min
        if t_used >= u:
            p += 1
            t_used = 0.0
            slot_used = []
        else:
            slot_used = [t - t_min for t in slot_used if t != t_min]
    if p == 0 or (slot_used and max(slot_used) > tail_threshold_fraction * u):
        p += 1
    return p


@dataclass(frozen=True)
class SteerableInstance:
    """What Algorithm 2 needs to know about one running instance."""

    instance_id: str
    #: seconds until the next charging-unit boundary (r_j)
    time_to_next_charge: float
    #: max sunk occupancy of its projected tasks at the interval start (c_j)
    restart_cost: float


def steer_inputs_for(
    instances: Sequence["object"],
    billing: "object",
    now: float,
    estimate_of: Callable[[str], "object"],
) -> list[SteerableInstance]:
    """Algorithm 2's per-instance inputs (r_j, c_j) for a pool snapshot.

    ``instances`` are pool instances exposing ``instance_id`` and
    ``occupants``; ``estimate_of`` maps an occupant task id to its
    :class:`~repro.core.runstate.TaskEstimate` (fleet steering resolves
    scoped ids across tenants here). The restart cost c_j is evaluated at
    the instance's charge boundary: an occupant predicted to finish
    before the boundary contributes nothing; one predicted to outlive it
    would be killed with its sunk occupancy grown to the boundary.
    """
    steer_inputs: list[SteerableInstance] = []
    for instance in instances:
        r_j = billing.time_to_next_charge(instance, now)
        cost = 0.0
        for task_id in instance.occupants:
            estimate = estimate_of(task_id)
            if estimate.remaining_occupancy > r_j:
                cost = max(cost, estimate.sunk_occupancy + r_j)
        steer_inputs.append(
            SteerableInstance(
                instance_id=instance.instance_id,
                time_to_next_charge=r_j,
                restart_cost=cost,
            )
        )
    return steer_inputs


class SteeringPolicy:
    """Algorithm 2: grow or shrink the pool toward Algorithm 3's target."""

    def __init__(self, restart_threshold_fraction: float = 0.2) -> None:
        check_in_range(
            "restart_threshold_fraction", restart_threshold_fraction, 0.0, 1.0
        )
        self.restart_threshold_fraction = restart_threshold_fraction

    def decide(
        self,
        *,
        now: float,
        upcoming_remaining: "Sequence[float] | np.ndarray",
        instances: Sequence[SteerableInstance],
        pending_count: int,
        charging_unit: float,
        lag: float,
        slots_per_instance: int,
        min_instances: int,
        max_instances: int,
    ) -> ScalingDecision:
        """One Execute step.

        ``instances`` are the steerable (running, non-draining) instances;
        ``pending_count`` counts launches already ordered. The decision
        never shrinks below ``min_instances`` nor plans beyond
        ``max_instances``.
        """
        p = resize_pool(
            upcoming_remaining,
            charging_unit,
            slots_per_instance,
            tail_threshold_fraction=self.restart_threshold_fraction,
        )
        if len(upcoming_remaining) == 0:
            # §III-D: with an empty Q_task, retain a minimal pool until the
            # next control iteration (or workflow end).
            p = min_instances
        return self.decide_with_target(
            target=p,
            now=now,
            instances=instances,
            pending_count=pending_count,
            charging_unit=charging_unit,
            lag=lag,
            min_instances=min_instances,
            max_instances=max_instances,
        )

    def decide_with_target(
        self,
        *,
        target: int,
        now: float,
        instances: Sequence[SteerableInstance],
        pending_count: int,
        charging_unit: float,
        lag: float,
        min_instances: int,
        max_instances: int,
    ) -> ScalingDecision:
        """Algorithm 2's grow/shrink step for an externally chosen target.

        The reactive-conserving baseline reuses this with a target derived
        from instantaneous task counts rather than Algorithm 3.
        """
        m = len(instances) + pending_count
        p = max(min_instances, min(target, max_instances))

        if p > m:
            return ScalingDecision(launch=p - m)
        if p >= m:
            return ScalingDecision()

        threshold = self.restart_threshold_fraction * charging_unit
        if len(instances) >= 64:
            # fleet-scale shrink: evaluate the eligibility predicate over
            # flat vectors, then order only the survivors (the `sorted`
            # key is identical, so the selection matches the scalar path)
            r_j = np.fromiter(
                (inst.time_to_next_charge for inst in instances),
                dtype=np.float64,
                count=len(instances),
            )
            costs = np.fromiter(
                (inst.restart_cost for inst in instances),
                dtype=np.float64,
                count=len(instances),
            )
            eligible = np.flatnonzero((r_j <= lag) & (costs <= threshold))
            pool = (instances[k] for k in eligible)
        else:
            pool = (
                inst
                for inst in instances
                if inst.time_to_next_charge <= lag
                and inst.restart_cost <= threshold
            )
        candidates = sorted(
            pool,
            key=lambda inst: (
                inst.restart_cost,
                inst.time_to_next_charge,
                inst.instance_id,
            ),
        )
        to_release = min(m - p, len(candidates), max(0, m - min_instances))
        orders = tuple(
            TerminationOrder(
                instance_id=inst.instance_id,
                # Release exactly at the charge boundary: every paid second
                # is usable, and no recharge is incurred.
                at=now + inst.time_to_next_charge,
            )
            for inst in candidates[:to_release]
        )
        return ScalingDecision(terminations=orders)
