"""The resource-steering policy (paper Algorithms 2 and 3).

Algorithm 3 ("resizePool") computes the ideal pool size *p*: it greedily
packs the upcoming tasks into instance slots, counting an instance
whenever the packed occupancy fills at least one charging unit, plus one
final instance when leftover work is non-trivial (a task with more than
``0.2u`` remaining) or no instance was counted at all.

Algorithm 2 compares *p* to the current pool size *m* and either requests
``p - m`` launches or releases instances — but only instances whose
charging unit expires before the next interval (``r_j <= t``, avoiding the
recharge cost) and whose task restart cost is below the ``0.2u``
threshold. Released instances' running tasks are resubmitted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.engine.control import ScalingDecision, TerminationOrder
from repro.util.validation import check_in_range, check_positive

__all__ = ["SteerableInstance", "SteeringPolicy", "resize_pool"]


def resize_pool(
    remaining_times: Sequence[float],
    charging_unit: float,
    slots_per_instance: int,
    *,
    tail_threshold_fraction: float = 0.2,
) -> int:
    """Algorithm 3: ideal instance count for the upcoming load.

    ``remaining_times`` are the predicted minimum remaining occupancy
    times of Q_task, in the FIFO order the framework is expected to
    dispatch them. Returns the planned pool size ``p`` (>= 1 whenever the
    load is non-empty).
    """
    check_positive("charging_unit", charging_unit)
    if slots_per_instance <= 0:
        raise ValueError(
            f"slots_per_instance must be > 0, got {slots_per_instance}"
        )
    check_in_range(
        "tail_threshold_fraction", tail_threshold_fraction, 0.0, 1.0
    )
    if not remaining_times:
        return 0

    queue = list(remaining_times)
    queue.reverse()  # pop() from the end == FIFO poll()
    p = 0
    t_used = 0.0
    slot_used: list[float] = []
    while queue:
        while len(slot_used) < slots_per_instance and queue:
            slot_used.append(queue.pop())
        if len(slot_used) == slots_per_instance:
            t_min = min(slot_used)
            t_used += t_min
            if t_used >= charging_unit:
                p += 1
                t_used = 0.0
                slot_used = []
            else:
                # Lines 18-24: tasks at the minimum complete and leave the
                # slot set (all ties at once — each would otherwise leave
                # on a zero-cost later round); the rest advance by t_min.
                slot_used = [t - t_min for t in slot_used if t != t_min]
    if p == 0 or (slot_used and max(slot_used) > tail_threshold_fraction * charging_unit):
        p += 1
    return p


@dataclass(frozen=True)
class SteerableInstance:
    """What Algorithm 2 needs to know about one running instance."""

    instance_id: str
    #: seconds until the next charging-unit boundary (r_j)
    time_to_next_charge: float
    #: max sunk occupancy of its projected tasks at the interval start (c_j)
    restart_cost: float


class SteeringPolicy:
    """Algorithm 2: grow or shrink the pool toward Algorithm 3's target."""

    def __init__(self, restart_threshold_fraction: float = 0.2) -> None:
        check_in_range(
            "restart_threshold_fraction", restart_threshold_fraction, 0.0, 1.0
        )
        self.restart_threshold_fraction = restart_threshold_fraction

    def decide(
        self,
        *,
        now: float,
        upcoming_remaining: Sequence[float],
        instances: Sequence[SteerableInstance],
        pending_count: int,
        charging_unit: float,
        lag: float,
        slots_per_instance: int,
        min_instances: int,
        max_instances: int,
    ) -> ScalingDecision:
        """One Execute step.

        ``instances`` are the steerable (running, non-draining) instances;
        ``pending_count`` counts launches already ordered. The decision
        never shrinks below ``min_instances`` nor plans beyond
        ``max_instances``.
        """
        p = resize_pool(
            upcoming_remaining,
            charging_unit,
            slots_per_instance,
            tail_threshold_fraction=self.restart_threshold_fraction,
        )
        if not upcoming_remaining:
            # §III-D: with an empty Q_task, retain a minimal pool until the
            # next control iteration (or workflow end).
            p = min_instances
        return self.decide_with_target(
            target=p,
            now=now,
            instances=instances,
            pending_count=pending_count,
            charging_unit=charging_unit,
            lag=lag,
            min_instances=min_instances,
            max_instances=max_instances,
        )

    def decide_with_target(
        self,
        *,
        target: int,
        now: float,
        instances: Sequence[SteerableInstance],
        pending_count: int,
        charging_unit: float,
        lag: float,
        min_instances: int,
        max_instances: int,
    ) -> ScalingDecision:
        """Algorithm 2's grow/shrink step for an externally chosen target.

        The reactive-conserving baseline reuses this with a target derived
        from instantaneous task counts rather than Algorithm 3.
        """
        m = len(instances) + pending_count
        p = max(min_instances, min(target, max_instances))

        if p > m:
            return ScalingDecision(launch=p - m)
        if p >= m:
            return ScalingDecision()

        threshold = self.restart_threshold_fraction * charging_unit
        candidates = sorted(
            (
                inst
                for inst in instances
                if inst.time_to_next_charge <= lag
                and inst.restart_cost <= threshold
            ),
            key=lambda inst: (
                inst.restart_cost,
                inst.time_to_next_charge,
                inst.instance_id,
            ),
        )
        to_release = min(m - p, len(candidates), max(0, m - min_instances))
        orders = tuple(
            TerminationOrder(
                instance_id=inst.instance_id,
                # Release exactly at the charge boundary: every paid second
                # is usable, and no recharge is incurred.
                at=now + inst.time_to_next_charge,
            )
            for inst in candidates[:to_release]
        )
        return ScalingDecision(terminations=orders)
