"""Counter / gauge / histogram primitives.

A :class:`MetricsRegistry` hands out named instruments that engine code
updates unconditionally; the cost of the disabled default is one no-op
method call per update site (the instruments returned by
:data:`NULL_METRICS` do nothing), and the engine additionally guards its
per-event update sites behind a cached boolean so the smoke-bench
overhead of the null path stays under 2%.

Histograms use fixed power-of-two bucket boundaries, so aggregation is
O(1) per observation, merge-friendly, and deterministic — no reservoir
sampling, no randomness.
"""

from __future__ import annotations

import math

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_METRICS",
    "NullMetricsRegistry",
]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed power-of-two bucket histogram of non-negative samples.

    Bucket *i* counts samples in ``(2^(i-1), 2^i]`` (bucket 0 holds
    ``[0, 1]``), covering the full float range without configuration.
    Tracks count/total/min/max exactly; quantiles are bucket-resolution
    approximations, which is all the run reports need.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count: int = 0
        self.total: float = 0.0
        self.min: float = math.inf
        self.max: float = -math.inf
        self._buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"histogram {self.name} takes non-negative samples")
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        bucket = 0 if value <= 1.0 else math.frexp(value)[1]
        self._buckets[bucket] = self._buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def buckets(self) -> dict[int, int]:
        """Bucket exponent -> sample count, ascending."""
        return dict(sorted(self._buckets.items()))

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket containing the ``q``-quantile."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for exponent, count in sorted(self._buckets.items()):
            seen += count
            if seen >= rank:
                return float(2**exponent) if exponent > 0 else 1.0
        return self.max


class MetricsRegistry:
    """Creates and caches named instruments; snapshot-able."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    #: real registries record; the null subclass overrides this to False
    enabled: bool = True

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            metric = self._counters[name] = Counter(name)
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self._gauges.get(name)
        if metric is None:
            metric = self._gauges[name] = Gauge(name)
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            metric = self._histograms[name] = Histogram(name)
        return metric

    def snapshot(self) -> dict[str, float | dict[str, float]]:
        """All instrument values, keyed by name (deterministic order)."""
        out: dict[str, float | dict[str, float]] = {}
        for name in sorted(self._counters):
            out[name] = self._counters[name].value
        for name in sorted(self._gauges):
            out[name] = self._gauges[name].value
        for name in sorted(self._histograms):
            h = self._histograms[name]
            out[name] = {
                "count": float(h.count),
                "total": h.total,
                "mean": h.mean,
                "min": h.min if h.count else 0.0,
                "max": h.max if h.count else 0.0,
            }
        return out


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: float = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


class NullMetricsRegistry(MetricsRegistry):
    """Hands out shared no-op instruments; the engine default."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._null_counter = _NullCounter("null")
        self._null_gauge = _NullGauge("null")
        self._null_histogram = _NullHistogram("null")

    def counter(self, name: str) -> Counter:
        return self._null_counter

    def gauge(self, name: str) -> Gauge:
        return self._null_gauge

    def histogram(self, name: str) -> Histogram:
        return self._null_histogram


#: Shared disabled registry; safe to use from any number of engines.
NULL_METRICS = NullMetricsRegistry()
