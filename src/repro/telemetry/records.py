"""Typed telemetry records emitted at the MAPE boundaries.

Each record type captures one class of per-decision quantity the paper's
evaluation (§IV) is built on: per-control-tick controller state (the
predicted load ``Q_task``, per-stage predictions, the Algorithm 2/3
branch taken, pool sizes), per-instance lifecycle and billing events
(charging units consumed, idle fraction at termination), and per-task
attempt outcomes (queue wait, runtime, transfer times).

Records are plain frozen dataclasses with a stable ``kind`` tag and a
lossless JSON round-trip (:meth:`to_json` / :func:`record_from_json`),
so a JSONL trace file is both machine-readable and diffable. Nothing in
this module imports engine state — records carry values, not references —
which keeps sinks trivially serializable across process boundaries.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Any, ClassVar, Mapping

__all__ = [
    "CloudFaultRecord",
    "ControlTickRecord",
    "FleetTickRecord",
    "InstanceEventRecord",
    "RunMetaRecord",
    "RunSummaryRecord",
    "StagePrediction",
    "TaskAttemptRecord",
    "TenantRecord",
    "TickTelemetry",
    "TraceRecord",
    "record_from_json",
]


@dataclass(frozen=True, slots=True)
class StagePrediction:
    """One stage's execution-time prediction at a single MAPE tick."""

    stage_id: str
    #: identifier of the model/policy that dominated the stage's estimates
    #: (a §III-C policy name, ``observed``, or ``ogd``)
    model: str
    #: incomplete tasks of the stage annotated at this tick
    n_tasks: int
    #: mean predicted execution time over those tasks (seconds)
    mean_estimate: float


@dataclass(frozen=True, slots=True)
class TickTelemetry:
    """Controller-internal detail attached to one control tick.

    Produced by :meth:`repro.engine.control.Autoscaler.tick_telemetry`;
    policies without online prediction return ``None`` and the engine
    records the tick without it.
    """

    #: Algorithm 3's planned pool size p (before site clamping)
    target_pool: int
    #: size of the projected upcoming load Q_task
    q_task: int
    #: total predicted remaining occupancy over Q_task (seconds)
    q_remaining: float
    #: the controller's current data-transfer estimate t̃_data (seconds)
    transfer_estimate: float
    stage_predictions: tuple[StagePrediction, ...] = ()


class TraceRecord:
    """Base class for all trace records (provides the JSON round-trip)."""

    kind: ClassVar[str] = "abstract"

    def to_json(self) -> dict[str, Any]:
        """A JSON-ready dict with the record's ``kind`` tag included."""
        payload = asdict(self)  # type: ignore[call-overload]
        payload["kind"] = self.kind
        return payload


@dataclass(frozen=True, slots=True)
class RunMetaRecord(TraceRecord):
    """Identity of the traced run — always the first record of a trace."""

    kind: ClassVar[str] = "run_meta"

    workflow: str
    policy: str
    charging_unit: float
    seed: int | None
    site: str
    max_instances: int
    lag: float
    #: MAPE controller period (seconds)
    period: float
    n_tasks: int
    n_stages: int
    slots_per_instance: int
    #: identifier of the engine's runtime model ("nominal", "perturbed")
    runtime_model: str = ""


@dataclass(frozen=True, slots=True)
class ControlTickRecord(TraceRecord):
    """What one MAPE iteration saw and decided."""

    kind: ClassVar[str] = "control_tick"

    #: 0-based tick index
    tick: int
    now: float
    #: RUNNING (non-draining) + PENDING instances when the tick fired
    pool_before: int
    #: the same count after the decision was applied
    pool_after: int
    launched: int
    terminated: int
    #: Algorithm 2 branch taken: "grow", "shrink", or "hold"
    branch: str
    #: master's task-state counts at the tick (ready/in-flight/completed)
    ready_tasks: int
    in_flight_tasks: int
    completed_tasks: int
    #: Algorithm 3 target p; None for policies without one
    target_pool: int | None = None
    #: predicted upcoming load |Q_task|; None for non-predictive policies
    q_task: int | None = None
    #: total predicted remaining occupancy over Q_task (seconds)
    q_remaining: float | None = None
    #: controller transfer estimate t̃_data; None for non-predictive policies
    transfer_estimate: float | None = None
    #: per-stage predictions at this tick (predictive policies only)
    stage_predictions: tuple[StagePrediction, ...] = ()


@dataclass(frozen=True, slots=True)
class InstanceEventRecord(TraceRecord):
    """One worker-instance lifecycle event with its billing context."""

    kind: ClassVar[str] = "instance_event"

    now: float
    instance_id: str
    #: "requested", "provisioned", "terminated", "revoked", or "cancelled"
    event: str
    #: charging units billed over the instance's life (terminated only)
    units_charged: int | None = None
    #: paid wall seconds = units * u (terminated only)
    paid_seconds: float | None = None
    #: busy slot-seconds actually consumed by task attempts
    busy_slot_seconds: float | None = None
    #: 1 - busy / (paid * slots), the §IV waste signal (terminated only)
    idle_fraction: float | None = None
    #: paid-but-unused wall seconds (billing's recharge waste measure)
    wasted_seconds: float | None = None


@dataclass(frozen=True, slots=True)
class TaskAttemptRecord(TraceRecord):
    """Outcome of one task attempt (completions, kills, and failures)."""

    kind: ClassVar[str] = "task_attempt"

    now: float
    task_id: str
    stage_id: str
    attempt: int
    instance_id: str
    #: "completed", "killed" (pool shrink), or "failed" (injected fault)
    outcome: str
    #: seconds between becoming ready and slot assignment
    queue_wait: float | None = None
    stage_in: float | None = None
    #: measured pure execution seconds (completions only)
    runtime: float | None = None
    stage_out: float | None = None
    #: total slot occupancy consumed by the attempt
    occupancy: float = 0.0
    input_size: float = 0.0


@dataclass(frozen=True, slots=True)
class CloudFaultRecord(TraceRecord):
    """One injected cloud fault, or a degradation reacting to one.

    Emitted by the engine's chaos wiring (:mod:`repro.cloud.faults`).
    ``fault`` is one of: ``revocation``, ``straggler``,
    ``provision_failure``, ``provision_retry``, ``provision_abandoned``,
    ``provision_timeout``, ``monitor_blackout``. Only the fields relevant
    to the fault class are set; the rest stay ``None``/0.
    """

    kind: ClassVar[str] = "cloud_fault"

    now: float
    fault: str
    #: subject instance (None for monitor blackouts)
    instance_id: str | None = None
    #: attempts killed and requeued by a revocation
    tasks_killed: int = 0
    #: paid-but-unused seconds of a revoked instance — the billing waste
    #: attributable to the revocation (its recharge-waste measure)
    wasted_seconds: float | None = None
    #: sunk slot-occupancy destroyed by a revocation (work to redo)
    lost_occupancy: float | None = None
    #: straggler execution-time multiplier
    slowdown: float | None = None
    #: provisioning attempt number within a retry chain (1 = first try)
    attempt: int | None = None
    #: backoff delay before the next provisioning retry (seconds)
    backoff: float | None = None


@dataclass(frozen=True, slots=True)
class FleetTickRecord(TraceRecord):
    """What one global steering iteration of a fleet run saw and decided.

    The fleet analogue of :class:`ControlTickRecord`: pool sizes and the
    Algorithm 2 branch are site-wide, and the task-state counts are
    replaced by tenant-population counts (per-tenant task detail lives in
    the :class:`TenantRecord` emitted at fleet end).
    """

    kind: ClassVar[str] = "fleet_tick"

    #: 0-based tick index
    tick: int
    now: float
    #: tenants admitted and not yet finished when the tick fired
    active_tenants: int
    #: tenants arrived but held back by the admission cap
    waiting_tenants: int
    #: ready tasks queued across all active tenants
    queued_tasks: int
    pool_before: int
    pool_after: int
    launched: int
    terminated: int
    #: Algorithm 2 branch taken: "grow", "shrink", or "hold"
    branch: str
    #: Algorithm 3 target p over the summed load; None for non-predictive
    target_pool: int | None = None
    #: size of the concatenated upcoming load sum(Q_task); None likewise
    q_task: int | None = None
    #: total predicted remaining occupancy over the summed load (seconds)
    q_remaining: float | None = None


@dataclass(frozen=True, slots=True)
class TenantRecord(TraceRecord):
    """Final per-tenant metrics of a fleet run (one per tenant, at end).

    ``slowdown`` is response time (finish - submit) over the workflow's
    zero-contention critical path; ``attributed_*`` are the tenant's
    proportional-to-busy-share slice of the shared site bill.
    """

    kind: ClassVar[str] = "tenant"

    now: float
    tenant_id: str
    workload: str
    priority: int
    submitted_at: float
    finished_at: float
    makespan: float
    slowdown: float
    queue_wait_mean: float
    tasks: int
    restarts: int
    attributed_cost: float
    attributed_units: float
    attributed_wasted_seconds: float
    completed: bool


@dataclass(frozen=True, slots=True)
class RunSummaryRecord(TraceRecord):
    """Aggregate measurements — always the last record of a trace."""

    kind: ClassVar[str] = "run_summary"

    makespan: float
    completed: bool
    total_units: int
    total_cost: float
    wasted_seconds: float
    utilization: float
    peak_instances: int
    instances_launched: int
    restarts: int
    ticks: int


_RECORD_TYPES: dict[str, type[TraceRecord]] = {
    cls.kind: cls
    for cls in (
        RunMetaRecord,
        ControlTickRecord,
        InstanceEventRecord,
        TaskAttemptRecord,
        CloudFaultRecord,
        FleetTickRecord,
        TenantRecord,
        RunSummaryRecord,
    )
}


def record_from_json(payload: Mapping[str, Any]) -> TraceRecord:
    """Rebuild a typed record from its :meth:`TraceRecord.to_json` dict.

    Raises ``ValueError`` on an unknown or malformed ``kind`` tag so a
    corrupted trace line fails loudly instead of silently degrading the
    summary.
    """
    kind = payload.get("kind")
    cls = _RECORD_TYPES.get(kind) if isinstance(kind, str) else None
    if cls is None:
        raise ValueError(f"unknown trace record kind {kind!r}")
    values = {k: v for k, v in payload.items() if k != "kind"}
    if cls is ControlTickRecord and "stage_predictions" in values:
        values["stage_predictions"] = tuple(
            StagePrediction(**p) for p in values["stage_predictions"]
        )
    allowed = {f.name for f in fields(cls)}
    unknown = set(values) - allowed
    if unknown:
        raise ValueError(
            f"unknown fields {sorted(unknown)} for record kind {kind!r}"
        )
    return cls(**values)
