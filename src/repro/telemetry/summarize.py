"""Trace post-processing: turn a JSONL trace into a run report.

``repro trace summarize out.jsonl`` renders three views of one traced
run:

- a **per-stage prediction-error table**: for every stage, the mean
  execution time the controller predicted across its MAPE ticks versus
  the stage's eventual actual mean runtime, and the resulting MAPE
  (mean absolute percentage error) — the paper's Fig. 4 quantity,
  computed from the run's own telemetry instead of a bespoke experiment;
- a **cost/waste breakdown**: charging units, paid versus busy
  slot-seconds, idle fraction, and recharge waste, aggregated from the
  per-instance termination records;
- a **controller summary**: tick count and how often Algorithm 2 grew,
  shrank, or held the pool.

The summarizer is pure: it consumes records (from any sink) and returns
plain data, so tests can assert on numbers and the CLI on rendering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.telemetry.records import (
    CloudFaultRecord,
    ControlTickRecord,
    FleetTickRecord,
    InstanceEventRecord,
    RunMetaRecord,
    RunSummaryRecord,
    TaskAttemptRecord,
    TenantRecord,
    TraceRecord,
)
from repro.telemetry.sinks import read_jsonl
from repro.util.formatting import format_duration, render_table

__all__ = ["StageErrorRow", "TraceSummary", "render_trace_summary", "summarize_trace"]


@dataclass(frozen=True)
class StageErrorRow:
    """Per-stage prediction accuracy over the whole run."""

    stage_id: str
    #: completed task attempts observed for the stage
    completed: int
    #: mean actual execution time of those attempts (seconds)
    actual_mean: float
    #: mean of the controller's per-tick mean estimates (seconds)
    predicted_mean: float
    #: mean absolute percentage error of per-tick estimates vs actual
    mape: float | None
    #: model id that produced the majority of the stage's estimates
    dominant_model: str
    #: controller ticks at which the stage had incomplete annotated tasks
    ticks_observed: int


@dataclass
class TraceSummary:
    """Everything ``repro trace summarize`` reports, as plain data."""

    meta: RunMetaRecord | None
    summary: RunSummaryRecord | None
    stage_errors: list[StageErrorRow] = field(default_factory=list)
    #: instance lifecycle tallies: requested/provisioned/terminated/cancelled
    instance_events: dict[str, int] = field(default_factory=dict)
    #: cost aggregation over terminated-instance records
    total_units: int = 0
    paid_slot_seconds: float = 0.0
    busy_slot_seconds: float = 0.0
    wasted_seconds: float = 0.0
    #: task attempt tallies by outcome
    task_outcomes: dict[str, int] = field(default_factory=dict)
    mean_queue_wait: float | None = None
    #: controller branch tallies: grow/shrink/hold
    branch_counts: dict[str, int] = field(default_factory=dict)
    ticks: int = 0
    #: injected cloud-fault tallies by fault class (chaos runs only)
    cloud_faults: dict[str, int] = field(default_factory=dict)
    #: task attempts killed by instance revocations
    revocation_task_kills: int = 0
    #: paid-but-unused seconds attributable to revoked instances
    revocation_wasted_seconds: float = 0.0
    #: sunk slot-occupancy destroyed by revocations (work redone)
    revocation_lost_occupancy: float = 0.0
    #: per-tenant final metrics, in tenant-id order (fleet traces only)
    tenants: list[TenantRecord] = field(default_factory=list)

    @property
    def idle_fraction(self) -> float | None:
        if self.paid_slot_seconds <= 0:
            return None
        return max(0.0, 1.0 - self.busy_slot_seconds / self.paid_slot_seconds)


def summarize_trace(source: str | Path | Iterable[TraceRecord]) -> TraceSummary:
    """Aggregate one run's records into a :class:`TraceSummary`.

    ``source`` is a JSONL path or an already-parsed record sequence.
    """
    if isinstance(source, (str, Path)):
        records: Sequence[TraceRecord] = read_jsonl(source)
    else:
        records = list(source)

    meta: RunMetaRecord | None = None
    summary: RunSummaryRecord | None = None
    ticks: list[ControlTickRecord | FleetTickRecord] = []
    tenants: list[TenantRecord] = []
    instance_events: dict[str, int] = {}
    task_outcomes: dict[str, int] = {}
    total_units = 0
    paid_slot = 0.0
    busy_slot = 0.0
    wasted = 0.0
    queue_waits: list[float] = []
    cloud_faults: dict[str, int] = {}
    revocation_kills = 0
    revocation_wasted = 0.0
    revocation_lost = 0.0
    #: stage -> list of actual runtimes from completed attempts
    actual: dict[str, list[float]] = {}
    #: stage -> list of (tick mean estimate, model)
    predicted: dict[str, list[tuple[float, str]]] = {}

    for record in records:
        if isinstance(record, RunMetaRecord):
            meta = record
        elif isinstance(record, RunSummaryRecord):
            summary = record
        elif isinstance(record, ControlTickRecord):
            ticks.append(record)
            for sp in record.stage_predictions:
                predicted.setdefault(sp.stage_id, []).append(
                    (sp.mean_estimate, sp.model)
                )
        elif isinstance(record, FleetTickRecord):
            ticks.append(record)
        elif isinstance(record, TenantRecord):
            tenants.append(record)
        elif isinstance(record, InstanceEventRecord):
            instance_events[record.event] = instance_events.get(record.event, 0) + 1
            if record.event in ("terminated", "revoked"):
                total_units += record.units_charged or 0
                slots = meta.slots_per_instance if meta is not None else 1
                paid_slot += (record.paid_seconds or 0.0) * slots
                busy_slot += record.busy_slot_seconds or 0.0
                wasted += record.wasted_seconds or 0.0
        elif isinstance(record, CloudFaultRecord):
            cloud_faults[record.fault] = cloud_faults.get(record.fault, 0) + 1
            if record.fault == "revocation":
                revocation_kills += record.tasks_killed
                revocation_wasted += record.wasted_seconds or 0.0
                revocation_lost += record.lost_occupancy or 0.0
        elif isinstance(record, TaskAttemptRecord):
            task_outcomes[record.outcome] = task_outcomes.get(record.outcome, 0) + 1
            if record.queue_wait is not None:
                queue_waits.append(record.queue_wait)
            if record.outcome == "completed" and record.runtime is not None:
                actual.setdefault(record.stage_id, []).append(record.runtime)

    stage_errors: list[StageErrorRow] = []
    for stage_id in sorted(set(actual) | set(predicted)):
        actual_times = actual.get(stage_id, [])
        actual_mean = sum(actual_times) / len(actual_times) if actual_times else 0.0
        stage_predictions = predicted.get(stage_id, [])
        predicted_mean = (
            sum(e for e, _ in stage_predictions) / len(stage_predictions)
            if stage_predictions
            else 0.0
        )
        mape: float | None = None
        if stage_predictions and actual_mean > 0:
            mape = sum(
                abs(e - actual_mean) / actual_mean for e, _ in stage_predictions
            ) / len(stage_predictions)
        models = [m for _, m in stage_predictions]
        dominant = (
            max(sorted(set(models)), key=models.count) if models else "-"
        )
        stage_errors.append(
            StageErrorRow(
                stage_id=stage_id,
                completed=len(actual_times),
                actual_mean=actual_mean,
                predicted_mean=predicted_mean,
                mape=mape,
                dominant_model=dominant,
                ticks_observed=len(stage_predictions),
            )
        )

    branch_counts: dict[str, int] = {}
    for tick in ticks:
        branch_counts[tick.branch] = branch_counts.get(tick.branch, 0) + 1

    return TraceSummary(
        meta=meta,
        summary=summary,
        stage_errors=stage_errors,
        instance_events=instance_events,
        total_units=total_units,
        paid_slot_seconds=paid_slot,
        busy_slot_seconds=busy_slot,
        wasted_seconds=wasted,
        task_outcomes=task_outcomes,
        mean_queue_wait=(
            sum(queue_waits) / len(queue_waits) if queue_waits else None
        ),
        branch_counts=branch_counts,
        ticks=len(ticks),
        cloud_faults=cloud_faults,
        revocation_task_kills=revocation_kills,
        revocation_wasted_seconds=revocation_wasted,
        revocation_lost_occupancy=revocation_lost,
        tenants=sorted(tenants, key=lambda t: t.tenant_id),
    )


def render_trace_summary(summary: TraceSummary) -> str:
    """Render a :class:`TraceSummary` as the CLI's run report."""
    blocks: list[str] = []

    if summary.meta is not None:
        meta = summary.meta
        title = (
            f"{meta.workflow} / {meta.policy} "
            f"(u = {meta.charging_unit:.0f}s, seed {meta.seed})"
        )
    else:
        title = "trace summary (no run_meta record)"

    if summary.stage_errors:
        blocks.append(
            render_table(
                ["stage", "done", "actual mean", "predicted mean", "MAPE",
                 "model", "ticks"],
                [
                    [
                        row.stage_id,
                        row.completed,
                        f"{row.actual_mean:.1f}s",
                        f"{row.predicted_mean:.1f}s",
                        f"{row.mape * 100:.0f}%" if row.mape is not None else "-",
                        row.dominant_model,
                        row.ticks_observed,
                    ]
                    for row in summary.stage_errors
                ],
                title=f"{title} — per-stage prediction error",
            )
        )

    cost_rows: list[list] = [
        ["charging units", summary.total_units],
        ["paid slot-seconds", f"{summary.paid_slot_seconds:.0f}"],
        ["busy slot-seconds", f"{summary.busy_slot_seconds:.0f}"],
        [
            "idle fraction",
            f"{summary.idle_fraction * 100:.0f}%"
            if summary.idle_fraction is not None
            else "-",
        ],
        ["recharge waste", format_duration(summary.wasted_seconds)],
    ]
    for event in ("requested", "provisioned", "terminated", "revoked", "cancelled"):
        if event in summary.instance_events:
            cost_rows.append([f"instances {event}", summary.instance_events[event]])
    blocks.append(render_table(["cost / waste", "value"], cost_rows))

    if summary.cloud_faults:
        fault_rows: list[list] = [
            [fault, count]
            for fault, count in sorted(summary.cloud_faults.items())
        ]
        if summary.revocation_task_kills:
            fault_rows.append(
                ["attempts killed by revocation", summary.revocation_task_kills]
            )
        if summary.cloud_faults.get("revocation"):
            fault_rows.append(
                [
                    "billing wasted by revocation",
                    format_duration(summary.revocation_wasted_seconds),
                ]
            )
            fault_rows.append(
                [
                    "occupancy lost to revocation",
                    format_duration(summary.revocation_lost_occupancy),
                ]
            )
        blocks.append(render_table(["cloud fault", "count"], fault_rows))

    if summary.tenants:
        blocks.append(
            render_table(
                ["tenant", "workload", "prio", "makespan", "slowdown",
                 "queue wait", "cost share", "wasted", "restarts", "done"],
                [
                    [
                        t.tenant_id,
                        t.workload,
                        t.priority,
                        format_duration(t.makespan),
                        f"{t.slowdown:.2f}x",
                        f"{t.queue_wait_mean:.1f}s",
                        f"{t.attributed_cost:.2f}",
                        format_duration(t.attributed_wasted_seconds),
                        t.restarts,
                        "yes" if t.completed else "NO",
                    ]
                    for t in summary.tenants
                ],
                title=f"{title} — per-tenant metrics",
            )
        )

    run_rows: list[list] = [["controller ticks", summary.ticks]]
    for branch in ("grow", "shrink", "hold"):
        run_rows.append([f"ticks {branch}", summary.branch_counts.get(branch, 0)])
    for outcome in ("completed", "killed", "failed"):
        if outcome in summary.task_outcomes:
            run_rows.append(
                [f"attempts {outcome}", summary.task_outcomes[outcome]]
            )
    if summary.mean_queue_wait is not None:
        run_rows.append(["mean queue wait", f"{summary.mean_queue_wait:.1f}s"])
    if summary.summary is not None:
        s = summary.summary
        run_rows.extend(
            [
                ["makespan", format_duration(s.makespan)],
                ["total cost", f"{s.total_cost:.0f}"],
                ["utilization", f"{s.utilization * 100:.0f}%"],
                ["restarts", s.restarts],
            ]
        )
    blocks.append(render_table(["run", "value"], run_rows))

    return "\n\n".join(blocks)
