"""Pluggable trace sinks.

A sink receives fully-built :class:`~repro.telemetry.records.TraceRecord`
objects from a :class:`~repro.telemetry.tracer.Tracer` and decides what
to do with them: drop (``NullSink``), buffer in a bounded ring
(``MemorySink``), or append to a JSONL file (``JsonlSink``). Sinks are
deliberately dumb — all filtering happens before emission, on the
tracer's enabled fast path — so the cost of a disabled trace is a single
attribute check per potential record.
"""

from __future__ import annotations

import io
import json
from abc import ABC, abstractmethod
from collections import deque
from pathlib import Path

from repro.telemetry.records import TraceRecord, record_from_json

__all__ = ["JsonlSink", "MemorySink", "NullSink", "TraceSink", "read_jsonl"]


class TraceSink(ABC):
    """Destination for trace records."""

    @abstractmethod
    def emit(self, record: TraceRecord) -> None:
        """Accept one record. Must not mutate or retain engine state."""

    def close(self) -> None:
        """Flush and release resources. Idempotent."""


class NullSink(TraceSink):
    """Discards everything; the default when tracing is off."""

    def emit(self, record: TraceRecord) -> None:  # pragma: no cover - no-op
        pass


class MemorySink(TraceSink):
    """Bounded in-memory ring buffer of records.

    ``maxlen=None`` keeps everything (tests); a bound keeps long runs
    from growing without limit while retaining the most recent records.
    """

    def __init__(self, maxlen: int | None = None) -> None:
        self._records: deque[TraceRecord] = deque(maxlen=maxlen)

    def emit(self, record: TraceRecord) -> None:
        self._records.append(record)

    @property
    def records(self) -> list[TraceRecord]:
        """The buffered records, oldest first."""
        return list(self._records)

    def of_kind(self, kind: str) -> list[TraceRecord]:
        """Buffered records whose ``kind`` tag matches."""
        return [r for r in self._records if r.kind == kind]

    def clear(self) -> None:
        self._records.clear()


class JsonlSink(TraceSink):
    """Appends one JSON object per record to a file.

    Lines are serialized with sorted keys and compact separators so a
    trace is byte-deterministic for a deterministic run. The file handle
    opens on the first emit (a tracer constructed but never used leaves
    no file behind) and is flushed on :meth:`close`.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._file: io.TextIOWrapper | None = None
        self._emitted = 0

    def emit(self, record: TraceRecord) -> None:
        if self._file is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._file = self.path.open("w", encoding="utf-8")
        json.dump(
            record.to_json(), self._file, sort_keys=True, separators=(",", ":")
        )
        self._file.write("\n")
        self._emitted += 1

    @property
    def emitted(self) -> int:
        """Number of records written so far."""
        return self._emitted

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def read_jsonl(path: str | Path) -> list[TraceRecord]:
    """Parse a JSONL trace file back into typed records."""
    records: list[TraceRecord] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(record_from_json(json.loads(line)))
            except (json.JSONDecodeError, ValueError, TypeError) as exc:
                raise ValueError(
                    f"{path}:{lineno}: malformed trace record: {exc}"
                ) from exc
    return records
