"""Pluggable trace sinks.

A sink receives fully-built :class:`~repro.telemetry.records.TraceRecord`
objects from a :class:`~repro.telemetry.tracer.Tracer` and decides what
to do with them: drop (``NullSink``), buffer in a bounded ring
(``MemorySink``), or append to a JSONL file (``JsonlSink``). Sinks are
deliberately dumb — all filtering happens before emission, on the
tracer's enabled fast path — so the cost of a disabled trace is a single
attribute check per potential record.
"""

from __future__ import annotations

import io
import json
from abc import ABC, abstractmethod
from collections import deque
from pathlib import Path

from repro.telemetry.records import TraceRecord, record_from_json

__all__ = [
    "JsonlSink",
    "MemorySink",
    "NullSink",
    "TraceSink",
    "read_jsonl",
    "read_jsonl_dir",
]


class TraceSink(ABC):
    """Destination for trace records."""

    @abstractmethod
    def emit(self, record: TraceRecord) -> None:
        """Accept one record. Must not mutate or retain engine state."""

    def close(self) -> None:
        """Flush and release resources. Idempotent."""


class NullSink(TraceSink):
    """Discards everything; the default when tracing is off."""

    def emit(self, record: TraceRecord) -> None:  # pragma: no cover - no-op
        pass


class MemorySink(TraceSink):
    """Bounded in-memory ring buffer of records.

    ``maxlen=None`` keeps everything (tests); a bound keeps long runs
    from growing without limit while retaining the most recent records.
    """

    def __init__(self, maxlen: int | None = None) -> None:
        self._records: deque[TraceRecord] = deque(maxlen=maxlen)

    def emit(self, record: TraceRecord) -> None:
        self._records.append(record)

    @property
    def records(self) -> list[TraceRecord]:
        """The buffered records, oldest first."""
        return list(self._records)

    def of_kind(self, kind: str) -> list[TraceRecord]:
        """Buffered records whose ``kind`` tag matches."""
        return [r for r in self._records if r.kind == kind]

    def clear(self) -> None:
        self._records.clear()


class JsonlSink(TraceSink):
    """Appends one JSON object per record to a file.

    Lines are serialized with sorted keys and compact separators so a
    trace is byte-deterministic for a deterministic run. The file handle
    opens on the first emit (a tracer constructed but never used leaves
    no file behind) and is flushed on :meth:`close`.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._file: io.TextIOWrapper | None = None
        self._emitted = 0
        #: byte offset to resume at (set on unpickle; see __getstate__)
        self._resume_offset: int | None = None

    def emit(self, record: TraceRecord) -> None:
        if self._file is None:
            self._open()
        json.dump(
            record.to_json(), self._file, sort_keys=True, separators=(",", ":")
        )
        self._file.write("\n")
        self._emitted += 1

    def _open(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if self._resume_offset is not None:
            # Resuming a checkpointed run: everything the interrupted
            # run wrote after the cut is dropped, then appends continue
            # at the recorded offset — the resumed trace ends up
            # byte-identical to an uninterrupted one.
            if not self.path.exists() and self._resume_offset > 0:
                raise FileNotFoundError(
                    f"cannot resume trace {self.path}: the file written "
                    "before the checkpoint is gone"
                )
            if self.path.exists():
                with self.path.open("r+b") as raw:
                    raw.truncate(self._resume_offset)
            self._file = self.path.open("a", encoding="utf-8")
            self._resume_offset = None
        else:
            self._file = self.path.open("w", encoding="utf-8")

    def __getstate__(self) -> dict:
        """Pickle support for checkpointing: detach the file handle.

        The flushed byte offset rides along as the telemetry cursor;
        :meth:`_open` truncates back to it on the first emit after
        restore. The live sink is left untouched — a run that
        checkpoints mid-flight keeps writing through its open handle.
        """
        state = self.__dict__.copy()
        if self._file is not None:
            self._file.flush()
            state["_resume_offset"] = self._file.buffer.tell()
        state["_file"] = None
        return state

    @property
    def emitted(self) -> int:
        """Number of records written so far."""
        return self._emitted

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def read_jsonl(path: str | Path) -> list[TraceRecord]:
    """Parse a JSONL trace file back into typed records."""
    records: list[TraceRecord] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(record_from_json(json.loads(line)))
            except (json.JSONDecodeError, ValueError, TypeError) as exc:
                raise ValueError(
                    f"{path}:{lineno}: malformed trace record: {exc}"
                ) from exc
    return records


def read_jsonl_dir(path: str | Path) -> list[TraceRecord]:
    """Merge every ``*.jsonl`` trace in a directory, in timestamp order.

    A sharded or multi-run campaign leaves one JSONL file per shard/run;
    this stitches them into a single record sequence the summarizer can
    consume. Records sort by their ``now`` field; ``run_meta`` records
    (no timestamp) lead and ``run_summary`` records trail, and the sort
    is stable with files visited in sorted-name order, so the merge is
    deterministic. Raises :class:`FileNotFoundError` when the directory
    holds no ``*.jsonl`` files, and propagates :func:`read_jsonl`'s
    :class:`ValueError` (with file/line pinpoint) on malformed records.
    """
    directory = Path(path)
    files = sorted(directory.glob("*.jsonl"))
    if not files:
        raise FileNotFoundError(
            f"no .jsonl trace files in directory {directory}"
        )
    merged: list[TraceRecord] = []
    for file in files:
        merged.extend(read_jsonl(file))

    def _order(record: TraceRecord) -> tuple[int, float]:
        now = getattr(record, "now", None)
        if now is None:
            # run_meta opens a trace, run_summary closes one
            return (0, 0.0) if record.kind == "run_meta" else (2, 0.0)
        return (1, now)

    merged.sort(key=_order)
    return merged
