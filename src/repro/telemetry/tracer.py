"""The tracer: the engine's single telemetry entry point.

Design constraints (tentpole requirements):

- **Low overhead when off.** The engine's hot paths guard every emission
  with ``if tracer.enabled:`` so a disabled tracer costs one attribute
  load per potential record — record construction itself is skipped.
  ``tools/perfbench.py`` and the telemetry overhead test hold this to
  <2% on the smoke bench.
- **Zero behavioral footprint.** Tracing is pure observation: it reads
  engine state after decisions are made and never touches RNG streams,
  so a traced run is bit-identical to an untraced one (asserted against
  the golden-fingerprint suite).
"""

from __future__ import annotations

from repro.telemetry.records import TraceRecord
from repro.telemetry.sinks import NullSink, TraceSink

__all__ = ["NULL_TRACER", "Tracer"]


class Tracer:
    """Routes records to one sink, with a cheap disabled fast path."""

    __slots__ = ("sink", "enabled")

    def __init__(self, sink: TraceSink | None = None) -> None:
        self.sink: TraceSink = sink if sink is not None else NullSink()
        #: False iff the sink is a NullSink; hot paths branch on this
        #: before building a record.
        self.enabled: bool = not isinstance(self.sink, NullSink)

    def emit(self, record: TraceRecord) -> None:
        """Forward one record to the sink (no-op when disabled)."""
        if self.enabled:
            self.sink.emit(record)

    def close(self) -> None:
        """Close the underlying sink. Idempotent."""
        self.sink.close()

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


#: Shared disabled tracer; the engine default. Never close it.
NULL_TRACER = Tracer(NullSink())
