"""Structured telemetry for the MAPE control loop.

WIRE's evaluation hinges on per-iteration quantities — the predicted
load ``Q_task``, pool-size decisions, per-stage prediction error,
charging-unit waste — that the engine computes every tick. This package
records them as typed records through a low-overhead
:class:`~repro.telemetry.tracer.Tracer` with pluggable sinks, provides
counter/gauge/histogram primitives for aggregate metrics, and turns a
recorded trace back into a run report (``repro trace summarize``).
"""

from repro.telemetry.metrics import (
    NULL_METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
)
from repro.telemetry.records import (
    CloudFaultRecord,
    ControlTickRecord,
    FleetTickRecord,
    InstanceEventRecord,
    RunMetaRecord,
    RunSummaryRecord,
    StagePrediction,
    TaskAttemptRecord,
    TenantRecord,
    TickTelemetry,
    TraceRecord,
    record_from_json,
)
from repro.telemetry.sinks import (
    JsonlSink,
    MemorySink,
    NullSink,
    TraceSink,
    read_jsonl,
    read_jsonl_dir,
)
from repro.telemetry.summarize import (
    StageErrorRow,
    TraceSummary,
    render_trace_summary,
    summarize_trace,
)
from repro.telemetry.tracer import NULL_TRACER, Tracer

__all__ = [
    "NULL_METRICS",
    "NULL_TRACER",
    "CloudFaultRecord",
    "ControlTickRecord",
    "Counter",
    "FleetTickRecord",
    "Gauge",
    "Histogram",
    "InstanceEventRecord",
    "JsonlSink",
    "MemorySink",
    "MetricsRegistry",
    "NullMetricsRegistry",
    "NullSink",
    "RunMetaRecord",
    "RunSummaryRecord",
    "StageErrorRow",
    "StagePrediction",
    "TaskAttemptRecord",
    "TenantRecord",
    "TickTelemetry",
    "TraceRecord",
    "TraceSink",
    "TraceSummary",
    "Tracer",
    "read_jsonl",
    "read_jsonl_dir",
    "record_from_json",
    "summarize_trace",
    "render_trace_summary",
]
