"""Figures 5 and 6: resource cost and relative execution time (§IV-E).

For each Table I run, each resource-management setting (full-site,
pure-reactive, reactive-conserving, wire) and each charging unit
(1/15/30/60 min), the experiment repeats the run with different seeds
(cross-run variability) and reports:

- Fig 5: mean ± std of resource cost in charging units;
- Fig 6: mean ± std of execution time, normalized per workflow to the
  best mean across all settings and charging units.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.cloud.site import CloudSite, exogeni_site
from repro.engine.control import Autoscaler
from repro.engine.simulator import RunResult
from repro.experiments.harness import (
    CHARGING_UNITS,
    policy_factories,
    run_setting,
)
from repro.metrics.cost import CostSummary, summarize_costs
from repro.workloads import table1_specs
from repro.workloads.base import StagedWorkflowSpec

__all__ = ["CostCell", "cost_experiment", "relative_execution_table"]


@dataclass(frozen=True)
class CostCell:
    """One (workflow, policy, charging unit) cell of Figures 5/6."""

    workflow: str
    policy: str
    charging_unit: float
    summary: CostSummary
    results: tuple[RunResult, ...]


def cost_experiment(
    specs: Mapping[str, StagedWorkflowSpec] | None = None,
    *,
    policies: Mapping[str, Callable[[], Autoscaler]] | None = None,
    charging_units: Sequence[float] = CHARGING_UNITS,
    repetitions: int = 3,
    seed: int = 0,
    site: CloudSite | None = None,
    include_oracle: bool = False,
) -> list[CostCell]:
    """Run the §IV-C matrix and summarize each cell.

    ``repetitions`` plays the paper's 3-7 repeats per setting; each
    repetition regenerates the workflow with a different seed.
    """
    the_site = site or exogeni_site()
    if specs is None:
        specs = table1_specs()
    if policies is None:
        policies = policy_factories(the_site, include_oracle=include_oracle)
    cells: list[CostCell] = []
    for wf_name, spec in sorted(specs.items()):
        for policy_name, factory in policies.items():
            for u in charging_units:
                results = tuple(
                    run_setting(
                        spec,
                        factory,
                        u,
                        seed=seed + rep,
                        site=the_site,
                    )
                    for rep in range(repetitions)
                )
                cells.append(
                    CostCell(
                        workflow=wf_name,
                        policy=policy_name,
                        charging_unit=u,
                        summary=summarize_costs(results),
                        results=results,
                    )
                )
    return cells


def relative_execution_table(
    cells: Sequence[CostCell],
) -> list[tuple[str, str, float, float, float]]:
    """Fig 6 rows: ``(workflow, policy, u, relative_time, mean_units)``.

    Execution times are normalized per workflow to the best mean makespan
    across every (policy, u) cell of that workflow, exactly as §IV-E
    describes ("normalize the times across settings and resource charging
    units to the best performance").
    """
    best: dict[str, float] = {}
    for cell in cells:
        span = cell.summary.mean_makespan
        if cell.workflow not in best or span < best[cell.workflow]:
            best[cell.workflow] = span
    rows = []
    for cell in cells:
        rows.append(
            (
                cell.workflow,
                cell.policy,
                cell.charging_unit,
                cell.summary.mean_makespan / best[cell.workflow],
                cell.summary.mean_units,
            )
        )
    return rows
