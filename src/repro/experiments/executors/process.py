"""Persistent process-pool executor with pinned start method.

Fixes the two historical scale-out bugs in one place:

* **Start method is pinned**, never platform-default. The default was
  ``fork`` on Linux, ``spawn`` on macOS/Windows, and is changing again
  in Python 3.14 (``forkserver``/``spawn`` on POSIX) — three behaviors
  for one line of code. :data:`DEFAULT_START_METHOD` resolves once, to
  ``fork`` where the platform offers it (cheapest worker startup by
  far — no re-import of numpy/repro per worker, which is what made
  ``--jobs 4`` *slower* than serial on sub-second campaigns) and
  ``spawn`` everywhere else; pass ``start_method=`` to override. The
  choice is an explicit constructor-resolved value either way, so
  behavior cannot silently drift across hosts or Python versions.

* **Honest retry accounting.** A ``BrokenProcessPool`` poisons every
  in-flight future, not just the task whose worker died. Draining those
  futures must therefore not charge the innocent tasks' attempt budget:
  crash-drained work is resubmitted free, and only an attempt where the
  worker callable actually ran and raised counts against
  ``max_attempts``. Free resubmission is bounded by
  :data:`~repro.experiments.executors.base.CRASH_FREE_RETRIES`
  consecutive no-progress pool rebuilds, after which crashes are
  charged — a task that reliably SIGKILLs its worker converges to a
  failed outcome instead of rebuilding the pool forever.

The pool itself is persistent for the duration of one :meth:`run`:
workers are created once, the shared ``(worker, context)`` pair crosses
the process boundary once via the pool initializer, and every submitted
task ships only its own payload. Heterogeneous task durations
load-balance naturally — workers pull the next task the moment they
finish one (callers wanting coarser units chunk before submitting, as
:func:`~repro.experiments.parallel.parallel_map` does).
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Sequence

from repro.experiments.executors.base import (
    CRASH_FREE_RETRIES,
    ExecutorBackend,
    TaskOutcome,
    format_error,
)

__all__ = ["DEFAULT_START_METHOD", "ProcessBackend"]

#: the pinned multiprocessing start method: ``fork`` where the platform
#: supports it (POSIX), else ``spawn`` — resolved once at import, never
#: the interpreter's mutable platform default
DEFAULT_START_METHOD = (
    "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
)

#: per-worker shared state installed by the pool initializer
_WORKER_STATE: tuple | None = None


def _init_worker(worker, context) -> None:
    global _WORKER_STATE
    _WORKER_STATE = (worker, context)


def _call_task(task):
    """Worker entry point: one task against the initializer-shipped pair."""
    assert _WORKER_STATE is not None, "process-pool initializer did not run"
    worker, context = _WORKER_STATE
    return worker(context, task)


class ProcessBackend(ExecutorBackend):
    """Fan tasks over a persistent ``ProcessPoolExecutor``."""

    name = "process"

    def __init__(self, jobs: int = 2, *, start_method: str | None = None) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.start_method = start_method or DEFAULT_START_METHOD
        #: the explicitly pinned context every pool is built from
        self.mp_context = multiprocessing.get_context(self.start_method)

    def _new_pool(self, worker, context) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.jobs,
            mp_context=self.mp_context,
            initializer=_init_worker,
            initargs=(worker, context),
        )

    def run(
        self,
        worker: Callable[[Any, Any], Any],
        tasks: Sequence,
        *,
        context: Any = None,
        max_attempts: int = 1,
        on_result: Callable[[TaskOutcome], None] | None = None,
    ) -> list[TaskOutcome]:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        outcomes: list[TaskOutcome | None] = [None] * len(tasks)
        attempts = [0] * len(tasks)
        crashes = [0] * len(tasks)
        #: consecutive pool rebuilds without a single completed execution
        stalled_rebuilds = 0

        def decide(index: int, *, value=None, error=None, exception=None) -> None:
            outcome = TaskOutcome(
                index,
                value=value,
                error=error,
                attempts=attempts[index],
                crashes=crashes[index],
                exception=exception,
            )
            outcomes[index] = outcome
            if on_result is not None:
                on_result(outcome)

        executor = self._new_pool(worker, context)
        try:
            futures: dict[Future, int] = {}

            def submit(index: int) -> None:
                futures[executor.submit(_call_task, tasks[index])] = index

            for index in range(len(tasks)):
                submit(index)
            while futures:
                done, _ = wait(futures, return_when=FIRST_COMPLETED)
                broken = False
                executed_any = False
                resubmit: list[int] = []
                crashed: list[int] = []
                for future in done:
                    index = futures.pop(future)
                    try:
                        value = future.result()
                    except BrokenProcessPool:
                        broken = True
                        crashed.append(index)
                        continue
                    except Exception as exc:  # noqa: BLE001 - executed-and-failed
                        executed_any = True
                        attempts[index] += 1
                        if attempts[index] < max_attempts:
                            resubmit.append(index)
                        else:
                            decide(index, error=format_error(exc), exception=exc)
                        continue
                    executed_any = True
                    attempts[index] += 1
                    decide(index, value=value)
                if broken:
                    # A dead worker poisons the whole pool: every in-flight
                    # future fails with BrokenProcessPool even though its
                    # task never executed. Drain them all, rebuild the
                    # pool, and resubmit without charging attempts.
                    crashed.extend(futures.values())
                    futures.clear()
                    executor.shutdown(wait=False, cancel_futures=True)
                    stalled_rebuilds = 0 if executed_any else stalled_rebuilds + 1
                    charge = stalled_rebuilds > CRASH_FREE_RETRIES
                    for index in sorted(set(crashed)):
                        crashes[index] += 1
                        if charge:
                            attempts[index] += 1
                        if charge and attempts[index] >= max_attempts:
                            decide(
                                index,
                                error=(
                                    "worker process died repeatedly "
                                    f"({crashes[index]} pool rebuilds)"
                                ),
                            )
                        else:
                            resubmit.append(index)
                    executor = self._new_pool(worker, context)
                elif executed_any:
                    stalled_rebuilds = 0
                for index in resubmit:
                    submit(index)
        finally:
            executor.shutdown(wait=False, cancel_futures=True)
        assert all(outcome is not None for outcome in outcomes)
        return outcomes  # type: ignore[return-value]
