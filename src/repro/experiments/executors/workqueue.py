"""Multi-host work-queue executor: lease/claim/result files in a shared dir.

Several hosts can drain one campaign by pointing consumers at the same
(network-shared) directory; no server, no sockets — the filesystem is
the coordination medium, and atomic exclusive-create (``O_EXCL``) is the
lock. The protocol under ``root/``:

* ``meta.pkl`` — the ``(worker, context)`` pair, pickled once by the
  producer (atomic write-then-rename);
* ``tasks/<index>-a<attempt>.task`` — one pickled payload per pending
  attempt of a task;
* ``claims/<index>-a<attempt>.claim`` — a consumer claims an attempt by
  exclusively creating its claim file (the lease; owner host/pid/time
  inside, mtime is the lease clock);
* ``results/<index>-a<attempt>.result`` — the attempt's pickled outcome,
  written atomically by the claiming consumer;
* ``done`` — marker the producer writes when every task is decided;
  consumers exit when they see it.

Exactly-once in the common path: a claim file can be created exclusively
by only one consumer, so two consumers scanning the same task race on
``O_EXCL`` and exactly one executes it (covered by the two-consumer
conformance test). A consumer that dies mid-task leaves a claim with no
result; when the lease is older than ``lease_timeout`` the producer
re-enqueues the attempt *free of charge* (crash semantics — the task
never executed-and-failed). If the stale consumer was merely slow, its
late result is still accepted — execution degrades to at-least-once in
that window, which is safe here because every task is a deterministic
pure function of its payload.

Retry accounting matches the other backends: a result recording a worker
exception charges one attempt against ``max_attempts``; lease expiries
are free until :data:`~repro.experiments.executors.base.CRASH_FREE_RETRIES`
consecutive expiries on the same task, after which they are charged so a
poisonous task cannot be re-leased forever.

The producer (:meth:`WorkqueueBackend.run`) optionally spawns ``jobs``
local consumer processes so a single-host run still scales; remote hosts
join with::

    python -m repro.experiments.executors.workqueue /shared/queue-dir
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pickle
import socket
import time
from pathlib import Path
from typing import Any, Callable, Sequence

from repro.experiments.executors.base import (
    CRASH_FREE_RETRIES,
    ExecutorBackend,
    TaskOutcome,
)

__all__ = ["WorkqueueBackend", "consume_workqueue", "main"]

_DONE = "done"
_META = "meta.pkl"


def _write_atomic(path: Path, blob: bytes) -> None:
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    tmp.write_bytes(blob)
    tmp.replace(path)


def _stem(index: int, attempt: int) -> str:
    return f"{index:06d}-a{attempt:03d}"


def consume_workqueue(
    root: str | Path,
    *,
    poll_interval: float = 0.05,
    drain_once: bool = False,
) -> int:
    """Claim and execute tasks from ``root`` until its ``done`` marker.

    The consumer half of the protocol — run one per host that should
    help drain the queue. With ``drain_once`` the consumer returns as
    soon as a scan finds nothing claimable instead of polling for more
    work. Returns the number of tasks this consumer executed.
    """
    root = Path(root)
    tasks_dir, claims_dir, results_dir = root / "tasks", root / "claims", root / "results"
    meta: tuple | None = None
    executed = 0
    while True:
        if (root / _DONE).exists():
            return executed
        claimed_any = False
        for task_file in sorted(tasks_dir.glob("*.task")):
            stem = task_file.name[: -len(".task")]
            claim = claims_dir / f"{stem}.claim"
            result = results_dir / f"{stem}.result"
            if result.exists():
                continue
            # Load the shared (worker, context) pair *before* claiming:
            # a meta that cannot be unpickled on this host (e.g. a
            # __main__-defined worker) must fail here, not after taking
            # a claim some other consumer then waits a lease to recover.
            if meta is None:
                meta = pickle.loads((root / _META).read_bytes())
            try:
                fd = os.open(claim, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue  # another consumer owns this attempt
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(
                    {"host": socket.gethostname(), "pid": os.getpid(), "time": time.time()},
                    fh,
                )
            worker, context = meta
            try:
                value = worker(context, pickle.loads(task_file.read_bytes()))
            except Exception as exc:  # noqa: BLE001 - report, don't die
                try:
                    exc_blob: bytes | None = pickle.dumps(exc)
                except Exception:
                    exc_blob = None
                blob = pickle.dumps(
                    ("err", f"{type(exc).__name__}: {exc}", exc_blob)
                )
            else:
                blob = pickle.dumps(("ok", value, None))
            _write_atomic(result, blob)
            executed += 1
            claimed_any = True
        if not claimed_any:
            if drain_once:
                return executed
            time.sleep(poll_interval)


class WorkqueueBackend(ExecutorBackend):
    """Produce tasks into a shared directory and collect their results.

    ``jobs`` local consumer processes are spawned for the duration of
    the run (0 is allowed: the producer only coordinates, and external
    hosts do all the work). ``start_method`` pins the multiprocessing
    context for the local consumers exactly like
    :class:`~repro.experiments.executors.ProcessBackend`.
    """

    name = "workqueue"

    def __init__(
        self,
        root: str | Path,
        *,
        jobs: int = 1,
        lease_timeout: float = 60.0,
        poll_interval: float = 0.02,
        start_method: str | None = None,
    ) -> None:
        from repro.experiments.executors.process import DEFAULT_START_METHOD

        if jobs < 0:
            raise ValueError("jobs must be >= 0")
        if lease_timeout <= 0:
            raise ValueError("lease_timeout must be > 0")
        self.root = Path(root)
        self.jobs = jobs
        self.lease_timeout = lease_timeout
        self.poll_interval = poll_interval
        self.start_method = start_method or DEFAULT_START_METHOD
        self.mp_context = multiprocessing.get_context(self.start_method)

    def run(
        self,
        worker: Callable[[Any, Any], Any],
        tasks: Sequence,
        *,
        context: Any = None,
        max_attempts: int = 1,
        on_result: Callable[[TaskOutcome], None] | None = None,
    ) -> list[TaskOutcome]:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        root = self.root
        for sub in ("tasks", "claims", "results"):
            (root / sub).mkdir(parents=True, exist_ok=True)
        done_marker = root / _DONE
        done_marker.unlink(missing_ok=True)
        _write_atomic(root / _META, pickle.dumps((worker, context)))

        outcomes: list[TaskOutcome | None] = [None] * len(tasks)
        attempts = [0] * len(tasks)
        crashes = [0] * len(tasks)
        #: task index -> the attempt number currently enqueued
        live_attempt = [1] * len(tasks)
        for index, task in enumerate(tasks):
            _write_atomic(root / "tasks" / f"{_stem(index, 1)}.task", pickle.dumps(task))

        consumers = [
            self.mp_context.Process(
                target=consume_workqueue,
                args=(str(root),),
                kwargs={"poll_interval": self.poll_interval},
                daemon=True,
            )
            for _ in range(self.jobs)
        ]
        for proc in consumers:
            proc.start()

        def decide(index: int, *, value=None, error=None, exception=None) -> None:
            outcome = TaskOutcome(
                index,
                value=value,
                error=error,
                attempts=attempts[index],
                crashes=crashes[index],
                exception=exception,
            )
            outcomes[index] = outcome
            if on_result is not None:
                on_result(outcome)

        def reenqueue(index: int) -> None:
            live_attempt[index] += 1
            _write_atomic(
                root / "tasks" / f"{_stem(index, live_attempt[index])}.task",
                pickle.dumps(tasks[index]),
            )

        try:
            while any(outcome is None for outcome in outcomes):
                progressed = False
                for index in range(len(tasks)):
                    if outcomes[index] is not None:
                        continue
                    # Accept the first result from any enqueued attempt —
                    # including a superseded one whose consumer turned out
                    # to be slow rather than dead.
                    result_file = next(
                        (
                            candidate
                            for attempt in range(1, live_attempt[index] + 1)
                            if (
                                candidate := root
                                / "results"
                                / f"{_stem(index, attempt)}.result"
                            ).exists()
                        ),
                        None,
                    )
                    if result_file is not None:
                        status, payload, exc_blob = pickle.loads(result_file.read_bytes())
                        # Consume the attempt: drop its files so a retry is
                        # never double-charged from the same stale result.
                        stem = result_file.name[: -len(".result")]
                        result_file.unlink(missing_ok=True)
                        (root / "tasks" / f"{stem}.task").unlink(missing_ok=True)
                        progressed = True
                        attempts[index] += 1
                        if status == "ok":
                            decide(index, value=payload)
                        elif attempts[index] < max_attempts:
                            reenqueue(index)
                        else:
                            exception = (
                                pickle.loads(exc_blob) if exc_blob is not None else None
                            )
                            decide(index, error=payload, exception=exception)
                        continue
                    claim_file = (
                        root / "claims" / f"{_stem(index, live_attempt[index])}.claim"
                    )
                    try:
                        lease_age = time.time() - claim_file.stat().st_mtime
                    except OSError:
                        continue  # unclaimed (or claim arriving right now)
                    if lease_age <= self.lease_timeout:
                        continue
                    # Lease expired: the consumer that claimed this attempt
                    # is presumed dead. The task never executed-and-failed,
                    # so re-enqueue free of charge — until the consecutive-
                    # expiry cap, after which expiries are charged so a
                    # worker-killing task converges to a failed outcome.
                    progressed = True
                    crashes[index] += 1
                    if crashes[index] > CRASH_FREE_RETRIES:
                        attempts[index] += 1
                    if attempts[index] >= max_attempts:
                        decide(
                            index,
                            error=(
                                f"workqueue lease expired {crashes[index]} times "
                                "(consumer died repeatedly)"
                            ),
                        )
                    else:
                        reenqueue(index)
                if not progressed:
                    time.sleep(self.poll_interval)
        finally:
            done_marker.touch()
            deadline = time.time() + 5.0
            for proc in consumers:
                proc.join(timeout=max(0.0, deadline - time.time()))
                if proc.is_alive():  # pragma: no cover - defensive cleanup
                    proc.terminate()
                    proc.join(timeout=1.0)
        assert all(outcome is not None for outcome in outcomes)
        return outcomes  # type: ignore[return-value]


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.experiments.executors.workqueue <dir>`` — join a queue."""
    import argparse

    parser = argparse.ArgumentParser(description=main.__doc__)
    parser.add_argument("root", help="shared work-queue directory")
    parser.add_argument(
        "--poll-interval", type=float, default=0.2,
        help="seconds between scans when no work is claimable",
    )
    parser.add_argument(
        "--drain-once", action="store_true",
        help="exit after one pass finds nothing claimable instead of "
        "waiting for the producer's done marker",
    )
    args = parser.parse_args(argv)
    executed = consume_workqueue(
        args.root, poll_interval=args.poll_interval, drain_once=args.drain_once
    )
    print(f"executed {executed} tasks from {args.root}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    import sys

    sys.exit(main())
