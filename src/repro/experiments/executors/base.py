"""Executor backend contract: what every fan-out implementation owes.

A backend executes a list of independent, picklable *tasks* through one
module-level *worker* callable against a *context* that is shipped to
each worker exactly once (not re-pickled per task). The three bundled
implementations — :class:`~repro.experiments.executors.SerialBackend`,
:class:`~repro.experiments.executors.ProcessBackend`, and
:class:`~repro.experiments.executors.WorkqueueBackend` — all honor the
same observable semantics, which the conformance suite
(``tests/experiments/test_executors.py``) checks backend-by-backend:

* **Determinism.** Outcomes come back in task order regardless of which
  worker finished first, so a campaign store or sweep row list built
  through any backend is byte-identical to a serial one.
* **Retry accounting.** Only an attempt that *executed and failed* (the
  worker callable raised) is charged against ``max_attempts``. Work
  that was merely in flight when a worker process died (or a lease
  expired) is resubmitted free of charge — two unrelated worker deaths
  can never spuriously fail a task that never itself crashed.
* **Livelock cap.** Free resubmission is bounded: after
  ``CRASH_FREE_RETRIES`` consecutive crash-like failures with no
  successful completion in between, further crashes are charged as
  attempts, so a task that reliably kills its worker surfaces as a
  failed outcome instead of rebuilding the pool forever.
* **Streaming.** ``on_result`` fires in the parent, in completion
  order, as each task is decided — the hook campaign stores use to
  batch incremental saves.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable, ClassVar, Sequence

__all__ = ["CRASH_FREE_RETRIES", "ExecutorBackend", "TaskOutcome", "format_error"]

#: consecutive crash-like failures (worker death, lease expiry) a task
#: absorbs free of charge before further crashes are charged as attempts
CRASH_FREE_RETRIES = 3


def format_error(exc: BaseException) -> str:
    """The canonical one-line error string recorded for a failed task."""
    return f"{type(exc).__name__}: {exc}"


@dataclass
class TaskOutcome:
    """Terminal state of one task: a value, or an error after retries.

    ``attempts`` counts only executed attempts (the worker callable ran
    and returned or raised); crash-like failures that were resubmitted
    free of charge are tallied separately in ``crashes``. ``exception``
    carries the original exception object when the backend can transport
    it (always inline; across process boundaries when it pickles), so
    callers like :func:`~repro.experiments.parallel.parallel_map` can
    re-raise the real type rather than a stringly wrapper.
    """

    index: int
    value: Any = None
    error: str | None = None
    attempts: int = 0
    crashes: int = 0
    exception: BaseException | None = field(default=None, repr=False)

    @property
    def ok(self) -> bool:
        return self.error is None


class ExecutorBackend(ABC):
    """One way of fanning independent tasks over compute.

    Subclasses implement :meth:`run`; ``name`` is the CLI/registry
    identifier (``--backend <name>``).
    """

    name: ClassVar[str]

    @abstractmethod
    def run(
        self,
        worker: Callable[[Any, Any], Any],
        tasks: Sequence,
        *,
        context: Any = None,
        max_attempts: int = 1,
        on_result: Callable[[TaskOutcome], None] | None = None,
    ) -> list[TaskOutcome]:
        """Execute ``worker(context, task)`` for every task.

        Returns one :class:`TaskOutcome` per task, in task order. A
        worker exception consumes an attempt; once a task's executed
        attempts reach ``max_attempts`` it is reported as an error
        outcome (never raised — isolation is the caller's policy
        decision). Crash-like failures resubmit free, capped by
        :data:`CRASH_FREE_RETRIES`.
        """

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"<{type(self).__name__} name={self.name!r}>"
