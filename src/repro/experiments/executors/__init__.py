"""Pluggable executor backends for campaign/sweep fan-out.

One contract, three implementations:

| backend | runs on | use when |
|---|---|---|
| ``serial`` | the calling process | debugging; tiny matrices; ``jobs=1`` |
| ``process`` | a persistent local process pool (pinned start method) | one multi-core host |
| ``workqueue`` | any number of hosts draining one shared directory | cluster-scale grids |

All three honor identical observable semantics — task-order results,
executed-attempt-only retry accounting with free crash resubmission,
streamed completion callbacks — so serial ≡ process ≡ workqueue holds
byte-for-byte on every campaign store and sweep row list (the
conformance suite in ``tests/experiments/test_executors.py`` enforces
it per backend). :func:`resolve_backend` turns a CLI-level
``(--backend, --jobs, --workqueue-dir)`` triple into a ready instance.
"""

from __future__ import annotations

from pathlib import Path

from repro.experiments.executors.base import (
    CRASH_FREE_RETRIES,
    ExecutorBackend,
    TaskOutcome,
)
from repro.experiments.executors.process import DEFAULT_START_METHOD, ProcessBackend
from repro.experiments.executors.serial import SerialBackend
from repro.experiments.executors.workqueue import WorkqueueBackend, consume_workqueue

__all__ = [
    "BACKEND_NAMES",
    "CRASH_FREE_RETRIES",
    "DEFAULT_START_METHOD",
    "ExecutorBackend",
    "ProcessBackend",
    "SerialBackend",
    "TaskOutcome",
    "WorkqueueBackend",
    "consume_workqueue",
    "resolve_backend",
]

#: the names ``--backend`` accepts, in documentation order
BACKEND_NAMES = ("serial", "process", "workqueue")


def resolve_backend(
    backend: str | ExecutorBackend | None,
    *,
    jobs: int = 1,
    workqueue_dir: str | Path | None = None,
) -> ExecutorBackend:
    """Build the backend a fan-out call should use.

    ``None`` picks the obvious default: ``serial`` at ``jobs=1``,
    ``process`` otherwise — so existing ``jobs=N`` call sites keep their
    behavior without naming a backend. A ready :class:`ExecutorBackend`
    instance passes through untouched (the hook custom backends use).
    ``workqueue`` requires ``workqueue_dir``, the shared directory other
    hosts point their consumers at.
    """
    if isinstance(backend, ExecutorBackend):
        return backend
    if backend is None:
        backend = "serial" if jobs == 1 else "process"
    if backend == "serial":
        return SerialBackend()
    if backend == "process":
        return ProcessBackend(jobs=max(jobs, 1))
    if backend == "workqueue":
        if workqueue_dir is None:
            raise ValueError(
                "the workqueue backend needs a shared directory; "
                "pass workqueue_dir= (CLI: --workqueue-dir DIR)"
            )
        return WorkqueueBackend(workqueue_dir, jobs=jobs)
    known = ", ".join(BACKEND_NAMES)
    raise ValueError(f"unknown executor backend {backend!r}; choose one of: {known}")
