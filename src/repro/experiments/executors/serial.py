"""Inline executor: tasks run in the calling process, in task order.

The reference implementation of the backend contract — every other
backend must be observably equivalent to this one (modulo wall-clock).
There is no process boundary, so crash-like failures cannot happen here
and retry accounting reduces to the executed-attempt rule: a worker
exception consumes an attempt, and a task fails once its attempts reach
``max_attempts``. Nothing is ever retried "just in case" — a
deterministic exception at ``max_attempts=1`` costs exactly one
invocation (see the invocation-counting regression tests).
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

from repro.experiments.executors.base import ExecutorBackend, TaskOutcome, format_error

__all__ = ["SerialBackend"]


class SerialBackend(ExecutorBackend):
    """Run every task inline; the ``jobs=1`` path of every fan-out."""

    name = "serial"

    def run(
        self,
        worker: Callable[[Any, Any], Any],
        tasks: Sequence,
        *,
        context: Any = None,
        max_attempts: int = 1,
        on_result: Callable[[TaskOutcome], None] | None = None,
    ) -> list[TaskOutcome]:
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        outcomes: list[TaskOutcome] = []
        for index, task in enumerate(tasks):
            attempts = 0
            while True:
                attempts += 1
                try:
                    value = worker(context, task)
                except Exception as exc:  # noqa: BLE001 - isolation is the contract
                    if attempts < max_attempts:
                        continue
                    outcome = TaskOutcome(
                        index,
                        error=format_error(exc),
                        attempts=attempts,
                        exception=exc,
                    )
                    break
                outcome = TaskOutcome(index, value=value, attempts=attempts)
                break
            outcomes.append(outcome)
            if on_result is not None:
                on_result(outcome)
        return outcomes
