"""Robustness to imperfect prediction (paper §IV-E, finding 3).

"The WIRE solution is robust to imperfect prediction. For all sample
workflows, there exist stages with 1-6 tasks, at which the prediction
accuracy is more likely to be low. ... WIRE can capture and apply the
observed performance variations within a stage agilely, which is
sufficient to attain low cost even with imperfect prediction."

This experiment makes the claim quantitative on axes the paper could not
sweep on a live testbed: multiplicative runtime noise (co-located
interference, §II-B), injected task faults, and — since the cloud-fault
layer landed — whole-cloud degradations (instance revocation,
provisioning failures, stragglers, monitor blackouts) via
:class:`~repro.cloud.faults.ChaosSpec`. For each degradation level it
runs wire and full-site and reports wire's cost advantage and slowdown —
robustness means the cost advantage survives as predictions get worse.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Mapping, Sequence

from repro.autoscalers import WireAutoscaler, full_site
from repro.cloud.faults import NO_CHAOS, ChaosSpec
from repro.cloud.site import CloudSite, exogeni_site
from repro.engine.faults import NoFaults, RandomFaults
from repro.engine.runtime import PerturbedRuntimeModel
from repro.engine.simulator import Simulation
from repro.experiments.executors import ExecutorBackend
from repro.experiments.harness import default_transfer_model
from repro.experiments.parallel import parallel_map
from repro.workloads import table1_specs
from repro.workloads.base import StagedWorkflowSpec

__all__ = ["RobustnessRow", "robustness_experiment"]


@dataclass(frozen=True)
class RobustnessRow:
    """Wire vs full-site under one degradation level on one workload."""

    workflow: str
    noise_cv: float
    fault_probability: float
    wire_units: int
    static_units: int
    wire_makespan: float
    static_makespan: float
    wire_restarts: int
    #: compact ChaosSpec label for the cell ("none" without cloud faults)
    chaos_label: str = "none"
    #: instance revocations injected into the wire run
    wire_revocations: int = 0
    #: monitor-blackout ticks injected into the wire run
    wire_blackouts: int = 0

    @property
    def cost_advantage(self) -> float:
        """full-site units / wire units (> 1 means wire is cheaper)."""
        return self.static_units / max(self.wire_units, 1)

    @property
    def slowdown(self) -> float:
        """wire makespan / full-site makespan."""
        return self.wire_makespan / self.static_makespan


def _run_robustness_cell(params: tuple) -> RobustnessRow:
    """Worker entry point: wire vs full-site for one degradation cell.

    ``params`` is a flat tuple of plain picklable values (the spec, the
    levels, the frozen :class:`ChaosSpec`, the site), so the grid fans
    out over :func:`~repro.experiments.parallel.parallel_map` with
    worker cells identical to inline ones. Both policy factories are
    rebuilt inside the worker — nothing unpicklable crosses.
    """
    wf_name, spec, cv, fault_p, chaos, charging_unit, seed, the_site = params
    results = {}
    for factory in (WireAutoscaler, lambda: full_site(the_site)):
        result = Simulation(
            spec.generate(seed),
            the_site,
            factory(),
            charging_unit,
            transfer_model=default_transfer_model(),
            runtime_model=PerturbedRuntimeModel(cv=cv),
            fault_model=(
                RandomFaults(probability=fault_p) if fault_p > 0 else NoFaults()
            ),
            seed=seed,
            chaos=chaos,
        ).run()
        results[result.autoscaler_name] = result
    wire = results["wire"]
    static = results["full-site"]
    return RobustnessRow(
        workflow=wf_name,
        noise_cv=cv,
        fault_probability=fault_p,
        wire_units=wire.total_units,
        static_units=static.total_units,
        wire_makespan=wire.makespan,
        static_makespan=static.makespan,
        wire_restarts=wire.restarts,
        chaos_label=chaos.label(),
        wire_revocations=wire.cloud_faults.get("revocations", 0),
        wire_blackouts=wire.cloud_faults.get("blackouts", 0),
    )


def robustness_experiment(
    specs: Mapping[str, StagedWorkflowSpec] | None = None,
    *,
    noise_levels: Sequence[float] = (0.0, 0.2, 0.5),
    fault_levels: Sequence[float] = (0.0, 0.1),
    chaos_levels: Sequence[ChaosSpec] = (NO_CHAOS,),
    charging_unit: float = 60.0,
    seed: int = 0,
    site: CloudSite | None = None,
    jobs: int = 1,
    backend: str | ExecutorBackend | None = None,
    workqueue_dir: str | Path | None = None,
) -> list[RobustnessRow]:
    """Sweep degradation levels; returns one row per (workload, level).

    Noise, task faults, and cloud faults are swept jointly along the
    diagonal-free grid (every noise level crossed with every fault level
    crossed with every :class:`ChaosSpec`). The default chaos axis is the
    single disabled spec, preserving the pre-chaos grid shape. Cells are
    independent seeded simulations, so the grid fans out over
    :func:`~repro.experiments.parallel.parallel_map` (``jobs``,
    ``backend``); row order is the serial nested-loop order regardless
    of scheduling.
    """
    the_site = site or exogeni_site()
    if specs is None:
        # Two representative workloads keep the sweep fast by default.
        all_specs = table1_specs()
        specs = {k: all_specs[k] for k in ("tpch1-L", "pagerank-S")}
    cells = [
        (wf_name, spec, cv, fault_p, chaos, charging_unit, seed, the_site)
        for wf_name, spec in sorted(specs.items())
        for cv in noise_levels
        for fault_p in fault_levels
        for chaos in chaos_levels
    ]
    return parallel_map(
        _run_robustness_cell, cells, jobs=jobs, backend=backend,
        workqueue_dir=workqueue_dir,
    )
