"""Provisioning-lag sensitivity (explains the Figure 6 scale gap).

EXPERIMENTS.md attributes the difference between our wire slowdowns and
the paper's to substrate scale: our runs complete in minutes, so the
fixed ~3-minute provisioning lag — paid once per stage wave, because WIRE
cannot provision for a stage before it fires (§III-E) — is a much larger
*fraction* of the makespan than on the paper's slower testbed.

This experiment makes that explanation checkable: sweep the lag and
measure wire's slowdown relative to full-site at each value. If the
explanation is right, the slowdown collapses toward the paper's band as
the lag shrinks relative to the workload, and grows as it stretches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.autoscalers import WireAutoscaler, full_site
from repro.cloud.site import exogeni_site
from repro.engine.simulator import Simulation
from repro.experiments.harness import default_transfer_model
from repro.workloads import table1_specs
from repro.workloads.base import StagedWorkflowSpec

__all__ = ["LagSensitivityRow", "lag_sensitivity_experiment"]


@dataclass(frozen=True)
class LagSensitivityRow:
    """Wire vs full-site at one provisioning lag."""

    workflow: str
    lag: float
    wire_makespan: float
    static_makespan: float
    wire_units: int
    static_units: int

    @property
    def slowdown(self) -> float:
        return self.wire_makespan / self.static_makespan

    @property
    def cost_advantage(self) -> float:
        return self.static_units / max(self.wire_units, 1)


def lag_sensitivity_experiment(
    specs: Mapping[str, StagedWorkflowSpec] | None = None,
    *,
    lags: Sequence[float] = (30.0, 90.0, 180.0, 360.0),
    charging_unit: float = 60.0,
    seed: int = 0,
) -> list[LagSensitivityRow]:
    """Sweep the provisioning lag; one row per (workload, lag)."""
    if specs is None:
        all_specs = table1_specs()
        specs = {k: all_specs[k] for k in ("pagerank-L", "genome-S")}
    rows: list[LagSensitivityRow] = []
    for wf_name, spec in sorted(specs.items()):
        for lag in lags:
            site = exogeni_site(lag=lag)
            results = {}
            for factory in (WireAutoscaler, lambda: full_site(site)):
                result = Simulation(
                    spec.generate(seed),
                    site,
                    factory(),
                    charging_unit,
                    transfer_model=default_transfer_model(),
                    seed=seed,
                ).run()
                results[result.autoscaler_name] = result
            rows.append(
                LagSensitivityRow(
                    workflow=wf_name,
                    lag=lag,
                    wire_makespan=results["wire"].makespan,
                    static_makespan=results["full-site"].makespan,
                    wire_units=results["wire"].total_units,
                    static_units=results["full-site"].total_units,
                )
            )
    return rows
