"""Figure 4: task-performance prediction accuracy (paper §IV-D).

The paper evaluates Policies 3/4/5 on the 45 multi-task stages of Table I,
replaying each stage under 5 randomly-chosen task orders, and reports CDFs
of *true error* (short/medium stages) and *relative true error* (long
stages).

The replay here drives the real :class:`~repro.core.predictor.TaskPredictor`
through a miniature slot executor: a stage's tasks start in the chosen
order on ``concurrency`` slots; the prediction for a task is made at the
moment it starts, from the attempts completed strictly before — exactly
the information a MAPE iteration would have. Policies 1/2 fire for the
first tasks of a stage (no completed peers yet); following §IV-D, their
estimates are excluded from the error sample but counted separately.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.core.config import WireConfig
from repro.core.predictor import TaskPredictor
from repro.core.runstate import PredictionPolicy
from repro.dag.builder import WorkflowBuilder
from repro.dag.task import Task
from repro.dag.workflow import Workflow
from repro.engine.master import TaskExecState
from repro.engine.monitor import Monitor
from repro.metrics.errors import (
    ErrorSummary,
    StageClass,
    classify_stage,
    summarize_errors,
)
from repro.util.rng import spawn_rng
from repro.workloads import table1_specs

__all__ = [
    "StagePredictionResult",
    "prediction_experiment",
    "replay_stage_predictions",
]

#: Fig 4 accuracy thresholds: 1 s absolute for short/medium, 15% for long
_THRESHOLDS = {
    StageClass.SHORT: 1.0,
    StageClass.MEDIUM: 1.0,
    StageClass.LONG: 0.15,
}


@dataclass(frozen=True)
class PredictionSample:
    """One task's prediction at its start time."""

    task_id: str
    estimate: float
    actual: float
    policy: PredictionPolicy

    @property
    def true_error(self) -> float:
        return self.estimate - self.actual

    @property
    def relative_true_error(self) -> float:
        return (self.estimate - self.actual) / self.actual


@dataclass(frozen=True)
class StagePredictionResult:
    """Aggregated prediction accuracy for one stage across task orders."""

    workflow_name: str
    stage_id: str
    stage_class: StageClass
    n_tasks: int
    n_orders: int
    #: errors for policy-3/4/5 predictions (true or relative by class)
    errors: tuple[float, ...]
    summary: ErrorSummary
    policy_counts: dict[PredictionPolicy, int]


def _single_stage_workflow(tasks: list[Task]) -> Workflow:
    builder = WorkflowBuilder("stage-replay")
    for task in tasks:
        builder.add_task(task)
    return builder.build()


def replay_stage_predictions(
    tasks: list[Task],
    order: list[int],
    *,
    concurrency: int = 4,
    config: WireConfig | None = None,
) -> list[PredictionSample]:
    """Replay one stage under one task order; return per-task samples.

    ``order[i]`` gives the index of the i-th task to start. The replay
    runs the real predictor: completed attempts accumulate in a Monitor,
    the stage's OGD model takes one gradient step after every completion
    (the replay's analogue of a MAPE interval), and each task's estimate
    is taken at its start instant.
    """
    if sorted(order) != list(range(len(tasks))):
        raise ValueError("order must be a permutation of task indices")
    if concurrency < 1:
        raise ValueError("concurrency must be >= 1")

    workflow = _single_stage_workflow(tasks)
    stage_id = workflow.stage_of[tasks[0].task_id]
    predictor = TaskPredictor(workflow, config)
    monitor = Monitor()

    samples: list[PredictionSample] = []
    # In-flight attempts as (finish_time, seq, attempt). Their completion
    # fields are only filled in once virtual time reaches the finish —
    # the monitor must never reveal the future to the predictor.
    running: list[tuple[float, int, object]] = []
    seq = 0
    now = 0.0
    last_harvest = -1.0

    def settle(up_to: float) -> None:
        while running and running[0][0] <= up_to:
            finish, _, attempt = heapq.heappop(running)
            # Complete through the record API so the monitor's incremental
            # per-stage aggregates observe the completion.
            monitor.record_exec_end(attempt.task_id, finish)
            monitor.record_complete(attempt.task_id, finish)

    for index in order:
        task = tasks[index]
        if len(running) >= concurrency:
            # Wait for a slot: the soonest completion becomes visible.
            now = max(now, running[0][0])
        settle(now)
        # Harvest everything completed up to `now` (MAPE-style) before
        # predicting; one OGD step per harvest with fresh completions.
        predictor.observe_interval(monitor, last_harvest, now)
        last_harvest = now

        estimate, policy = predictor.estimate_execution(
            task.task_id, TaskExecState.READY, monitor, now
        )
        samples.append(
            PredictionSample(
                task_id=task.task_id,
                estimate=estimate,
                actual=task.runtime,
                policy=policy,
            )
        )
        attempt = monitor.record_dispatch(
            task.task_id, stage_id, "replay-slot", now, task.input_size, task.output_size
        )
        monitor.record_exec_start(task.task_id, now)
        seq += 1
        heapq.heappush(running, (now + task.runtime, seq, attempt))
    return samples


def _stage_task_groups(workflow: Workflow) -> list[tuple[str, list[Task]]]:
    return [
        (stage.stage_id, [workflow.task(t) for t in stage.task_ids])
        for stage in workflow.stages
        if stage.size >= 2  # §IV-D: stages with two or more tasks
    ]


def prediction_experiment(
    workflows: dict[str, Workflow] | None = None,
    *,
    n_orders: int = 5,
    concurrency: int = 4,
    seed: int = 0,
    config: WireConfig | None = None,
) -> list[StagePredictionResult]:
    """Run the Fig 4 evaluation over every multi-task stage.

    Defaults to one generated instance of each Table I workflow. Returns
    one result per stage, with errors pooled across the ``n_orders``
    random task orders.
    """
    if workflows is None:
        workflows = {
            name: spec.generate(seed) for name, spec in table1_specs().items()
        }
    results: list[StagePredictionResult] = []
    for wf_name, workflow in sorted(workflows.items()):
        for stage_id, tasks in _stage_task_groups(workflow):
            mean_exec = float(np.mean([t.runtime for t in tasks]))
            stage_class = classify_stage(mean_exec)
            threshold = _THRESHOLDS[stage_class]
            errors: list[float] = []
            policy_counts: dict[PredictionPolicy, int] = {}
            for order_index in range(n_orders):
                rng = spawn_rng(seed, f"fig4/{wf_name}/{stage_id}/{order_index}")
                order = list(rng.permutation(len(tasks)))
                samples = replay_stage_predictions(
                    tasks, order, concurrency=concurrency, config=config
                )
                for sample in samples:
                    policy_counts[sample.policy] = (
                        policy_counts.get(sample.policy, 0) + 1
                    )
                    if sample.policy in (
                        PredictionPolicy.NO_TASK_STARTED,
                        PredictionPolicy.RUNNING_ONLY,
                    ):
                        continue  # §IV-D evaluates Policies 3/4/5
                    if stage_class is StageClass.LONG:
                        errors.append(sample.relative_true_error)
                    else:
                        errors.append(sample.true_error)
            if not errors:
                continue  # stage too small to yield policy-3/4/5 samples
            results.append(
                StagePredictionResult(
                    workflow_name=wf_name,
                    stage_id=stage_id,
                    stage_class=stage_class,
                    n_tasks=len(tasks),
                    n_orders=n_orders,
                    errors=tuple(errors),
                    summary=summarize_errors(errors, threshold),
                    policy_counts=policy_counts,
                )
            )
    return results
