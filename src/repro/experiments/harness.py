"""Shared experiment plumbing: run one (workflow, policy, u) setting.

The paper's §IV-C matrix crosses four resource-management settings with
four charging units over the Table I runs. :func:`policy_factories`
returns fresh-controller factories (a WIRE controller is bound to a single
run), and :func:`run_setting` executes one cell.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable

from repro.autoscalers import (
    OracleAutoscaler,
    PureReactiveAutoscaler,
    ReactiveConservingAutoscaler,
    WireAutoscaler,
    full_site,
)
from repro.cloud.faults import ChaosSpec
from repro.cloud.site import CloudSite, exogeni_site
from repro.core.config import WireConfig
from repro.dag.workflow import Workflow
from repro.engine.control import Autoscaler
from repro.engine.simulator import RunResult, Simulation
from repro.engine.transfer import DataTransferModel, ExponentialTransferModel
from repro.telemetry import JsonlSink, Tracer
from repro.workloads.base import StagedWorkflowSpec

__all__ = [
    "CHARGING_UNITS",
    "default_transfer_model",
    "policy_factories",
    "run_setting",
]

#: the paper's charging units: 1, 15, 30, 60 minutes (§IV-B)
CHARGING_UNITS: tuple[float, ...] = (60.0, 900.0, 1800.0, 3600.0)


def policy_factories(
    site: CloudSite | None = None,
    *,
    include_oracle: bool = False,
    wire_config: WireConfig | None = None,
) -> dict[str, Callable[[], Autoscaler]]:
    """Fresh-autoscaler factories for the §IV-C settings, keyed by name."""
    the_site = site or exogeni_site()
    factories: dict[str, Callable[[], Autoscaler]] = {
        "full-site": lambda: full_site(the_site),
        "pure-reactive": lambda: PureReactiveAutoscaler(),
        "reactive-conserving": lambda: ReactiveConservingAutoscaler(),
        "wire": lambda: WireAutoscaler(wire_config),
    }
    if include_oracle:
        factories["oracle"] = lambda: OracleAutoscaler(wire_config)
    return factories


def default_transfer_model() -> DataTransferModel:
    """The memoryless transfer model used across cost experiments.

    ~50 MB/s effective bandwidth plus a ~4 s fixed mean component per
    transfer. The fixed part stands in for the per-task overheads of the
    paper's real substrate (HTCondor matchmaking, Pegasus stage-in/out
    scripts), which our engine otherwise does not model; together with
    the bandwidth it is calibrated against the Table I
    aggregate-includes-transfers interpretation (see
    :mod:`repro.workloads.tpch` and DESIGN.md).
    """
    return ExponentialTransferModel(bandwidth=5e7, latency=4.0)


def run_setting(
    workload: StagedWorkflowSpec | Workflow,
    policy_factory: Callable[[], Autoscaler],
    charging_unit: float,
    *,
    seed: int = 0,
    site: CloudSite | None = None,
    transfer_model: DataTransferModel | None = None,
    max_time: float = 1e8,
    trace_path: str | Path | None = None,
    chaos: ChaosSpec | None = None,
    validate: object = None,
) -> RunResult:
    """Execute one run of one setting.

    ``workload`` may be a spec (realized with ``seed``, modelling
    cross-run dataset variability) or an already-generated workflow.
    ``trace_path`` writes the run's structured telemetry as JSONL
    (:mod:`repro.telemetry`); tracing is pure observation, so the run's
    result is bit-identical with or without it. ``chaos`` injects
    cloud-level faults (:mod:`repro.cloud.faults`); the spec is plain
    frozen data, so a cell runs identically in-process and in a
    parallel-executor worker. ``validate`` attaches a runtime invariant
    checker (:mod:`repro.validate`): ``True`` for the default raise-mode
    checker, or a configured ``InvariantChecker`` instance.
    """
    # Duck-typed realization: anything that is not already a concrete
    # Workflow and can generate(seed) counts as a spec — covers
    # StagedWorkflowSpec as well as the registry's generator adapters
    # (repro.zoo.registry.GeneratorSpec / LazyZooSpec).
    workflow = (
        workload
        if isinstance(workload, Workflow)
        else workload.generate(seed)
    )
    sink = JsonlSink(trace_path) if trace_path is not None else None
    try:
        simulation = Simulation(
            workflow,
            site or exogeni_site(),
            policy_factory(),
            charging_unit,
            transfer_model=(
                transfer_model
                if transfer_model is not None
                else default_transfer_model()
            ),
            seed=seed,
            max_time=max_time,
            tracer=Tracer(sink) if sink is not None else None,
            chaos=chaos,
            validate=validate,
        )
        return simulation.run()
    finally:
        if sink is not None:
            sink.close()
