"""Persistent experiment campaigns.

The paper's matrix (8 workloads x 4 settings x 4 charging units x 3-7
repetitions) is hundreds of runs; on a laptop one wants to run it
incrementally, survive interruptions, and never recompute a finished
cell. A :class:`CampaignStore` persists one summary record per
(workflow, policy, charging unit, seed) cell to a JSON file;
:func:`run_campaign` fills in whatever is missing and saves after every
run, so a killed campaign resumes exactly where it stopped.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, Mapping, Sequence

from repro.cloud.faults import ChaosSpec
from repro.cloud.site import CloudSite, exogeni_site
from repro.engine.control import Autoscaler
from repro.experiments.harness import run_setting
from repro.workloads.base import StagedWorkflowSpec

__all__ = [
    "CampaignStore",
    "CellKey",
    "CellRecord",
    "cell_trace_path",
    "missing_cells",
    "record_from_result",
    "run_campaign",
]

_FORMAT_VERSION = 1


@dataclass(frozen=True)
class CellKey:
    """Identity of one run in the matrix."""

    workflow: str
    policy: str
    charging_unit: float
    seed: int


@dataclass(frozen=True)
class CellRecord:
    """Persisted summary of one finished run."""

    workflow: str
    policy: str
    charging_unit: float
    seed: int
    makespan: float
    total_units: int
    total_cost: float
    utilization: float
    peak_instances: int
    restarts: int
    completed: bool

    @property
    def key(self) -> CellKey:
        return CellKey(self.workflow, self.policy, self.charging_unit, self.seed)


class CampaignStore:
    """A JSON-backed map of finished cells."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._records: dict[CellKey, CellRecord] = {}
        self._dirty = 0
        if self.path.exists():
            self._load()

    def _load(self) -> None:
        payload = json.loads(self.path.read_text(encoding="utf-8"))
        version = payload.get("format_version")
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported campaign format version {version!r}")
        for raw in payload["records"]:
            record = CellRecord(**raw)
            self._records[record.key] = record

    def save(self) -> None:
        """Write the store atomically (write-then-rename)."""
        payload = {
            "format_version": _FORMAT_VERSION,
            "records": [asdict(r) for r in self.records()],
        }
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_text(json.dumps(payload, indent=2, sort_keys=True), "utf-8")
        tmp.replace(self.path)
        self._dirty = 0

    def flush(self) -> None:
        """Save iff records were put since the last save (cheap no-op otherwise)."""
        if self._dirty:
            self.save()

    @property
    def dirty(self) -> int:
        """Number of unsaved :meth:`put` calls since the last save."""
        return self._dirty

    def has(self, key: CellKey) -> bool:
        return key in self._records

    def get(self, key: CellKey) -> CellRecord:
        return self._records[key]

    def put(self, record: CellRecord) -> None:
        self._records[record.key] = record
        self._dirty += 1

    def records(self) -> list[CellRecord]:
        """All records, deterministically ordered."""
        return sorted(
            self._records.values(),
            key=lambda r: (r.workflow, r.policy, r.charging_unit, r.seed),
        )

    def __len__(self) -> int:
        return len(self._records)


def record_from_result(key: CellKey, result) -> CellRecord:
    """Summarize one finished run into its persisted cell record."""
    return CellRecord(
        workflow=key.workflow,
        policy=key.policy,
        charging_unit=key.charging_unit,
        seed=key.seed,
        makespan=result.makespan,
        total_units=result.total_units,
        total_cost=result.total_cost,
        utilization=result.utilization,
        peak_instances=result.peak_instances,
        restarts=result.restarts,
        completed=result.completed,
    )


def cell_trace_path(trace_dir: str | Path, key: CellKey) -> Path:
    """Canonical per-cell trace file inside a campaign trace directory.

    The filename encodes the full cell key, so a re-run (or a retried
    worker attempt) deterministically overwrites the same file and a
    parallel campaign's trace directory is identical to a serial one.
    Path separators in workload names (``zoo/<instance>``) flatten to
    ``-`` so every trace lands directly in ``trace_dir``.
    """
    workflow = key.workflow.replace("/", "-")
    return Path(trace_dir) / (
        f"{workflow}__{key.policy}__u{key.charging_unit:g}"
        f"__s{key.seed}.jsonl"
    )


def missing_cells(
    store: CampaignStore,
    specs: Mapping[str, StagedWorkflowSpec],
    policies: Mapping[str, Callable[[], Autoscaler]],
    charging_units: Sequence[float],
    seeds: Sequence[int],
) -> list[CellKey]:
    """The matrix cells not yet in the store, in campaign order."""
    return [
        key
        for wf_name in sorted(specs)
        for policy_name in policies
        for u in charging_units
        for seed in seeds
        if not store.has(key := CellKey(wf_name, policy_name, u, seed))
    ]


def run_campaign(
    store: CampaignStore,
    specs: Mapping[str, StagedWorkflowSpec],
    policies: Mapping[str, Callable[[], Autoscaler]],
    charging_units: Sequence[float],
    seeds: Sequence[int],
    *,
    site: CloudSite | None = None,
    save_every: int = 1,
    trace_dir: str | Path | None = None,
    chaos: ChaosSpec | None = None,
    validate: object = None,
) -> tuple[list[CellRecord], int]:
    """Fill in the matrix's missing cells; returns (all records, #new).

    ``chaos`` applies one cloud-fault spec (:mod:`repro.cloud.faults`) to
    every cell; a cell's outcome is a pure function of its key and the
    spec, so chaos campaigns resume and parallelize like clean ones.
    ``validate`` attaches the runtime invariant checker to every cell
    (pure observation in pass-mode; raise-mode aborts the campaign on
    the first violated engine invariant).

    The store is saved after every ``save_every`` completed runs — and
    always flushed on completion *and* on any exception (including
    KeyboardInterrupt) — so interrupting and re-invoking never loses or
    repeats work. ``save_every=1`` (the default) persists after every
    cell; larger values amortize the atomic rewrite across cells, which
    matters once the store holds hundreds of records. ``trace_dir``
    writes one JSONL telemetry trace per executed cell (see
    :func:`cell_trace_path`); traces never change results.
    """
    if save_every < 1:
        raise ValueError("save_every must be >= 1")
    the_site = site or exogeni_site()
    executed = 0
    try:
        for key in missing_cells(store, specs, policies, charging_units, seeds):
            result = run_setting(
                specs[key.workflow],
                policies[key.policy],
                key.charging_unit,
                seed=key.seed,
                site=the_site,
                trace_path=(
                    cell_trace_path(trace_dir, key)
                    if trace_dir is not None
                    else None
                ),
                chaos=chaos,
                validate=validate,
            )
            store.put(record_from_result(key, result))
            executed += 1
            if executed % save_every == 0:
                store.save()
    finally:
        store.flush()
    return store.records(), executed
