"""Campaign/sweep fan-out over the pluggable executor layer.

:func:`~repro.experiments.campaign.run_campaign` fills the §IV matrix one
cell at a time; the cells are fully independent (each is one seeded
simulation), so the matrix parallelizes embarrassingly. This module is
the thin façade that adapts the two fan-out shapes the experiments use —
:func:`parallel_map` for generic sweeps and
:func:`run_campaign_parallel` for persistent campaign stores — onto
:mod:`repro.experiments.executors`, which owns the actual execution
(inline, persistent process pool with a pinned start method, or the
multi-host work-queue protocol).

Determinism: a cell's simulation depends only on its ``(workflow,
policy, charging_unit, seed)`` key — never on scheduling order or which
worker (or host) ran it — so every backend produces a byte-identical
store to a serial run (records are persisted in sorted key order).

Failure semantics differ by shape, deliberately:

* :func:`parallel_map` treats a worker exception as deterministic and
  raises it immediately — the same ``fn`` invocation count at ``jobs=1``
  and ``jobs=N``, never paying twice for a reproducible failure. Only
  crash-like failures (a worker process dying) are retried, free of
  charge, by the backend.
* :func:`run_campaign_parallel` isolates failures per cell: an
  executed-and-failed cell is retried once (attempts are charged only
  when the cell itself ran and raised) and then reported as a
  :class:`FailedCell` rather than aborting the remaining matrix.

Policy factories are sent to workers by pickling when possible; the
standard §IV-C factories from
:func:`~repro.experiments.harness.policy_factories` are closures (not
picklable), so those are shipped by *name* and rebuilt inside the worker
against the campaign's site.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Mapping, Sequence

from repro.cloud.faults import ChaosSpec
from repro.cloud.site import CloudSite, exogeni_site
from repro.engine.control import Autoscaler
from repro.experiments.campaign import (
    CampaignStore,
    CellKey,
    CellRecord,
    cell_trace_path,
    missing_cells,
    record_from_result,
)
from repro.experiments.executors import (
    ExecutorBackend,
    SerialBackend,
    TaskOutcome,
    resolve_backend,
)
from repro.experiments.harness import policy_factories, run_setting
from repro.workloads.base import StagedWorkflowSpec

__all__ = ["FailedCell", "parallel_map", "run_campaign_parallel"]

#: one campaign cell may execute-and-fail at most this many times in total
_MAX_ATTEMPTS = 2


def _run_batch(fn, batch: list) -> list:
    """Worker entry point for one :func:`parallel_map` chunk."""
    return [fn(item) for item in batch]


def parallel_map(
    fn,
    items: Sequence,
    *,
    jobs: int = 1,
    chunk: int | None = None,
    backend: str | ExecutorBackend | None = None,
    workqueue_dir: str | Path | None = None,
) -> list:
    """Fan a picklable function over independent items, order-preserving.

    The generic sibling of :func:`run_campaign_parallel` for experiments
    whose cells aren't campaign records (e.g. the fleet arrival-rate
    sweep). Results come back in ``items`` order regardless of which
    worker finished first, so every backend is result-identical for
    deterministic ``fn``.

    Items ship in chunks of ``chunk`` per task (default: the smallest
    size that still gives every worker four waves of work, the
    work-stealing sweet spot for heterogeneous item durations), so the
    future round-trip amortizes across the batch instead of repeating
    per item. An exception raised by ``fn`` is deterministic and raises
    immediately — ``fn`` runs exactly once per item on every backend —
    while crash-like worker deaths are retried free by the backend.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if chunk is not None and chunk < 1:
        raise ValueError("chunk must be >= 1")
    the_backend = resolve_backend(backend, jobs=jobs, workqueue_dir=workqueue_dir)
    if isinstance(the_backend, SerialBackend) or len(items) <= 1:
        the_backend = SerialBackend()
        batches = [list(items)] if items else []
    else:
        if chunk is None:
            # four waves of chunks per worker, using the backend's own
            # worker count when it carries one (an explicit instance)
            wave_jobs = max(getattr(the_backend, "jobs", 0) or jobs, 1)
            chunk = max(1, -(-len(items) // (wave_jobs * 4)))
        batches = [list(items[i : i + chunk]) for i in range(0, len(items), chunk)]
    outcomes = the_backend.run(_run_batch, batches, context=fn, max_attempts=1)
    for outcome in outcomes:
        if not outcome.ok:
            if outcome.exception is not None:
                raise outcome.exception
            raise RuntimeError(
                f"parallel_map chunk {outcome.index} failed: {outcome.error}"
            )
    return [result for outcome in outcomes for result in outcome.value]


@dataclass(frozen=True)
class FailedCell:
    """A matrix cell that failed on all its charged attempts."""

    key: CellKey
    error: str


def _factory_payload(
    name: str, factory: Callable[[], Autoscaler]
) -> tuple[str, bytes | str]:
    """How to ship one policy factory to a worker.

    Returns ``("pickle", blob)`` when the factory round-trips through
    pickle, else ``("name", policy_name)`` for the worker to rebuild via
    :func:`policy_factories`. Anything neither picklable nor a standard
    policy name cannot cross the process boundary.
    """
    try:
        return ("pickle", pickle.dumps(factory))
    except Exception:
        pass
    if name in policy_factories(include_oracle=True):
        return ("name", name)
    raise ValueError(
        f"policy factory {name!r} is not picklable and is not a standard "
        "policy name; use the serial backend or make the factory "
        "picklable (e.g. a class or a module-level function)"
    )


def _run_cell(
    key: CellKey,
    spec: StagedWorkflowSpec,
    payload: tuple[str, bytes | str | Callable[[], Autoscaler]],
    site: CloudSite,
    trace_dir: str | None = None,
    chaos: ChaosSpec | None = None,
    validate: object = None,
) -> CellRecord:
    """Execute one cell, return its summary record.

    Each cell traces to its own key-derived file, so concurrent workers
    never share a file handle and a retried attempt overwrites cleanly.
    ``chaos`` is plain frozen data, so it crosses the process boundary by
    ordinary pickling and the cell's fault draws are identical to an
    inline run's.
    """
    mode, blob = payload
    if mode == "direct":  # serial backend: no process boundary to cross
        factory = blob
    elif mode == "pickle":
        factory = pickle.loads(blob)  # type: ignore[arg-type]
    else:
        factory = policy_factories(site, include_oracle=True)[blob]
    result = run_setting(
        spec,
        factory,
        key.charging_unit,
        seed=key.seed,
        site=site,
        trace_path=(
            cell_trace_path(trace_dir, key) if trace_dir is not None else None
        ),
        chaos=chaos,
        validate=validate,
    )
    return record_from_result(key, result)


def _cell_worker(context: tuple, key: CellKey) -> CellRecord:
    """Backend worker entry point: one cell against the shared context.

    The context tuple (specs, factory payloads, site, trace dir, chaos,
    validate) crosses the process boundary once per worker via the
    backend's context-shipping channel instead of being re-pickled for
    every submitted cell.
    """
    specs, payloads, site, trace_dir, chaos, validate = context
    return _run_cell(
        key,
        specs[key.workflow],
        payloads[key.policy],
        site,
        trace_dir,
        chaos,
        validate,
    )


def run_campaign_parallel(
    store: CampaignStore,
    specs: Mapping[str, StagedWorkflowSpec],
    policies: Mapping[str, Callable[[], Autoscaler]],
    charging_units: Sequence[float],
    seeds: Sequence[int],
    *,
    site: CloudSite | None = None,
    jobs: int = 1,
    save_every: int = 8,
    trace_dir: str | Path | None = None,
    chaos: ChaosSpec | None = None,
    validate: object = None,
    backend: str | ExecutorBackend | None = None,
    workqueue_dir: str | Path | None = None,
) -> tuple[list[CellRecord], int, list[FailedCell]]:
    """Fill the matrix's missing cells through an executor backend.

    Returns ``(all records, #new, failed cells)``. ``backend=None``
    picks ``serial`` at ``jobs=1`` and the process pool otherwise;
    ``backend="workqueue"`` (with ``workqueue_dir``) lets several hosts
    drain one matrix. Whatever runs the cells, the resulting store is
    byte-identical to a serial
    :func:`~repro.experiments.campaign.run_campaign` over the same
    matrix. The store is saved after every ``save_every`` completions
    and always flushed on return or on any exception. ``trace_dir``
    gives every executed cell its own JSONL telemetry file (written by
    the worker that ran the cell); the per-cell trace bytes match a
    serial run's because the engine is deterministic per cell key.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if save_every < 1:
        raise ValueError("save_every must be >= 1")
    the_site = site or exogeni_site()
    the_trace_dir = str(trace_dir) if trace_dir is not None else None
    todo = missing_cells(store, specs, policies, charging_units, seeds)
    the_backend = resolve_backend(backend, jobs=jobs, workqueue_dir=workqueue_dir)
    if backend is None and len(todo) <= 1:
        the_backend = SerialBackend()  # a pool for one cell is pure overhead
    if isinstance(the_backend, SerialBackend):
        payloads: dict[str, tuple] = {
            name: ("direct", factory) for name, factory in policies.items()
        }
    else:
        payloads = {
            name: _factory_payload(name, factory)
            for name, factory in policies.items()
        }
    context = (dict(specs), payloads, the_site, the_trace_dir, chaos, validate)

    executed = 0
    failed: list[FailedCell] = []

    def on_result(outcome: TaskOutcome) -> None:
        nonlocal executed
        if outcome.ok:
            store.put(outcome.value)
            executed += 1
            if store.dirty >= save_every:
                store.save()
        else:
            failed.append(FailedCell(todo[outcome.index], outcome.error))

    try:
        the_backend.run(
            _cell_worker,
            todo,
            context=context,
            max_attempts=_MAX_ATTEMPTS,
            on_result=on_result,
        )
    finally:
        store.flush()
    failed.sort(
        key=lambda f: (f.key.workflow, f.key.policy, f.key.charging_unit, f.key.seed)
    )
    return store.records(), executed, failed
