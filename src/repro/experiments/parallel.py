"""Parallel campaign execution (multi-process cell fan-out).

:func:`~repro.experiments.campaign.run_campaign` fills the §IV matrix one
cell at a time; the cells are fully independent (each is one seeded
simulation), so the matrix parallelizes embarrassingly across worker
processes. :func:`run_campaign_parallel` shards the missing cells over a
:class:`~concurrent.futures.ProcessPoolExecutor`, streams finished
:class:`~repro.experiments.campaign.CellRecord` summaries back to the
parent, and batches store saves (atomic write-then-rename, every
``save_every`` completions plus a guaranteed final flush) so an
interrupted campaign still resumes exactly where it stopped.

Determinism: a cell's simulation depends only on its ``(workflow,
policy, charging_unit, seed)`` key — never on scheduling order or which
worker ran it — so a parallel campaign produces a byte-identical store
to a serial one (records are persisted in sorted key order).

Fault tolerance: a cell whose worker raises (or whose worker process
dies, breaking the pool) is re-queued once; a second failure is reported
as a :class:`FailedCell` rather than aborting the remaining cells.

Policy factories are sent to workers by pickling when possible;
the standard §IV-C factories from
:func:`~repro.experiments.harness.policy_factories` are closures (not
picklable), so those are shipped by *name* and rebuilt inside the worker
against the campaign's site.
"""

from __future__ import annotations

import pickle
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Mapping, Sequence

from repro.cloud.faults import ChaosSpec
from repro.cloud.site import CloudSite, exogeni_site
from repro.engine.control import Autoscaler
from repro.experiments.campaign import (
    CampaignStore,
    CellKey,
    CellRecord,
    cell_trace_path,
    missing_cells,
    record_from_result,
)
from repro.experiments.harness import policy_factories, run_setting
from repro.workloads.base import StagedWorkflowSpec

__all__ = ["FailedCell", "parallel_map", "run_campaign_parallel"]

#: one cell is retried at most this many times in total
_MAX_ATTEMPTS = 2


def _run_batch(fn, batch: list) -> list:
    """Worker entry point for one :func:`parallel_map` chunk."""
    return [fn(item) for item in batch]


def parallel_map(fn, items: Sequence, *, jobs: int = 1, chunk: int | None = None) -> list:
    """Fan a picklable function over independent items, order-preserving.

    The generic sibling of :func:`run_campaign_parallel` for experiments
    whose cells aren't campaign records (e.g. the fleet arrival-rate
    sweep). Results come back in ``items`` order regardless of which
    worker finished first, so ``jobs=1`` and ``jobs=N`` are
    result-identical for deterministic ``fn``.

    Items ship in chunks of ``chunk`` per future (default: the smallest
    size that still gives every worker four waves of work), so the
    per-item pickling of ``fn`` and the future round-trip amortize across
    the batch instead of repeating per item. A chunk whose worker raises
    (or dies, breaking the pool) is retried once as a unit; a second
    failure raises.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if chunk is not None and chunk < 1:
        raise ValueError("chunk must be >= 1")
    if jobs == 1 or len(items) <= 1:
        results = []
        for item in items:
            last: Exception | None = None
            for _ in range(_MAX_ATTEMPTS):
                try:
                    results.append(fn(item))
                    last = None
                    break
                except Exception as exc:  # noqa: BLE001 - retry once
                    last = exc
            if last is not None:
                raise last
        return results

    if chunk is None:
        chunk = max(1, -(-len(items) // (jobs * 4)))
    batches = [list(items[i : i + chunk]) for i in range(0, len(items), chunk)]
    out: dict[int, list] = {}
    attempts = [0] * len(batches)
    executor = ProcessPoolExecutor(max_workers=jobs)
    try:
        futures: dict[Future, int] = {}

        def submit(index: int) -> None:
            attempts[index] += 1
            futures[executor.submit(_run_batch, fn, batches[index])] = index

        for index in range(len(batches)):
            submit(index)
        while futures:
            done, _ = wait(futures, return_when=FIRST_COMPLETED)
            broken = False
            retry: list[int] = []
            for future in done:
                index = futures.pop(future)
                try:
                    out[index] = future.result()
                except BrokenProcessPool:
                    broken = True
                    retry.append(index)
                except Exception:
                    if attempts[index] < _MAX_ATTEMPTS:
                        retry.append(index)
                    else:
                        raise
            if broken:
                for future, index in list(futures.items()):
                    del futures[future]
                    retry.append(index)
                executor.shutdown(wait=False, cancel_futures=True)
                executor = ProcessPoolExecutor(max_workers=jobs)
            for index in sorted(set(retry)):
                if attempts[index] >= _MAX_ATTEMPTS:
                    raise RuntimeError(
                        f"parallel_map chunk {index} failed twice "
                        "(worker process died)"
                    )
                submit(index)
    finally:
        executor.shutdown(wait=False, cancel_futures=True)
    return [result for index in range(len(batches)) for result in out[index]]


@dataclass(frozen=True)
class FailedCell:
    """A matrix cell that failed on both its attempts."""

    key: CellKey
    error: str


def _factory_payload(
    name: str, factory: Callable[[], Autoscaler]
) -> tuple[str, bytes | str]:
    """How to ship one policy factory to a worker.

    Returns ``("pickle", blob)`` when the factory round-trips through
    pickle, else ``("name", policy_name)`` for the worker to rebuild via
    :func:`policy_factories`. Anything neither picklable nor a standard
    policy name cannot cross the process boundary.
    """
    try:
        return ("pickle", pickle.dumps(factory))
    except Exception:
        pass
    if name in policy_factories(include_oracle=True):
        return ("name", name)
    raise ValueError(
        f"policy factory {name!r} is not picklable and is not a standard "
        "policy name; use jobs=1 or make the factory picklable "
        "(e.g. a class or a module-level function)"
    )


def _run_cell(
    key: CellKey,
    spec: StagedWorkflowSpec,
    payload: tuple[str, bytes | str],
    site: CloudSite,
    trace_dir: str | None = None,
    chaos: ChaosSpec | None = None,
    validate: object = None,
) -> CellRecord:
    """Worker entry point: execute one cell, return its summary record.

    Each cell traces to its own key-derived file, so concurrent workers
    never share a file handle and a retried attempt overwrites cleanly.
    ``chaos`` is plain frozen data, so it crosses the process boundary by
    ordinary pickling and the cell's fault draws are identical to an
    inline run's.
    """
    mode, blob = payload
    if mode == "pickle":
        factory = pickle.loads(blob)  # type: ignore[arg-type]
    else:
        factory = policy_factories(site, include_oracle=True)[blob]
    result = run_setting(
        spec,
        factory,
        key.charging_unit,
        seed=key.seed,
        site=site,
        trace_path=(
            cell_trace_path(trace_dir, key) if trace_dir is not None else None
        ),
        chaos=chaos,
        validate=validate,
    )
    return record_from_result(key, result)


#: per-worker campaign context installed by the pool initializer: the
#: shared immutable inputs (specs, factory payloads, site, chaos) cross
#: the process boundary once per worker instead of being re-pickled for
#: every submitted cell
_CELL_CTX: tuple | None = None


def _init_cell_worker(specs, payloads, site, trace_dir, chaos, validate) -> None:
    global _CELL_CTX
    _CELL_CTX = (specs, payloads, site, trace_dir, chaos, validate)


def _run_cell_shared(key: CellKey) -> CellRecord:
    """Worker entry point: one cell against the initializer-shipped context."""
    assert _CELL_CTX is not None, "campaign worker initializer did not run"
    specs, payloads, site, trace_dir, chaos, validate = _CELL_CTX
    return _run_cell(
        key,
        specs[key.workflow],
        payloads[key.policy],
        site,
        trace_dir,
        chaos,
        validate,
    )


def run_campaign_parallel(
    store: CampaignStore,
    specs: Mapping[str, StagedWorkflowSpec],
    policies: Mapping[str, Callable[[], Autoscaler]],
    charging_units: Sequence[float],
    seeds: Sequence[int],
    *,
    site: CloudSite | None = None,
    jobs: int = 1,
    save_every: int = 8,
    trace_dir: str | Path | None = None,
    chaos: ChaosSpec | None = None,
    validate: object = None,
) -> tuple[list[CellRecord], int, list[FailedCell]]:
    """Fill the matrix's missing cells across ``jobs`` worker processes.

    Returns ``(all records, #new, failed cells)``. With ``jobs=1`` the
    cells run inline (no process pool) with identical retry and flush
    semantics; either way the resulting store is byte-identical to a
    serial :func:`~repro.experiments.campaign.run_campaign` over the same
    matrix. The store is saved after every ``save_every`` completions and
    always flushed on return or on any exception. ``trace_dir`` gives
    every executed cell its own JSONL telemetry file (written by the
    worker that ran the cell); the per-cell trace bytes match a serial
    run's because the engine is deterministic per cell key.
    """
    if jobs < 1:
        raise ValueError("jobs must be >= 1")
    if save_every < 1:
        raise ValueError("save_every must be >= 1")
    the_site = site or exogeni_site()
    the_trace_dir = str(trace_dir) if trace_dir is not None else None
    todo = missing_cells(store, specs, policies, charging_units, seeds)
    executed = 0
    failed: list[FailedCell] = []

    if jobs == 1 or len(todo) <= 1:
        try:
            for key in todo:
                record, error = _attempt_inline(
                    key, specs, policies, the_site, the_trace_dir, chaos, validate
                )
                if record is None:
                    failed.append(FailedCell(key, error or "unknown error"))
                    continue
                store.put(record)
                executed += 1
                if store.dirty >= save_every:
                    store.save()
        finally:
            store.flush()
        return store.records(), executed, failed

    payloads = {
        name: _factory_payload(name, factory) for name, factory in policies.items()
    }
    attempts: dict[CellKey, int] = {key: 0 for key in todo}
    pending = list(todo)
    initargs = (dict(specs), payloads, the_site, the_trace_dir, chaos, validate)
    executor = ProcessPoolExecutor(
        max_workers=jobs, initializer=_init_cell_worker, initargs=initargs
    )
    try:
        futures: dict[Future, CellKey] = {}

        def submit(key: CellKey) -> None:
            attempts[key] += 1
            future = executor.submit(_run_cell_shared, key)
            futures[future] = key

        for key in pending:
            submit(key)
        while futures:
            done, _ = wait(futures, return_when=FIRST_COMPLETED)
            broken = False
            retry: list[CellKey] = []
            for future in done:
                key = futures.pop(future)
                error = "unknown error"
                try:
                    record = future.result()
                except BrokenProcessPool:
                    broken = True
                    record = None
                    error = "worker process died"
                except Exception as exc:  # noqa: BLE001 - isolate cell failures
                    record = None
                    error = f"{type(exc).__name__}: {exc}"
                if record is not None:
                    store.put(record)
                    executed += 1
                    if store.dirty >= save_every:
                        store.save()
                elif attempts[key] < _MAX_ATTEMPTS:
                    retry.append(key)
                else:
                    failed.append(FailedCell(key, error))
            if broken:
                # A dead worker poisons the whole pool: every in-flight
                # future fails with BrokenProcessPool. Drain them into
                # retry/failed, rebuild the pool, then resubmit.
                for future, key in list(futures.items()):
                    del futures[future]
                    if attempts[key] < _MAX_ATTEMPTS:
                        retry.append(key)
                    else:
                        failed.append(FailedCell(key, "worker process died"))
                executor.shutdown(wait=False, cancel_futures=True)
                executor = ProcessPoolExecutor(
                    max_workers=jobs,
                    initializer=_init_cell_worker,
                    initargs=initargs,
                )
            for key in retry:
                submit(key)
    finally:
        executor.shutdown(wait=False, cancel_futures=True)
        store.flush()
    failed.sort(key=lambda f: (f.key.workflow, f.key.policy, f.key.charging_unit, f.key.seed))
    return store.records(), executed, failed


def _attempt_inline(
    key: CellKey,
    specs: Mapping[str, StagedWorkflowSpec],
    policies: Mapping[str, Callable[[], Autoscaler]],
    site: CloudSite,
    trace_dir: str | None = None,
    chaos: ChaosSpec | None = None,
    validate: object = None,
) -> tuple[CellRecord | None, str | None]:
    """Run one cell inline with the same retry-once semantics as workers."""
    error: str | None = None
    for _ in range(_MAX_ATTEMPTS):
        try:
            result = run_setting(
                specs[key.workflow],
                policies[key.policy],
                key.charging_unit,
                seed=key.seed,
                site=site,
                trace_path=(
                    cell_trace_path(trace_dir, key)
                    if trace_dir is not None
                    else None
                ),
                chaos=chaos,
                validate=validate,
            )
        except Exception as exc:  # noqa: BLE001 - isolate cell failures
            error = f"{type(exc).__name__}: {exc}"
            continue
        return record_from_result(key, result), None
    return None, error
