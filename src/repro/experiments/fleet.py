"""Fleet arrival-rate sweep: contention response of the shared site.

The fleet analogue of the §IV experiments: hold the workload mix, the
allocation policy, and the global autoscaler fixed, and sweep the
Poisson arrival rate. As the rate climbs, tenants overlap more, the
summed ``Q_task`` grows, and the per-tenant slowdown / queue-wait curves
show how gracefully each policy absorbs contention (the workload-of-
workflows methodology of Ilyushkin et al., arXiv:1905.10270).

Cells are independent seeded simulations, so the sweep fans out over
:func:`~repro.experiments.parallel.parallel_map`; serial and parallel
runs produce identical rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.cloud.faults import ChaosSpec
from repro.experiments.executors import ExecutorBackend
from repro.experiments.parallel import parallel_map
from repro.fleet.arrivals import PoissonArrivals
from repro.fleet.harness import DEFAULT_FLEET_WORKLOADS, run_fleet
from repro.util.formatting import format_duration, render_table

__all__ = ["FleetSweepRow", "fleet_experiment", "render_fleet_sweep"]


@dataclass(frozen=True)
class FleetSweepRow:
    """One (arrival rate, seed) cell of the fleet sweep."""

    #: mean arrival rate (workflows per hour)
    rate: float
    policy: str
    autoscaler: str
    seed: int
    n_tenants: int
    makespan: float
    total_cost: float
    peak_instances: int
    mean_slowdown: float
    mean_queue_wait: float
    completed: bool


def _run_sweep_cell(params: tuple) -> FleetSweepRow:
    """Worker entry point: one fleet run for one sweep cell.

    ``params`` is a flat tuple of plain values (plus the frozen
    ``ChaosSpec``) so the cell pickles across the process boundary and a
    worker run is identical to an inline one.
    """
    rate, n, workloads, policy, autoscaler, charging_unit, seed, chaos = params
    result = run_fleet(
        arrivals=PoissonArrivals(rate, n, workloads),
        policy=policy,
        autoscaler=autoscaler,
        charging_unit=charging_unit,
        seed=seed,
        chaos=chaos,
    )
    return FleetSweepRow(
        rate=rate,
        policy=result.allocation_policy,
        autoscaler=result.autoscaler_name,
        seed=seed,
        n_tenants=result.n_tenants,
        makespan=result.makespan,
        total_cost=result.total_cost,
        peak_instances=result.peak_instances,
        mean_slowdown=result.mean_slowdown,
        mean_queue_wait=result.mean_queue_wait,
        completed=result.completed,
    )


def fleet_experiment(
    rates: Sequence[float],
    *,
    n: int = 4,
    workloads: Sequence[str] = DEFAULT_FLEET_WORKLOADS,
    policy: str = "fair-share",
    autoscaler: str = "global-wire",
    charging_unit: float = 900.0,
    seeds: Sequence[int] = (0,),
    jobs: int = 1,
    chaos: ChaosSpec | None = None,
    backend: str | ExecutorBackend | None = None,
    workqueue_dir: str | Path | None = None,
) -> list[FleetSweepRow]:
    """Sweep the Poisson arrival rate; one row per ``(rate, seed)`` cell.

    Rows come back sorted by ``(rate, seed)`` whatever the worker (or
    backend) completion order, so serial ≡ process ≡ workqueue output.
    """
    if not rates:
        raise ValueError("at least one arrival rate is required")
    cells = [
        (float(rate), n, tuple(workloads), policy, autoscaler,
         charging_unit, seed, chaos)
        for rate in rates
        for seed in seeds
    ]
    rows = parallel_map(
        _run_sweep_cell, cells, jobs=jobs, backend=backend,
        workqueue_dir=workqueue_dir,
    )
    return sorted(rows, key=lambda r: (r.rate, r.seed))


def render_fleet_sweep(rows: Sequence[FleetSweepRow]) -> str:
    """Render sweep rows as the CLI's text table."""
    if not rows:
        return "no fleet sweep rows"
    first = rows[0]
    return render_table(
        ["rate/h", "seed", "tenants", "makespan", "peak", "cost",
         "mean slowdown", "mean queue wait", "done"],
        [
            [
                f"{row.rate:g}",
                row.seed,
                row.n_tenants,
                format_duration(row.makespan),
                row.peak_instances,
                f"{row.total_cost:.0f}",
                f"{row.mean_slowdown:.2f}x",
                f"{row.mean_queue_wait:.1f}s",
                "yes" if row.completed else "NO",
            ]
            for row in rows
        ],
        title=(
            f"fleet sweep — {first.policy} / {first.autoscaler} "
            f"(n = {first.n_tenants} per cell)"
        ),
    )
