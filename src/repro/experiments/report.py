"""Plain-text rendering of every experiment's results.

Each ``render_*`` function prints the same rows the corresponding paper
table/figure reports; the benchmark harness tees these into the bench
output so a run of ``pytest benchmarks/`` regenerates the full evaluation
as text.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.cost import CostCell, relative_execution_table
from repro.experiments.linear_sim import LinearSimResult
from repro.experiments.overhead import OverheadRow
from repro.experiments.prediction import StagePredictionResult
from repro.experiments.table1 import Table1Row
from repro.metrics.errors import StageClass
from repro.util.formatting import render_table

__all__ = [
    "render_cost",
    "render_linear",
    "render_overhead",
    "render_prediction",
    "render_relative_time",
    "render_table1",
]


def render_table1(rows: Sequence[Table1Row]) -> str:
    """Table I, paper vs generated."""
    body = []
    for row in rows:
        p, g = row.profile, row.generated
        body.append(
            [
                p.name,
                f"{g.n_stages}/{p.n_stages}",
                f"{g.total_tasks}/{p.total_tasks}",
                f"{g.min_stage_tasks}-{g.max_stage_tasks}"
                f" vs {p.stage_tasks_range[0]}-{p.stage_tasks_range[1]}",
                f"{g.min_stage_mean_exec:.2f}-{g.max_stage_mean_exec:.2f}"
                f" vs {p.stage_mean_exec_range[0]}-{p.stage_mean_exec_range[1]}",
                f"{g.aggregate_exec_hours:.3f}/{p.aggregate_exec_hours}"
                + ("" if p.aggregate_consistent else " (paper incl. transfers)"),
                "ok" if row.counts_match else "MISMATCH",
            ]
        )
    return render_table(
        ["run", "stages", "tasks", "tasks/stage", "stage mean exec (s)",
         "aggregate (h)", "structure"],
        body,
        title="Table I — workflow characterization (generated vs paper)",
    )


def render_linear(results: Sequence[LinearSimResult], *, title: str) -> str:
    """Figures 2/3 rows for one N series."""
    body = [
        [
            r.n_tasks,
            f"{r.runtime / r.charging_unit:.3g}",
            f"{r.charging_unit / r.runtime:.3g}",
            r.units,
            f"{r.cost_ratio:.3f}",
            f"{r.time_ratio:.3f}",
            r.peak_instances,
            r.restarts,
        ]
        for r in results
    ]
    return render_table(
        ["N", "R/U", "U/R", "units", "cost/optimal", "time/optimal",
         "peak", "restarts"],
        body,
        title=title,
    )


def render_prediction(results: Sequence[StagePredictionResult]) -> str:
    """Figure 4 per-stage accuracy rows plus per-class aggregates."""
    body = []
    for r in results:
        unit = "%" if r.stage_class is StageClass.LONG else "s"
        scale = 100.0 if r.stage_class is StageClass.LONG else 1.0
        body.append(
            [
                r.workflow_name,
                r.stage_id,
                r.stage_class.value,
                r.n_tasks,
                f"{r.summary.mean_abs_error * scale:.2f}{unit}",
                f"{r.summary.within_threshold * 100:.1f}%",
            ]
        )
    table = render_table(
        ["workflow", "stage", "class", "tasks", "mean |err|",
         "within threshold"],
        body,
        title="Figure 4 — prediction accuracy by stage "
        "(threshold: 1s short/medium, 15% long)",
    )
    # Per-class aggregate lines, mirroring §IV-D's headline numbers.
    lines = [table, ""]
    for cls in StageClass:
        subset = [r for r in results if r.stage_class is cls]
        if not subset:
            continue
        total = sum(len(r.errors) for r in subset)
        mean_abs = (
            sum(r.summary.mean_abs_error * len(r.errors) for r in subset) / total
        )
        within = (
            sum(r.summary.within_threshold * len(r.errors) for r in subset) / total
        )
        unit = "%" if cls is StageClass.LONG else "s"
        scale = 100.0 if cls is StageClass.LONG else 1.0
        lines.append(
            f"{cls.value:>6s} stages: {len(subset):3d} stages, "
            f"{total:5d} samples, mean |err| {mean_abs * scale:.2f}{unit}, "
            f"{within * 100:.1f}% within threshold"
        )
    return "\n".join(lines)


def render_cost(cells: Sequence[CostCell]) -> str:
    """Figure 5: resource cost in charging units."""
    body = [
        [
            c.workflow,
            c.policy,
            int(c.charging_unit // 60),
            f"{c.summary.mean_units:.1f}",
            f"{c.summary.std_units:.1f}",
            f"{c.summary.mean_utilization:.2f}",
        ]
        for c in cells
    ]
    return render_table(
        ["workflow", "policy", "u (min)", "mean units", "std", "utilization"],
        body,
        title="Figure 5 — resource cost (charging units)",
    )


def render_relative_time(cells: Sequence[CostCell]) -> str:
    """Figure 6: relative execution time (normalized to the best mean)."""
    rows = relative_execution_table(cells)
    body = [
        [wf, policy, int(u // 60), f"{rel:.2f}x", f"{units:.1f}"]
        for wf, policy, u, rel, units in rows
    ]
    return render_table(
        ["workflow", "policy", "u (min)", "relative time", "mean units"],
        body,
        title="Figure 6 — relative execution time (1.00x = best setting)",
    )


def render_overhead(rows: Sequence[OverheadRow]) -> str:
    """§IV-F: controller overhead."""
    body = [
        [
            r.workflow,
            int(r.charging_unit // 60),
            r.ticks,
            f"{r.controller_seconds * 1e3:.1f}ms",
            f"{r.time_overhead_fraction * 100:.4f}%",
            f"{r.state_bytes / 1024:.1f}KB",
        ]
        for r in rows
    ]
    return render_table(
        ["workflow", "u (min)", "ticks", "controller time", "overhead",
         "state size"],
        body,
        title="§IV-F — controller overhead "
        "(paper: 0.011%-0.49% time, <=16KB state)",
    )
