"""Quantifying the paper's motivating observations (§I, §II-A, §II-B).

Observation 1 (within a run): "the number of the tasks of a stage may
differ by three orders of magnitude; the average task execution time of a
stage may vary from several seconds to several minutes. Moreover ...
tasks in the same stage may exhibit different performance" (load skew),
and the workflow's available parallelism varies dramatically as it runs.

Observation 2 (across runs): "for a given workflow, its task execution
times are highly variable across runs."

This experiment computes those statistics from the generated workloads so
the motivation is checkable, not just assumed: per-workflow stage-size
and stage-mean spreads, intra-stage skew (P90/P50 of task runtimes), the
ideal-parallelism width profile, and cross-run runtime dispersion over
reseeded generations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.dag.analysis import ideal_parallelism_profile
from repro.workloads import table1_specs
from repro.workloads.base import StagedWorkflowSpec

__all__ = ["MotivationRow", "motivation_experiment"]


@dataclass(frozen=True)
class MotivationRow:
    """Variability statistics for one workload."""

    workflow: str
    #: max/min stage task count (Obs. 1: "three orders of magnitude")
    stage_size_spread: float
    #: max/min per-stage mean execution time
    stage_mean_spread: float
    #: median across stages of the stage's P90/P50 task runtime (skew)
    intra_stage_skew: float
    #: peak / mean of the ideal parallelism profile (width variation)
    width_peak_over_mean: float
    #: median across tasks of (max/min runtime across reseeded runs)
    cross_run_spread: float


def _width_stats(workflow) -> float:
    profile = ideal_parallelism_profile(workflow)
    # Time-weighted mean width over the active span.
    total_area = 0.0
    span = 0.0
    for (t0, w), (t1, _) in zip(
        zip(profile.times, profile.widths),
        zip(profile.times[1:], profile.widths[1:]),
    ):
        total_area += w * (t1 - t0)
        span += t1 - t0
    mean_width = total_area / span if span > 0 else 1.0
    return profile.peak / max(mean_width, 1e-9)


def motivation_experiment(
    specs: Mapping[str, StagedWorkflowSpec] | None = None,
    *,
    runs: int = 5,
    seed: int = 0,
) -> list[MotivationRow]:
    """Compute Observation 1/2 statistics for each workload."""
    if runs < 2:
        raise ValueError("cross-run statistics need runs >= 2")
    if specs is None:
        specs = table1_specs()
    rows: list[MotivationRow] = []
    for name, spec in sorted(specs.items()):
        workflows = [spec.generate(seed + r) for r in range(runs)]
        first = workflows[0]

        sizes = [s.size for s in first.stages]
        stage_means = [
            float(np.mean([first.task(t).runtime for t in s.task_ids]))
            for s in first.stages
        ]
        skews = []
        for stage in first.stages:
            if stage.size < 4:
                continue
            runtimes = np.array([first.task(t).runtime for t in stage.task_ids])
            p50 = float(np.percentile(runtimes, 50))
            if p50 > 0:
                skews.append(float(np.percentile(runtimes, 90)) / p50)

        per_task_spread = []
        for tid in first.tasks:
            runtimes = np.array([wf.task(tid).runtime for wf in workflows])
            if runtimes.min() > 0:
                per_task_spread.append(float(runtimes.max() / runtimes.min()))

        rows.append(
            MotivationRow(
                workflow=name,
                stage_size_spread=max(sizes) / min(sizes),
                stage_mean_spread=max(stage_means) / min(stage_means),
                intra_stage_skew=float(np.median(skews)) if skews else 1.0,
                width_peak_over_mean=_width_stats(first),
                cross_run_spread=float(np.median(per_task_spread)),
            )
        )
    return rows
