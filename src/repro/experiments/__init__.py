"""Experiment harness: regenerates every table and figure of §IV.

| Paper artifact | Function |
|---|---|
| Table I        | :func:`table1_experiment` |
| Figure 2       | :func:`sweep_r_over_u` |
| Figure 3       | :func:`sweep_u_over_r` |
| Figure 4       | :func:`prediction_experiment` |
| Figures 5/6    | :func:`cost_experiment` |
| §IV-F overhead | :func:`overhead_experiment` |

``repro.experiments.report`` renders each result set as text.
"""

from repro.experiments.analytic import (
    cost_ratio_r_above_u,
    makespan_r_above_u,
    time_ratio_bounds_r_below_u,
    time_ratio_r_above_u,
    units_r_above_u,
)
from repro.experiments.cost import CostCell, cost_experiment, relative_execution_table
from repro.experiments.harness import (
    CHARGING_UNITS,
    default_transfer_model,
    policy_factories,
    run_setting,
)
from repro.experiments.linear_sim import (
    LinearSimResult,
    simulate_linear_stage,
    sweep_r_over_u,
    sweep_u_over_r,
)
from repro.experiments.overhead import OverheadRow, overhead_experiment
from repro.experiments.campaign import (
    CampaignStore,
    CellKey,
    CellRecord,
    missing_cells,
    record_from_result,
    run_campaign,
)
from repro.experiments.fleet import (
    FleetSweepRow,
    fleet_experiment,
    render_fleet_sweep,
)
from repro.experiments.parallel import (
    FailedCell,
    parallel_map,
    run_campaign_parallel,
)
from repro.experiments.motivation import MotivationRow, motivation_experiment
from repro.experiments.sensitivity import LagSensitivityRow, lag_sensitivity_experiment
from repro.experiments.robustness import RobustnessRow, robustness_experiment
from repro.experiments.prediction import (
    StagePredictionResult,
    prediction_experiment,
    replay_stage_predictions,
)
from repro.experiments.table1 import Table1Row, table1_experiment

__all__ = [
    "CHARGING_UNITS",
    "CampaignStore",
    "CellKey",
    "CellRecord",
    "CostCell",
    "FailedCell",
    "FleetSweepRow",
    "LagSensitivityRow",
    "LinearSimResult",
    "MotivationRow",
    "OverheadRow",
    "RobustnessRow",
    "StagePredictionResult",
    "Table1Row",
    "cost_experiment",
    "cost_ratio_r_above_u",
    "default_transfer_model",
    "fleet_experiment",
    "lag_sensitivity_experiment",
    "makespan_r_above_u",
    "missing_cells",
    "motivation_experiment",
    "overhead_experiment",
    "parallel_map",
    "policy_factories",
    "prediction_experiment",
    "record_from_result",
    "relative_execution_table",
    "render_fleet_sweep",
    "replay_stage_predictions",
    "robustness_experiment",
    "run_campaign",
    "run_campaign_parallel",
    "run_setting",
    "simulate_linear_stage",
    "sweep_r_over_u",
    "sweep_u_over_r",
    "table1_experiment",
    "time_ratio_bounds_r_below_u",
    "time_ratio_r_above_u",
    "units_r_above_u",
]
