"""Table I: workflow characterization, paper targets vs generated.

For every Table I run this experiment generates the workflow and computes
the same columns the paper publishes — stage count, task totals, per-stage
task-count range, per-stage mean-execution range, aggregate execution
hours — next to the published targets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workloads import PAPER_PROFILES, summarize_workflow, table1_specs
from repro.workloads.base import WorkflowSummary
from repro.workloads.profiles import PaperProfile

__all__ = ["Table1Row", "table1_experiment"]


@dataclass(frozen=True)
class Table1Row:
    """One workflow's paper-vs-generated characterization."""

    profile: PaperProfile
    generated: WorkflowSummary

    @property
    def counts_match(self) -> bool:
        """Structural columns (stages, totals, ranges) match exactly."""
        p, g = self.profile, self.generated
        return (
            g.n_stages == p.n_stages
            and g.total_tasks == p.total_tasks
            and (g.min_stage_tasks, g.max_stage_tasks) == p.target_stage_tasks_range
        )

    @property
    def aggregate_ratio(self) -> float:
        """Generated / published aggregate execution hours."""
        return self.generated.aggregate_exec_hours / self.profile.aggregate_exec_hours


def table1_experiment(seed: int = 0) -> list[Table1Row]:
    """Generate every Table I workflow and characterize it."""
    rows = []
    for name, spec in table1_specs().items():
        workflow = spec.generate(seed)
        rows.append(
            Table1Row(
                profile=PAPER_PROFILES[name],
                generated=summarize_workflow(workflow),
            )
        )
    return rows
