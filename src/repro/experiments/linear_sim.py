"""Figures 2 and 3: the scaling algorithm on idealized linear stages.

Paper §IV-A evaluates the resource-steering policy by simulation "for the
class of simple linear workflows discussed in Section III-E": a single
stage of N identical tasks of runtime R, one slot per instance, continuous
monitoring, instantaneous control, initial pool P = 1, charging unit U.

Reported metrics, as in the figures:

- *resource-usage ratio*: charged units / optimal ``N*R/U`` (optimal =
  one instance running the tasks back to back with zero waste);
- *completion-time ratio*: stage makespan / optimal ``R`` (optimal = all
  N tasks in parallel).

The simulator below is a special-purpose continuous-control implementation
that reuses the *real* Algorithm 3 (:func:`repro.core.steering.resize_pool`)
and the real prediction semantics (Policy 2 before any completion, the
exact post-completion estimate after), with event-driven boundaries and a
fine control cadence of ``U/(2N)`` during the growth phase — the §III-E
analysis shows pool growth happens on a ``U/N`` rhythm, so this cadence
resolves every growth step. Tests cross-check it against the full
discrete-event engine at small N.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass

from repro.core.steering import resize_pool
from repro.util.validation import check_positive

__all__ = [
    "LinearSimResult",
    "simulate_linear_stage",
    "sweep_r_over_u",
    "sweep_u_over_r",
]


@dataclass(frozen=True)
class LinearSimResult:
    """One (N, R, U) point of Figures 2/3."""

    n_tasks: int
    runtime: float
    charging_unit: float
    units: int
    makespan: float
    peak_instances: int
    restarts: int

    @property
    def optimal_units(self) -> float:
        """Best possible resource usage: N*R/U (§IV-A)."""
        return self.n_tasks * self.runtime / self.charging_unit

    @property
    def cost_ratio(self) -> float:
        """Resource usage relative to optimal (>= ~1)."""
        return self.units / self.optimal_units

    @property
    def time_ratio(self) -> float:
        """Completion time relative to optimal R (>= 1)."""
        return self.makespan / self.runtime


@dataclass
class _Instance:
    instance_id: int
    charge_start: float
    units: int = 1
    #: start time of the running task, or None when idle
    task_start: float | None = None
    #: bumps on every task start; stale completion events carry old values
    attempt: int = 0


class _LinearStageSimulator:
    """Continuous-control single-stage simulation (see module docstring)."""

    def __init__(
        self,
        n_tasks: int,
        runtime: float,
        charging_unit: float,
        *,
        initial_pool: int = 1,
        threshold_fraction: float = 0.2,
    ) -> None:
        if not isinstance(n_tasks, int) or n_tasks <= 0:
            raise ValueError(f"n_tasks must be a positive int, got {n_tasks!r}")
        check_positive("runtime", runtime)
        check_positive("charging_unit", charging_unit)
        if initial_pool < 1:
            raise ValueError("initial_pool must be >= 1")
        self.n = n_tasks
        self.r = runtime
        self.u = charging_unit
        self.threshold = threshold_fraction
        self.initial_pool = min(initial_pool, n_tasks)

        self.now = 0.0
        self.unstarted = n_tasks
        self.requeued = 0
        self.completed = 0
        self.restarts = 0
        self.instances: dict[int, _Instance] = {}
        self.total_units = 0
        self.peak = 0
        self.makespan = 0.0
        self._ids = itertools.count(1)
        self._heap: list[tuple[float, int, str, tuple[int, int]]] = []
        self._seq = itertools.count()
        #: monotone control cadence during the pre-completion growth phase
        self._growth_dt = charging_unit / (2.0 * n_tasks)
        self._next_control = 0.0

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _push(
        self, time: float, kind: str, instance_id: int = 0, attempt: int = 0
    ) -> None:
        heapq.heappush(
            self._heap, (time, next(self._seq), kind, (instance_id, attempt))
        )

    def _launch(self) -> _Instance:
        inst = _Instance(instance_id=next(self._ids), charge_start=self.now)
        self.instances[inst.instance_id] = inst
        self.total_units += 1
        self._push_boundary(inst)
        self.peak = max(self.peak, len(self.instances))
        return inst

    def _push_boundary(self, inst: _Instance) -> None:
        """Schedule the instance's next charge boundary.

        Computed multiplicatively from the charge start so a task of
        runtime k*U completes *exactly at* (not one float ulp before or
        after) its k-th boundary — completion events then win the tie by
        insertion order and the instance is released without a spurious
        renewal.
        """
        self._push(
            inst.charge_start + inst.units * self.u, "boundary", inst.instance_id
        )

    def _start_task(self, inst: _Instance) -> None:
        """Assign one queued task (requeued first) to an idle instance."""
        if self.requeued > 0:
            self.requeued -= 1
        elif self.unstarted > 0:
            self.unstarted -= 1
        else:
            raise RuntimeError("no task available to start")
        inst.task_start = self.now
        inst.attempt += 1
        self._push(self.now + self.r, "complete", inst.instance_id, inst.attempt)

    def _queued_tasks(self) -> int:
        return self.unstarted + self.requeued

    def _estimate(self) -> float:
        """Execution-time estimate for the stage's tasks.

        After a completion the median completed time is exactly R (all
        tasks are identical). Before any completion, Policy 2 uses the
        tasks' run time — in §III-E's idealization all tasks of the stage
        fire simultaneously at t = 0, so the run time of every active
        task is simply the current time. (Measuring from individual
        dispatch instead would halve the growth rate via the median of
        staggered starts and break §III-E's stated dynamics: "At time U
        ... the pool has N instances".)
        """
        if self.completed > 0:
            return self.r
        if all(i.task_start is None for i in self.instances.values()):
            return 0.0
        return self.now

    def _upcoming(self) -> list[float]:
        """Q_task remaining times: running (soonest first), then queued."""
        estimate = self._estimate()
        remaining = []
        for inst in self.instances.values():
            if inst.task_start is None:
                continue
            elapsed = self.now - inst.task_start
            if self.completed > 0:
                remaining.append(max(self.r - elapsed, 0.0))
            else:
                # Pre-completion phase: every task contributes the full,
                # still-growing median-elapsed estimate — §III-E's growth
                # arithmetic (pool = N at time U) depends on running tasks
                # counting at the estimate, not estimate-minus-elapsed.
                remaining.append(estimate)
        remaining.sort()
        remaining.extend([max(estimate, 0.0)] * self._queued_tasks())
        return remaining

    def _target_pool(self) -> int:
        upcoming = self._upcoming()
        if not upcoming:
            return 0
        return resize_pool(
            upcoming, self.u, 1, tail_threshold_fraction=self.threshold
        )

    # ------------------------------------------------------------------
    # control actions
    # ------------------------------------------------------------------
    def _grow_if_needed(self) -> None:
        p = self._target_pool()
        m = len(self.instances)
        while m < p and self._queued_tasks() > 0:
            inst = self._launch()
            self._start_task(inst)
            m += 1
        # Fill any idle paid instances with queued work (FIFO dispatch).
        for inst in sorted(self.instances.values(), key=lambda i: i.instance_id):
            if inst.task_start is None and self._queued_tasks() > 0:
                self._start_task(inst)

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------
    def _on_complete(self, inst: _Instance) -> None:
        inst.task_start = None
        self.completed += 1
        self.makespan = self.now
        if self._queued_tasks() > 0:
            self._start_task(inst)
        self._grow_if_needed()

    def _on_boundary(self, inst: _Instance) -> None:
        if inst.task_start is not None:
            sunk = self.now - inst.task_start
            if sunk > self.threshold * self.u:
                # Renewal is forced: restarting would forfeit too much.
                inst.units += 1
                self.total_units += 1
                self._push_boundary(inst)
                return
        # Idle, or killable cheaply: release if the load no longer
        # justifies this instance (Algorithm 2 at the charge boundary).
        p = self._target_pool()
        if p < len(self.instances):
            if inst.task_start is not None:
                self.requeued += 1
                self.restarts += 1
            del self.instances[inst.instance_id]
            self._grow_if_needed()
            return
        inst.units += 1
        self.total_units += 1
        self._push_boundary(inst)
        if inst.task_start is None and self._queued_tasks() > 0:
            self._start_task(inst)

    # ------------------------------------------------------------------
    def run(self) -> LinearSimResult:
        for _ in range(self.initial_pool):
            inst = self._launch()
            self._start_task(inst)
        self._next_control = self._growth_dt
        self._push(self._next_control, "control")

        while self.completed < self.n:
            if not self._heap:
                raise RuntimeError("linear simulation stalled")
            time, _, kind, (instance_id, attempt) = heapq.heappop(self._heap)
            self.now = time
            if kind == "complete":
                inst = self.instances.get(instance_id)
                # The instance may have been released (task killed) or be
                # on a newer attempt — stale events are skipped.
                if inst is None or inst.task_start is None:
                    continue
                if inst.attempt != attempt:
                    continue
                self._on_complete(inst)
            elif kind == "boundary":
                inst = self.instances.get(instance_id)
                if inst is None:
                    continue
                self._on_boundary(inst)
            else:  # growth-phase control tick
                self._grow_if_needed()
                if self.completed == 0 and self._queued_tasks() > 0:
                    self._next_control += self._growth_dt
                    self._push(self._next_control, "control")

        return LinearSimResult(
            n_tasks=self.n,
            runtime=self.r,
            charging_unit=self.u,
            units=self.total_units,
            makespan=self.makespan,
            peak_instances=self.peak,
            restarts=self.restarts,
        )


def simulate_linear_stage(
    n_tasks: int,
    runtime: float,
    charging_unit: float,
    *,
    initial_pool: int = 1,
    threshold_fraction: float = 0.2,
) -> LinearSimResult:
    """Simulate one single-stage point under continuous control."""
    return _LinearStageSimulator(
        n_tasks,
        runtime,
        charging_unit,
        initial_pool=initial_pool,
        threshold_fraction=threshold_fraction,
    ).run()


def sweep_r_over_u(
    n_tasks: int,
    ratios: list[float],
    *,
    charging_unit: float = 60.0,
) -> list[LinearSimResult]:
    """Figure 2's sweep: R > U, varying R/U (ratios must be >= 1)."""
    results = []
    for ratio in ratios:
        if ratio < 1:
            raise ValueError(f"Figure 2 covers R/U >= 1, got {ratio}")
        results.append(
            simulate_linear_stage(n_tasks, charging_unit * ratio, charging_unit)
        )
    return results


def sweep_u_over_r(
    n_tasks: int,
    ratios: list[float],
    *,
    runtime: float = 60.0,
) -> list[LinearSimResult]:
    """Figure 3's sweep: R <= U, varying U/R (ratios must be >= 1)."""
    results = []
    for ratio in ratios:
        if ratio < 1:
            raise ValueError(f"Figure 3 covers U/R >= 1, got {ratio}")
        results.append(
            simulate_linear_stage(n_tasks, runtime, runtime * ratio)
        )
    return results
