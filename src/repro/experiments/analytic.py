"""Closed-form §III-E model for the single linear stage.

The paper analyzes the scaling algorithm on a stage of N identical tasks
(runtime R, charging unit U, one slot per instance, continuous control,
initial pool 1) by narrative; this module captures the closed forms that
narrative implies, so the simulator can be verified against them.

For **R >= U** the dynamics are exact once R/U clears ~1.1:

- the pool grows one instance per U/N from 2U/N and reaches N at time U
  (all tasks started by then, the last at time U);
- every instance runs exactly one task for R seconds, renews its charging
  unit while the task runs ("it cannot release these instances because
  the sunk cost ... is too high"), and is released at the first boundary
  after its task completes;

hence

- ``units = N * ceil(R/U)`` -> ``cost_ratio = ceil(R/U) / (R/U)``,
- ``makespan = U + R``       -> ``time_ratio = 1 + U/R``.

At R/U = 1.5 these give the paper's stated bounds 1.33x and 1.67x
exactly, and both converge to 1 as R/U grows — Figure 2's shape is a
theorem, not an artifact.

Just above R = U the narrative's growth arithmetic can break for some
N: Algorithm 3 packs several barely-over-U tasks onto one instance's
successive charging units, so the pool plateaus below N, finishing
*cheaper* than ``N * ceil(R/U)`` but later than ``U + R`` (observed at
N = 7, R/U <= 1.07). The closed forms above describe the
one-task-per-instance regime, which holds for R/U >= ~1.1.

For **R < U** no clean closed form exists (packing granularity
``ceil(U/R)`` interacts with the growth phase and with boundary-time
kills); :func:`time_ratio_bounds_r_below_u` provides the provable
envelope used by tests.
"""

from __future__ import annotations

import math

from repro.util.validation import check_positive

__all__ = [
    "cost_ratio_r_above_u",
    "makespan_r_above_u",
    "time_ratio_bounds_r_below_u",
    "time_ratio_r_above_u",
    "units_r_above_u",
]


def _check(runtime: float, charging_unit: float) -> None:
    check_positive("runtime", runtime)
    check_positive("charging_unit", charging_unit)


def units_r_above_u(n_tasks: int, runtime: float, charging_unit: float) -> int:
    """Total charging units for the R >= U regime."""
    _check(runtime, charging_unit)
    if runtime < charging_unit:
        raise ValueError("closed form requires R >= U")
    return n_tasks * math.ceil(runtime / charging_unit)


def makespan_r_above_u(runtime: float, charging_unit: float) -> float:
    """Stage completion time for the R >= U regime: U + R."""
    _check(runtime, charging_unit)
    if runtime < charging_unit:
        raise ValueError("closed form requires R >= U")
    return charging_unit + runtime


def cost_ratio_r_above_u(runtime: float, charging_unit: float) -> float:
    """Resource usage relative to optimal N*R/U: ceil(R/U)/(R/U)."""
    _check(runtime, charging_unit)
    ratio = runtime / charging_unit
    if ratio < 1:
        raise ValueError("closed form requires R >= U")
    return math.ceil(ratio) / ratio


def time_ratio_r_above_u(runtime: float, charging_unit: float) -> float:
    """Completion time relative to optimal R: 1 + U/R."""
    _check(runtime, charging_unit)
    if runtime < charging_unit:
        raise ValueError("closed form requires R >= U")
    return 1.0 + charging_unit / runtime


def time_ratio_bounds_r_below_u(
    n_tasks: int, runtime: float, charging_unit: float
) -> tuple[float, float]:
    """(lower, upper) bound on the completion ratio for R <= U.

    Lower bound: optimal parallelism, ratio 1. Upper bound: the pool never
    shrinks below one instance and Algorithm 3 plans at least
    ``N / ceil(U/R)`` instances once estimates stabilize at R, so at worst
    the stage serializes ``ceil(U/R)`` tasks per instance, doubled for the
    growth phase and restarts-at-boundaries — capped by full
    serialization N (a single surviving instance).
    """
    _check(runtime, charging_unit)
    if runtime > charging_unit:
        raise ValueError("bounds cover R <= U")
    per_instance = math.ceil(charging_unit / runtime)
    upper = float(min(n_tasks, 4 * per_instance))
    return 1.0, max(upper, 2.0)
