"""Section IV-F: controller overhead.

The paper reports that across 127 wire runs WIRE used <= 16 KB of memory
and consumed 0.011%-0.49% of each run's aggregate task execution time.
This experiment measures both for our implementation: wall-clock seconds
spent inside the controller's ``plan`` relative to the run's aggregate
executed task time, and the controller's reported state footprint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.cloud.site import CloudSite, exogeni_site
from repro.experiments.harness import CHARGING_UNITS, run_setting
from repro.workloads import table1_specs
from repro.workloads.base import StagedWorkflowSpec

__all__ = ["OverheadRow", "overhead_experiment"]


@dataclass(frozen=True)
class OverheadRow:
    """Controller overhead of one wire run."""

    workflow: str
    charging_unit: float
    ticks: int
    controller_seconds: float
    aggregate_task_seconds: float
    state_bytes: int

    @property
    def time_overhead_fraction(self) -> float:
        """Controller CPU time / aggregate executed task time."""
        if self.aggregate_task_seconds <= 0:
            return 0.0
        return self.controller_seconds / self.aggregate_task_seconds


def overhead_experiment(
    specs: Mapping[str, StagedWorkflowSpec] | None = None,
    *,
    charging_units: Sequence[float] = CHARGING_UNITS,
    seed: int = 0,
    site: CloudSite | None = None,
) -> list[OverheadRow]:
    """Measure wire-run controller overhead across charging units."""
    from repro.autoscalers import WireAutoscaler  # fresh controller per run

    the_site = site or exogeni_site()
    if specs is None:
        specs = table1_specs()
    rows: list[OverheadRow] = []
    for wf_name, spec in sorted(specs.items()):
        for u in charging_units:
            result = run_setting(
                spec, WireAutoscaler, u, seed=seed, site=the_site
            )
            rows.append(
                OverheadRow(
                    workflow=wf_name,
                    charging_unit=u,
                    ticks=result.ticks,
                    controller_seconds=result.controller_cpu_seconds,
                    aggregate_task_seconds=result.total_task_seconds,
                    state_bytes=result.controller_state_bytes or 0,
                )
            )
    return rows
