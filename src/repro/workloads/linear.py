"""Linear workflows for the §III-E analysis and §IV-A simulations.

"Consider a simple workflow that executes a sequence of stages and every
task is a predecessor of all tasks in the next stage ... all tasks in a
stage have the same run time R."

These builders produce exactly that: deterministic runtimes (no skew, no
sizes, no transfers) so the scaling algorithm's behaviour can be studied
in isolation and compared against the closed-form optimal costs
(``N*R/U`` resource usage, ``R`` completion time per stage).
"""

from __future__ import annotations

from repro.dag.builder import WorkflowBuilder
from repro.dag.task import Task
from repro.dag.workflow import Workflow
from repro.util.validation import check_positive

__all__ = ["linear_stage_workflow", "single_stage_workflow"]


def single_stage_workflow(n_tasks: int, runtime: float) -> Workflow:
    """One stage of ``n_tasks`` identical independent tasks."""
    return linear_stage_workflow([(n_tasks, runtime)])


def linear_stage_workflow(stages: list[tuple[int, float]]) -> Workflow:
    """A chain of all-to-all stages: ``[(n_tasks, runtime), ...]``.

    Every task of stage *k* depends on every task of stage *k-1*, so all
    tasks of a stage fire simultaneously — §III-E's idealized workflow
    class.
    """
    if not stages:
        raise ValueError("at least one stage is required")
    builder = WorkflowBuilder("linear")
    previous: list[str] = []
    for index, (count, runtime) in enumerate(stages):
        if not isinstance(count, int) or count <= 0:
            raise ValueError(f"stage {index}: count must be a positive int")
        check_positive(f"stage {index} runtime", runtime)
        width = max(4, len(str(count - 1)))
        ids = []
        for i in range(count):
            task_id = f"stage{index:02d}-{i:0{width}d}"
            builder.add_task(
                Task(task_id=task_id, executable=f"stage{index:02d}", runtime=runtime),
                parents=previous,
            )
            ids.append(task_id)
        previous = ids
    return builder.build()
