"""Workload generators: the Table I workflows plus synthetic DAGs.

:func:`table1_specs` returns all eight paper runs keyed by their Table I
names; each value is a :class:`StagedWorkflowSpec` whose ``generate(seed)``
realizes a concrete workflow (different seeds model cross-run
variability, Observation 2).
"""

from repro.workloads.base import (
    BlockSizes,
    EmpiricalSizes,
    FixedSize,
    SizeModel,
    StagedWorkflowSpec,
    StageTemplate,
    UniformSizes,
    WorkflowSummary,
    ZipfSizes,
    summarize_workflow,
)
from repro.workloads.epigenomics import epigenomics
from repro.workloads.linear import linear_stage_workflow, single_stage_workflow
from repro.workloads.montage import montage
from repro.workloads.pagerank import pagerank
from repro.workloads.profiles import PAPER_PROFILES, PaperProfile
from repro.workloads.synthetic import (
    chain_workflow,
    diamond_workflow,
    fork_join_workflow,
    random_layered_workflow,
)
from repro.workloads.tpch import tpch1, tpch6, tpch_transfer_model

__all__ = [
    "BlockSizes",
    "EmpiricalSizes",
    "FixedSize",
    "PAPER_PROFILES",
    "PaperProfile",
    "SizeModel",
    "StageTemplate",
    "StagedWorkflowSpec",
    "UniformSizes",
    "WorkflowSummary",
    "ZipfSizes",
    "chain_workflow",
    "diamond_workflow",
    "epigenomics",
    "fork_join_workflow",
    "linear_stage_workflow",
    "montage",
    "pagerank",
    "random_layered_workflow",
    "single_stage_workflow",
    "summarize_workflow",
    "table1_specs",
    "tpch1",
    "tpch6",
    "tpch_transfer_model",
]


def table1_specs() -> dict[str, StagedWorkflowSpec]:
    """All eight Table I runs, keyed by profile name."""
    return {
        "genome-S": epigenomics("S"),
        "genome-L": epigenomics("L"),
        "tpch1-S": tpch1("S"),
        "tpch1-L": tpch1("L"),
        "tpch6-S": tpch6("S"),
        "tpch6-L": tpch6("L"),
        "pagerank-S": pagerank("S"),
        "pagerank-L": pagerank("L"),
    }
