"""The Epigenomics scientific workflow (paper §IV-C, Table I).

Epigenomics is the USC Epigenome Center's DNA methylation pipeline and a
canonical Pegasus workflow [Juve et al., FGCS'13]. Its shape is a
split/per-chunk-pipeline/merge pattern:

    fastqSplit(1) -> filterContams(n) -> sol2sanger(n) -> fast2bfq(n)
                  -> map(n) -> mapMerge(2) -> maqIndex(1) -> pileup(1)

Eight stages; ``n`` = 100 for the small (Genome S) dataset and 1000 for
the large (Genome L), giving 405 and 4005 tasks — Table I's counts
exactly. Per-chunk stages are 1:1 pipelines, so all chunk pipelines can
progress independently; the merges are stage barriers.

Stage mean execution times are chosen so the stage-mean range matches
Table I's (1 s ... 54.88 s for S, 1 s ... 57.57 s for L) and the ``map``
stage's mean is solved so the expected aggregate execution time equals
the published 1.433 h (S) / 13.895 h (L) — the Condor rows of Table I are
arithmetically self-consistent, so an exact match is possible.
"""

from __future__ import annotations

from repro.workloads.base import (
    BlockSizes,
    FixedSize,
    StagedWorkflowSpec,
    StageTemplate,
)

__all__ = ["epigenomics"]

# Table I: dataset sizes in GB.
_DATA_BYTES = {"S": 0.002 * 1e9, "L": 0.013 * 1e9}
_CHUNKS = {"S": 100, "L": 1000}
_AGGREGATE_SECONDS = {"S": 1.433 * 3600.0, "L": 13.895 * 3600.0}
_MERGE_MEAN = {"S": 54.88, "L": 57.57}

# Fixed stage means (seconds); the map mean is solved per scale below.
_SPLIT_MEAN = 30.0
_FILTER_MEAN = 1.0  # Table I's per-stage minimum
_SOL2SANGER_MEAN = 2.5
_FAST2BFQ_MEAN = 3.0
_MAQINDEX_MEAN = 20.0
_PILEUP_MEAN = 25.0


def _map_mean(scale: str) -> float:
    """Solve the map-stage mean so expected aggregate matches Table I."""
    n = _CHUNKS[scale]
    fixed = (
        _SPLIT_MEAN
        + n * (_FILTER_MEAN + _SOL2SANGER_MEAN + _FAST2BFQ_MEAN)
        + 2 * _MERGE_MEAN[scale]
        + _MAQINDEX_MEAN
        + _PILEUP_MEAN
    )
    return (_AGGREGATE_SECONDS[scale] - fixed) / n


def epigenomics(scale: str = "S") -> StagedWorkflowSpec:
    """Build the Genome S or Genome L workflow spec.

    ``scale`` is ``"S"`` (405 tasks) or ``"L"`` (4005 tasks).
    """
    if scale not in _CHUNKS:
        raise ValueError(f"scale must be 'S' or 'L', got {scale!r}")
    n = _CHUNKS[scale]
    data = _DATA_BYTES[scale]
    chunk = data / n
    merged = data * 0.8  # alignment output is slightly smaller than input
    templates = (
        StageTemplate(
            executable="fastqSplit",
            count=1,
            mean_exec=_SPLIT_MEAN,
            cv=0.1,
            size_model=FixedSize(data),
            output_fraction=1.0,
        ),
        StageTemplate(
            executable="filterContams",
            count=n,
            mean_exec=_FILTER_MEAN,
            cv=0.1,
            size_model=BlockSizes(total_bytes=data, block_bytes=chunk),
            output_fraction=0.9,
            linkage="all",  # every chunk comes from the single split task
        ),
        StageTemplate(
            executable="sol2sanger",
            count=n,
            mean_exec=_SOL2SANGER_MEAN,
            cv=0.1,
            size_model=BlockSizes(total_bytes=data * 0.9, block_bytes=chunk * 0.9),
            output_fraction=1.0,
            linkage="one_to_one",
        ),
        StageTemplate(
            executable="fast2bfq",
            count=n,
            mean_exec=_FAST2BFQ_MEAN,
            cv=0.1,
            size_model=BlockSizes(total_bytes=data * 0.9, block_bytes=chunk * 0.9),
            output_fraction=0.5,
            linkage="one_to_one",
        ),
        StageTemplate(
            executable="map",
            count=n,
            mean_exec=_map_mean(scale),
            cv=0.08,
            size_model=BlockSizes(total_bytes=data * 0.45, block_bytes=chunk * 0.45),
            output_fraction=1.2,
            linkage="one_to_one",
        ),
        StageTemplate(
            executable="mapMerge",
            count=2,
            mean_exec=_MERGE_MEAN[scale],
            cv=0.1,
            size_model=FixedSize(merged / 2),
            output_fraction=1.0,
            linkage="block",  # each merge consumes half the map outputs
        ),
        StageTemplate(
            executable="maqIndex",
            count=1,
            mean_exec=_MAQINDEX_MEAN,
            cv=0.1,
            size_model=FixedSize(merged),
            output_fraction=0.6,
            linkage="all",
        ),
        StageTemplate(
            executable="pileup",
            count=1,
            mean_exec=_PILEUP_MEAN,
            cv=0.1,
            size_model=FixedSize(merged * 0.6),
            output_fraction=0.3,
            linkage="all",
        ),
    )
    return StagedWorkflowSpec(name=f"genome-{scale}", templates=templates)
