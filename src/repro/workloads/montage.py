"""Montage: a bonus Pegasus workflow (not part of the paper's Table I).

Montage is the astronomy image-mosaic engine and, next to Epigenomics,
the most common Pegasus benchmark workflow [Juve et al., FGCS'13]. It is
included because a workflow-autoscaling library should ship the standard
community workloads; its shape stresses WIRE differently from Table I —
a wide projection stage feeding an even wider pairwise-overlap stage,
a serial modelling bottleneck in the middle, then a second wide wave:

    mProject(n) -> mDiffFit(~2n) -> mConcatFit(1) -> mBgModel(1)
                -> mBackground(n) -> mImgtbl(1) -> mAdd(1)
                -> mShrink(t) -> mJPEG(1)

``mDiffFit`` compares overlapping image pairs; we link each diff task to
two neighbouring ``mProject`` outputs (the real overlap graph is
sky-geometry dependent; neighbour pairs preserve its local structure).
"""

from __future__ import annotations

from repro.dag.builder import WorkflowBuilder
from repro.dag.task import Task
from repro.dag.workflow import Workflow
from repro.util.rng import spawn_rng

__all__ = ["montage"]

_SCALES = {
    # images, shrink tiles, input MB per image
    "S": (25, 4, 4.0),
    "L": (100, 9, 4.2),
}


def montage(scale: str = "S", *, seed: int = 0) -> Workflow:
    """Build a Montage workflow (``"S"``: 25 images, ``"L"``: 100).

    Unlike the Table I specs this returns a concrete workflow directly
    (its structure depends on the overlap graph, which the builder owns);
    pass ``seed`` for runtime/skew variation.
    """
    if scale not in _SCALES:
        raise ValueError(f"scale must be 'S' or 'L', got {scale!r}")
    n_images, n_tiles, image_mb = _SCALES[scale]
    rng = spawn_rng(seed, f"montage-{scale}")
    image_bytes = image_mb * 1e6

    def jitter(mean: float) -> float:
        return float(mean * rng.lognormal(mean=-0.005, sigma=0.1))

    builder = WorkflowBuilder(f"montage-{scale}-seed{seed}")

    projects = []
    for i in range(n_images):
        projects.append(
            builder.add_task(
                Task(
                    f"mProject-{i:04d}",
                    "mProject",
                    runtime=jitter(12.0),
                    input_size=image_bytes,
                    output_size=image_bytes * 1.6,
                )
            )
        )

    # Pairwise overlaps between neighbouring images (ring topology).
    diffs = []
    for i in range(n_images):
        left, right = projects[i], projects[(i + 1) % n_images]
        diffs.append(
            builder.add_task(
                Task(
                    f"mDiffFit-{i:04d}",
                    "mDiffFit",
                    runtime=jitter(4.0),
                    input_size=image_bytes * 3.2,
                    output_size=2e4,
                ),
                parents=[left, right],
            )
        )

    concat = builder.add_task(
        Task("mConcatFit", "mConcatFit", runtime=jitter(8.0), input_size=2e4 * n_images),
        parents=diffs,
    )
    bgmodel = builder.add_task(
        Task("mBgModel", "mBgModel", runtime=jitter(25.0), input_size=1e5),
        parents=[concat],
    )

    backgrounds = []
    for i in range(n_images):
        backgrounds.append(
            builder.add_task(
                Task(
                    f"mBackground-{i:04d}",
                    "mBackground",
                    runtime=jitter(6.0),
                    input_size=image_bytes * 1.6,
                    output_size=image_bytes * 1.6,
                ),
                parents=[projects[i], bgmodel],
            )
        )

    imgtbl = builder.add_task(
        Task("mImgtbl", "mImgtbl", runtime=jitter(5.0), input_size=1e5),
        parents=backgrounds,
    )
    madd = builder.add_task(
        Task(
            "mAdd",
            "mAdd",
            runtime=jitter(40.0),
            input_size=image_bytes * 1.6 * n_images,
            output_size=image_bytes * n_images * 0.8,
        ),
        parents=[imgtbl],
    )
    shrinks = [
        builder.add_task(
            Task(
                f"mShrink-{i:02d}",
                "mShrink",
                runtime=jitter(7.0),
                input_size=image_bytes * n_images * 0.8 / n_tiles,
            ),
            parents=[madd],
        )
        for i in range(n_tiles)
    ]
    builder.add_task(
        Task("mJPEG", "mJPEG", runtime=jitter(10.0), input_size=1e6),
        parents=shrinks,
    )
    return builder.build()
