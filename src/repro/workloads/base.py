"""Workload generation machinery.

A workload is described as a sequence of :class:`StageTemplate` objects —
one per stage, with task counts, target mean execution times, intra-stage
skew, input-size models, and inter-stage linkage — and realized into a
concrete :class:`~repro.dag.workflow.Workflow` by
:class:`StagedWorkflowSpec.generate`.

Design notes (tying back to the paper):

- Intra-stage skew (Observation 1) comes from two sources, as in real
  stages: task input sizes vary (a size-dependent runtime component) and
  identical inputs still run differently (multiplicative lognormal noise).
- Runtime correlates with input size because input size is the feature of
  WIRE's online-gradient-descent predictor (Eq. 1); the correlation
  strength is the template's ``size_dependence``.
- Cross-run variability (Observation 2) comes from the generation seed
  and, optionally, the engine's perturbed runtime model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from repro.dag.builder import WorkflowBuilder
from repro.dag.task import Task
from repro.dag.workflow import Workflow
from repro.util.rng import spawn_rng
from repro.util.validation import check_non_negative, check_positive

__all__ = [
    "BlockSizes",
    "EmpiricalSizes",
    "FixedSize",
    "SizeModel",
    "StageTemplate",
    "StagedWorkflowSpec",
    "UniformSizes",
    "WorkflowSummary",
    "ZipfSizes",
    "summarize_workflow",
]

MiB = float(1 << 20)
GiB = float(1 << 30)

#: floor on generated runtimes; Table I's shortest stage means are ~1 s
_MIN_RUNTIME = 0.05


class SizeModel(Protocol):
    """Generates per-task input sizes for one stage."""

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """``count`` input sizes in bytes."""
        ...


@dataclass(frozen=True)
class FixedSize:
    """Every task reads the same number of bytes."""

    nbytes: float

    def __post_init__(self) -> None:
        check_non_negative("nbytes", self.nbytes)

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        return np.full(count, self.nbytes)


@dataclass(frozen=True)
class BlockSizes:
    """HDFS-style split: full blocks plus one remainder task.

    ``total_bytes`` of input divided into ``count`` splits of
    ``block_bytes`` each, with the final split taking the (smaller)
    remainder — the classic Hadoop input layout. This produces exactly the
    structure Policies 4 and 5 distinguish: a large group of equal-size
    peers plus occasional novel sizes.
    """

    total_bytes: float
    block_bytes: float = 128 * MiB

    def __post_init__(self) -> None:
        check_positive("total_bytes", self.total_bytes)
        check_positive("block_bytes", self.block_bytes)

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        if count == 1:
            return np.array([self.total_bytes])
        # Fit the configured block size if the data is large enough for
        # `count` splits; otherwise shrink blocks to cover all tasks.
        block = min(self.block_bytes, self.total_bytes / count)
        sizes = np.full(count, block)
        sizes[-1] = max(self.total_bytes - block * (count - 1), block * 0.1)
        return sizes


@dataclass(frozen=True)
class UniformSizes:
    """Independent uniform sizes in ``[low, high]`` bytes."""

    low: float
    high: float

    def __post_init__(self) -> None:
        check_non_negative("low", self.low)
        if self.high < self.low:
            raise ValueError(f"high ({self.high}) < low ({self.low})")

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        return rng.uniform(self.low, self.high, size=count)


@dataclass(frozen=True)
class ZipfSizes:
    """Heavy-tailed sizes: a Zipf-distributed multiple of ``base_bytes``.

    Models the skewed ("Zipfian") load distributions the paper cites as
    widespread in cloud workloads (§III-C). ``alpha`` > 1; smaller alpha
    means a heavier tail. Sizes are capped at ``cap_multiple * base``.
    """

    base_bytes: float
    alpha: float = 2.0
    cap_multiple: float = 64.0

    def __post_init__(self) -> None:
        check_positive("base_bytes", self.base_bytes)
        if self.alpha <= 1.0:
            raise ValueError(f"alpha must be > 1, got {self.alpha}")
        check_positive("cap_multiple", self.cap_multiple)

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        multiples = rng.zipf(self.alpha, size=count).astype(float)
        multiples = np.minimum(multiples, self.cap_multiple)
        return multiples * self.base_bytes


@dataclass(frozen=True)
class EmpiricalSizes:
    """Resample input sizes from an observed set of per-task sizes.

    The size model of calibrated specs (:mod:`repro.zoo.calibrate`): a
    trace's per-stage input sizes are kept verbatim. Sampling exactly
    ``len(sizes)`` tasks returns the observed sizes in their original
    order — so a calibrated stage regenerated at scale 1 reproduces the
    source stage's size moments exactly — while any other count draws a
    bootstrap resample from the same empirical distribution.
    """

    sizes: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.sizes:
            raise ValueError("EmpiricalSizes needs at least one observed size")
        for value in self.sizes:
            check_non_negative("sizes", value)

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        observed = np.asarray(self.sizes, dtype=float)
        if count == observed.size:
            return observed.copy()
        return rng.choice(observed, size=count, replace=True)


@dataclass(frozen=True)
class StageTemplate:
    """Declarative description of one stage.

    Parameters
    ----------
    executable:
        Stage program name; also names the generated tasks.
    count:
        Number of tasks.
    mean_exec:
        Target mean execution time, seconds (Table I's per-stage mean).
    cv:
        Coefficient of variation of the multiplicative lognormal noise —
        the load-skew knob (Observation 1).
    size_model:
        Input-size generator for the stage's tasks.
    output_fraction:
        Output bytes = fraction x input bytes (selectivity).
    linkage:
        Dependency pattern to the previous stage: ``"all"`` (stage
        barrier, every task depends on every predecessor task),
        ``"one_to_one"`` (task i depends on predecessor task i; counts
        must divide evenly — the epigenomics per-chunk pipeline), or
        ``"block"`` (predecessor tasks partitioned contiguously among this
        stage's tasks — hierarchical merges).
    size_dependence:
        Fraction of the runtime that scales linearly with input size
        (0 = size-independent, 1 = fully proportional).
    """

    executable: str
    count: int
    mean_exec: float
    cv: float = 0.15
    size_model: SizeModel = field(default_factory=lambda: FixedSize(128 * MiB))
    output_fraction: float = 1.0
    linkage: str = "all"
    size_dependence: float = 0.7

    def __post_init__(self) -> None:
        if not self.executable:
            raise ValueError("executable must be non-empty")
        if not isinstance(self.count, int) or self.count <= 0:
            raise ValueError(f"count must be a positive int, got {self.count!r}")
        check_positive("mean_exec", self.mean_exec)
        check_non_negative("cv", self.cv)
        check_non_negative("output_fraction", self.output_fraction)
        if self.linkage not in ("all", "one_to_one", "block"):
            raise ValueError(f"unknown linkage {self.linkage!r}")
        if not 0.0 <= self.size_dependence <= 1.0:
            raise ValueError(
                f"size_dependence must be in [0, 1], got {self.size_dependence}"
            )


@dataclass(frozen=True)
class StagedWorkflowSpec:
    """A reproducible workflow generator: templates -> concrete DAG."""

    name: str
    templates: tuple[StageTemplate, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("spec name must be non-empty")
        if not self.templates:
            raise ValueError("spec needs at least one stage template")

    @property
    def total_tasks(self) -> int:
        """Total task count across stages."""
        return sum(t.count for t in self.templates)

    def generate(self, seed: int = 0) -> Workflow:
        """Realize a concrete workflow for this seed.

        Different seeds produce different input sizes and runtimes from
        the same templates — the paper's cross-run variability.
        """
        builder = WorkflowBuilder(f"{self.name}-seed{seed}")
        previous_ids: list[str] = []
        for index, template in enumerate(self.templates):
            rng = spawn_rng(seed, f"{self.name}/{template.executable}/{index}")
            sizes = np.asarray(
                template.size_model.sample(template.count, rng), dtype=float
            )
            runtimes = _realize_runtimes(template, sizes, rng)
            ids = _emit_stage(builder, template, index, sizes, runtimes, previous_ids)
            previous_ids = ids
        return builder.build()


def _realize_runtimes(
    template: StageTemplate, sizes: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Mean-preserving runtimes: size-scaled base x lognormal noise."""
    mean_size = float(sizes.mean()) if sizes.size else 0.0
    if mean_size > 0 and template.size_dependence > 0:
        scale = (
            1.0
            - template.size_dependence
            + template.size_dependence * sizes / mean_size
        )
    else:
        scale = np.ones_like(sizes)
    base = template.mean_exec * scale
    if template.cv > 0:
        sigma2 = np.log1p(template.cv**2)
        noise = rng.lognormal(mean=-0.5 * sigma2, sigma=np.sqrt(sigma2), size=sizes.size)
    else:
        noise = np.ones_like(sizes)
    return np.maximum(base * noise, _MIN_RUNTIME)


def _emit_stage(
    builder: WorkflowBuilder,
    template: StageTemplate,
    index: int,
    sizes: np.ndarray,
    runtimes: np.ndarray,
    previous_ids: list[str],
) -> list[str]:
    """Add one stage's tasks with the declared linkage."""
    prefix = f"s{index:02d}-{template.executable}"
    width = max(4, len(str(template.count - 1)))
    ids = [f"{prefix}-{i:0{width}d}" for i in range(template.count)]

    if not previous_ids or template.linkage == "all":
        parent_sets: list[list[str]] = [previous_ids] * template.count
    elif template.linkage == "one_to_one":
        if len(previous_ids) % template.count != 0:
            raise ValueError(
                f"one_to_one linkage needs predecessor count divisible by "
                f"{template.count}, got {len(previous_ids)}"
            )
        # With equal counts this is a per-chunk pipeline; with fewer
        # children each child takes an equal contiguous share.
        share = len(previous_ids) // template.count
        parent_sets = [
            previous_ids[i * share : (i + 1) * share] for i in range(template.count)
        ]
    else:  # "block": contiguous partition, remainder spread over the front
        share, extra = divmod(len(previous_ids), template.count)
        parent_sets = []
        cursor = 0
        for i in range(template.count):
            take = share + (1 if i < extra else 0)
            parent_sets.append(previous_ids[cursor : cursor + take])
            cursor += take

    for i, task_id in enumerate(ids):
        builder.add_task(
            Task(
                task_id=task_id,
                executable=template.executable,
                runtime=float(runtimes[i]),
                input_size=float(sizes[i]),
                output_size=float(sizes[i]) * template.output_fraction,
            ),
            parents=parent_sets[i],
        )
    return ids


@dataclass(frozen=True)
class WorkflowSummary:
    """Table I's columns, computed from a generated workflow."""

    name: str
    n_stages: int
    total_tasks: int
    min_stage_tasks: int
    max_stage_tasks: int
    min_stage_mean_exec: float
    max_stage_mean_exec: float
    aggregate_exec_hours: float
    total_input_gb: float


def summarize_workflow(workflow: Workflow) -> WorkflowSummary:
    """Compute the Table I characterization of a workflow."""
    stage_sizes = [s.size for s in workflow.stages]
    stage_means = [
        float(np.mean([workflow.task(t).runtime for t in s.task_ids]))
        for s in workflow.stages
    ]
    total_input = sum(t.input_size for t in workflow.tasks.values())
    return WorkflowSummary(
        name=workflow.name,
        n_stages=len(workflow.stages),
        total_tasks=len(workflow),
        min_stage_tasks=min(stage_sizes),
        max_stage_tasks=max(stage_sizes),
        min_stage_mean_exec=min(stage_means),
        max_stage_mean_exec=max(stage_means),
        aggregate_exec_hours=workflow.total_work / 3600.0,
        total_input_gb=total_input / GiB,
    )
