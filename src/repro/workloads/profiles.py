"""Table I of the paper, transcribed as target profiles.

Each :class:`PaperProfile` carries the published characterization of one
workflow run. The generators in this package aim at these targets; the
Table I bench (``benchmarks/bench_table1_workloads.py``) prints paper
targets and generated values side by side.

Consistency note (also in DESIGN.md): for the Hadoop-derived rows the
published aggregate task execution time exceeds ``total_tasks x max
per-stage mean``, which is arithmetically impossible if "execution time"
means the same thing in both rows. We read the aggregate as including
data-transfer occupancy; the generators match stage counts, task counts,
stage-size ranges and per-stage mean ranges exactly, and report the
execution-only aggregate they imply.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["PAPER_PROFILES", "PaperProfile"]


@dataclass(frozen=True)
class PaperProfile:
    """One run's row of Table I."""

    name: str
    framework: str
    data_size_gb: float
    n_stages: int
    aggregate_exec_hours: float
    total_tasks: int
    stage_tasks_range: tuple[int, int]
    stage_mean_exec_range: tuple[float, float]
    task_types: str
    #: whether the published aggregate is arithmetically consistent with
    #: the published per-stage means (False for the Hadoop rows; see note)
    aggregate_consistent: bool = True
    #: stage-size range after resolving internal inconsistencies in the
    #: published row (None = the published range is achievable as-is)
    resolved_stage_tasks_range: tuple[int, int] | None = None

    @property
    def target_stage_tasks_range(self) -> tuple[int, int]:
        """The stage-size range the generators actually aim for."""
        return self.resolved_stage_tasks_range or self.stage_tasks_range


PAPER_PROFILES: dict[str, PaperProfile] = {
    "genome-S": PaperProfile(
        name="genome-S",
        framework="Condor",
        data_size_gb=0.002,
        n_stages=8,
        aggregate_exec_hours=1.433,
        total_tasks=405,
        stage_tasks_range=(1, 100),
        stage_mean_exec_range=(1.0, 54.88),
        task_types="short/medium/long",
    ),
    "genome-L": PaperProfile(
        name="genome-L",
        framework="Condor",
        data_size_gb=0.013,
        n_stages=8,
        aggregate_exec_hours=13.895,
        total_tasks=4005,
        stage_tasks_range=(1, 1000),
        stage_mean_exec_range=(1.0, 57.57),
        task_types="short/medium/long",
    ),
    "tpch1-S": PaperProfile(
        name="tpch1-S",
        framework="Hadoop",
        data_size_gb=7.27,
        n_stages=4,
        aggregate_exec_hours=0.402,
        total_tasks=62,
        stage_tasks_range=(1, 32),
        stage_mean_exec_range=(2.0, 13.24),
        task_types="short/medium",
        aggregate_consistent=False,
    ),
    "tpch1-L": PaperProfile(
        name="tpch1-L",
        framework="Hadoop",
        data_size_gb=29.53,
        n_stages=4,
        aggregate_exec_hours=5.22,
        total_tasks=229,
        stage_tasks_range=(1, 124),
        stage_mean_exec_range=(1.05, 14.89),
        task_types="short/medium",
        aggregate_consistent=False,
    ),
    "tpch6-S": PaperProfile(
        name="tpch6-S",
        framework="Hadoop",
        data_size_gb=7.27,
        n_stages=2,
        aggregate_exec_hours=0.162,
        total_tasks=33,
        stage_tasks_range=(1, 32),
        stage_mean_exec_range=(2.0, 7.3),
        task_types="short",
        aggregate_consistent=False,
    ),
    "tpch6-L": PaperProfile(
        name="tpch6-L",
        framework="Hadoop",
        data_size_gb=29.53,
        n_stages=2,
        aggregate_exec_hours=1.136,
        total_tasks=118,
        stage_tasks_range=(1, 118),
        stage_mean_exec_range=(3.0, 8.43),
        task_types="short",
        aggregate_consistent=False,
        # Two stages cannot simultaneously total 118 tasks and span
        # 1..118; we take (1, 117), i.e. 117 maps + 1 reduce.
        resolved_stage_tasks_range=(1, 117),
    ),
    "pagerank-S": PaperProfile(
        name="pagerank-S",
        framework="Hadoop",
        data_size_gb=0.26,
        n_stages=12,
        aggregate_exec_hours=0.661,
        total_tasks=115,
        stage_tasks_range=(6, 18),
        stage_mean_exec_range=(5.28, 21.5),
        task_types="short/medium",
        # 6 x 5.28 + 109 x 21.5 = 2375.2 s < 2379.6 s published aggregate:
        # inconsistent by ~0.2% (rounding in the published table).
        aggregate_consistent=False,
    ),
    "pagerank-L": PaperProfile(
        name="pagerank-L",
        framework="Hadoop",
        data_size_gb=2.88,
        n_stages=12,
        aggregate_exec_hours=5.415,
        total_tasks=313,
        stage_tasks_range=(6, 60),
        stage_mean_exec_range=(26.61, 166.18),
        task_types="medium/long",
    ),
}
