"""Intel HiBench PageRank as a Hadoop-style workflow (paper §IV-C).

HiBench's PageRank runs an initialization job, a parse job, a fixed
number of power iterations, and final ranking job(s), each compiled to
MapReduce stages — 12 stages in the paper's runs. Task counts and stage
mean execution times reproduce Table I's published ranges exactly:

- PageRank S: 115 tasks, 6-18 per stage, stage means 5.28-21.5 s;
- PageRank L: 313 tasks, 6-60 per stage, stage means 26.61-166.18 s.

PageRank L's aggregate (5.415 h) is matched exactly by solving the
shared mean of the middle iteration stages; PageRank S's published
aggregate is infeasible under its own published per-stage mean range
(off by ~0.2%, see ``profiles.py``), so S matches the ranges and lands
within a few percent of the aggregate.
"""

from __future__ import annotations

from repro.workloads.base import (
    BlockSizes,
    StagedWorkflowSpec,
    StageTemplate,
    UniformSizes,
)

__all__ = ["pagerank"]

_GB = 1e9


def _pagerank_s() -> StagedWorkflowSpec:
    data = 0.26 * _GB
    iter_means = (21.0, 19.0, 20.5, 18.0, 21.2, 19.5, 20.0, 18.5, 21.3)
    templates = [
        StageTemplate(
            executable="pr-init",
            count=18,
            mean_exec=21.5,  # Table I's per-stage maximum
            cv=0.05,
            size_model=BlockSizes(total_bytes=data, block_bytes=data / 18),
            output_fraction=1.5,
        ),
        StageTemplate(
            executable="pr-parse",
            count=6,
            mean_exec=5.28,  # Table I's per-stage minimum
            cv=0.05,
            size_model=UniformSizes(data * 0.1 / 6, data * 0.3 / 6),
            output_fraction=1.0,
            linkage="all",
        ),
    ]
    for i, mean in enumerate(iter_means):
        templates.append(
            StageTemplate(
                executable=f"pr-iter{i + 1}",
                count=9,
                mean_exec=mean,
                cv=0.05,
                size_model=UniformSizes(data * 0.8 / 9, data * 1.2 / 9),
                output_fraction=1.0,
                linkage="all",
            )
        )
    templates.append(
        StageTemplate(
            executable="pr-rank",
            count=10,
            mean_exec=15.0,
            cv=0.05,
            size_model=UniformSizes(data * 0.5 / 10, data * 0.9 / 10),
            output_fraction=0.1,
            linkage="all",
        )
    )
    return StagedWorkflowSpec(name="pagerank-S", templates=tuple(templates))


def _pagerank_l() -> StagedWorkflowSpec:
    data = 2.88 * _GB
    aggregate = 5.415 * 3600.0
    # Fixed stages; the seven plain iteration means are solved so the
    # expected aggregate matches Table I exactly.
    init_mean, parse_mean = 90.0, 26.61  # parse is the per-stage minimum
    heavy_iter_mean = 166.18  # the per-stage maximum
    rank1_mean, rank2_mean = 40.0, 50.0
    fixed = (
        60 * init_mean
        + 6 * parse_mean
        + 24 * heavy_iter_mean
        + 25 * rank1_mean
        + 30 * rank2_mean
    )
    plain_iter_mean = (aggregate - fixed) / (7 * 24)
    templates = [
        StageTemplate(
            executable="pr-init",
            count=60,
            mean_exec=init_mean,
            cv=0.05,
            size_model=BlockSizes(total_bytes=data, block_bytes=data / 60),
            output_fraction=1.5,
        ),
        StageTemplate(
            executable="pr-parse",
            count=6,
            mean_exec=parse_mean,
            cv=0.05,
            size_model=UniformSizes(data * 0.1 / 6, data * 0.3 / 6),
            output_fraction=1.0,
            linkage="all",
        ),
    ]
    for i in range(7):
        templates.append(
            StageTemplate(
                executable=f"pr-iter{i + 1}",
                count=24,
                mean_exec=plain_iter_mean,
                cv=0.06,
                size_model=UniformSizes(data * 0.8 / 24, data * 1.2 / 24),
                output_fraction=1.0,
                linkage="all",
            )
        )
    templates.append(
        StageTemplate(
            executable="pr-iter8",
            count=24,
            mean_exec=heavy_iter_mean,
            cv=0.06,
            size_model=UniformSizes(data * 0.8 / 24, data * 1.2 / 24),
            output_fraction=1.0,
            linkage="all",
        )
    )
    templates.extend(
        (
            StageTemplate(
                executable="pr-rank1",
                count=25,
                mean_exec=rank1_mean,
                cv=0.05,
                size_model=UniformSizes(data * 0.5 / 25, data * 0.9 / 25),
                output_fraction=0.5,
                linkage="all",
            ),
            StageTemplate(
                executable="pr-rank2",
                count=30,
                mean_exec=rank2_mean,
                cv=0.05,
                size_model=UniformSizes(data * 0.3 / 30, data * 0.6 / 30),
                output_fraction=0.1,
                linkage="all",
            ),
        )
    )
    return StagedWorkflowSpec(name="pagerank-L", templates=tuple(templates))


def pagerank(scale: str = "S") -> StagedWorkflowSpec:
    """Build the PageRank S or L workflow spec (12 stages)."""
    if scale == "S":
        return _pagerank_s()
    if scale == "L":
        return _pagerank_l()
    raise ValueError(f"scale must be 'S' or 'L', got {scale!r}")
