"""Synthetic DAG generators for tests and property-based exploration.

These are not paper workloads; they exist to exercise the engine and the
controller over a much wider structural space than Table I covers —
random layered DAGs, fork-joins, chains, and diamonds — so property
tests can assert invariants (completion, billing sanity, no lost tasks)
on adversarial shapes.
"""

from __future__ import annotations

import numpy as np

from repro.dag.builder import WorkflowBuilder
from repro.dag.task import Task
from repro.dag.workflow import Workflow
from repro.util.rng import spawn_rng

__all__ = ["chain_workflow", "diamond_workflow", "fork_join_workflow", "random_layered_workflow"]


def chain_workflow(length: int, runtime: float = 10.0) -> Workflow:
    """``length`` tasks in a strict sequence (zero parallelism)."""
    if length <= 0:
        raise ValueError(f"length must be > 0, got {length}")
    builder = WorkflowBuilder("chain")
    previous: list[str] = []
    for i in range(length):
        tid = f"link-{i:04d}"
        builder.add_task(
            Task(task_id=tid, executable=f"link{i}", runtime=runtime),
            parents=previous,
        )
        previous = [tid]
    return builder.build()


def fork_join_workflow(
    width: int, runtime: float = 10.0, *, levels: int = 1
) -> Workflow:
    """source -> width parallel tasks -> sink, repeated ``levels`` times."""
    if width <= 0 or levels <= 0:
        raise ValueError("width and levels must be > 0")
    builder = WorkflowBuilder("fork-join")
    previous = [
        builder.add_task(Task("source", "source", runtime=runtime))
    ]
    for level in range(levels):
        fan = builder.add_stage(
            f"fan{level}", count=width, runtime=runtime, parents=previous
        )
        previous = [
            builder.add_task(
                Task(f"join-{level:02d}", f"join{level}", runtime=runtime),
                parents=fan,
            )
        ]
    return builder.build()


def diamond_workflow(runtime: float = 10.0) -> Workflow:
    """The four-task diamond: a -> (b, c) -> d."""
    builder = WorkflowBuilder("diamond")
    builder.add_task(Task("a", "a", runtime=runtime))
    builder.add_task(Task("b", "b", runtime=runtime), parents=["a"])
    builder.add_task(Task("c", "c", runtime=runtime), parents=["a"])
    builder.add_task(Task("d", "d", runtime=runtime), parents=["b", "c"])
    return builder.build()


def random_layered_workflow(
    seed: int,
    *,
    n_layers: int = 5,
    max_width: int = 8,
    max_runtime: float = 60.0,
    edge_probability: float = 0.4,
) -> Workflow:
    """A random layered DAG with guaranteed connectivity.

    Each layer has 1..max_width tasks; every task gets at least one
    parent in the previous layer (so nothing floats free) plus extra
    edges with ``edge_probability``. Runtimes and input sizes are drawn
    uniformly. Deterministic in ``seed``.
    """
    if n_layers <= 0 or max_width <= 0:
        raise ValueError("n_layers and max_width must be > 0")
    if not 0.0 <= edge_probability <= 1.0:
        raise ValueError("edge_probability must be in [0, 1]")
    rng = spawn_rng(seed, "random-layered")
    builder = WorkflowBuilder(f"random-{seed}")
    previous: list[str] = []
    for layer in range(n_layers):
        width = int(rng.integers(1, max_width + 1))
        current: list[str] = []
        for i in range(width):
            tid = f"l{layer:02d}-t{i:03d}"
            runtime = float(rng.uniform(0.5, max_runtime))
            input_size = float(rng.uniform(1e6, 5e8))
            parents: list[str] = []
            if previous:
                anchor = previous[int(rng.integers(0, len(previous)))]
                parents.append(anchor)
                for candidate in previous:
                    if candidate != anchor and rng.random() < edge_probability:
                        parents.append(candidate)
            builder.add_task(
                Task(
                    task_id=tid,
                    executable=f"layer{layer}",
                    runtime=runtime,
                    input_size=input_size,
                    output_size=input_size * 0.5,
                ),
                parents=parents,
            )
            current.append(tid)
        previous = current
    return builder.build()
