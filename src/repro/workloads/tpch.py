"""TPC-H queries 1 and 6 as Hadoop-style workflows (paper §IV-C, Table I).

The paper transforms recorded Hadoop runs of TPC-H into Pegasus DAGs via a
task emulator; we synthesize the equivalent DAG shapes directly:

- **TPCH-1** (pricing summary report): a scan-heavy aggregation compiled
  to two chained MapReduce jobs -> four stages
  ``map1 -> reduce1 -> map2 -> reduce2``.
- **TPCH-6** (forecasting revenue change): a single filter-and-sum job ->
  two stages ``map -> reduce``.

Stage task counts reproduce Table I exactly (including its min/max per
stage); stage mean execution times span exactly the published per-stage
ranges. The published *aggregate* for these Hadoop rows exceeds what the
per-stage means can produce, which we attribute to transfer occupancy
(see ``profiles.py``); the recommended transfer model below is calibrated
so expected occupancy lands near the published aggregate.
"""

from __future__ import annotations

from repro.engine.transfer import ExponentialTransferModel
from repro.workloads.base import (
    BlockSizes,
    StagedWorkflowSpec,
    StageTemplate,
    ZipfSizes,
)

__all__ = ["tpch1", "tpch6", "tpch_transfer_model"]

_GB = 1e9

# (stage task counts, stage mean exec seconds) per scale, chosen so the
# min/max across stages equal Table I's published ranges exactly.
_TPCH1 = {
    "S": {
        "data": 7.27 * _GB,
        "counts": (32, 21, 8, 1),
        "means": (13.24, 6.0, 4.0, 2.0),
    },
    "L": {
        "data": 29.53 * _GB,
        "counts": (124, 62, 42, 1),
        "means": (14.89, 10.0, 6.0, 1.05),
    },
}
_TPCH6 = {
    "S": {"data": 7.27 * _GB, "counts": (32, 1), "means": (7.3, 2.0)},
    "L": {"data": 29.53 * _GB, "counts": (117, 1), "means": (8.43, 3.0)},
}


def tpch1(scale: str = "S") -> StagedWorkflowSpec:
    """TPC-H query 1: two chained MapReduce jobs, four stages."""
    if scale not in _TPCH1:
        raise ValueError(f"scale must be 'S' or 'L', got {scale!r}")
    cfg = _TPCH1[scale]
    data = cfg["data"]
    counts = cfg["counts"]
    means = cfg["means"]
    templates = (
        StageTemplate(
            executable="q1-map1",
            count=counts[0],
            mean_exec=means[0],
            cv=0.05,
            size_model=BlockSizes(total_bytes=data),
            output_fraction=0.25,  # projection + local combine
        ),
        StageTemplate(
            executable="q1-reduce1",
            count=counts[1],
            mean_exec=means[1],
            cv=0.08,
            # Shuffle partitions are skewed — the classic reducer-skew the
            # paper's load-skew observation cites.
            size_model=ZipfSizes(base_bytes=data * 0.25 / counts[1], alpha=2.5, cap_multiple=16.0),
            output_fraction=0.4,
            linkage="all",
        ),
        StageTemplate(
            executable="q1-map2",
            count=counts[2],
            mean_exec=means[2],
            cv=0.05,
            size_model=BlockSizes(total_bytes=data * 0.1),
            output_fraction=0.5,
            linkage="all",
        ),
        StageTemplate(
            executable="q1-reduce2",
            count=counts[3],
            mean_exec=means[3],
            cv=0.1,
            size_model=BlockSizes(total_bytes=data * 0.05),
            output_fraction=0.01,
            linkage="all",
        ),
    )
    return StagedWorkflowSpec(name=f"tpch1-{scale}", templates=templates)


def tpch6(scale: str = "S") -> StagedWorkflowSpec:
    """TPC-H query 6: one filter-and-sum MapReduce job, two stages."""
    if scale not in _TPCH6:
        raise ValueError(f"scale must be 'S' or 'L', got {scale!r}")
    cfg = _TPCH6[scale]
    data = cfg["data"]
    counts = cfg["counts"]
    means = cfg["means"]
    templates = (
        StageTemplate(
            executable="q6-map",
            count=counts[0],
            mean_exec=means[0],
            cv=0.05,
            size_model=BlockSizes(total_bytes=data),
            output_fraction=0.001,  # a highly selective filter
        ),
        StageTemplate(
            executable="q6-reduce",
            count=counts[1],
            mean_exec=means[1],
            cv=0.1,
            size_model=BlockSizes(total_bytes=data * 0.001),
            output_fraction=0.01,
            linkage="all",
        ),
    )
    return StagedWorkflowSpec(name=f"tpch6-{scale}", templates=templates)


def tpch_transfer_model(scale: str = "S") -> ExponentialTransferModel:
    """Transfer model calibrated to the Table I aggregate interpretation.

    With ~50 MB/s effective per-transfer bandwidth (in line with the
    paper's observation that ExoGENI per-core bandwidth varies by type),
    the expected transfer occupancy plus execution time approaches the
    published aggregate for the Hadoop rows.
    """
    if scale not in ("S", "L"):
        raise ValueError(f"scale must be 'S' or 'L', got {scale!r}")
    return ExponentialTransferModel(bandwidth=5e7, latency=4.0)
