"""WIRE as an autoscaler, plus the clairvoyant oracle variant.

:class:`WireAutoscaler` is a thin alias over
:class:`~repro.core.mape.MapeController` so experiment code can import
every policy from one package.

:class:`OracleAutoscaler` is an *extension* beyond the paper: the same
MAPE pipeline (lookahead + Algorithms 2/3) driven by a predictor that
reads the ground-truth nominal runtimes instead of learning them online.
The gap between oracle and wire isolates how much cost/performance is
attributable to prediction error versus the steering policy itself.
"""

from __future__ import annotations

from repro.core.mape import MapeController
from repro.core.predictor import TaskPredictor
from repro.core.runstate import PredictionPolicy
from repro.dag.workflow import Workflow
from repro.engine.master import TaskExecState
from repro.engine.monitor import Monitor

__all__ = ["OracleAutoscaler", "WireAutoscaler"]


class WireAutoscaler(MapeController):
    """The paper's system, unchanged (exists for import symmetry)."""

    name = "wire"


class _ClairvoyantPredictor(TaskPredictor):
    """A predictor that returns each task's true nominal execution time.

    Transfer estimates remain the observed median — transfers are drawn
    memorylessly, so the median of observations is the best available
    estimate even with full knowledge of the model.
    """

    def estimate_execution(
        self,
        task_id: str,
        phase: TaskExecState,
        monitor: Monitor,
        now: float,
        **_: object,
    ) -> tuple[float, PredictionPolicy]:
        return self.workflow.task(task_id).runtime, PredictionPolicy.OBSERVED


class OracleAutoscaler(MapeController):
    """WIRE with perfect execution-time predictions (upper reference)."""

    name = "oracle"

    def _make_predictor(self, workflow: Workflow) -> TaskPredictor:
        return _ClairvoyantPredictor(workflow, self.config)
