"""Deadline-driven autoscaling (an extension beyond the paper).

WIRE's objective is "the shortest expected completion time that maintains
utilization above a target level" (§I). A natural dual — and a common ask
from workflow users — is *meet a completion deadline at minimum cost*.
This policy reuses WIRE's entire prediction stack (the five online
policies, OGD, ``t̃_data``) but replaces Algorithm 3's utilization packing
with deadline arithmetic:

- remaining work ``W``: sum of predicted remaining occupancies over all
  incomplete tasks;
- remaining critical path ``C``: the heaviest chain of predicted
  remaining occupancies through the incomplete DAG — no pool size can
  beat it;
- time budget ``B``: deadline minus the next interval start.

The pool target is the work-area lower bound ``ceil(W / (l * B))``,
escalated to the full site when the budget is tight relative to the
critical path (``C >= margin * B``) or already blown. Releases follow
Algorithm 2's conserving rules unchanged, so slack deadlines translate
directly into fewer charging units.
"""

from __future__ import annotations

import math

from repro.core.config import WireConfig
from repro.core.predictor import TaskPredictor
from repro.core.runstate import RunState
from repro.core.steering import SteeringPolicy, steer_inputs_for
from repro.dag.workflow import Workflow
from repro.engine.control import Autoscaler, Observation, ScalingDecision
from repro.engine.master import TaskExecState
from repro.util.validation import check_positive

__all__ = ["DeadlineAutoscaler"]


class DeadlineAutoscaler(Autoscaler):
    """Finish by ``deadline`` (simulation seconds) at minimum cost."""

    name = "deadline"

    def __init__(
        self,
        deadline: float,
        config: WireConfig | None = None,
        *,
        critical_path_margin: float = 1.2,
        initial_instances: int = 1,
    ) -> None:
        check_positive("deadline", deadline)
        check_positive("critical_path_margin", critical_path_margin)
        if not isinstance(initial_instances, int) or initial_instances < 1:
            raise ValueError(
                f"initial_instances must be an int >= 1, got {initial_instances!r}"
            )
        self.deadline = deadline
        self.config = config or WireConfig()
        self.critical_path_margin = critical_path_margin
        self.initial_instances = initial_instances
        self._steering = SteeringPolicy(self.config.restart_threshold_fraction)
        self._predictor: TaskPredictor | None = None
        self._workflow: Workflow | None = None

    def initial_pool_size(self, site) -> int:
        """Cold-start size: tight deadlines cannot wait out the first lag.

        Online prediction knows nothing at t = 0, so the only deadline
        signal available before the run is the user's own urgency —
        expose it as a knob rather than guessing.
        """
        return min(self.initial_instances, site.max_instances)

    # ------------------------------------------------------------------
    def _bind(self, workflow: Workflow) -> None:
        if self._workflow is None:
            self._workflow = workflow
            self._predictor = TaskPredictor(workflow, self.config)
        elif self._workflow is not workflow:
            raise RuntimeError(
                "a DeadlineAutoscaler manages a single run; create a fresh "
                "controller per workflow"
            )

    @staticmethod
    def _remaining_critical_path(workflow: Workflow, state: RunState) -> float:
        """Heaviest incomplete chain under the predicted remaining times."""
        finish: dict[str, float] = {}
        for tid in workflow.topological_order():
            estimate = state.estimates[tid]
            remaining = (
                0.0
                if estimate.phase is TaskExecState.COMPLETED
                else estimate.remaining_occupancy
            )
            start = max((finish[p] for p in workflow.parents(tid)), default=0.0)
            finish[tid] = start + remaining
        return max(finish.values(), default=0.0)

    # ------------------------------------------------------------------
    def plan(self, obs: Observation) -> ScalingDecision:
        self._bind(obs.workflow)
        assert self._predictor is not None

        self._predictor.observe_interval(obs.monitor, obs.window_start, obs.now)
        state = self._predictor.build_run_state(obs.master, obs.monitor, obs.now)

        incomplete = state.wavefront()
        slots = obs.site.itype.slots
        budget = self.deadline - (obs.now + obs.lag)
        work = sum(e.remaining_occupancy for e in incomplete)
        critical = self._remaining_critical_path(obs.workflow, state)
        # Stages nothing has sampled yet predict zero (Policy 1), but each
        # will still consume at least one control interval to be
        # discovered and ramped for; charge that lag to the critical path
        # so tight deadlines escalate *before* the blind spots bite.
        undiscovered = sum(
            1
            for stage in obs.workflow.stages
            if not obs.monitor.stage_has_dispatches(stage.stage_id)
            and not obs.master.stage_completed(stage.stage_id)
        )
        critical += obs.lag * undiscovered

        if not incomplete:
            target = obs.site.min_instances
        elif budget <= 0 or critical * self.critical_path_margin >= budget:
            # Blown or tight: every instance the site has.
            target = obs.site.max_instances
        else:
            target = max(1, math.ceil(work / (slots * budget)))

        steer_inputs = steer_inputs_for(
            obs.steerable_instances(),
            obs.billing,
            obs.now,
            state.estimates.__getitem__,
        )
        return self._steering.decide_with_target(
            target=target,
            now=obs.now,
            instances=steer_inputs,
            pending_count=len(obs.pool.pending()),
            charging_unit=obs.charging_unit,
            lag=obs.lag,
            min_instances=max(1, obs.site.min_instances),
            max_instances=obs.site.max_instances,
        )

    def state_size_bytes(self) -> int | None:
        if self._predictor is None:
            return 0
        return self._predictor.state_size_bytes()
