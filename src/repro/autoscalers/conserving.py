"""Reactive-conserving autoscaling (paper §IV-C setting 4).

"Elastic settings ruled by the active tasks and the resource steering
policy. At run time, we predict the load according to the number of
idle/running tasks and add/delete resources according to the resource
steering policy."

The growth signal is the same instantaneous task count pure-reactive uses,
but releases follow Algorithm 2's conserving rules: only when an
instance's charging unit is about to expire (``r_j <= lag``) and the
restart cost is below the threshold, with the release placed exactly at
the charge boundary. It lacks WIRE's lookahead — it cannot anticipate a
stage firing or distinguish long tasks from short ones.
"""

from __future__ import annotations

import math

from repro.core.steering import SteerableInstance, SteeringPolicy
from repro.engine.control import Autoscaler, Observation, ScalingDecision

__all__ = ["ReactiveConservingAutoscaler"]


class ReactiveConservingAutoscaler(Autoscaler):
    """Instantaneous-load target + Algorithm 2's conserving releases."""

    name = "reactive-conserving"

    def __init__(self, restart_threshold_fraction: float = 0.2) -> None:
        self._steering = SteeringPolicy(restart_threshold_fraction)

    def plan(self, obs: Observation) -> ScalingDecision:
        slots = obs.site.itype.slots
        target = math.ceil(obs.runnable_task_count() / slots)
        instances = [
            SteerableInstance(
                instance_id=i.instance_id,
                time_to_next_charge=obs.billing.time_to_next_charge(i, obs.now),
                restart_cost=obs.restart_cost(i),
            )
            for i in obs.steerable_instances()
        ]
        return self._steering.decide_with_target(
            target=target,
            now=obs.now,
            instances=instances,
            pending_count=len(obs.pool.pending()),
            charging_unit=obs.charging_unit,
            lag=obs.lag,
            min_instances=max(1, obs.site.min_instances),
            max_instances=obs.site.max_instances,
        )
