"""Static provisioning (the paper's *full-site* setting).

Paper §IV-C: "Static settings with 12 VM instances ... these settings host
workflows with the maximum number of worker instances. We call the sample
runs on these settings *full-site runs*." Full-site is the performance
reference of Fig 6 (fastest, since it always has peak capacity) and the
cost ceiling of Fig 5.
"""

from __future__ import annotations

from repro.cloud.site import CloudSite
from repro.engine.control import Autoscaler, Observation, ScalingDecision

__all__ = ["StaticAutoscaler", "full_site"]


class StaticAutoscaler(Autoscaler):
    """Provision a fixed pool up front and never change it."""

    def __init__(self, size: int, *, name: str | None = None) -> None:
        if not isinstance(size, int) or size <= 0:
            raise ValueError(f"size must be a positive int, got {size!r}")
        self.size = size
        self.name = name if name is not None else f"static-{size}"

    def initial_pool_size(self, site: CloudSite) -> int:
        return min(self.size, site.max_instances)

    def plan(self, obs: Observation) -> ScalingDecision:
        return ScalingDecision()


def full_site(site: CloudSite) -> StaticAutoscaler:
    """The paper's full-site setting: the whole site, statically."""
    return StaticAutoscaler(site.max_instances, name="full-site")
