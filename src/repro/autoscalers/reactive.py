"""Pure-reactive autoscaling (paper §IV-C setting 3).

"Elastic settings ruled by the active tasks. At run time, the capacities
of these settings are determined by the number of idle/running tasks."

The pool is sized to the instantaneous runnable load — one slot per
ready-or-running task — with no prediction, no charging-unit awareness,
and immediate releases. Its weakness is exactly what WIRE fixes: it
releases instances mid-charging-unit (forfeiting paid time) and re-launches
them one lag later when the next stage fires.
"""

from __future__ import annotations

import math

from repro.engine.control import (
    Autoscaler,
    Observation,
    ScalingDecision,
    TerminationOrder,
)

__all__ = ["PureReactiveAutoscaler"]


class PureReactiveAutoscaler(Autoscaler):
    """Track the instantaneous task load, one slot per runnable task."""

    name = "pure-reactive"

    def plan(self, obs: Observation) -> ScalingDecision:
        slots = obs.site.itype.slots
        load = obs.runnable_task_count()
        target = max(
            obs.site.min_instances,
            min(math.ceil(load / slots), obs.site.max_instances),
        )
        current = obs.effective_pool_size()
        if target > current:
            return ScalingDecision(launch=target - current)
        if target == current:
            return ScalingDecision()
        # Shrink immediately: prefer the emptiest instances so the fewest
        # running tasks get killed. No charge-boundary awareness — that is
        # this baseline's defining waste.
        candidates = sorted(
            obs.steerable_instances(),
            key=lambda i: (len(i.occupants), i.instance_id),
        )
        orders = tuple(
            TerminationOrder(instance_id=i.instance_id, at=obs.now)
            for i in candidates[: current - target]
        )
        return ScalingDecision(terminations=orders)
