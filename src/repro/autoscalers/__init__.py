"""Pool-sizing policies: WIRE plus the paper's baselines.

The four settings of §IV-C map to:

- *full-site*  -> :func:`full_site` / :class:`StaticAutoscaler`
- *pure-reactive* -> :class:`PureReactiveAutoscaler`
- *reactive-conserving* -> :class:`ReactiveConservingAutoscaler`
- *wire* -> :class:`WireAutoscaler`

:class:`OracleAutoscaler` (clairvoyant WIRE) and
:class:`DeadlineAutoscaler` (meet a deadline at minimum cost, on WIRE's
prediction stack) are extensions beyond the paper.
"""

from repro.autoscalers.conserving import ReactiveConservingAutoscaler
from repro.autoscalers.deadline import DeadlineAutoscaler
from repro.autoscalers.reactive import PureReactiveAutoscaler
from repro.autoscalers.static import StaticAutoscaler, full_site
from repro.autoscalers.wire import OracleAutoscaler, WireAutoscaler

__all__ = [
    "DeadlineAutoscaler",
    "OracleAutoscaler",
    "PureReactiveAutoscaler",
    "ReactiveConservingAutoscaler",
    "StaticAutoscaler",
    "WireAutoscaler",
    "full_site",
]
